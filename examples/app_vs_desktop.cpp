// Application sharing vs desktop sharing (draft §2).
//
// "In desktop sharing, a computer distributes all screen updates. In
// application sharing, the AH distributes screen updates if and only if
// they belong to the shared application's windows. ... A true application
// sharing system must blank all the nonshared windows and must transfer
// all the child windows of the shared application."
//
// The AH runs an editor (group 1, two windows — parent + child dialog) and
// a private mail client (group 2). Phase 1 shares the whole desktop; phase
// 2 switches to sharing only group 1. The participant's view is probed to
// show the mail window blanking, including where it overlaps the editor.
//
// Build & run:  ./build/examples/app_vs_desktop
#include <cstdio>

#include "core/session.hpp"
#include "image/metrics.hpp"

using namespace ads;

namespace {

const char* describe(const Image& view, Point p) {
  return view.at(p.x, p.y) == kBlack ? "BLANK" : "visible";
}

void probe(const char* phase, const Image& view) {
  std::printf("\n%s\n", phase);
  std::printf("  editor parent (100,100):  %s\n", describe(view, {100, 100}));
  std::printf("  editor child  (210,260):  %s\n", describe(view, {210, 260}));
  std::printf("  mail window   (450,120):  %s\n", describe(view, {450, 120}));
  std::printf("  mail-over-editor (300,150): %s\n", describe(view, {300, 150}));
  std::printf("  desktop background (620,420): %s\n", describe(view, {620, 420}));
}

}  // namespace

int main() {
  AppHostOptions host_opts;
  host_opts.screen_width = 640;
  host_opts.screen_height = 480;
  host_opts.frame_interval_us = sim_ms(100);
  SharingSession session(host_opts);
  AppHost& host = session.host();

  // The "editor" process: a parent window and a child dialog, same group —
  // "Applications often consist of a changing set of related windows ...
  // usually associated with the same process."
  const WindowId editor = host.wm().create({40, 60, 320, 280}, /*group=*/1);
  const WindowId dialog = host.wm().create({180, 220, 160, 100}, /*group=*/1);
  // The private mail client, overlapping the editor from above.
  const WindowId mail = host.wm().create({260, 90, 300, 200}, /*group=*/2);
  host.capturer().attach(editor, std::make_unique<DocumentApp>(320, 280, 1));
  host.capturer().attach(dialog, std::make_unique<PaintApp>(160, 100, 2));
  host.capturer().attach(mail, std::make_unique<TerminalApp>(300, 200, 3));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 4 * 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);
  host.start();

  // Phase 1: desktop sharing (the default) — everything is visible.
  session.run_for(sim_sec(2));
  probe("phase 1: desktop sharing (all windows shared)",
        conn.participant->screen());
  std::printf("  participant window records: %zu\n",
              conn.participant->windows().size());

  // Phase 2: application sharing — only the editor's group is exported.
  host.wm().share_group(1);
  session.run_for(sim_sec(2));
  probe("phase 2: application sharing (group 1 = editor + child dialog)",
        conn.participant->screen());
  std::printf("  participant window records: %zu (mail window closed per "
              "WindowManagerInfo)\n",
              conn.participant->windows().size());

  // Phase 3: the mail client is raised above the editor on the AH. Its
  // pixels must still never reach the participant; the covered part of the
  // editor blanks instead.
  host.wm().raise(mail);
  host.wm().move(mail, {120, 120});
  session.run_for(sim_sec(2));
  probe("phase 3: private window raised over the shared editor",
        conn.participant->screen());

  host.stop();
  session.run_for(sim_sec(1));

  std::printf("\nAH sent %llu region updates, %llu window-info messages.\n",
              static_cast<unsigned long long>(host.stats().region_updates_sent),
              static_cast<unsigned long long>(host.stats().wmi_sent));
  return 0;
}
