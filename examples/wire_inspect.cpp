// Wire-format inspector: prints the hex bytes and decoded form of each
// protocol message type — a debugging aid and a live illustration of the
// draft's Figures 7-19. With arguments, decodes hex from the command line:
//
//   ./build/examples/wire_inspect                # tour of every message
//   ./build/examples/wire_inspect 02 81 00 01 …  # decode your own bytes
#include <cstdio>
#include <string>

#include "bfcp/bfcp_message.hpp"
#include "hip/messages.hpp"
#include "remoting/message.hpp"
#include "rtp/rtcp.hpp"
#include "util/bytes.hpp"

using namespace ads;

namespace {

void dump(const char* title, BytesView data) {
  std::printf("\n%s (%zu bytes)\n  %s\n", title, data.size(),
              hex_dump(data).c_str());
}

void decode_remoting(BytesView data, bool marker) {
  RemotingDemux demux;
  auto msg = demux.feed(data, marker);
  if (!msg.ok()) {
    std::printf("  -> parse error: %s\n", to_string(msg.error()));
    return;
  }
  if (!msg->has_value()) {
    std::printf("  -> fragment accepted (message not complete yet)\n");
    return;
  }
  std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, WindowManagerInfo>) {
          std::printf("  -> WindowManagerInfo, %zu records (bottom-first):\n",
                      m.records.size());
          for (const auto& r : m.records) {
            std::printf("     window %u group %u at (%u,%u) %ux%u\n", r.window_id,
                        r.group_id, r.left, r.top, r.width, r.height);
          }
        } else if constexpr (std::is_same_v<T, RegionUpdate>) {
          std::printf("  -> RegionUpdate window %u pt %u at (%u,%u), %zu content "
                      "bytes\n",
                      m.window_id, m.content_pt, m.left, m.top, m.content.size());
        } else if constexpr (std::is_same_v<T, MoveRectangle>) {
          std::printf("  -> MoveRectangle window %u: (%u,%u) %ux%u -> (%u,%u)\n",
                      m.window_id, m.source_left, m.source_top, m.width, m.height,
                      m.dest_left, m.dest_top);
        } else if constexpr (std::is_same_v<T, MousePointerInfo>) {
          std::printf("  -> MousePointerInfo window %u at (%u,%u), icon: %zu bytes\n",
                      m.window_id, m.left, m.top, m.icon.size());
        }
      },
      **msg);
}

void decode_any(BytesView data) {
  if (data.size() >= 1 && (data[0] >> 5) == 1) {
    auto bfcp = BfcpMessage::parse(data);
    if (bfcp.ok()) {
      std::printf("  -> BFCP primitive %d user %u%s\n",
                  static_cast<int>(bfcp->primitive), bfcp->user_id,
                  bfcp->request_status
                      ? (std::string(" status ") + to_string(*bfcp->request_status))
                            .c_str()
                      : "");
      return;
    }
  }
  if (data.size() >= 2 && data[1] >= 200 && data[1] <= 207) {
    auto rtcp = parse_rtcp(data);
    if (rtcp.ok()) {
      std::printf("  -> RTCP packet (type index %zu)\n", rtcp->index());
      return;
    }
  }
  auto hip = parse_hip(data);
  if (hip.ok()) {
    std::printf("  -> HIP %s (window %u)\n", to_string(hip_type(*hip)),
                hip_window_id(*hip));
    return;
  }
  decode_remoting(data, /*marker=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    Bytes data;
    for (int i = 1; i < argc; ++i) {
      data.push_back(static_cast<std::uint8_t>(std::stoul(argv[i], nullptr, 16)));
    }
    dump("command-line bytes", data);
    decode_any(data);
    return 0;
  }

  // Figure 9's WindowManagerInfo.
  WindowManagerInfo wmi;
  wmi.records = {{1, 1, 220, 150, 350, 450},
                 {2, 2, 850, 320, 160, 150},
                 {3, 1, 450, 400, 350, 300}};
  const Bytes wmi_bytes = wmi.serialize();
  dump("WindowManagerInfo (draft Figure 9)", wmi_bytes);
  decode_remoting(wmi_bytes, false);

  // A small RegionUpdate (Figure 11 shape).
  RegionUpdate ru;
  ru.window_id = 1;
  ru.content_pt = 98;
  ru.left = 220;
  ru.top = 150;
  ru.content = {0xDE, 0xAD, 0xBE, 0xEF};
  auto frags = fragment_region_update(ru, 1200);
  dump("RegionUpdate (Figure 11, non-fragmented)", frags[0].payload);
  decode_remoting(frags[0].payload, frags[0].marker);

  // MoveRectangle (Figure 12).
  MoveRectangle mr{3, 100, 200, 50, 60, 100, 150};
  dump("MoveRectangle (Figure 12)", mr.serialize());
  decode_remoting(mr.serialize(), false);

  // Each HIP message (Figures 13-19).
  const HipMessage hips[] = {
      MousePressed{1, MouseButton::kLeft, 300, 400},
      MouseReleased{1, MouseButton::kLeft, 300, 400},
      MouseMoved{1, 310, 400},
      MouseWheelMoved{1, 310, 400, -120},
      KeyPressed{1, vk::kF1},
      KeyReleased{1, vk::kF1},
      KeyTyped{1, "hi"},
  };
  for (const HipMessage& msg : hips) {
    const Bytes bytes = serialize_hip(msg);
    char title[64];
    std::snprintf(title, sizeof(title), "HIP %s", to_string(hip_type(msg)));
    dump(title, bytes);
    decode_any(bytes);
  }

  // RTCP feedback.
  PictureLossIndication pli;
  pli.sender_ssrc = 0x1111;
  pli.media_ssrc = 0x2222;
  dump("RTCP PLI (RFC 4585 6.3.1)", pli.serialize());
  decode_any(pli.serialize());
  const auto nack = GenericNack::for_sequences(0x1111, 0x2222, {100, 101, 103});
  dump("RTCP Generic NACK (RFC 4585 6.2.1)", nack.serialize());
  decode_any(nack.serialize());

  // BFCP floor request.
  BfcpMessage req;
  req.primitive = BfcpPrimitive::kFloorRequest;
  req.conference_id = 1;
  req.transaction_id = 7;
  req.user_id = 42;
  req.floor_id = 0;
  dump("BFCP FloorRequest (RFC 4582 subset)", req.serialize());
  decode_any(req.serialize());
  return 0;
}
