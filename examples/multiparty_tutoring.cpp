// Multiparty tutoring session: the draft's collaborative scenario.
//
// A tutor's AH shares a terminal ("the exercise") with three students over
// mixed transports (two TCP, one UDP — §4.2 allows both in one session).
// Students take turns driving via BFCP floor control (Appendix A): floor
// requests queue FIFO, the AH forwards only the holder's input events, and
// the §4.1 coordinate check drops clicks outside the shared window.
//
// Build & run:  ./build/examples/multiparty_tutoring
#include <cstdio>
#include <string>

#include "core/session.hpp"
#include "image/metrics.hpp"

using namespace ads;

int main() {
  AppHostOptions host_opts;
  host_opts.screen_width = 800;
  host_opts.screen_height = 600;
  host_opts.frame_interval_us = sim_ms(100);
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId exercise = host.wm().create({100, 80, 480, 360}, 1);
  host.capturer().attach(exercise, std::make_unique<TerminalApp>(480, 360, 7));

  // Every accepted HIP event is "regenerated at the OS" — here we log it.
  std::vector<std::string> injected;
  host.set_input_sink([&](ParticipantId from, const HipMessage& msg) {
    char line[128];
    std::snprintf(line, sizeof(line), "participant %u -> %s", from,
                  to_string(hip_type(msg)));
    injected.emplace_back(line);
  });

  TcpLinkConfig tcp;
  tcp.down.bandwidth_bps = 20'000'000;
  tcp.down.send_buffer_bytes = 1024 * 1024;
  UdpLinkConfig udp;
  udp.down.delay_us = 30'000;
  udp.down.bandwidth_bps = 20'000'000;
  udp.up.delay_us = 30'000;

  auto& alice = session.add_tcp_participant({}, tcp);
  auto& bob = session.add_tcp_participant({}, tcp);
  auto& carol = session.add_udp_participant({}, udp);
  carol.participant->join();  // UDP participants announce via PLI (§4.3)

  host.start();
  session.run_for(sim_ms(500));

  std::puts("-- Alice requests the floor and types --");
  alice.participant->request_floor();
  session.run_for(sim_ms(200));
  std::printf("alice has floor: %s (HID status %d)\n",
              alice.participant->has_floor() ? "yes" : "no",
              static_cast<int>(alice.participant->hid_status()));
  alice.participant->mouse_move(200, 200);
  alice.participant->mouse_press(200, 200, MouseButton::kLeft);
  alice.participant->mouse_release(200, 200, MouseButton::kLeft);
  alice.participant->key_type("print(\"hello\")");
  alice.participant->key_press(vk::kEnter);
  alice.participant->key_release(vk::kEnter);
  session.run_for(sim_ms(300));

  std::puts("-- Bob and Carol queue for the floor (FIFO) --");
  bob.participant->request_floor();
  carol.participant->request_floor();
  session.run_for(sim_ms(300));
  std::printf("bob pending: %s, carol pending: %s\n",
              bob.participant->floor_pending() ? "yes" : "no",
              carol.participant->floor_pending() ? "yes" : "no");

  std::puts("-- Bob tries to type without the floor: rejected --");
  bob.participant->key_type("rm -rf /");
  session.run_for(sim_ms(300));

  std::puts("-- Alice releases; Bob is granted; clicks outside are dropped --");
  alice.participant->release_floor();
  session.run_for(sim_ms(300));
  std::printf("bob has floor: %s\n", bob.participant->has_floor() ? "yes" : "no");
  bob.participant->mouse_move(10, 10);  // outside the shared window (§4.1)
  bob.participant->mouse_move(300, 300);
  session.run_for(sim_ms(300));

  std::puts("-- Tutor blocks the mouse while a dialog covers the app --");
  host.floor().set_hid_status(HidStatus::kKeyboardAllowed);
  session.run_for(sim_ms(200));
  bob.participant->mouse_move(300, 300);  // rejected
  bob.participant->key_type("still typing is fine");
  session.run_for(sim_ms(300));
  host.floor().set_hid_status(HidStatus::kAllAllowed);

  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  std::puts("\n-- injected events (in order) --");
  for (const std::string& line : injected) std::printf("  %s\n", line.c_str());

  std::puts("\n-- gate statistics --");
  std::printf("accepted: %llu, rejected (no floor/HID): %llu, rejected (coords): %llu\n",
              static_cast<unsigned long long>(host.stats().hip_events_accepted),
              static_cast<unsigned long long>(host.stats().hip_events_rejected_floor),
              static_cast<unsigned long long>(host.stats().hip_events_rejected_coords));

  std::puts("\n-- convergence --");
  const Image& truth = host.capturer().last_frame();
  for (const auto& conn : session.connections()) {
    const Image replica =
        conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
    std::printf("participant %u: %lld differing pixels, %llu region updates\n",
                conn->id, static_cast<long long>(diff_pixel_count(truth, replica)),
                static_cast<unsigned long long>(conn->participant->stats().region_updates));
  }
  return 0;
}
