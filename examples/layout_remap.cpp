// Layout remapping: the draft's Figures 2-5 scenario, end to end.
//
// An AH shares the three windows of Figure 2 (A, B, C; A and B grouped).
// Three participants connect and display the same stream with different
// local layouts:
//   participant 1 — original coordinates (Figure 3)
//   participant 2 — shifted to the origin   (Figure 4)
//   participant 3 — refitted to a 640x480 screen (Figure 5)
// The example prints each placement table and renders small ASCII views so
// the z-order preservation is visible.
//
// Build & run:  ./build/examples/layout_remap
#include <cstdio>

#include "core/participant_layout.hpp"
#include "core/session.hpp"

using namespace ads;

namespace {

/// ASCII thumbnail: sample the view on a coarse grid; windows get letters.
void print_thumbnail(const std::vector<PlacedWindow>& placement, std::int64_t width,
                     std::int64_t height) {
  const std::int64_t cols = 64;
  const std::int64_t rows = 20;
  for (std::int64_t row = 0; row < rows; ++row) {
    std::putchar(' ');
    for (std::int64_t col = 0; col < cols; ++col) {
      const Point p{col * width / cols, row * height / rows};
      char c = '.';
      // Later entries are higher in the z-order, so they overwrite. The
      // Figure 2 names by creation order are A, C, B.
      static constexpr char kNames[] = {'A', 'C', 'B'};
      for (const PlacedWindow& w : placement) {
        if (w.placed.contains(p) && w.window_id >= 1 && w.window_id <= 3) {
          c = kNames[w.window_id - 1];
        }
      }
      std::putchar(c);
    }
    std::putchar('\n');
  }
}

void print_placement(const char* title, const std::vector<PlacedWindow>& placement,
                     std::int64_t width, std::int64_t height) {
  std::printf("\n%s (%lldx%lld)\n", title, static_cast<long long>(width),
              static_cast<long long>(height));
  for (const PlacedWindow& w : placement) {
    std::printf("  window %u (group %u): AH %s -> local %s\n", w.window_id, w.group_id,
                to_string(w.source).c_str(), to_string(w.placed).c_str());
  }
  print_thumbnail(placement, width, height);
}

}  // namespace

int main() {
  // The AH shares Figure 2's three windows on its 1280x1024 desktop.
  AppHostOptions host_opts;
  host_opts.screen_width = 1280;
  host_opts.screen_height = 1024;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId a = host.wm().create({220, 150, 350, 450}, 1);  // A (bottom)
  const WindowId c = host.wm().create({850, 320, 160, 150}, 2);  // C
  const WindowId b = host.wm().create({450, 400, 350, 300}, 1);  // B (top)
  host.capturer().attach(a, std::make_unique<DocumentApp>(350, 450, 1));
  host.capturer().attach(c, std::make_unique<SlideshowApp>(160, 150, 2));
  host.capturer().attach(b, std::make_unique<TerminalApp>(350, 300, 3));

  // One participant is enough to obtain the WindowManagerInfo records; the
  // three layout policies are local decisions (§4.1: "A participant can
  // display the windows in their original coordinates or it can display
  // them in different coordinates").
  TcpLinkConfig link;
  link.down.bandwidth_bps = 50'000'000;
  link.down.send_buffer_bytes = 4 * 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);
  host.start();
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  // Recover the records in stacking order from the participant's state.
  std::vector<WindowRecord> records;
  // The participant's map is keyed by id; rebuild bottom-first using the
  // AH's z-order (ids were created in stacking order here).
  for (const Window& w : host.wm().stacking_order()) {
    records.push_back(conn.participant->windows().at(w.id));
  }

  std::printf("AH shares %zu windows (Figure 2).\n", records.size());
  print_placement("participant 1: original coordinates (Figure 3)",
                  layout_windows(records, LayoutPolicy::kOriginal, 1024, 768), 1280,
                  1024);
  print_placement("participant 2: shifted coordinates (Figure 4)",
                  layout_windows(records, LayoutPolicy::kShift, 1280, 1024), 1280,
                  1024);
  print_placement("participant 3: refit to small screen (Figure 5)",
                  layout_windows(records, LayoutPolicy::kRefit, 640, 480), 640, 480);

  // Render participant 3's actual pixels from the replica to prove the
  // remap is more than bookkeeping.
  const auto placement = layout_windows(records, LayoutPolicy::kRefit, 640, 480);
  const Image view = render_layout(conn.participant->screen(), placement, 640, 480);
  std::printf("\nparticipant 3 rendered view: %lldx%lld, non-black pixels: ",
              static_cast<long long>(view.width()), static_cast<long long>(view.height()));
  std::int64_t lit = 0;
  for (const Pixel& p : view.pixels()) {
    if (!(p == kBlack)) ++lit;
  }
  std::printf("%lld\n", static_cast<long long>(lit));
  return 0;
}
