// Quickstart: share a desktop with one TCP participant.
//
// An application host (AH) runs two scripted applications — a terminal and
// a slideshow — and streams its screen over RFC 4571-framed RTP to a single
// participant, exactly the §4.4 deployment of the draft. At the end we
// verify the participant's replica is pixel-identical to the AH's exported
// view and print the session's protocol statistics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/session.hpp"
#include "image/metrics.hpp"

using namespace ads;

int main() {
  // 1. Create the session: an AH with a 640x480 desktop, capturing at
  //    10 fps and encoding updates as PNG (the mandatory codec).
  AppHostOptions host_opts;
  host_opts.screen_width = 640;
  host_opts.screen_height = 480;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.codec = ContentPt::kPng;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  // 2. Open two application windows on the AH and give them content.
  const WindowId term = host.wm().create({20, 40, 320, 240}, /*group=*/1);
  const WindowId deck = host.wm().create({360, 60, 240, 180}, /*group=*/2);
  host.capturer().attach(term, std::make_unique<TerminalApp>(320, 240, /*seed=*/1));
  host.capturer().attach(deck, std::make_unique<SlideshowApp>(240, 180, /*seed=*/2));

  // 3. Print the SDP offer a real deployment would signal via SIP (§10).
  std::puts("---- SDP offer (draft §10.3 shape) ----");
  std::fputs(host.sdp_offer().to_string().c_str(), stdout);

  // 4. Connect a participant over a simulated 20 Mbit/s, 20 ms TCP link.
  TcpLinkConfig link;
  link.down.bandwidth_bps = 20'000'000;
  link.down.delay_us = 20'000;
  link.down.send_buffer_bytes = 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);

  // 5. Run ten simulated seconds of sharing.
  host.start();
  session.run_for(sim_sec(10));
  host.stop();
  session.run_for(sim_sec(1));  // drain the pipe

  // 6. Verify convergence and report.
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  const std::int64_t diff = diff_pixel_count(truth, replica);

  std::puts("\n---- session report ----");
  std::printf("frames captured:        %llu\n",
              static_cast<unsigned long long>(host.stats().frames_captured));
  std::printf("region updates sent:    %llu\n",
              static_cast<unsigned long long>(host.stats().region_updates_sent));
  std::printf("move rectangles sent:   %llu\n",
              static_cast<unsigned long long>(host.stats().move_rectangles_sent));
  std::printf("window-info msgs sent:  %llu\n",
              static_cast<unsigned long long>(host.stats().wmi_sent));
  std::printf("RTP packets sent:       %llu\n",
              static_cast<unsigned long long>(host.stats().rtp_packets_sent));
  std::printf("bytes sent:             %llu (%.1f kB/s)\n",
              static_cast<unsigned long long>(host.stats().bytes_sent),
              static_cast<double>(host.stats().bytes_sent) / 10.0 / 1000.0);
  std::printf("participant windows:    %zu\n", conn.participant->windows().size());
  std::printf("participant updates:    %llu\n",
              static_cast<unsigned long long>(conn.participant->stats().region_updates));
  std::printf("replica divergence:     %lld pixels %s\n",
              static_cast<long long>(diff), diff == 0 ? "(exact match)" : "(MISMATCH!)");
  return diff == 0 ? 0 : 1;
}
