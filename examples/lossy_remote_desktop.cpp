// Remote desktop over a lossy UDP path: the §4.3/§5.3 recovery machinery.
//
// One participant views a busy desktop over a WAN-like UDP link (2% loss,
// jitter). The run goes through three phases:
//   1. clean start — PLI join handshake, full refresh;
//   2. loss burst  — 15% loss; Generic NACKs repair most gaps via AH
//      retransmissions (SDP advertised retransmissions=yes);
//   3. healed tail — verify the replica converges exactly.
// A second run disables retransmissions to show the PLI-only fallback.
//
// Build & run:  ./build/examples/lossy_remote_desktop
#include <cstdio>

#include "core/session.hpp"
#include "image/metrics.hpp"

using namespace ads;

namespace {

struct RunResult {
  std::uint64_t nacks = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t plis = 0;
  std::uint64_t gaps = 0;
  std::uint64_t bytes = 0;
  std::int64_t final_diff = 0;
};

RunResult run(bool retransmissions) {
  AppHostOptions host_opts;
  host_opts.screen_width = 640;
  host_opts.screen_height = 480;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.retransmissions = retransmissions;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId editor = host.wm().create({20, 20, 400, 300}, 1);
  const WindowId movie = host.wm().create({440, 40, 160, 120}, 2);
  host.capturer().attach(editor, std::make_unique<TerminalApp>(400, 300, 5));
  host.capturer().attach(movie, std::make_unique<VideoApp>(160, 120, 6));
  host.options();

  UdpLinkConfig link;
  link.down.delay_us = 40'000;  // 40 ms one-way
  link.down.jitter_us = 10'000;
  link.down.loss = 0.02;
  link.down.bandwidth_bps = 30'000'000;
  link.down.seed = 11;
  link.up.delay_us = 40'000;

  ParticipantOptions popts;
  popts.send_nacks = retransmissions;  // per the SDP fmtp parameter
  auto& conn = session.add_udp_participant(popts, link);
  conn.participant->join();
  host.start();

  session.run_for(sim_sec(3));          // phase 1: mild loss
  conn.down_udp->set_loss(0.15);        // phase 2: loss burst
  session.run_for(sim_sec(4));
  conn.down_udp->set_loss(0.0);         // phase 3: healed
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  RunResult r;
  r.nacks = conn.participant->stats().nacks_sent;
  r.retransmissions = host.stats().retransmissions_sent;
  r.plis = conn.participant->stats().plis_sent;
  r.gaps = conn.participant->stats().gaps_skipped;
  r.bytes = host.stats().bytes_sent;
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  r.final_diff = diff_pixel_count(truth, replica);
  return r;
}

void report(const char* title, const RunResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  NACKs sent by participant:   %llu\n",
              static_cast<unsigned long long>(r.nacks));
  std::printf("  retransmissions by AH:       %llu\n",
              static_cast<unsigned long long>(r.retransmissions));
  std::printf("  PLIs (join + recoveries):    %llu\n",
              static_cast<unsigned long long>(r.plis));
  std::printf("  gaps abandoned:              %llu\n",
              static_cast<unsigned long long>(r.gaps));
  std::printf("  AH bytes sent:               %llu\n",
              static_cast<unsigned long long>(r.bytes));
  std::printf("  final divergence:            %lld pixels %s\n",
              static_cast<long long>(r.final_diff),
              r.final_diff == 0 ? "(converged)" : "(NOT converged)");
}

}  // namespace

int main() {
  std::puts("Remote desktop across a lossy WAN (3s @2% loss, 4s @15%, 2s clean)");
  const RunResult with_rtx = run(/*retransmissions=*/true);
  report("retransmissions=yes (NACK repair, §5.3.2)", with_rtx);
  const RunResult without_rtx = run(/*retransmissions=*/false);
  report("retransmissions=no (PLI-only recovery, §5.3.1)", without_rtx);

  std::puts("\nNACK repair localises recovery; without it the participant "
            "falls back to\nfull-screen PLI refreshes, costing more AH bytes "
            "during loss episodes.");
  return (with_rtx.final_diff == 0 && without_rtx.final_diff == 0) ? 0 : 1;
}
