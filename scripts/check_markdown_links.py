#!/usr/bin/env python3
"""Check that relative markdown links in the repo's doc pages resolve.

Scans every *.md file in the repo root and docs/ for inline links
[text](target) and fails if a relative target (optionally with a #anchor)
does not exist on disk. External links (http/https/mailto) are ignored —
this is an offline check that runs with plain python3, no dependencies.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    pages = sorted(repo.glob("*.md")) + sorted((repo / "docs").glob("*.md"))
    errors = []
    for page in pages:
        text = page.read_text(encoding="utf-8")
        # Strip fenced code blocks: diagrams routinely contain (parens).
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (page.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{page.relative_to(repo)}: broken link -> {target}")
    for err in errors:
        print(err)
    checked = len(pages)
    if errors:
        print(f"FAIL: {len(errors)} broken link(s) across {checked} page(s)")
        return 1
    print(f"OK: links resolve across {checked} page(s)")
    return 0

if __name__ == "__main__":
    sys.exit(main())
