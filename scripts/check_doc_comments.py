#!/usr/bin/env python3
"""Enforce one-line doc comments on public headers.

Every public type (struct / class / enum at namespace scope) and every
public member function declared in the checked headers must be preceded
by a comment line (/// preferred, // accepted). This is a deliberately
simple line-based heuristic, not a C++ parser: it tracks brace depth and
access specifiers, and flags declarations whose preceding non-blank line
is neither a comment nor part of the same declaration.

Runs with plain python3, no dependencies; CI pairs it with a Doxygen
warnings-as-errors build for the cases a heuristic cannot judge.
"""
import re
import sys
from pathlib import Path

CHECKED_DIRS = ["src/core", "src/net", "src/relay", "src/snapshot", "src/transcode"]

TYPE_RE = re.compile(r"^(template\s*<[^>]*>\s*)?(struct|class|enum(\s+class)?)\s+(\w+)")
# A function-ish member: optionally-qualified return type, name, open paren.
FUNC_RE = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?"
    r"(?:(?:virtual|static|constexpr|explicit|inline|friend|\[\[nodiscard\]\])\s+)*"
    r"[\w:<>,&*\s~]+?\b([A-Za-z_]\w*)\s*\("
)
ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:")

def is_comment(line: str) -> bool:
    s = line.strip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")

def check_header(path: Path, repo: Path):
    errors = []
    lines = path.read_text(encoding="utf-8").splitlines()
    depth = 0                # brace depth
    class_depth = []         # depths at which a class/struct body opened
    access = []              # current access per open class body
    prev_code = ""           # last non-blank non-comment line (continuations)
    prev_line = ""           # last non-blank line of any kind (doc check)
    for idx, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        in_class = bool(class_depth) and depth == class_depth[-1]
        at_namespace_scope = not class_depth and depth <= 1

        m = ACCESS_RE.match(line)
        if m and in_class:
            access[-1] = m.group(1)

        documented = is_comment(prev_line) or "///<" in raw
        # Continuation of a multi-line declaration: the previous code line
        # did not finish (no ; { or }) — never flag these.
        continuation = prev_code and not prev_code.rstrip().endswith((";", "{", "}", ">", ":"))

        tm = TYPE_RE.match(line)
        if tm and (at_namespace_scope or (in_class and access[-1] == "public")):
            if not documented and not continuation:
                errors.append(f"{path.relative_to(repo)}:{idx + 1}: "
                              f"undocumented type '{tm.group(4)}'")
        elif in_class and access[-1] == "public" and not continuation \
                and not line.startswith("~"):
            fm = FUNC_RE.match(line)
            if fm and not documented:
                name = fm.group(1)
                # Skip obvious non-declarations and trivial boilerplate.
                if name not in {"if", "for", "while", "switch", "return",
                                "sizeof", "static_assert", "assert", "defined"}:
                    errors.append(f"{path.relative_to(repo)}:{idx + 1}: "
                                  f"undocumented public function '{name}'")

        # Update brace depth / class tracking after inspecting the line.
        opens = line.count("{") - line.count("}")
        if TYPE_RE.match(line) and line.endswith("{") and "enum" not in line:
            class_depth.append(depth + 1)
            access.append("public" if line.startswith("struct") else "private")
        depth += opens
        while class_depth and depth < class_depth[-1]:
            class_depth.pop()
            access.pop()
        if not is_comment(line):
            prev_code = line
        prev_line = line
    return errors

def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    headers = []
    for d in CHECKED_DIRS:
        headers.extend(sorted((repo / d).glob("*.hpp")))
    all_errors = []
    for h in headers:
        all_errors.extend(check_header(h, repo))
    for err in all_errors:
        print(err)
    if all_errors:
        print(f"FAIL: {len(all_errors)} undocumented declaration(s) "
              f"in {len(headers)} header(s)")
        return 1
    print(f"OK: {len(headers)} header(s) documented")
    return 0

if __name__ == "__main__":
    sys.exit(main())
