// Session wiring: constructs the AH, participants and the simulated
// network channels between them, matching the draft's deployment shapes —
// "The AH can share an application to TCP participants, UDP participants,
// and several multicast addresses in the same sharing session" (§4.2).
// Multicast is modelled as one encode pass fanned out over per-receiver
// channels (the per-link loss/delay still differs per receiver).
#pragma once

#include <memory>
#include <vector>

#include "core/app_host.hpp"
#include "core/participant.hpp"
#include "net/multicast.hpp"
#include "net/tcp_channel.hpp"
#include "net/udp_channel.hpp"
#include "relay/relay.hpp"

namespace ads {

/// The two simulated UDP channels of one participant link.
struct UdpLinkConfig {
  UdpChannelOptions down;  ///< AH → participant (remoting)
  UdpChannelOptions up;    ///< participant → AH (RTCP, HIP, BFCP)
};

/// The two simulated TCP channels of one participant link.
struct TcpLinkConfig {
  TcpChannelOptions down;  ///< AH → participant (remoting)
  TcpChannelOptions up;    ///< participant → AH (RTCP, HIP, BFCP)
};

/// Owns one AH, its participants and the simulated channels between them.
class SharingSession {
 public:
  /// Construct the session: one event loop, one AH, no participants yet.
  explicit SharingSession(AppHostOptions host_opts = {});
  ~SharingSession();

  /// The virtual clock everything in this session runs on.
  EventLoop& loop() { return loop_; }
  /// The Application Host this session wires participants to.
  AppHost& host() { return host_; }
  /// The session-wide telemetry sink (the AH's, shared by every channel the
  /// session creates). `telemetry().snapshot()` sees metrics from all
  /// layers: ah.*, encoder.*, cache.*, rtx.*, net.*, participant.*.
  telemetry::Telemetry& telemetry() { return host_.telemetry(); }

  /// One participant plus the channels wiring it to the AH.
  struct Connection {
    ParticipantId id = 0;
    std::unique_ptr<Participant> participant;
    // Exactly one pair is non-null depending on the transport.
    std::unique_ptr<UdpChannel> down_udp;
    std::unique_ptr<UdpChannel> up_udp;
    std::unique_ptr<TcpChannel> down_tcp;
    std::unique_ptr<TcpChannel> up_tcp;
    Bytes up_carry;  ///< partially-written uplink frame (TCP)
  };

  /// Create a UDP participant wired through lossy channels. The
  /// participant has not joined yet — call join() on it (or use
  /// add_udp_participant_joined).
  Connection& add_udp_participant(ParticipantOptions opts = {},
                                  UdpLinkConfig link = {});
  /// Create a TCP participant wired through RFC 4571-framed channels;
  /// the AH pushes the §4.4 late-join state immediately.
  Connection& add_tcp_participant(ParticipantOptions opts = {},
                                  TcpLinkConfig link = {});

  /// Apply the output geometry a participant requested in its SDP answer
  /// (the a=geometry token on its accepted remoting m-line,
  /// docs/TRANSCODE.md) to its AH-side cohort operating point. Identity
  /// when the answer carries no token. Returns false on a malformed token
  /// or a geometry the AH rejects; the participant then stays at its
  /// previous geometry.
  bool apply_answer_geometry(Connection& c, const SessionDescription& answer);

  /// Sever a TCP participant's links (both directions) as a hard connection
  /// drop: in-flight data is lost, later writes are refused. The connection
  /// stays in the session for a later reconnect_tcp().
  void drop_tcp(Connection& c);

  /// Re-establish a dropped (or evicted) TCP participant: fresh channels,
  /// the AH re-registers the peer under its old id (BFCP/HIP identity and
  /// floor state survive) and resyncs it through the §4.4 late-join path
  /// (WMI + full refresh); the participant resets its stream/loss state via
  /// on_transport_reset(). Counted in recovery.reconnects.
  void reconnect_tcp(Connection& c, TcpLinkConfig link = {});

  /// Successful reconnect_tcp() calls so far.
  std::uint64_t reconnects() const { return reconnects_; }
  /// Links severed by drop_tcp() or eviction so far.
  std::uint64_t dropped_links() const { return dropped_links_; }
  /// Connections torn down by the AH liveness sweep so far.
  std::uint64_t evicted_connections() const { return evicted_connections_; }

  /// Every connection created, in creation order (including dropped ones).
  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return connections_;
  }

  /// One multicast session: the AH encodes and sends once; the group
  /// replicates to every member over that member's own last hop.
  struct MulticastMember {
    ParticipantId id = 0;
    std::unique_ptr<Participant> participant;
    std::unique_ptr<UdpChannel> up;
  };
  /// One multicast group: a shared stream identity plus its members.
  struct MulticastSession {
    ParticipantId group_id = 0;  ///< the AH-side stream identity
    std::unique_ptr<MulticastGroup> group;
    std::vector<std::unique_ptr<MulticastMember>> members;
  };

  /// Create an (initially empty) multicast session on the AH.
  MulticastSession& add_multicast_session();

  /// Join a member to a multicast session. `down` describes the member's
  /// last-hop from the multicast tree; `up` its unicast feedback path.
  MulticastMember& add_multicast_member(MulticastSession& mc,
                                        ParticipantOptions opts = {},
                                        UdpChannelOptions down = {},
                                        UdpChannelOptions up = {});

  /// Every multicast session created, in creation order.
  const std::vector<std::unique_ptr<MulticastSession>>& multicast_sessions() const {
    return multicast_;
  }

  /// Deepest relay cascade the session will wire (sanity bound; the paper's
  /// deployment shapes never need more than a few levels).
  static constexpr int kMaxRelayDepth = 8;

  /// One relay node in the cascade plus the channels of its upstream link.
  /// The handle's address is stable for the session's lifetime and every
  /// closure routes through it (never through raw node/channel pointers),
  /// so a crash_relay() that destroys the node mid-flight leaves no
  /// dangling capture behind.
  struct RelayHandle {
    std::unique_ptr<relay::RelayNode> node;
    std::unique_ptr<UdpChannel> down;  ///< upstream → relay (media + SRs)
    std::unique_ptr<UdpChannel> up;    ///< relay → upstream (RTCP/HIP/BFCP)
    ParticipantId upstream_id = 0;     ///< AH-side id (root relays only)
    RelayHandle* parent = nullptr;     ///< null for a root relay
    relay::LegId leg = 0;              ///< this relay's leg on its parent
    int depth = 1;                     ///< 1 = directly below the AH
    RelayHandle* backup = nullptr;     ///< preferred adopter on failover
    bool alive = true;                 ///< false between crash and restart
    relay::RelayOptions opts;          ///< resolved options (cold restart)
    UdpLinkConfig link;                ///< resolved link config (cold restart)
    relay::LegConfig leg_cfg;          ///< leg policy on the parent
    relay::RelayNode::Stats retired;   ///< crash-time counters (restart fold)
    std::uint64_t retired_rtx_hits = 0;
    std::uint64_t retired_rtx_misses = 0;
    std::uint64_t retired_rtx_evictions = 0;
  };

  /// One viewer hanging off a relay leg (receives the relay's forwarded
  /// stream; its feedback terminates at that relay).
  struct RelayViewer {
    relay::LegId leg = 0;
    RelayHandle* relay = nullptr;
    std::unique_ptr<Participant> participant;
    std::unique_ptr<UdpChannel> down;  ///< relay → viewer
    std::unique_ptr<UdpChannel> up;    ///< viewer → relay
    relay::LegConfig leg_cfg;          ///< leg policy (restart re-attach)
  };

  /// Create a root relay fed by the AH: the AH sees one more UDP
  /// participant; the relay re-fans that stream to its own legs.
  RelayHandle& add_relay(relay::RelayOptions opts = {}, UdpLinkConfig link = {});
  /// Cascade a child relay below `parent` (one parent leg feeds the whole
  /// child subtree). Throws std::invalid_argument past kMaxRelayDepth.
  RelayHandle& add_relay_child(RelayHandle& parent,
                               relay::RelayOptions opts = {},
                               UdpLinkConfig link = {},
                               relay::LegConfig leg = {});
  /// Attach a viewer to one of `relay`'s legs.
  RelayViewer& add_relay_viewer(RelayHandle& relay,
                                ParticipantOptions opts = {},
                                UdpLinkConfig link = {},
                                relay::LegConfig leg = {});

  /// Every relay created, in creation order (roots and children).
  const std::vector<std::unique_ptr<RelayHandle>>& relays() const {
    return relays_;
  }
  /// Every relay viewer created, in creation order.
  const std::vector<std::unique_ptr<RelayViewer>>& relay_viewers() const {
    return relay_viewers_;
  }

  // ----- relay self-healing (crash, failover, restart) -----------------

  /// Configure `r`'s failover target. When its node declares the upstream
  /// dead the session re-parents it under `backup`; with no usable backup
  /// (dead, the dead parent itself, inside `r`'s own subtree, or one whose
  /// adoption would exceed kMaxRelayDepth) the nearest live ancestor above
  /// the dead parent adopts the subtree, falling back to the AH itself.
  void set_relay_backup(RelayHandle& r, RelayHandle* backup) {
    r.backup = backup;
  }

  /// Re-parent `r` (and implicitly its whole subtree) under `new_parent`
  /// (nullptr = directly under the AH) and resync it via the §4.4 path
  /// (RelayNode::adopt_upstream). The old parent's leg is withdrawn when
  /// that parent is still alive. Counted in recovery.relay_failovers when
  /// reached through the automatic path.
  void reparent_relay(RelayHandle& r, RelayHandle* new_parent);

  /// Kill a relay cold: node and channels destroyed, cache and in-flight
  /// traffic lost, its leg (or AH participant slot) withdrawn upstream.
  /// Children notice only through their own liveness watchdogs.
  void crash_relay(RelayHandle& r);

  /// Cold-restart a crashed relay: fresh channels (same deterministic
  /// seeds), a fresh node with an empty cache, re-attached under its
  /// current parent (or the nearest live ancestor / the AH — a root
  /// re-registers its OLD participant id), and fresh legs for every
  /// child and viewer still parented to it. The node then resyncs via
  /// the same adoption epoch as a failover (one upstream PLI pulls the
  /// §4.4 full refresh through the subtree). Lifetime counters fold so
  /// relay.rN.* telemetry stays monotone.
  void restart_relay(RelayHandle& r);

  /// Relays crashed via crash_relay() so far.
  std::uint64_t relay_crashes() const { return relay_crashes_; }
  /// Cold restarts via restart_relay() so far.
  std::uint64_t relay_restarts() const { return relay_restarts_; }
  /// Automatic subtree failovers (watchdog-triggered re-parenting) so far.
  std::uint64_t relay_failovers() const { return relay_failovers_; }

  /// Advance simulated time.
  void run_for(SimTime duration) { loop_.run_until(loop_.now() + duration); }

 private:
  /// Collector: sums every channel's / participant's ad-hoc Stats structs
  /// into net.udp.*, net.tcp.* and participant.* counters at snapshot time.
  void publish_net_metrics();
  /// Fold a channel's cumulative stats into the retired totals before the
  /// channel is destroyed (eviction/reconnect), so net.* counters never run
  /// backwards when a link dies.
  void retire_stats(Connection& c);
  /// Fold one UDP channel's stats into the retired totals (relay crash).
  void retire_udp(const UdpChannel* ch);
  /// Tear down a connection's channels (both transports); the Participant
  /// object survives with its replica and stats.
  void teardown_links(Connection& c);
  /// Install `r`'s channel receivers and node callbacks. Receivers read
  /// r->parent / r->leg / r->upstream_id at delivery time, so re-parenting
  /// never re-wires a channel.
  void wire_relay(RelayHandle* r);
  /// Register `r` on its upstream: a leg on r->parent, or an AH participant
  /// (reusing r->upstream_id when set). Sets r->leg and r->depth.
  void attach_relay_upstream(RelayHandle& r);
  /// Recompute descendant depths after a re-parent.
  void refresh_relay_depths(RelayHandle& r);
  /// Watchdog-triggered failover: pick backup / nearest live ancestor / AH
  /// and re-parent the orphan there.
  void failover_relay(RelayHandle& r);
  /// True when `candidate` sits inside `root`'s subtree (cycle guard).
  static bool relay_in_subtree(const RelayHandle& candidate,
                               const RelayHandle& root);

  EventLoop loop_;
  AppHost host_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<MulticastSession>> multicast_;
  std::vector<std::unique_ptr<RelayHandle>> relays_;
  std::vector<std::unique_ptr<RelayViewer>> relay_viewers_;
  std::uint64_t link_seed_ = 0x11CE;
  UdpChannel::Stats retired_udp_;
  TcpChannel::Stats retired_tcp_;
  std::uint64_t dropped_links_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t evicted_connections_ = 0;
  std::uint64_t relay_crashes_ = 0;
  std::uint64_t relay_restarts_ = 0;
  std::uint64_t relay_failovers_ = 0;
};

}  // namespace ads
