// Session wiring: constructs the AH, participants and the simulated
// network channels between them, matching the draft's deployment shapes —
// "The AH can share an application to TCP participants, UDP participants,
// and several multicast addresses in the same sharing session" (§4.2).
// Multicast is modelled as one encode pass fanned out over per-receiver
// channels (the per-link loss/delay still differs per receiver).
#pragma once

#include <memory>
#include <vector>

#include "core/app_host.hpp"
#include "core/participant.hpp"
#include "net/multicast.hpp"
#include "net/tcp_channel.hpp"
#include "net/udp_channel.hpp"
#include "relay/relay.hpp"

namespace ads {

/// The two simulated UDP channels of one participant link.
struct UdpLinkConfig {
  UdpChannelOptions down;  ///< AH → participant (remoting)
  UdpChannelOptions up;    ///< participant → AH (RTCP, HIP, BFCP)
};

/// The two simulated TCP channels of one participant link.
struct TcpLinkConfig {
  TcpChannelOptions down;  ///< AH → participant (remoting)
  TcpChannelOptions up;    ///< participant → AH (RTCP, HIP, BFCP)
};

/// Owns one AH, its participants and the simulated channels between them.
class SharingSession {
 public:
  /// Construct the session: one event loop, one AH, no participants yet.
  explicit SharingSession(AppHostOptions host_opts = {});
  ~SharingSession();

  /// The virtual clock everything in this session runs on.
  EventLoop& loop() { return loop_; }
  /// The Application Host this session wires participants to.
  AppHost& host() { return host_; }
  /// The session-wide telemetry sink (the AH's, shared by every channel the
  /// session creates). `telemetry().snapshot()` sees metrics from all
  /// layers: ah.*, encoder.*, cache.*, rtx.*, net.*, participant.*.
  telemetry::Telemetry& telemetry() { return host_.telemetry(); }

  /// One participant plus the channels wiring it to the AH.
  struct Connection {
    ParticipantId id = 0;
    std::unique_ptr<Participant> participant;
    // Exactly one pair is non-null depending on the transport.
    std::unique_ptr<UdpChannel> down_udp;
    std::unique_ptr<UdpChannel> up_udp;
    std::unique_ptr<TcpChannel> down_tcp;
    std::unique_ptr<TcpChannel> up_tcp;
    Bytes up_carry;  ///< partially-written uplink frame (TCP)
  };

  /// Create a UDP participant wired through lossy channels. The
  /// participant has not joined yet — call join() on it (or use
  /// add_udp_participant_joined).
  Connection& add_udp_participant(ParticipantOptions opts = {},
                                  UdpLinkConfig link = {});
  /// Create a TCP participant wired through RFC 4571-framed channels;
  /// the AH pushes the §4.4 late-join state immediately.
  Connection& add_tcp_participant(ParticipantOptions opts = {},
                                  TcpLinkConfig link = {});

  /// Sever a TCP participant's links (both directions) as a hard connection
  /// drop: in-flight data is lost, later writes are refused. The connection
  /// stays in the session for a later reconnect_tcp().
  void drop_tcp(Connection& c);

  /// Re-establish a dropped (or evicted) TCP participant: fresh channels,
  /// the AH re-registers the peer under its old id (BFCP/HIP identity and
  /// floor state survive) and resyncs it through the §4.4 late-join path
  /// (WMI + full refresh); the participant resets its stream/loss state via
  /// on_transport_reset(). Counted in recovery.reconnects.
  void reconnect_tcp(Connection& c, TcpLinkConfig link = {});

  /// Successful reconnect_tcp() calls so far.
  std::uint64_t reconnects() const { return reconnects_; }
  /// Links severed by drop_tcp() or eviction so far.
  std::uint64_t dropped_links() const { return dropped_links_; }
  /// Connections torn down by the AH liveness sweep so far.
  std::uint64_t evicted_connections() const { return evicted_connections_; }

  /// Every connection created, in creation order (including dropped ones).
  const std::vector<std::unique_ptr<Connection>>& connections() const {
    return connections_;
  }

  /// One multicast session: the AH encodes and sends once; the group
  /// replicates to every member over that member's own last hop.
  struct MulticastMember {
    ParticipantId id = 0;
    std::unique_ptr<Participant> participant;
    std::unique_ptr<UdpChannel> up;
  };
  /// One multicast group: a shared stream identity plus its members.
  struct MulticastSession {
    ParticipantId group_id = 0;  ///< the AH-side stream identity
    std::unique_ptr<MulticastGroup> group;
    std::vector<std::unique_ptr<MulticastMember>> members;
  };

  /// Create an (initially empty) multicast session on the AH.
  MulticastSession& add_multicast_session();

  /// Join a member to a multicast session. `down` describes the member's
  /// last-hop from the multicast tree; `up` its unicast feedback path.
  MulticastMember& add_multicast_member(MulticastSession& mc,
                                        ParticipantOptions opts = {},
                                        UdpChannelOptions down = {},
                                        UdpChannelOptions up = {});

  /// Every multicast session created, in creation order.
  const std::vector<std::unique_ptr<MulticastSession>>& multicast_sessions() const {
    return multicast_;
  }

  /// Deepest relay cascade the session will wire (sanity bound; the paper's
  /// deployment shapes never need more than a few levels).
  static constexpr int kMaxRelayDepth = 8;

  /// One relay node in the cascade plus the channels of its upstream link.
  struct RelayHandle {
    std::unique_ptr<relay::RelayNode> node;
    std::unique_ptr<UdpChannel> down;  ///< upstream → relay (media + SRs)
    std::unique_ptr<UdpChannel> up;    ///< relay → upstream (RTCP/HIP/BFCP)
    ParticipantId upstream_id = 0;     ///< AH-side id (root relays only)
    RelayHandle* parent = nullptr;     ///< null for a root relay
    relay::LegId leg = 0;              ///< this relay's leg on its parent
    int depth = 1;                     ///< 1 = directly below the AH
  };

  /// One viewer hanging off a relay leg (receives the relay's forwarded
  /// stream; its feedback terminates at that relay).
  struct RelayViewer {
    relay::LegId leg = 0;
    RelayHandle* relay = nullptr;
    std::unique_ptr<Participant> participant;
    std::unique_ptr<UdpChannel> down;  ///< relay → viewer
    std::unique_ptr<UdpChannel> up;    ///< viewer → relay
  };

  /// Create a root relay fed by the AH: the AH sees one more UDP
  /// participant; the relay re-fans that stream to its own legs.
  RelayHandle& add_relay(relay::RelayOptions opts = {}, UdpLinkConfig link = {});
  /// Cascade a child relay below `parent` (one parent leg feeds the whole
  /// child subtree). Throws std::invalid_argument past kMaxRelayDepth.
  RelayHandle& add_relay_child(RelayHandle& parent,
                               relay::RelayOptions opts = {},
                               UdpLinkConfig link = {},
                               relay::LegConfig leg = {});
  /// Attach a viewer to one of `relay`'s legs.
  RelayViewer& add_relay_viewer(RelayHandle& relay,
                                ParticipantOptions opts = {},
                                UdpLinkConfig link = {},
                                relay::LegConfig leg = {});

  /// Every relay created, in creation order (roots and children).
  const std::vector<std::unique_ptr<RelayHandle>>& relays() const {
    return relays_;
  }
  /// Every relay viewer created, in creation order.
  const std::vector<std::unique_ptr<RelayViewer>>& relay_viewers() const {
    return relay_viewers_;
  }

  /// Advance simulated time.
  void run_for(SimTime duration) { loop_.run_until(loop_.now() + duration); }

 private:
  /// Collector: sums every channel's / participant's ad-hoc Stats structs
  /// into net.udp.*, net.tcp.* and participant.* counters at snapshot time.
  void publish_net_metrics();
  /// Fold a channel's cumulative stats into the retired totals before the
  /// channel is destroyed (eviction/reconnect), so net.* counters never run
  /// backwards when a link dies.
  void retire_stats(Connection& c);
  /// Tear down a connection's channels (both transports); the Participant
  /// object survives with its replica and stats.
  void teardown_links(Connection& c);

  EventLoop loop_;
  AppHost host_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<MulticastSession>> multicast_;
  std::vector<std::unique_ptr<RelayHandle>> relays_;
  std::vector<std::unique_ptr<RelayViewer>> relay_viewers_;
  std::uint64_t link_seed_ = 0x11CE;
  UdpChannel::Stats retired_udp_;
  TcpChannel::Stats retired_tcp_;
  std::uint64_t dropped_links_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t evicted_connections_ = 0;
};

}  // namespace ads
