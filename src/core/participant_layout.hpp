// Participant-side window layout (draft §4.1, Figures 2-5). All wire
// coordinates are absolute AH pixels; "a participant can display the
// windows in their original coordinates or it can display them in different
// coordinates". Three policies reproduce the draft's example participants:
//   kOriginal — Figure 3: identity placement
//   kShift    — Figure 4: translate everything so the bounding box touches
//               the origin, preserving inter-window relations
//   kRefit    — Figure 5: additionally compress window positions so the
//               ensemble fits a smaller local screen (z-order preserved)
//   kScaleToFit — §4.2's optional "participant-side scaling": positions AND
//               sizes scale uniformly so the whole ensemble fits; window
//               content is resampled at render time
#pragma once

#include <vector>

#include "image/image.hpp"
#include "image/scale.hpp"
#include "remoting/window_manager_info.hpp"

namespace ads {

/// The four participant-side placement policies (Figures 3-5 + scaling).
enum class LayoutPolicy { kOriginal, kShift, kRefit, kScaleToFit };

/// One window record with its local placement decision.
struct PlacedWindow {
  std::uint16_t window_id = 0;
  std::uint8_t group_id = 0;
  Rect source;  ///< absolute AH-coordinate frame (replica coordinates)
  Rect placed;  ///< local display frame

  friend bool operator==(const PlacedWindow&, const PlacedWindow&) = default;
};

/// Compute local placements for the window records of the latest
/// WindowManagerInfo (bottom-most first; order — and therefore z-order — is
/// preserved in the result).
std::vector<PlacedWindow> layout_windows(const std::vector<WindowRecord>& records,
                                         LayoutPolicy policy,
                                         std::int64_t local_width,
                                         std::int64_t local_height);

/// Render the local view: windows blitted from the AH-replica `screen` to
/// their placed positions, bottom-most first.
Image render_layout(const Image& screen, const std::vector<PlacedWindow>& placement,
                    std::int64_t local_width, std::int64_t local_height);

}  // namespace ads
