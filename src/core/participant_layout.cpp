#include "core/participant_layout.hpp"

#include <algorithm>

namespace ads {

std::vector<PlacedWindow> layout_windows(const std::vector<WindowRecord>& records,
                                         LayoutPolicy policy,
                                         std::int64_t local_width,
                                         std::int64_t local_height) {
  std::vector<PlacedWindow> out;
  out.reserve(records.size());
  for (const WindowRecord& rec : records) {
    PlacedWindow p;
    p.window_id = rec.window_id;
    p.group_id = rec.group_id;
    p.source = rec.rect();
    p.placed = p.source;
    out.push_back(p);
  }
  if (out.empty() || policy == LayoutPolicy::kOriginal) return out;

  // Bounding box of all windows.
  Rect bound;
  for (const PlacedWindow& p : out) bound = bounding_union(bound, p.source);

  // kShift: move the ensemble to the origin (Figure 4 shifts by the
  // bounding box corner: 220 left, 150 up in the draft's example).
  for (PlacedWindow& p : out) p.placed = p.source.translated(-bound.left, -bound.top);
  if (policy == LayoutPolicy::kShift) return out;

  if (policy == LayoutPolicy::kScaleToFit) {
    // Uniform scale of positions and sizes; content resampled by
    // render_layout (§4.2 participant-side scaling).
    const double s = std::min(
        {1.0,
         static_cast<double>(local_width) / static_cast<double>(bound.width),
         static_cast<double>(local_height) / static_cast<double>(bound.height)});
    for (PlacedWindow& p : out) {
      p.placed.left = static_cast<std::int64_t>(static_cast<double>(p.placed.left) * s);
      p.placed.top = static_cast<std::int64_t>(static_cast<double>(p.placed.top) * s);
      p.placed.width = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(p.placed.width) * s));
      p.placed.height = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(p.placed.height) * s));
    }
    return out;
  }

  // kRefit: compress positions (not sizes) so every window's origin maps
  // into the smaller screen, then clamp so as much of each window as
  // possible stays visible. Relative arrangement and z-order survive;
  // overlaps increase — exactly participant 3's "combines all the windows
  // in order to fit them to its small screen".
  const double sx = bound.width > local_width
                        ? static_cast<double>(local_width) / static_cast<double>(bound.width)
                        : 1.0;
  const double sy = bound.height > local_height
                        ? static_cast<double>(local_height) /
                              static_cast<double>(bound.height)
                        : 1.0;
  for (PlacedWindow& p : out) {
    std::int64_t x = static_cast<std::int64_t>(
        static_cast<double>(p.placed.left) * sx);
    std::int64_t y = static_cast<std::int64_t>(
        static_cast<double>(p.placed.top) * sy);
    x = std::clamp<std::int64_t>(x, 0,
                                 std::max<std::int64_t>(0, local_width - p.placed.width));
    y = std::clamp<std::int64_t>(
        y, 0, std::max<std::int64_t>(0, local_height - p.placed.height));
    p.placed.left = x;
    p.placed.top = y;
  }
  return out;
}

Image render_layout(const Image& screen, const std::vector<PlacedWindow>& placement,
                    std::int64_t local_width, std::int64_t local_height) {
  Image out(local_width, local_height, kBlack);
  for (const PlacedWindow& p : placement) {
    if (p.placed.width == p.source.width && p.placed.height == p.source.height) {
      out.blit(screen, p.source, {p.placed.left, p.placed.top});
    } else {
      const Image scaled =
          scale_image(screen.crop(p.source), p.placed.width, p.placed.height);
      out.blit(scaled, scaled.bounds(), {p.placed.left, p.placed.top});
    }
  }
  return out;
}

}  // namespace ads
