// Content-addressed cache of encoded RegionUpdate payloads (the WebNC
// tile-hash idea applied at band granularity): before compressing a damage
// band the AH looks its pixel hash up here, so PLI full refreshes, late
// joiners, and periodically repeating content (blinking cursors, slideshow
// loops) are served from memory instead of re-running the codec.
//
// Keys combine the 64-bit pixel hash with the band geometry and the codec
// payload type, so two codecs never alias and a hash collision additionally
// requires identical dimensions. Entries are LRU-evicted to honour a byte
// budget (payload bytes, not entry count).
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "util/bytes.hpp"

namespace ads {

struct EncodedRegionKey {
  std::uint64_t content_hash = 0;  ///< hash_rect() of the band's pixels
  std::uint8_t content_pt = 0;     ///< codec payload type
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  friend auto operator<=>(const EncodedRegionKey&, const EncodedRegionKey&) = default;
};

class EncodedRegionCache {
 public:
  /// `max_bytes` bounds the sum of cached payload sizes; 0 disables caching
  /// entirely (find always misses, insert is a no-op).
  explicit EncodedRegionCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Cached payload for `key`, or nullptr. A hit promotes the entry to
  /// most-recently-used. The pointer is invalidated by the next insert().
  const Bytes* find(const EncodedRegionKey& key);

  /// Store `payload` under `key` (replacing any previous entry), then evict
  /// least-recently-used entries until the byte budget holds. Payloads
  /// larger than the whole budget are not cached.
  void insert(const EncodedRegionKey& key, Bytes payload);

  void clear();

  std::size_t bytes() const { return bytes_; }
  std::size_t entries() const { return index_.size(); }
  std::size_t max_bytes() const { return max_bytes_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    EncodedRegionKey key;
    Bytes payload;
  };

  void evict_to_budget();

  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<EncodedRegionKey, std::list<Entry>::iterator> index_;
};

}  // namespace ads
