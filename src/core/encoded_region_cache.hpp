// Content-addressed cache of encoded RegionUpdate payloads (the WebNC
// tile-hash idea applied at band granularity): before compressing a damage
// band the AH looks its pixel hash up here, so PLI full refreshes, late
// joiners, and periodically repeating content (blinking cursors, slideshow
// loops) are served from memory instead of re-running the codec.
//
// Keys combine the 64-bit pixel hash with the band geometry, the codec
// payload type, and the encode quality step, so two codecs (or two quality
// rungs of the same lossy codec, as the ads::rate ladder moves) never
// alias, and a hash collision additionally requires identical dimensions.
// Entries are LRU-evicted to honour a byte budget (payload bytes, not
// entry count).
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "util/bytes.hpp"

namespace ads {

/// Cache key: pixel content, geometry, codec, and quality step.
struct EncodedRegionKey {
  std::uint64_t content_hash = 0;  ///< hash_rect() of the band's pixels
  std::uint8_t content_pt = 0;     ///< codec payload type
  std::uint8_t quality = 0;        ///< encode quality step (0 = codec default)
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  friend auto operator<=>(const EncodedRegionKey&, const EncodedRegionKey&) = default;
};

/// LRU byte-budgeted store of encoded band payloads, keyed by content.
class EncodedRegionCache {
 public:
  /// `max_bytes` bounds the sum of cached payload sizes; 0 disables caching
  /// entirely (find always misses, insert is a no-op).
  explicit EncodedRegionCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Cached payload for `key`, or nullptr. A hit promotes the entry to
  /// most-recently-used. The pointer is invalidated by the next insert()
  /// or clear() — generation() observes exactly those invalidations, so a
  /// caller holding a hit across other code can assert the generation is
  /// unchanged before dereferencing.
  const Bytes* find(const EncodedRegionKey& key);

  /// Copy-out lookup: appends nothing on a miss (returns false); on a hit
  /// copies the payload into `out` (replacing its contents), promotes the
  /// entry, and returns true. Unlike find(), the result cannot dangle
  /// across later insert()/clear() calls — the accessor loops that
  /// interleave lookups with inserts (the encoder's shared fan-out) use.
  bool find_copy(const EncodedRegionKey& key, Bytes& out);

  /// Store `payload` under `key` (replacing any previous entry), then evict
  /// least-recently-used entries until the byte budget holds. Payloads
  /// larger than the whole budget are not cached.
  void insert(const EncodedRegionKey& key, Bytes payload);

  /// Drop every entry (the byte budget is unchanged).
  void clear();

  /// Sum of cached payload sizes in bytes.
  std::size_t bytes() const { return bytes_; }
  /// Number of cached entries.
  std::size_t entries() const { return index_.size(); }
  /// The configured byte budget.
  std::size_t max_bytes() const { return max_bytes_; }
  /// Entries evicted to honour the budget since construction.
  std::uint64_t evictions() const { return evictions_; }
  /// Mutation counter: bumped by every insert() that changes the store and
  /// by clear(). A find() pointer taken at generation G is valid only while
  /// generation() == G.
  std::uint64_t generation() const { return generation_; }

 private:
  struct Entry {
    EncodedRegionKey key;
    Bytes payload;
  };

  void evict_to_budget();

  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t generation_ = 0;
  std::list<Entry> lru_;  ///< front = most recently used
  std::map<EncodedRegionKey, std::list<Entry>::iterator> index_;
};

}  // namespace ads
