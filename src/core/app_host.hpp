// Application Host (AH): "the computer which runs the shared application,
// distributes the screen updates to the participants, and regenerates human
// interface events received from participants" (§1).
//
// Pipeline per frame tick:
//   capture → (scroll detection → MoveRectangle) → cohort grouping →
//   encode damage once per cohort → RegionUpdate (fragmented to MTU) →
//   per-participant transmission.
// The distribute stage is a shared-encode broadcast fan-out: participants
// are grouped into cohorts by effective operating point (content payload
// type, quality rung, MTU) and each damage band is encoded once per cohort
// per tick, then packetized per endpoint — fan-out cost is per operating
// point, not per receiver.
// Plus: WindowManagerInfo whenever the window manager state changes
// (§5.2.1), MousePointerInfo for the AH pointer (§5.2.4), PLI-triggered
// full refreshes (§5.3.1), NACK-driven retransmissions (§5.3.2), §7
// backlog-aware frame dropping for TCP participants, and BFCP-gated HIP
// event injection (§4.1, Appendix A).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <thread>

#include "bfcp/floor_control.hpp"
#include "buf/buf.hpp"
#include "capture/screen_capturer.hpp"
#include "codec/registry.hpp"
#include "rtp/packet_classify.hpp"
#include "core/parallel_encoder.hpp"
#include "hip/messages.hpp"
#include "net/event_loop.hpp"
#include "net/rate_limiter.hpp"
#include "rate/rate_controller.hpp"
#include "remoting/message.hpp"
#include "remoting/region_update.hpp"
#include "rtp/framing.hpp"
#include "rtp/packet_view.hpp"
#include "rtp/retransmission_cache.hpp"
#include "rtp/rtp_session.hpp"
#include "sdp/sharing_session.hpp"
#include "snapshot/record.hpp"
#include "snapshot/snapshot.hpp"
#include "telemetry/telemetry.hpp"
#include "transcode/transcode.hpp"
#include "wm/window_manager.hpp"

namespace ads {

using ParticipantId = std::uint16_t;

/// Every knob of the Application Host: screen geometry, codec choice,
/// transport policies (§4.3 rate control, §7 backlog), the encode
/// pipeline, liveness, adaptation and observability.
struct AppHostOptions {
  std::int64_t screen_width = 1280;
  std::int64_t screen_height = 1024;
  std::int64_t damage_tile = 32;
  /// Maximum RTP payload size (fragmentation threshold, Table 2).
  std::size_t mtu_payload = 1200;
  /// Content codec for RegionUpdate payloads.
  ContentPt codec = ContentPt::kPng;
  /// Emit MoveRectangle for detected scrolls (§5.2.3) instead of
  /// re-encoding the scrolled area.
  bool use_move_rectangle = true;
  /// Transmit the pointer as explicit MousePointerInfo messages; when
  /// false the pointer is assumed to be drawn into RegionUpdates (§4.2:
  /// "The AH decides which mouse model to use").
  bool pointer_messages = true;
  /// Answer NACKs with retransmissions (SDP "retransmissions" parameter).
  bool retransmissions = true;
  /// §7 backlog policy for TCP participants: skip a participant's frame
  /// while its send-buffer backlog exceeds this many bytes. 0 disables the
  /// policy (naive send-everything — the behaviour §7 warns against).
  std::size_t tcp_backlog_limit = 4096;
  /// §4.3 rate control for UDP participants: per-participant token bucket
  /// in bits/s (0 = unlimited). A frame is skipped (damage accumulates)
  /// while the bucket cannot cover one MTU.
  std::uint64_t udp_rate_bps = 0;
  std::size_t udp_burst_bytes = 64 * 1024;
  /// Closed-loop per-participant adaptation (ads::rate): when enabled, an
  /// AIMD controller per participant consumes RTCP RR loss/jitter (UDP) or
  /// send-buffer backlog trend (TCP) and re-targets that participant's
  /// token-bucket rate, DCT quality rung and frame-interval divisor every
  /// tick — the static udp_rate_bps above becomes merely the pre-adaptation
  /// seed. Fully deterministic under the virtual clock.
  rate::AdaptationOptions adaptation;
  /// Tall damage rectangles are split into horizontal bands of at most this
  /// many rows before encoding, bounding the size of a single RegionUpdate
  /// so rate control and interface queues see smooth bursts. 0 disables.
  std::int64_t region_band_rows = 128;
  /// Worker threads for the parallel band-encode stage. 0 = encode serially
  /// on the tick thread; the default sizes the pool to the machine. Wire
  /// bytes are identical at every setting (bands are sequence-ordered).
  std::size_t encode_threads = std::thread::hardware_concurrency();
  /// Byte budget for the encoded-region cache consulted before compressing
  /// a band (serves PLI full refreshes, late joiners, and repeating content
  /// from memory). 0 disables the cache.
  std::size_t encoded_cache_bytes = 8 * 1024 * 1024;
  /// Shared-encode broadcast fan-out: group participants into cohorts by
  /// effective operating point (content payload type, quality rung, MTU)
  /// and encode each pending band once per cohort per tick, then packetize
  /// the shared payload per endpoint. Wire bytes are identical to the
  /// per-participant path (false), which survives as the golden reference
  /// and the E17 baseline.
  bool shared_fanout = true;
  /// Flash-crowd late-join: the checkpoint snapshot service
  /// (docs/LATEJOIN.md). When enabled (shared fan-out path only), refresh
  /// demand — PLIs and TCP admissions — is batched into join cohorts per
  /// refresh window and served from pre-encoded, cohort-keyed refresh
  /// bundles: one checkpoint encode per operating point per join wave. Off
  /// by default; the §4.4 per-joiner path is the E19 baseline. The embedded
  /// record_path additionally streams checkpoint + updates to disk for
  /// deterministic session replay.
  snapshot::SnapshotOptions snapshot;
  SimTime frame_interval_us = 100'000;  ///< 10 fps capture clock
  /// RTCP Sender Report cadence (0 = no SRs).
  SimTime sr_interval_us = 1'000'000;
  /// Participant liveness (swept on the capture clock): a participant whose
  /// uplink (RTP-HIP, RTCP, BFCP — anything) has been silent for
  /// stale_after_us is marked stale (liveness.stale gauge); one silent for
  /// evict_after_us is removed and its per-participant state (token bucket,
  /// retransmission cache, stream carry) reclaimed. 0 disables each.
  SimTime stale_after_us = 0;
  SimTime evict_after_us = 0;
  std::size_t retransmission_cache = 2048;
  /// Session-wide telemetry sink. Null = the AH owns a private Telemetry
  /// (always available via telemetry()); non-null injects a shared instance
  /// that must outlive the AH.
  telemetry::Telemetry* telemetry = nullptr;
  /// Trace-span ring capacity for the tick-pipeline spans (ah.tick,
  /// ah.capture, ah.damage, ah.encode, ah.packetise, ...). 0 disables
  /// tracing; spans then cost one branch each. Ignored when an injected
  /// telemetry instance already has its trace ring enabled.
  std::size_t trace_capacity = 512;
  std::uint64_t seed = 0xADA5;
};

/// AH-side transport handle for one participant. The callbacks abstract the
/// simulated network (or any other transport).
struct HostEndpoint {
  /// Transport family of this endpoint.
  enum class Kind { kUdp, kTcp };
  Kind kind = Kind::kUdp;
  /// UDP: transmit one datagram. Return false if dropped before the wire
  /// (interface queue full).
  std::function<bool(BytesView)> send_datagram;
  /// TCP: non-blocking stream write; returns bytes accepted.
  std::function<std::size_t(BytesView)> write_stream;
  /// TCP: current send-buffer backlog in bytes (the §7 select() signal).
  std::function<std::size_t()> backlog;
  /// UDP, optional zero-copy path: transmit one header-plus-view packet
  /// without materialising it up front. When unset the AH serialises into
  /// send_datagram instead (and counts the copy).
  std::function<bool(const PacketView&)> send_packet;
  /// UDP, optional: drain one participant's per-tick TX batch in a single
  /// call (packets in order); returns how many the transport accepted.
  /// When unset packets go out one by one through send_packet/send_datagram.
  std::function<std::size_t(std::span<const PacketView>)> send_packet_batch;
  /// TCP, optional: gather-write — offer the concatenation of `parts` as
  /// one stream write and return bytes accepted. Lets the AH hand carry +
  /// RFC 4571 length prefix + RTP header + shared payload to the transport
  /// without first concatenating them. When unset the AH stages framed
  /// bytes through its carry buffer and uses write_stream.
  std::function<std::size_t(std::span<const BytesView>)> write_gather;
};

/// The Application Host: owns capture, encode, fan-out, feedback handling
/// and per-participant adaptation for one sharing session.
class AppHost {
 public:
  /// Constructs the AH on `loop`. `opts` are validated first — see
  /// validated(); invalid combinations throw std::invalid_argument.
  AppHost(EventLoop& loop, AppHostOptions opts = {});
  ~AppHost();

  /// Validate and normalise options: rejects impossible settings
  /// (frame_interval_us == 0, non-positive screen dimensions, zero MTU)
  /// with std::invalid_argument, and clamps merely nonsensical ones (a UDP
  /// burst smaller than one MTU with rate control on, negative band rows,
  /// inverted adaptation rate bounds) to the nearest workable value.
  static AppHostOptions validated(AppHostOptions opts);

  /// The window manager whose shared windows this AH exports.
  WindowManager& wm() { return wm_; }
  /// The capture stage (attach scripted apps, read the last frame).
  ScreenCapturer& capturer() { return capturer_; }
  /// The BFCP floor-control server gating HIP input.
  FloorControlServer& floor() { return floor_; }
  /// The validated options this AH runs with.
  const AppHostOptions& options() const { return opts_; }

  /// Register a participant. For TCP endpoints the AH immediately queues
  /// WindowManagerInfo + a full refresh (§4.4); UDP participants are
  /// expected to send PLI (§4.3). A non-zero `reuse_id` re-registers a
  /// returning participant (TCP reconnect) under its previous id — BFCP
  /// floor state and HIP identity carry over — with fresh transport state
  /// (RTP stream, caches, uplink deframer). Falls back to a new id if the
  /// requested one is still occupied.
  ParticipantId add_participant(HostEndpoint endpoint, ParticipantId reuse_id = 0);
  /// Deregister a participant and reclaim all its per-participant state.
  void remove_participant(ParticipantId id);
  /// Number of currently registered participants.
  std::size_t participant_count() const { return participants_.size(); }

  /// Called with the id of every participant evicted by the liveness sweep,
  /// after its state is gone — the session layer's hook to tear down the
  /// matching channels.
  using EvictionHandler = std::function<void(ParticipantId)>;
  /// Install (or replace) the eviction callback.
  void set_eviction_handler(EvictionHandler handler) {
    eviction_handler_ = std::move(handler);
  }

  /// Liveness introspection: true while the participant's uplink has been
  /// silent longer than stale_after_us (false for unknown ids).
  bool participant_stale(ParticipantId id) const;

  /// Register an uplink identity for a multicast group member: the member's
  /// RTCP feedback (PLI/NACK) applies to the group stream `group`, while
  /// HIP/BFCP keep the member's own identity. Returns the member id.
  ParticipantId add_member_alias(ParticipantId group);

  /// Most recent RTCP Receiver Report block from a participant (nullptr
  /// before the first RR) — the AH-side link quality view.
  const ReportBlock* last_receiver_report(ParticipantId id) const;

  /// Current ads::rate operating point for a participant (nullptr for
  /// unknown ids). Meaningful only when options().adaptation.enabled.
  const rate::OperatingPoint* participant_operating_point(ParticipantId id) const;

  /// Per-participant codec override — the outcome of §5.2.2 media-type
  /// negotiation ("they should negotiate supported media types during the
  /// session establishment"). Returns false for unknown ids or payload
  /// types absent from the AH's registry.
  bool set_participant_codec(ParticipantId id, ContentPt codec);

  /// Per-participant output geometry (docs/TRANSCODE.md): downscale rung
  /// and/or crop viewport, the outcome of the SDP `a=geometry:` negotiation.
  /// Extends the participant's cohort operating point, so cohort-mates with
  /// the same geometry keep sharing one encode. Queues a full refresh at the
  /// new geometry. Returns false for unknown ids or a scale_shift > 6.
  bool set_participant_geometry(ParticipantId id, transcode::OutputGeometry geom);

  /// The participant's negotiated output geometry (nullptr for unknown ids).
  /// Follow-mode geometries report the declared geometry, not the per-tick
  /// resolved viewport.
  const transcode::OutputGeometry* participant_geometry(ParticipantId id) const;

  /// Host display-mode change: resize the desktop framebuffer. The next tick
  /// reports full damage (DamageTracker resize fast path), invalidates every
  /// snapshot bundle and re-sends a re-clamped pointer overlay to everyone.
  void set_screen_size(std::int64_t width, std::int64_t height);

  /// Begin the periodic capture/transmit loop on the event loop.
  void start();
  /// Stop the capture loop after the current tick; start() resumes it.
  void stop() { running_ = false; }

  /// Run one capture+transmit cycle immediately (benchmarks drive this
  /// directly instead of using start()).
  void tick();

  /// Inbound uplink traffic from a participant (RTP-HIP, RTCP, or BFCP —
  /// classified internally).
  void on_uplink_packet(ParticipantId from, BytesView packet);
  /// TCP uplink variant: raw stream bytes (RFC 4571 framed packets).
  void on_uplink_stream(ParticipantId from, BytesView data);

  /// Sink for validated, floor-approved HIP events — the "regenerate at the
  /// OS" hook. Receives the event and the originating participant.
  using InputSink = std::function<void(ParticipantId, const HipMessage&)>;
  /// Install (or replace) the HIP input sink.
  void set_input_sink(InputSink sink) { input_sink_ = std::move(sink); }

  /// Move the AH-user pointer (drives MousePointerInfo, §5.2.4).
  void set_pointer(Point p, const Image* icon = nullptr);

  /// The SDP offer describing this AH's session (§10.3 shape).
  SessionDescription sdp_offer() const;

  /// Map an RTP timestamp from the remoting stream back to the send-side
  /// sim time (measurement hook for latency benchmarks).
  SimTime remoting_timestamp_to_us(std::uint32_t rtp_ts) const;

  /// Lifetime totals for everything the AH sends, skips and receives.
  struct Stats {
    std::uint64_t frames_captured = 0;
    std::uint64_t region_updates_sent = 0;
    std::uint64_t move_rectangles_sent = 0;
    std::uint64_t wmi_sent = 0;
    std::uint64_t pointer_msgs_sent = 0;
    std::uint64_t rtp_packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_skipped_backlog = 0;  ///< §7 policy skips
    std::uint64_t frames_skipped_rate = 0;     ///< §4.3 rate-control skips
    std::uint64_t frames_skipped_fps = 0;      ///< ads::rate fps-divisor skips
    std::uint64_t srs_sent = 0;
    std::uint64_t rrs_received = 0;
    std::uint64_t retransmissions_sent = 0;
    std::uint64_t nacks_received = 0;
    std::uint64_t plis_received = 0;
    std::uint64_t hip_events_accepted = 0;
    std::uint64_t hip_events_rejected_coords = 0;  ///< §4.1 legitimacy check
    std::uint64_t hip_events_rejected_floor = 0;   ///< BFCP gate
    std::uint64_t hip_parse_errors = 0;
    std::uint64_t participants_evicted = 0;   ///< liveness-timeout removals
    std::uint64_t stale_transitions = 0;      ///< fresh→stale edges observed
    // Shared fan-out accounting (zero on the per-participant path).
    std::uint64_t fanout_cohorts = 0;         ///< operating-point cohorts formed
    std::uint64_t fanout_encodes_unique = 0;  ///< bands encoded once per cohort
    std::uint64_t fanout_encodes_shared = 0;  ///< band encodes saved by sharing
    // Zero-copy datapath accounting (docs/DATAPATH.md). payload_bytes_copied
    // counts sender-side staging copies only: band-stream serialisation, TCP
    // carry staging, and fallback per-packet serialisation for endpoints
    // without the view callbacks. Transport-level materialisation of a
    // delivered datagram is the wire (the NIC-DMA analogue), not a copy.
    std::uint64_t packets_built = 0;          ///< header-plus-view packets assembled
    std::uint64_t payload_bytes_copied = 0;   ///< staging copies, in bytes
    std::uint64_t band_streams_built = 0;     ///< fragment streams serialised once
                                              ///< per cohort band (shared path)
    // Flash-crowd late-join accounting (docs/LATEJOIN.md). join_admissions
    // counts every full refresh granted on either distribute path; the
    // shared/fallback split only accrues while the snapshot service is
    // enabled.
    std::uint64_t join_admissions = 0;          ///< full refreshes granted
    std::uint64_t join_shared_refreshes = 0;    ///< served from a refresh bundle
    std::uint64_t join_fallback_refreshes = 0;  ///< §4.4 path despite snapshot on
    // Output-geometry transcode accounting (docs/TRANSCODE.md). Per-class
    // byte counters split bytes_sent by the receiver's device class; the
    // remaining counters track the geometry machinery itself.
    std::uint64_t hip_events_mapped = 0;     ///< HIP coords mapped output→host
    std::uint64_t viewport_moves = 0;        ///< follow viewports re-anchored
    std::uint64_t move_rects_geometry_skipped = 0;  ///< S1 divisibility gate
    std::uint64_t bytes_sent_full = 0;       ///< media bytes, full-res class
    std::uint64_t bytes_sent_half = 0;       ///< … half-res rung
    std::uint64_t bytes_sent_quarter = 0;    ///< … quarter (shift >= 2) rungs
    std::uint64_t bytes_sent_viewport = 0;   ///< … viewport/follow class
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

  /// The band-encode stage (pool size, cache hit/miss counters) — the perf
  /// observability hook for benches and tests.
  const ParallelEncoder& encoder() const { return encoder_; }

  /// The flash-crowd snapshot service: refresh-window/bundle state and the
  /// snapshot.* counter source (docs/LATEJOIN.md).
  const snapshot::SnapshotService& snapshot_service() const { return snapshot_; }

  /// The per-tick frame scaler cache: one scaled frame per distinct output
  /// geometry per tick (the transcode.* counter source, docs/TRANSCODE.md).
  const transcode::FrameScaler& scaler() const { return scaler_; }

  /// The session recorder (non-null while options().snapshot.record_path is
  /// set; check ok() — a failed open latches it into a no-op). Call
  /// finish() before replaying the file within the same process.
  snapshot::SessionRecorder* recorder() { return recorder_.get(); }

  /// The session-wide observability sink (owned or injected — see
  /// AppHostOptions::telemetry). telemetry().snapshot() yields one
  /// cross-layer view: ah.* counters, encoder.*/cache.* stage stats,
  /// rtx.* retransmission-store stats, plus whatever the net layer and the
  /// session wiring publish into the same registry.
  telemetry::Telemetry& telemetry() { return *tel_; }

 private:
  struct ParticipantState {
    HostEndpoint endpoint;
    RtpSender sender;          ///< per-participant remoting RTP stream
    RetransmissionCache cache;
    TokenBucket bucket;        ///< §4.3 UDP rate control
    rate::RateController rate_ctrl;  ///< ads::rate closed-loop adaptation
    bool needs_full_refresh = false;
    bool needs_wmi = false;
    Region pending;            ///< damage not yet delivered (backlog skips)
    Bytes stream_carry;        ///< unwritten tail of a partial TCP write
    std::uint64_t frames_sent = 0;
    StreamDeframer uplink_deframer;  ///< TCP uplink reassembly
    std::optional<ReportBlock> last_rr;
    std::optional<ContentPt> codec;  ///< negotiated override (else AH default)
    SimTime last_uplink_us = 0;      ///< liveness: any uplink traffic
    bool stale = false;              ///< silent past stale_after_us
    // §5.2.4 pointer dirtiness is per participant: set for everyone when
    // the AH pointer moves, cleared only when *this* participant is sent
    // the update — a tick skipped by the fps divisor, the §7 backlog gate
    // or the §4.3 bucket keeps the flag armed.
    bool pointer_dirty = false;
    bool pointer_icon_dirty = false;
    // Output geometry (docs/TRANSCODE.md): the negotiated device-class
    // geometry, and the host-space source rect it resolved to on the last
    // tick — follow mode re-anchors per tick, and a changed source rect
    // queues the newly-streamed area as pending damage.
    transcode::OutputGeometry geometry;
    Rect geometry_src;
    // Zero-copy TX batching: while `batching` is set (one participant's
    // distribute turn, UDP endpoints with a send_packet_batch callback),
    // transmit_view() queues packets here; flush_tx() drains them in one
    // transport call at the end of the turn.
    std::vector<PacketView> tx_batch;
    bool batching = false;

    ParticipantState(std::uint8_t pt, std::uint64_t seed, std::size_t cache_size,
                     std::uint64_t rate_bps, std::size_t burst,
                     rate::Transport transport, const rate::AdaptationOptions& adapt)
        : sender(pt, seed), cache(cache_size), bucket(rate_bps, burst),
          rate_ctrl(transport, adapt) {}
  };

  /// One band's serialised fragment stream: a pooled buffer holding the
  /// concatenated fragment payloads plus the per-fragment windows. Built
  /// once, then shared by every PacketView cut from it. The shape is the
  /// snapshot service's bundle band, so pre-encoded refresh bundles feed
  /// packetize_regions directly — a joiner's packets are views into the
  /// checkpoint's streams.
  using BandStream = snapshot::BundleBand;

  void schedule_tick();
  /// Serialise one band's RegionUpdate fragment stream into a pooled buffer
  /// (the single staging copy of the zero-copy datapath; counted in
  /// payload_bytes_copied). `content` is consumed.
  BandStream make_band_stream(const Rect& r, ContentPt pt, Bytes content,
                              const transcode::OutputGeometry& geom);
  /// Account for and hand one packet to the participant's transport: UDP →
  /// retransmission cache + §4.3 bucket + batch/packet/datagram callback
  /// (first available); TCP → RFC 4571 gather-write with carry, or the
  /// staged carry + write_stream fallback.
  void transmit_view(ParticipantState& p, const PacketView& v, SimTime now);
  /// Arm per-turn TX batching for `p` when its endpoint can drain batches.
  void begin_tx_batch(ParticipantState& p);
  /// Drain `p`'s TX batch in one send_packet_batch call and disarm batching.
  void flush_tx(ParticipantState& p);
  void send_payload(ParticipantState& p, Bytes payload, bool marker, SimTime now);
  void send_wmi(ParticipantState& p);
  void send_full_refresh(ParticipantState& p,
                         const transcode::OutputGeometry& geom);
  /// Resolve a participant's declared geometry for this tick: follow mode
  /// re-anchors the viewport to the topmost shared window's frame; plain
  /// geometries pass through unchanged.
  transcode::OutputGeometry resolve_geometry(const ParticipantState& p) const;
  /// Map host-space rects into one geometry's output space, merge, and
  /// band-split — the banding step both distribute paths share (the A/B
  /// byte-identity between them depends on using the same banding).
  std::vector<Rect> geometry_bands(const transcode::OutputGeometry& geom,
                                   const std::vector<Rect>& host_rects) const;
  /// Per-tick snapshot + record stage, run before distribution: geometry
  /// invalidation, refresh-window close / delta eviction, this tick's
  /// damage and scroll destinations folded into live bundle deltas, and the
  /// checkpoint + update stream appended to the session recorder.
  void snapshot_stage(const std::vector<MoveRectangle>& scrolls,
                      const std::vector<Rect>& damage);
  /// Fetch (building on first demand in the window) the refresh bundle for
  /// one operating point. nullptr = serve this joiner through the
  /// per-joiner §4.4 path instead (service disabled, bundle budget
  /// exhausted, or build failure).
  snapshot::RefreshBundle* snapshot_admit(ContentPt pt, std::uint8_t quality,
                                          const EncodeParams& params,
                                          const transcode::OutputGeometry& geom);
  /// Sends as much as the participant's rate budget allows; returns the
  /// host-space rectangles that must stay pending for the next tick
  /// (output-space leftovers are mapped back through the geometry).
  std::vector<Rect> send_regions(ParticipantState& p, const std::vector<Rect>& rects,
                                 const transcode::OutputGeometry& geom);
  /// Split rectangles into ≤ region_band_rows-row bands (the encode/cohort
  /// granularity). Empty rects are dropped.
  std::vector<Rect> band_split(const std::vector<Rect>& rects) const;
  /// Per-participant pre-send policy shared by both distribute paths:
  /// flushes TCP carry, records whether the participant was current before
  /// this tick's damage landed (`was_current` — the §5.2.2 MoveRectangle
  /// eligibility), accumulates damage, runs the ads::rate update and the
  /// fps-divisor / §7 backlog / §4.3 bucket gates. Returns false when the
  /// participant is skipped this tick (scrolled areas are folded into its
  /// pending damage).
  /// Also resolves the participant's output geometry for this tick (follow
  /// re-anchoring; a moved source rect queues the newly-exposed area as
  /// pending damage *before* the was_current probe, so a viewport move
  /// disables MoveRectangle eligibility for that tick).
  bool pre_send(ParticipantState& p, const std::vector<MoveRectangle>& scrolls,
                const std::vector<Rect>& damage, bool& was_current,
                transcode::OutputGeometry& geom);
  /// Transmit already-encoded bands (parallel to `queue`) within the
  /// participant's rate budget, cutting header-plus-view packets from each
  /// band's fragment stream. `stream_for(i)` yields band i's stream, built
  /// lazily so bands past the rate cut-off cost nothing; the shared path
  /// passes cohort-owned streams (one serialisation feeds the whole
  /// cohort), the legacy path per-participant ones. Returns the bands that
  /// must stay pending for the next tick.
  std::vector<Rect> packetize_regions(
      ParticipantState& p, const std::vector<Rect>& queue,
      const std::function<const BandStream&(std::size_t)>& stream_for);
  /// Per-participant distribute (encode once per participant): the golden
  /// reference path, kept for A/B tests and the E17 baseline.
  void distribute_legacy(const std::vector<MoveRectangle>& scrolls,
                         const std::vector<Rect>& damage);
  /// Shared-encode broadcast fan-out: plan per participant, group into
  /// operating-point cohorts, encode each band once per cohort, then
  /// packetize per endpoint in participant order.
  void distribute_shared(const std::vector<MoveRectangle>& scrolls,
                         const std::vector<Rect>& damage);
  void send_move_rectangle(ParticipantState& p, const MoveRectangle& mr);
  void send_pointer(ParticipantState& p, bool include_icon);
  void handle_rtcp(ParticipantId from, BytesView packet);
  /// Apply one sub-packet of a (possibly compound) RTCP datagram to `p`.
  void handle_rtcp_message(ParticipantState& p, const RtcpMessage& msg);
  void handle_hip(ParticipantId from, BytesView payload);
  void handle_bfcp(ParticipantId from, BytesView packet);
  /// Record uplink activity for liveness (aliases credit their group).
  void touch_liveness(ParticipantId from);
  /// Mark silent participants stale; evict those silent past the timeout.
  void sweep_liveness();
  ContentPt codec_for(const ParticipantState& p) const;
  /// Snapshot-time collector: publishes Stats, encoder/cache stage stats
  /// and the aggregated retransmission-store stats into the registry.
  void publish_metrics();

  EventLoop& loop_;
  AppHostOptions opts_;
  std::unique_ptr<telemetry::Telemetry> owned_tel_;  ///< null when injected
  telemetry::Telemetry* tel_;
  WindowManager wm_;
  ScreenCapturer capturer_;
  CodecRegistry codecs_;
  ParallelEncoder encoder_;
  /// Payload-buffer pool for the zero-copy datapath. Declared before
  /// participants_ (whose retransmission caches hold BufRefs) so teardown
  /// order exercises the detach path only when the AH itself dies mid-hold.
  buf::BufPool pool_;
  /// Flash-crowd late-join state (docs/LATEJOIN.md). Refresh bundles hold
  /// pooled stream buffers, so — like participants_ — the service is
  /// declared after pool_ and releases its BufRefs first on teardown.
  snapshot::SnapshotService snapshot_;
  std::unique_ptr<snapshot::SessionRecorder> recorder_;
  FloorControlServer floor_;
  std::map<ParticipantId, ParticipantState> participants_;
  std::map<ParticipantId, ParticipantId> member_alias_;  ///< member -> group
  ParticipantId next_participant_id_ = 1;
  SimTime last_sr_at_ = 0;
  std::uint64_t tick_count_ = 0;  ///< drives the ads::rate fps divisor
  InputSink input_sink_;
  EvictionHandler eviction_handler_;
  bool running_ = false;

  // Pointer model state (dirtiness lives per participant).
  Point pointer_{0, 0};
  Image pointer_icon_;

  // Output-geometry transcode stage (docs/TRANSCODE.md): per-tick scaled
  // frame cache, and the previous frame size so a host resize re-arms every
  // participant's pointer overlay (the re-clamped position must be re-sent).
  transcode::FrameScaler scaler_;
  std::int64_t last_frame_w_ = 0;
  std::int64_t last_frame_h_ = 0;

  // Scroll detection needs the previous exported frame.
  Image previous_frame_;
  std::uint64_t last_wmi_revision_ = ~0ull;

  // Snapshot geometry watch (invalidate bundles on a resize) and session
  // recorder bookkeeping: what the on-disk replay state already reflects.
  std::int64_t snap_frame_w_ = 0;
  std::int64_t snap_frame_h_ = 0;
  bool recorded_initial_checkpoint_ = false;
  SimTime last_checkpoint_rec_us_ = 0;
  std::uint64_t recorded_wmi_revision_ = ~0ull;
  Point recorded_pointer_{0, 0};

  // One logical remoting timestamp base shared across participants for the
  // latency measurement hook (participants' senders share the seed-derived
  // initial timestamp).
  std::uint32_t ts_base_;
  Stats stats_;
};

}  // namespace ads
