#include "core/encoded_region_cache.hpp"

namespace ads {

const Bytes* EncodedRegionCache::find(const EncodedRegionKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->payload;
}

bool EncodedRegionCache::find_copy(const EncodedRegionKey& key, Bytes& out) {
  const Bytes* hit = find(key);
  if (hit == nullptr) return false;
  out = *hit;
  return true;
}

void EncodedRegionCache::insert(const EncodedRegionKey& key, Bytes payload) {
  if (payload.size() > max_bytes_) return;
  ++generation_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->payload.size();
    bytes_ += payload.size();
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    bytes_ += payload.size();
    lru_.push_front(Entry{key, std::move(payload)});
    index_[key] = lru_.begin();
  }
  evict_to_budget();
}

void EncodedRegionCache::evict_to_budget() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

void EncodedRegionCache::clear() {
  if (!lru_.empty()) ++generation_;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace ads
