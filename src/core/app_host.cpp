#include "core/app_host.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>
#include <string>

#include "hip/hip_map.hpp"
#include "image/damage.hpp"
#include "image/scroll_detect.hpp"
#include "rtp/rtcp.hpp"
#include "util/logging.hpp"

namespace ads {
namespace {

/// Destination rectangle of a scroll — the area a participant that cannot
/// replay the move must receive as ordinary damage.
Rect dest_rect(const MoveRectangle& mr) {
  return Rect{static_cast<std::int64_t>(mr.dest_left),
              static_cast<std::int64_t>(mr.dest_top),
              static_cast<std::int64_t>(mr.width),
              static_cast<std::int64_t>(mr.height)};
}

/// Source rectangle of a scroll (the area the move replays from).
Rect src_rect(const MoveRectangle& mr) {
  return Rect{static_cast<std::int64_t>(mr.source_left),
              static_cast<std::int64_t>(mr.source_top),
              static_cast<std::int64_t>(mr.width),
              static_cast<std::int64_t>(mr.height)};
}

/// Shared-encode cohort identity — the effective operating point.
/// Participants agreeing on all five fields can share encoded band
/// payloads byte-for-byte. The geometry fields (scale rung + resolved
/// host-space source rect) split device classes into their own cohorts:
/// a quarter-res tablet and a full-res desktop can never share bytes.
struct CohortKey {
  std::uint8_t content_pt = 0;
  std::uint8_t quality = 0;  ///< ads::rate quality rung (cache-key value)
  std::size_t mtu_payload = 0;
  std::uint8_t scale_shift = 0;  ///< output geometry downscale rung
  std::array<std::int64_t, 4> src{};  ///< resolved source rect {l,t,w,h}
  friend auto operator<=>(const CohortKey&, const CohortKey&) = default;
};

/// S1 MoveRectangle geometry gate: a scroll is only replayable on a scaled
/// view when both its source and destination rects land on whole output
/// pixels — corners offset from the source-rect origin by a multiple of the
/// scale factor and extent divisible by it. Anything else would replay from
/// fractionally-covered output pixels whose box-filtered values differ from
/// a re-encode, and the scaled replica would silently diverge (the
/// geometry-unsafe MoveRectangle bug this PR fixes). Such scrolls fall back
/// to ordinary damage for that cohort.
bool mr_alignable(const transcode::OutputGeometry& g, const Rect& fb,
                  const MoveRectangle& mr) {
  const Rect s = transcode::source_rect(g, fb);
  if (g.scale_shift == 0 && s == fb) return true;  // pixel-identity view
  const Rect src = src_rect(mr);
  const Rect dst = dest_rect(mr);
  if (!s.contains(src) || !s.contains(dst)) return false;
  const std::int64_t f = g.factor();
  return (src.left - s.left) % f == 0 && (src.top - s.top) % f == 0 &&
         (dst.left - s.left) % f == 0 && (dst.top - s.top) % f == 0 &&
         src.width % f == 0 && src.height % f == 0;
}

/// Rewrite an alignable scroll into one geometry's output space (subtract
/// the source-rect origin, divide by the scale factor). Pixel-identity
/// geometries pass through unchanged.
MoveRectangle mr_to_output(const transcode::OutputGeometry& g, const Rect& fb,
                           const MoveRectangle& mr) {
  const Rect s = transcode::source_rect(g, fb);
  if (g.scale_shift == 0 && s == fb) return mr;
  const std::int64_t f = g.factor();
  MoveRectangle out = mr;
  out.source_left = static_cast<std::uint32_t>(
      (static_cast<std::int64_t>(mr.source_left) - s.left) / f);
  out.source_top = static_cast<std::uint32_t>(
      (static_cast<std::int64_t>(mr.source_top) - s.top) / f);
  out.dest_left = static_cast<std::uint32_t>(
      (static_cast<std::int64_t>(mr.dest_left) - s.left) / f);
  out.dest_top = static_cast<std::uint32_t>(
      (static_cast<std::int64_t>(mr.dest_top) - s.top) / f);
  out.width = static_cast<std::uint32_t>(mr.width / static_cast<std::uint32_t>(f));
  out.height = static_cast<std::uint32_t>(mr.height / static_cast<std::uint32_t>(f));
  return out;
}

}  // namespace

AppHostOptions AppHost::validated(AppHostOptions opts) {
  if (opts.frame_interval_us == 0) {
    throw std::invalid_argument("AppHostOptions: frame_interval_us must be > 0");
  }
  if (opts.screen_width <= 0 || opts.screen_height <= 0) {
    throw std::invalid_argument("AppHostOptions: screen dimensions must be > 0");
  }
  if (opts.mtu_payload == 0) {
    throw std::invalid_argument("AppHostOptions: mtu_payload must be > 0");
  }
  // Clamp merely-nonsensical combinations to the nearest workable value.
  if (opts.damage_tile <= 0) opts.damage_tile = 32;
  if (opts.region_band_rows < 0) opts.region_band_rows = 0;
  // A rate-controlled UDP participant whose burst cannot cover one MTU
  // would never pass the §4.3 gate and stall forever.
  if ((opts.udp_rate_bps > 0 || opts.adaptation.enabled) &&
      opts.udp_burst_bytes < opts.mtu_payload) {
    opts.udp_burst_bytes = opts.mtu_payload;
  }
  auto& a = opts.adaptation;
  if (a.min_rate_bps > a.max_rate_bps) std::swap(a.min_rate_bps, a.max_rate_bps);
  a.initial_rate_bps = std::clamp(a.initial_rate_bps, a.min_rate_bps, a.max_rate_bps);
  if (a.max_fps_divisor < 1) a.max_fps_divisor = 1;
  if (a.backlog_window < 1) a.backlog_window = 1;
  opts.snapshot = snapshot::SnapshotService::validated(std::move(opts.snapshot));
  return opts;
}

AppHost::AppHost(EventLoop& loop, AppHostOptions opts)
    : loop_(loop),
      opts_(validated(std::move(opts))),
      owned_tel_(opts_.telemetry != nullptr
                     ? nullptr
                     : std::make_unique<telemetry::Telemetry>()),
      tel_(opts_.telemetry != nullptr ? opts_.telemetry : owned_tel_.get()),
      capturer_(wm_, opts_.screen_width, opts_.screen_height, opts_.damage_tile),
      codecs_(CodecRegistry::with_defaults()),
      encoder_(codecs_, {.threads = opts_.encode_threads,
                         .cache_bytes = opts_.encoded_cache_bytes}),
      snapshot_(opts_.snapshot),
      floor_(FloorControlOptions{.conference_id = 1, .floor_id = 0}),
      pointer_icon_(8, 12, Pixel{255, 255, 255, 255}) {
  // All per-participant senders share one seed, hence one timestamp base —
  // the AH is one media source fanned out to many sinks.
  ts_base_ = RtpSender(kRemotingPayloadType, opts_.seed).timestamp_at(0);

  // Trace spans run on the event loop's virtual clock, so traces are
  // deterministic: same session, same spans, any machine.
  if (opts_.trace_capacity > 0 && !tel_->trace.enabled()) {
    tel_->trace.enable(opts_.trace_capacity, [lp = &loop_] { return lp->now(); });
  }
  tel_->metrics.add_collector(this, [this] { publish_metrics(); });

  // Session record/replay substrate: stream checkpoint + updates to disk
  // whenever a path is configured. A failed open latches the recorder into
  // a no-op — recording must never take the session down.
  if (!opts_.snapshot.record_path.empty()) {
    recorder_ =
        std::make_unique<snapshot::SessionRecorder>(opts_.snapshot.record_path);
    if (!recorder_->ok()) {
      ADS_LOG(kWarn) << "session recorder failed to open "
                     << opts_.snapshot.record_path;
    }
  }
}

AppHost::~AppHost() { tel_->metrics.remove_collectors(this); }

void AppHost::publish_metrics() {
  auto& m = tel_->metrics;
  m.counter("ah.frames_captured").set(stats_.frames_captured);
  m.counter("ah.region_updates_sent").set(stats_.region_updates_sent);
  m.counter("ah.move_rectangles_sent").set(stats_.move_rectangles_sent);
  m.counter("ah.wmi_sent").set(stats_.wmi_sent);
  m.counter("ah.pointer_msgs_sent").set(stats_.pointer_msgs_sent);
  m.counter("ah.rtp_packets_sent").set(stats_.rtp_packets_sent);
  m.counter("ah.bytes_sent").set(stats_.bytes_sent);
  m.counter("ah.frames_skipped_backlog").set(stats_.frames_skipped_backlog);
  m.counter("ah.frames_skipped_rate").set(stats_.frames_skipped_rate);
  m.counter("ah.frames_skipped_fps").set(stats_.frames_skipped_fps);
  m.counter("ah.srs_sent").set(stats_.srs_sent);
  m.counter("ah.rrs_received").set(stats_.rrs_received);
  m.counter("ah.retransmissions_sent").set(stats_.retransmissions_sent);
  m.counter("ah.nacks_received").set(stats_.nacks_received);
  m.counter("ah.plis_received").set(stats_.plis_received);
  m.counter("ah.hip_events_accepted").set(stats_.hip_events_accepted);
  m.counter("ah.hip_events_rejected_coords").set(stats_.hip_events_rejected_coords);
  m.counter("ah.hip_events_rejected_floor").set(stats_.hip_events_rejected_floor);
  m.counter("ah.hip_parse_errors").set(stats_.hip_parse_errors);
  m.gauge("ah.participants").set(static_cast<std::int64_t>(participants_.size()));
  m.counter("fanout.cohorts").set(stats_.fanout_cohorts);
  m.counter("fanout.encodes_unique").set(stats_.fanout_encodes_unique);
  m.counter("fanout.encodes_shared").set(stats_.fanout_encodes_shared);
  m.counter("datapath.packets_built").set(stats_.packets_built);
  m.counter("datapath.payload_bytes_copied").set(stats_.payload_bytes_copied);
  m.counter("datapath.band_streams_built").set(stats_.band_streams_built);
  const buf::BufPoolStats& bp = pool_.stats();
  m.counter("datapath.pool.acquires").set(bp.acquires);
  m.counter("datapath.pool.hits").set(bp.pool_hits);
  m.counter("datapath.pool.allocations").set(bp.allocations);
  m.counter("datapath.pool.recycles").set(bp.recycles);
  m.counter("datapath.pool.frees").set(bp.frees);
  m.gauge("datapath.pool.outstanding")
      .set(static_cast<std::int64_t>(bp.outstanding));

  const ParallelEncoder::Stats& es = encoder_.stats();
  m.counter("encoder.bands_requested").set(es.bands_requested);
  m.counter("encoder.bands_encoded").set(es.bands_encoded);
  m.counter("encoder.encode_calls").set(es.encode_calls);
  m.gauge("encoder.queue_depth_peak")
      .set(static_cast<std::int64_t>(es.peak_queue_depth));
  m.gauge("encoder.threads").set(static_cast<std::int64_t>(encoder_.threads()));
  m.counter("cache.hits").set(es.cache_hits);
  m.counter("cache.misses").set(es.cache_misses);
  m.counter("cache.bytes_saved").set(es.cache_hit_bytes);
  EncodedRegionCache& cache = encoder_.cache();
  m.gauge("cache.bytes").set(static_cast<std::int64_t>(cache.bytes()));
  m.gauge("cache.entries").set(static_cast<std::int64_t>(cache.entries()));
  m.counter("cache.evictions").set(cache.evictions());

  std::uint64_t rtx_hits = 0;
  std::uint64_t rtx_misses = 0;
  std::uint64_t rtx_evictions = 0;
  std::uint64_t rtx_cached = 0;
  for (const auto& [id, p] : participants_) {
    rtx_hits += p.cache.hits();
    rtx_misses += p.cache.misses();
    rtx_evictions += p.cache.evictions();
    rtx_cached += p.cache.size();
  }
  m.counter("rtx.hits").set(rtx_hits);
  m.counter("rtx.misses").set(rtx_misses);
  m.counter("rtx.evictions").set(rtx_evictions);
  m.gauge("rtx.cached_packets").set(static_cast<std::int64_t>(rtx_cached));

  if (opts_.adaptation.enabled) {
    std::uint64_t increases = 0, decreases = 0, q_changes = 0, fps_changes = 0;
    for (const auto& [id, p] : participants_) {
      const rate::ControllerStats& rs = p.rate_ctrl.stats();
      increases += rs.increases;
      decreases += rs.decreases;
      q_changes += rs.quality_changes;
      fps_changes += rs.fps_changes;
      const rate::OperatingPoint& op = p.rate_ctrl.current();
      const std::string prefix = "rate.p" + std::to_string(id) + ".";
      m.gauge(prefix + "budget_bps")
          .set(static_cast<std::int64_t>(op.rate_bps));
      m.gauge(prefix + "quality_step").set(op.quality_step);
      m.gauge(prefix + "fps_divisor").set(op.fps_divisor);
    }
    m.counter("rate.increases").set(increases);
    m.counter("rate.decreases").set(decreases);
    m.counter("rate.quality_changes").set(q_changes);
    m.counter("rate.fps_changes").set(fps_changes);
  }

  std::int64_t stale_now = 0;
  for (const auto& [id, p] : participants_) {
    if (p.stale) ++stale_now;
  }
  m.gauge("liveness.stale").set(stale_now);
  m.counter("liveness.stale_transitions").set(stats_.stale_transitions);
  m.counter("liveness.evictions").set(stats_.participants_evicted);

  // Flash-crowd late-join families (docs/LATEJOIN.md; names in TELEMETRY.md).
  const snapshot::SnapshotService::Stats& sn = snapshot_.stats();
  m.counter("snapshot.windows_opened").set(sn.windows_opened);
  m.counter("snapshot.windows_closed").set(sn.windows_closed);
  m.counter("snapshot.bundles_built").set(sn.bundles_built);
  m.counter("snapshot.bundle_bands").set(sn.bundle_bands);
  m.counter("snapshot.bundles_served").set(sn.bundles_served);
  m.counter("snapshot.encodes_saved").set(sn.encodes_saved);
  m.counter("snapshot.plis_absorbed").set(sn.plis_absorbed);
  m.counter("snapshot.build_failures").set(sn.build_failures);
  m.counter("snapshot.budget_rejections").set(sn.budget_rejections);
  m.counter("snapshot.delta_evictions").set(sn.delta_evictions);
  m.counter("snapshot.invalidations").set(sn.invalidations);
  m.counter("snapshot.delta_rects").set(sn.delta_rects);
  m.gauge("snapshot.live_bundles")
      .set(static_cast<std::int64_t>(snapshot_.bundle_count()));
  if (recorder_ != nullptr) {
    const snapshot::SessionRecorder::Stats& rs = recorder_->stats();
    m.counter("snapshot.record.checkpoints").set(rs.checkpoints);
    m.counter("snapshot.record.region_updates").set(rs.region_updates);
    m.counter("snapshot.record.move_rects").set(rs.move_rects);
    m.counter("snapshot.record.bytes").set(rs.bytes_written);
  }
  m.counter("join.admissions").set(stats_.join_admissions);
  m.counter("join.shared_refreshes").set(stats_.join_shared_refreshes);
  m.counter("join.fallback_refreshes").set(stats_.join_fallback_refreshes);
  m.counter("join.waves").set(sn.windows_opened);

  // Output-geometry transcode family (docs/TRANSCODE.md; names in
  // TELEMETRY.md).
  const transcode::FrameScaler::Stats& ts = scaler_.stats();
  m.counter("transcode.frames_scaled").set(ts.frames_scaled);
  m.counter("transcode.pixels_scaled").set(ts.pixels_scaled);
  m.counter("transcode.cache_hits").set(ts.cache_hits);
  m.counter("transcode.hip_events_mapped").set(stats_.hip_events_mapped);
  m.counter("transcode.viewport_moves").set(stats_.viewport_moves);
  m.counter("transcode.move_rects_blocked")
      .set(stats_.move_rects_geometry_skipped);
  m.counter("transcode.bytes_full").set(stats_.bytes_sent_full);
  m.counter("transcode.bytes_half").set(stats_.bytes_sent_half);
  m.counter("transcode.bytes_quarter").set(stats_.bytes_sent_quarter);
  m.counter("transcode.bytes_viewport").set(stats_.bytes_sent_viewport);
}

ParticipantId AppHost::add_participant(HostEndpoint endpoint,
                                       ParticipantId reuse_id) {
  const bool reuse =
      reuse_id != 0 && participants_.find(reuse_id) == participants_.end();
  const ParticipantId id = reuse ? reuse_id : next_participant_id_++;
  const bool udp = endpoint.kind == HostEndpoint::Kind::kUdp;
  // With adaptation on, the controller's initial budget seeds the bucket;
  // the static udp_rate_bps only applies to the non-adaptive path.
  const std::uint64_t rate_bps =
      !udp ? 0
           : (opts_.adaptation.enabled ? opts_.adaptation.initial_rate_bps
                                       : opts_.udp_rate_bps);
  auto [it, inserted] = participants_.try_emplace(
      id, kRemotingPayloadType, opts_.seed, opts_.retransmission_cache,
      rate_bps, opts_.udp_burst_bytes,
      udp ? rate::Transport::kUdp : rate::Transport::kTcp, opts_.adaptation);
  it->second.endpoint = std::move(endpoint);
  if (it->second.endpoint.kind == HostEndpoint::Kind::kTcp) {
    // §4.4: "The AH prepares and transmits the windows' state information
    // and image of the whole shared region to the new participant, right
    // after the TCP connection establishment."
    it->second.needs_wmi = true;
    it->second.needs_full_refresh = true;
  }
  it->second.last_uplink_us = loop_.now();
  return id;
}

bool AppHost::participant_stale(ParticipantId id) const {
  auto it = participants_.find(id);
  return it != participants_.end() && it->second.stale;
}

void AppHost::touch_liveness(ParticipantId from) {
  auto alias = member_alias_.find(from);
  const ParticipantId id = alias == member_alias_.end() ? from : alias->second;
  auto it = participants_.find(id);
  if (it == participants_.end()) return;
  it->second.last_uplink_us = loop_.now();
  it->second.stale = false;
}

void AppHost::sweep_liveness() {
  if (opts_.stale_after_us == 0 && opts_.evict_after_us == 0) return;
  const SimTime now = loop_.now();
  std::vector<ParticipantId> evict;
  for (auto& [id, p] : participants_) {
    const SimTime silent = now - p.last_uplink_us;
    if (opts_.stale_after_us > 0 && silent >= opts_.stale_after_us && !p.stale) {
      p.stale = true;
      ++stats_.stale_transitions;
    }
    if (opts_.evict_after_us > 0 && silent >= opts_.evict_after_us) {
      evict.push_back(id);
    }
  }
  for (ParticipantId id : evict) {
    // Erasing the state reclaims the token bucket, retransmission cache,
    // stream carry and uplink deframer; the rtx.* totals and
    // ah.participants gauge follow automatically at the next snapshot.
    participants_.erase(id);
    ++stats_.participants_evicted;
    if (eviction_handler_) eviction_handler_(id);
  }
}

void AppHost::remove_participant(ParticipantId id) { participants_.erase(id); }

ParticipantId AppHost::add_member_alias(ParticipantId group) {
  const ParticipantId member = next_participant_id_++;
  member_alias_[member] = group;
  return member;
}

const ReportBlock* AppHost::last_receiver_report(ParticipantId id) const {
  auto alias = member_alias_.find(id);
  const ParticipantId key = alias == member_alias_.end() ? id : alias->second;
  auto it = participants_.find(key);
  if (it == participants_.end() || !it->second.last_rr) return nullptr;
  return &*it->second.last_rr;
}

const rate::OperatingPoint* AppHost::participant_operating_point(
    ParticipantId id) const {
  auto it = participants_.find(id);
  if (it == participants_.end()) return nullptr;
  return &it->second.rate_ctrl.current();
}

void AppHost::start() {
  if (running_) return;
  running_ = true;
  schedule_tick();
}

void AppHost::schedule_tick() {
  loop_.after(opts_.frame_interval_us, [this] {
    if (!running_) return;
    tick();
    schedule_tick();
  });
}

SimTime AppHost::remoting_timestamp_to_us(std::uint32_t rtp_ts) const {
  const std::uint32_t ticks = rtp_ts - ts_base_;
  return static_cast<SimTime>(ticks) * 1000 / 90;
}

SessionDescription AppHost::sdp_offer() const {
  SharingOffer offer;
  offer.remoting_pt = kRemotingPayloadType;
  offer.hip_pt = kHipPayloadType;
  offer.retransmissions = opts_.retransmissions;
  return build_sharing_offer(offer);
}

void AppHost::set_pointer(Point p, const Image* icon) {
  bool moved = false;
  if (p != pointer_) {
    pointer_ = p;
    moved = true;
  }
  const bool icon_changed = icon != nullptr;
  if (icon_changed) pointer_icon_ = *icon;
  if (!moved && !icon_changed) return;
  // Dirtiness is per participant so a tick skipped by the fps divisor, the
  // §7 backlog gate or the §4.3 bucket still delivers the update when that
  // participant next sends. Late joiners get the pointer via the §5.2.4
  // full-refresh path instead.
  for (auto& [id, ps] : participants_) {
    ps.pointer_dirty = true;
    if (icon_changed) ps.pointer_icon_dirty = true;
  }
}

bool AppHost::set_participant_codec(ParticipantId id, ContentPt codec) {
  auto it = participants_.find(id);
  if (it == participants_.end()) return false;
  if (codecs_.find(codec) == nullptr) return false;
  it->second.codec = codec;
  return true;
}

ContentPt AppHost::codec_for(const ParticipantState& p) const {
  return p.codec.value_or(opts_.codec);
}

bool AppHost::set_participant_geometry(ParticipantId id,
                                       transcode::OutputGeometry geom) {
  auto it = participants_.find(id);
  if (it == participants_.end()) return false;
  if (geom.scale_shift > transcode::kMaxScaleShift) return false;
  it->second.geometry = geom;
  // Force re-resolution next tick (an unchanged-looking source rect from a
  // different geometry must not suppress the refresh), and queue the full
  // picture at the new geometry — a scaled replica cannot patch itself from
  // deltas encoded for the old output space.
  it->second.geometry_src = Rect{};
  it->second.needs_full_refresh = true;
  return true;
}

const transcode::OutputGeometry* AppHost::participant_geometry(
    ParticipantId id) const {
  auto it = participants_.find(id);
  return it == participants_.end() ? nullptr : &it->second.geometry;
}

void AppHost::set_screen_size(std::int64_t width, std::int64_t height) {
  capturer_.set_screen_size(width, height);
  // Keep the validated options in sync with the live framebuffer; the next
  // tick()'s frame-size watches handle the rest (full damage via the
  // DamageTracker resize path, snapshot invalidation in snapshot_stage, and
  // the re-clamped pointer overlay resend).
  opts_.screen_width = capturer_.width();
  opts_.screen_height = capturer_.height();
}

transcode::OutputGeometry AppHost::resolve_geometry(
    const ParticipantState& p) const {
  transcode::OutputGeometry g = p.geometry;
  if (g.follow) {
    // Viewport-follow streams the focused (topmost shared) window; with no
    // shared window the viewport clears and the view degrades to the whole
    // frame at the negotiated scale rung.
    const std::vector<Window> shared = wm_.shared_windows();
    g.viewport = shared.empty() ? Rect{} : shared.back().frame;
  }
  return g;
}

std::vector<Rect> AppHost::geometry_bands(
    const transcode::OutputGeometry& geom,
    const std::vector<Rect>& host_rects) const {
  const Rect fb = capturer_.last_frame().bounds();
  // Pixel-identity views band the host rects directly — bit-for-bit the
  // pre-geometry behaviour, which keeps the legacy/shared A/B byte-identity
  // (both paths call this same helper).
  if (geom.scale_shift == 0 && transcode::source_rect(geom, fb) == fb) {
    return band_split(host_rects);
  }
  Region out;
  for (const Rect& r : host_rects) {
    const Rect mapped = transcode::map_rect_to_output(geom, fb, r);
    if (!mapped.empty()) out.add(mapped);
  }
  out.simplify();
  return band_split(out.rects());
}

void AppHost::transmit_view(ParticipantState& p, const PacketView& v, SimTime now) {
  ++stats_.rtp_packets_sent;
  ++stats_.packets_built;
  stats_.bytes_sent += v.wire_size();
  // Per-device-class byte split (declared geometry, not the per-tick
  // resolved viewport — the class is a property of the receiver).
  switch (transcode::device_class(p.geometry)) {
    case transcode::DeviceClass::kFull: stats_.bytes_sent_full += v.wire_size(); break;
    case transcode::DeviceClass::kHalf: stats_.bytes_sent_half += v.wire_size(); break;
    case transcode::DeviceClass::kQuarter:
      stats_.bytes_sent_quarter += v.wire_size();
      break;
    case transcode::DeviceClass::kViewport:
      stats_.bytes_sent_viewport += v.wire_size();
      break;
  }

  if (p.endpoint.kind == HostEndpoint::Kind::kUdp) {
    p.cache.put(v);  // shares the payload buffer: 16 header bytes + a ref
    p.bucket.consume(v.wire_size(), now);
    if (p.batching) {
      p.tx_batch.push_back(v);
      return;
    }
    if (p.endpoint.send_packet) {
      p.endpoint.send_packet(v);
      return;
    }
    if (p.endpoint.send_datagram) {
      // View-unaware endpoint: materialise here and count the copy.
      const Bytes wire = v.serialize();
      stats_.payload_bytes_copied += wire.size();
      p.endpoint.send_datagram(wire);
    }
    return;
  }

  // TCP: RFC 4571 framing; a partial write carries over so frames are never
  // torn mid-stream.
  if (v.wire_size() > 0xFFFF) {
    ADS_LOG(kWarn) << "RTP packet too large for RFC4571 framing: " << v.wire_size();
    return;
  }
  if (p.endpoint.write_gather) {
    // Gather path: carry + length prefix + RTP header + shared payload go to
    // the transport as one logical write — the same bytes, in the same
    // single offer, as the staged fallback below, so segmentation and stats
    // match byte-for-byte. Only the unaccepted suffix is re-staged.
    std::array<BytesView, 3> parts;
    std::size_t n = 0;
    if (!p.stream_carry.empty()) parts[n++] = BytesView(p.stream_carry);
    parts[n++] = v.framed_header();
    parts[n++] = v.payload();
    const std::span<const BytesView> offer(parts.data(), n);
    std::size_t wrote = p.endpoint.write_gather(offer);
    Bytes carry;
    for (const BytesView& part : offer) {
      const std::size_t taken = std::min(wrote, part.size());
      wrote -= taken;
      if (taken < part.size()) {
        carry.insert(carry.end(), part.begin() + static_cast<std::ptrdiff_t>(taken),
                     part.end());
      }
    }
    stats_.payload_bytes_copied += carry.size();  // bytes physically re-staged
    p.stream_carry = std::move(carry);
    return;
  }
  // Staged fallback for endpoints without a gather callback.
  const BytesView fh = v.framed_header();
  const BytesView pl = v.payload();
  stats_.payload_bytes_copied += v.framed_size();
  p.stream_carry.insert(p.stream_carry.end(), fh.begin(), fh.end());
  p.stream_carry.insert(p.stream_carry.end(), pl.begin(), pl.end());
  if (p.endpoint.write_stream) {
    const std::size_t wrote = p.endpoint.write_stream(p.stream_carry);
    p.stream_carry.erase(p.stream_carry.begin(),
                         p.stream_carry.begin() + static_cast<std::ptrdiff_t>(wrote));
  }
}

void AppHost::begin_tx_batch(ParticipantState& p) {
  p.batching = p.endpoint.kind == HostEndpoint::Kind::kUdp &&
               p.endpoint.send_packet_batch != nullptr;
}

void AppHost::flush_tx(ParticipantState& p) {
  if (!p.batching) return;
  p.batching = false;
  if (p.tx_batch.empty()) return;
  p.endpoint.send_packet_batch(std::span<const PacketView>(p.tx_batch));
  p.tx_batch.clear();
}

void AppHost::send_payload(ParticipantState& p, Bytes payload, bool marker,
                           SimTime now) {
  // Control-plane messages (WMI, MoveRectangle, pointer fragments) move
  // their bytes into a pooled buffer — ownership transfer, not a copy.
  const std::size_t length = payload.size();
  buf::BufRef buf = pool_.acquire(0);
  buf.bytes() = std::move(payload);
  const PacketView v = p.sender.make_view(marker, now, std::move(buf), 0, length);
  transmit_view(p, v, now);
}

void AppHost::send_wmi(ParticipantState& p) {
  const WindowManagerInfo msg = WindowManagerInfo::from(wm_);
  send_payload(p, msg.serialize(), /*marker=*/false, loop_.now());
  ++stats_.wmi_sent;
  p.needs_wmi = false;
}

void AppHost::send_move_rectangle(ParticipantState& p, const MoveRectangle& mr) {
  send_payload(p, mr.serialize(), /*marker=*/false, loop_.now());
  ++stats_.move_rectangles_sent;
}

void AppHost::send_pointer(ParticipantState& p, bool include_icon) {
  // Clamp the host pointer into the frame *before* the window lookup and
  // the geometry mapping: a pointer parked on (or past) the right/bottom
  // edge — including one stranded outside the bounds by a host resize —
  // must render on the last on-screen pixel, not one past it (§5.2.4).
  const Rect fb = capturer_.last_frame().bounds();
  Point host{std::max<std::int64_t>(0, pointer_.x),
             std::max<std::int64_t>(0, pointer_.y)};
  if (!fb.empty()) {
    host.x = std::min(host.x, fb.right() - 1);
    host.y = std::min(host.y, fb.bottom() - 1);
  }
  // Scaled/viewport viewers get the position in their own output space; the
  // icon stays native-size (cursors render 1:1 on the viewer, like real
  // remote-desktop stacks).
  const transcode::OutputGeometry geom = resolve_geometry(p);
  const Point out =
      fb.empty() ? host : transcode::map_point_to_output(geom, fb, host);
  RegionUpdate carrier;
  carrier.window_id = wm_.shared_window_at(host).value_or(0);
  carrier.content_pt = static_cast<std::uint8_t>(codec_for(p));
  carrier.left = static_cast<std::uint32_t>(std::max<std::int64_t>(0, out.x));
  carrier.top = static_cast<std::uint32_t>(std::max<std::int64_t>(0, out.y));
  if (include_icon) {
    carrier.content = codecs_.find(codec_for(p))->encode(pointer_icon_);
  }
  auto frags = fragment_region_update(carrier, opts_.mtu_payload,
                                      RemotingType::kMousePointerInfo);
  for (auto& frag : frags) {
    send_payload(p, std::move(frag.payload), frag.marker, loop_.now());
  }
  ++stats_.pointer_msgs_sent;
}

std::vector<Rect> AppHost::band_split(const std::vector<Rect>& rects) const {
  // Band-split tall rectangles so each RegionUpdate stays modest; this lets
  // rate control stop between bands instead of mid-message, and gives the
  // shared fan-out its deduplication granularity.
  std::vector<Rect> queue;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    if (opts_.region_band_rows <= 0 || r.height <= opts_.region_band_rows) {
      queue.push_back(r);
      continue;
    }
    for (std::int64_t top = r.top; top < r.bottom(); top += opts_.region_band_rows) {
      queue.push_back(Rect{r.left, top, r.width,
                           std::min(opts_.region_band_rows, r.bottom() - top)});
    }
  }
  return queue;
}

AppHost::BandStream AppHost::make_band_stream(const Rect& r, ContentPt pt,
                                              Bytes content,
                                              const transcode::OutputGeometry& geom) {
  RegionUpdate msg;
  // Band rects are output-space under a non-identity geometry; the window
  // ownership lookup lives in host space, so map the centre back first.
  const Point centre{r.left + r.width / 2, r.top + r.height / 2};
  const Point host_centre =
      transcode::map_point_to_host(geom, capturer_.last_frame().bounds(), centre);
  msg.window_id = wm_.shared_window_at(host_centre).value_or(0);
  msg.content_pt = static_cast<std::uint8_t>(pt);
  msg.left = static_cast<std::uint32_t>(std::max<std::int64_t>(0, r.left));
  msg.top = static_cast<std::uint32_t>(std::max<std::int64_t>(0, r.top));
  msg.content = std::move(content);

  BandStream bs;
  bs.buf = pool_.acquire(msg.content.size() + 64);
  bs.frags = fragment_region_update_into(msg, opts_.mtu_payload, bs.buf.bytes());
  // The one staging copy of the datapath: content + fragment headers
  // serialised into the pooled stream buffer.
  stats_.payload_bytes_copied += bs.buf.bytes().size();
  return bs;
}

std::vector<Rect> AppHost::packetize_regions(
    ParticipantState& p, const std::vector<Rect>& queue,
    const std::function<const BandStream&(std::size_t)>& stream_for) {
  const SimTime now = loop_.now();
  const bool rate_limited =
      p.endpoint.kind == HostEndpoint::Kind::kUdp && !p.bucket.unlimited();
  std::vector<Rect> leftover;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (rate_limited && p.bucket.available(now) <= 0) {
      // Budget exhausted mid-frame: carry the rest into the next tick.
      leftover.insert(leftover.end(), queue.begin() + static_cast<std::ptrdiff_t>(i),
                      queue.end());
      break;
    }
    const BandStream& bs = stream_for(i);
    for (const FragmentSpan& fs : bs.frags) {
      const PacketView v =
          p.sender.make_view(fs.marker, now, bs.buf, fs.offset, fs.length);
      transmit_view(p, v, now);
    }
    ++stats_.region_updates_sent;
  }
  return leftover;
}

std::vector<Rect> AppHost::send_regions(ParticipantState& p,
                                        const std::vector<Rect>& rects,
                                        const transcode::OutputGeometry& geom) {
  // Host-space damage → output-space bands through this participant's
  // geometry (identity passes straight through to band_split).
  std::vector<Rect> queue = geometry_bands(geom, rects);

  // Encode every band up front — cache lookups first, then misses fanned
  // out across the worker pool (drained in sequence order, so the payloads
  // below are byte-identical to encoding serially in the send loop). The
  // ads::rate quality rung rides in as an encode parameter (and cache key)
  // for lossy codecs. Scaled geometries encode from the per-tick scaler
  // cache; identity views borrow the live frame without a copy.
  const ContentPt pt = codec_for(p);
  EncodeParams params;
  if (opts_.adaptation.enabled && pt == ContentPt::kDct) {
    params.dct_quality = p.rate_ctrl.current().dct_quality;
  }
  std::vector<Bytes> payloads = [&] {
    telemetry::ScopedSpan span(tel_->trace, "ah.encode");
    return encoder_.encode_regions(scaler_.view(capturer_.last_frame(), geom),
                                   queue, pt, params);
  }();

  telemetry::ScopedSpan packetise_span(tel_->trace, "ah.packetise");
  // Per-participant streams, built lazily past the rate gate. Not counted
  // as band_streams_built — that counter is the shared path's
  // once-per-cohort serialisation signal.
  std::vector<BandStream> streams(queue.size());
  auto stream_for = [&](std::size_t i) -> const BandStream& {
    BandStream& bs = streams[i];
    if (!bs.buf) bs = make_band_stream(queue[i], pt, std::move(payloads[i]), geom);
    return bs;
  };
  std::vector<Rect> leftover = packetize_regions(p, queue, stream_for);
  // Pending damage is host-space: map rate-limited output-space leftovers
  // back through the geometry before they re-queue.
  const Rect fb = capturer_.last_frame().bounds();
  if (geom.scale_shift == 0 && transcode::source_rect(geom, fb) == fb) {
    return leftover;
  }
  std::vector<Rect> host;
  host.reserve(leftover.size());
  for (const Rect& r : leftover) {
    const Rect mapped = transcode::map_rect_to_host(geom, fb, r);
    if (!mapped.empty()) host.push_back(mapped);
  }
  return host;
}

void AppHost::send_full_refresh(ParticipantState& p,
                                const transcode::OutputGeometry& geom) {
  // "image of the whole shared region" (§4.3): RegionUpdates covering the
  // participant's output view of the shared frame (band-split; any
  // rate-limited remainder stays pending and completes over the following
  // ticks).
  p.pending.clear();
  ++stats_.join_admissions;
  auto leftover = send_regions(p, {capturer_.last_frame().bounds()}, geom);
  for (const Rect& r : leftover) p.pending.add(r);
  p.needs_full_refresh = false;
}

bool AppHost::pre_send(ParticipantState& p,
                       const std::vector<MoveRectangle>& scrolls,
                       const std::vector<Rect>& damage, bool& was_current,
                       transcode::OutputGeometry& geom) {
  // Flush any carried-over TCP bytes first.
  if (p.endpoint.kind == HostEndpoint::Kind::kTcp && !p.stream_carry.empty() &&
      p.endpoint.write_stream) {
    const std::size_t wrote = p.endpoint.write_stream(p.stream_carry);
    p.stream_carry.erase(p.stream_carry.begin(),
                         p.stream_carry.begin() + static_cast<std::ptrdiff_t>(wrote));
  }

  // Resolve this tick's output geometry (follow mode re-anchors to the
  // topmost shared window). A moved source rect queues the newly-streamed
  // area as pending damage — and because this runs before the was_current
  // probe below, the move also disqualifies MoveRectangle replay this tick
  // (the replica has never seen the pixels the scroll would copy from).
  geom = resolve_geometry(p);
  const Rect src =
      transcode::source_rect(geom, capturer_.last_frame().bounds());
  if (src != p.geometry_src) {
    if (!p.geometry_src.empty()) {
      p.pending.add(src);
      if (p.geometry.follow || !p.geometry.viewport.empty()) {
        ++stats_.viewport_moves;
      }
    }
    p.geometry_src = src;
  }

  // §5.2.2 MoveRectangle eligibility is decided on the state the
  // participant was in *before* this tick's damage lands: only a replica
  // with nothing pending is guaranteed current over every scroll source.
  // (Comparing pending area against this tick's damage area misclassifies
  // a lagging participant whose stale region gets re-damaged this tick —
  // it would replay the move from stale source pixels and diverge.)
  was_current = p.pending.empty();

  // Accumulate this tick's damage for everyone.
  for (const Rect& r : damage) p.pending.add(r);

  // ads::rate control interval: feed this tick's backlog observation
  // (TCP), run the AIMD update, and re-target the token bucket (UDP).
  // With adaptation disabled update() is a no-op returning the static
  // operating point.
  if (opts_.adaptation.enabled) {
    if (p.endpoint.kind == HostEndpoint::Kind::kTcp) {
      const std::size_t backlog =
          (p.endpoint.backlog ? p.endpoint.backlog() : 0) + p.stream_carry.size();
      p.rate_ctrl.on_backlog_sample(backlog, loop_.now());
    }
    const rate::OperatingPoint& op = p.rate_ctrl.update(loop_.now());
    if (p.endpoint.kind == HostEndpoint::Kind::kUdp) {
      p.bucket.set_rate(op.rate_bps, loop_.now());
    }
    // Frame-interval scaling: send this participant's frame only every
    // Nth capture tick. Damage (and scrolled areas, which cannot be
    // replayed later) keeps accumulating as pending.
    if (op.fps_divisor > 1 &&
        tick_count_ % static_cast<std::uint64_t>(op.fps_divisor) != 0) {
      ++stats_.frames_skipped_fps;
      for (const MoveRectangle& mr : scrolls) p.pending.add(dest_rect(mr));
      return false;
    }
  }

  // §7 backlog policy: if this TCP participant still has unsent bytes,
  // skip its frame — pending damage keeps accumulating and the latest
  // state is sent when the pipe drains ("a viewer usually only needs to
  // see the final state of the image"). The §4.3 UDP rate-control bucket
  // applies the same policy to UDP participants.
  bool skip = false;
  if (p.endpoint.kind == HostEndpoint::Kind::kTcp &&
      opts_.tcp_backlog_limit > 0) {
    const std::size_t backlog =
        (p.endpoint.backlog ? p.endpoint.backlog() : 0) + p.stream_carry.size();
    if (backlog > opts_.tcp_backlog_limit) {
      skip = true;
      ++stats_.frames_skipped_backlog;
    }
  }
  if (p.endpoint.kind == HostEndpoint::Kind::kUdp && !p.bucket.unlimited() &&
      p.bucket.available(loop_.now()) < static_cast<double>(opts_.mtu_payload)) {
    skip = true;
    ++stats_.frames_skipped_rate;
  }
  if (skip) {
    // Scrolled areas cannot be replayed later (the participant missed
    // the base); convert them to pending damage.
    for (const MoveRectangle& mr : scrolls) p.pending.add(dest_rect(mr));
    return false;
  }
  return true;
}

void AppHost::distribute_legacy(const std::vector<MoveRectangle>& scrolls,
                                const std::vector<Rect>& damage) {
  const Rect fb = capturer_.last_frame().bounds();
  for (auto& [id, p] : participants_) {
    bool was_current = false;
    transcode::OutputGeometry geom;
    if (!pre_send(p, scrolls, damage, was_current, geom)) continue;

    // One TX batch per participant turn: everything queued below goes to
    // the transport in a single drain at the end of the turn.
    begin_tx_batch(p);
    if (p.needs_wmi) send_wmi(p);
    if (p.needs_full_refresh) {
      send_full_refresh(p, geom);
      // §5.2.4: "If the AH uses MousePointerInfo messages, it MUST inform
      // the late joiners about the current position and image of mouse
      // pointer."
      if (opts_.pointer_messages) send_pointer(p, /*include_icon=*/true);
      p.pointer_dirty = false;
      p.pointer_icon_dirty = false;
      ++p.frames_sent;
      flush_tx(p);
      continue;
    }

    // MoveRectangle only helps a participant whose view was current before
    // this tick; lagging participants get the moved area as ordinary
    // damage. On a scaled/viewport view the scroll additionally has to pass
    // the S1 alignment gate — a non-replayable move degrades to damage.
    const bool caught_up = p.frames_sent > 0 && was_current;
    if (caught_up) {
      for (const MoveRectangle& mr : scrolls) {
        if (mr_alignable(geom, fb, mr)) {
          send_move_rectangle(p, mr_to_output(geom, fb, mr));
        } else {
          p.pending.add(dest_rect(mr));
          ++stats_.move_rects_geometry_skipped;
        }
      }
    } else {
      for (const MoveRectangle& mr : scrolls) p.pending.add(dest_rect(mr));
    }

    p.pending.simplify();
    auto leftover = send_regions(p, p.pending.rects(), geom);
    p.pending.clear();
    for (const Rect& r : leftover) p.pending.add(r);
    if (p.pointer_dirty && opts_.pointer_messages) {
      send_pointer(p, p.pointer_icon_dirty);
      p.pointer_dirty = false;
      p.pointer_icon_dirty = false;
    }
    ++p.frames_sent;
    flush_tx(p);
  }
}

void AppHost::distribute_shared(const std::vector<MoveRectangle>& scrolls,
                                const std::vector<Rect>& damage) {
  const Image& frame = capturer_.last_frame();
  const Rect fb = frame.bounds();

  struct SendPlan {
    ParticipantState* p = nullptr;
    bool full_refresh = false;
    bool send_mrs = false;
    ContentPt pt = ContentPt::kRaw;
    EncodeParams params;
    CohortKey key;
    transcode::OutputGeometry geom;   ///< resolved output geometry
    std::vector<MoveRectangle> mrs;   ///< alignment-gated, output-space
    std::vector<Rect> bands;          ///< this participant's send queue
    std::vector<std::uint32_t> slots; ///< band → index into cohort payloads
    /// Non-null: a full refresh served from this pre-encoded checkpoint
    /// bundle instead of the cohort encode (bands stays empty).
    snapshot::RefreshBundle* bundle = nullptr;
  };

  // Phase 1 — per-participant policy and banding. Decisions here depend
  // only on that participant's own state (bucket, backlog, fps divisor,
  // pending region), so running them before any send keeps the wire
  // byte-identical to the per-participant path.
  std::vector<SendPlan> plan;
  plan.reserve(participants_.size());
  for (auto& [id, p] : participants_) {
    bool was_current = false;
    transcode::OutputGeometry geom;
    if (!pre_send(p, scrolls, damage, was_current, geom)) continue;

    SendPlan sp;
    sp.p = &p;
    sp.geom = geom;
    sp.pt = codec_for(p);
    if (opts_.adaptation.enabled && sp.pt == ContentPt::kDct) {
      sp.params.dct_quality = p.rate_ctrl.current().dct_quality;
    }
    // The cohort key extends the operating point with the output geometry:
    // scale rung plus the resolved host-space source rect (pre_send just
    // refreshed p.geometry_src = source_rect(geom, fb)). Identity viewers
    // all resolve to {0, fb}, so they keep sharing one cohort as before.
    sp.key = CohortKey{static_cast<std::uint8_t>(sp.pt),
                       p.rate_ctrl.current().quality_key(
                           opts_.adaptation.enabled && sp.pt == ContentPt::kDct),
                       opts_.mtu_payload,
                       geom.scale_shift,
                       {p.geometry_src.left, p.geometry_src.top,
                        p.geometry_src.width, p.geometry_src.height}};
    if (p.needs_full_refresh) {
      // "image of the whole shared region" (§4.3). With the snapshot
      // service on, the whole join cohort is served from one pre-encoded
      // refresh bundle per operating point; otherwise (or on bundle-budget/
      // build failure) the refresh is band-split like any damage and goes
      // through the cohort encode. A rate-limited remainder stays pending
      // either way (phase 3).
      sp.full_refresh = true;
      p.pending.clear();
      ++stats_.join_admissions;
      if (snapshot_.enabled()) {
        sp.bundle = snapshot_admit(sp.pt, sp.key.quality, sp.params, geom);
      }
      if (sp.bundle != nullptr) {
        ++stats_.join_shared_refreshes;
      } else {
        if (snapshot_.enabled()) ++stats_.join_fallback_refreshes;
        sp.bands = geometry_bands(geom, {fb});
      }
    } else {
      sp.send_mrs = p.frames_sent > 0 && was_current;
      if (sp.send_mrs) {
        // S1 alignment gate, decided here in phase 1 so a blocked scroll's
        // destination folds into pending *before* banding — same-tick
        // damage delivery, exactly like the legacy path.
        for (const MoveRectangle& mr : scrolls) {
          if (mr_alignable(geom, fb, mr)) {
            sp.mrs.push_back(mr_to_output(geom, fb, mr));
          } else {
            p.pending.add(dest_rect(mr));
            ++stats_.move_rects_geometry_skipped;
          }
        }
      } else {
        for (const MoveRectangle& mr : scrolls) p.pending.add(dest_rect(mr));
      }
      p.pending.simplify();
      sp.bands = geometry_bands(geom, p.pending.rects());
    }
    plan.push_back(std::move(sp));
  }

  // Phase 2 — group band lists into operating-point cohorts and encode
  // each distinct band once per cohort. Band payloads are pure functions
  // of (pixels, codec, quality), so cohort-mates receive identical bytes.
  struct Cohort {
    std::vector<Rect> bands;  ///< distinct bands, first-seen order
    std::map<std::array<std::int64_t, 4>, std::uint32_t> slot;
    std::vector<Bytes> payloads;
    /// Per-band fragment streams, serialised lazily on first member use
    /// (band_streams_built); every cohort member's packets are views into
    /// these shared buffers.
    std::vector<BandStream> streams;
    ContentPt pt = ContentPt::kRaw;
    EncodeParams params;
    transcode::OutputGeometry geom;  ///< output geometry (key-equivalent
                                     ///< for every member by construction)
    std::uint64_t requested = 0;  ///< band sends across the cohort
  };
  std::map<CohortKey, Cohort> cohorts;
  for (SendPlan& sp : plan) {
    if (sp.bands.empty()) continue;
    Cohort& c = cohorts[sp.key];
    c.pt = sp.pt;
    c.params = sp.params;
    c.geom = sp.geom;
    sp.slots.reserve(sp.bands.size());
    for (const Rect& b : sp.bands) {
      auto [it, inserted] = c.slot.try_emplace(
          std::array<std::int64_t, 4>{b.left, b.top, b.width, b.height},
          static_cast<std::uint32_t>(c.bands.size()));
      if (inserted) c.bands.push_back(b);
      sp.slots.push_back(it->second);
    }
    c.requested += sp.bands.size();
  }
  {
    telemetry::ScopedSpan span(tel_->trace, "ah.encode");
    for (auto& [key, c] : cohorts) {
      // Each distinct (geometry × rung) cohort encodes once per tick, from
      // the scaler's per-tick cached view of that geometry (identity views
      // borrow the live frame without a copy).
      c.payloads =
          encoder_.encode_regions(scaler_.view(frame, c.geom), c.bands, c.pt,
                                  c.params);
      c.streams.resize(c.bands.size());
      stats_.fanout_encodes_unique += c.bands.size();
      stats_.fanout_encodes_shared += c.requested - c.bands.size();
    }
    stats_.fanout_cohorts += cohorts.size();
  }

  // Phase 3 — per-endpoint transmission, in participant order, preserving
  // the per-participant message sequence of the legacy path (WMI →
  // MoveRectangles → RegionUpdates → pointer).
  telemetry::ScopedSpan packetise_span(tel_->trace, "ah.packetise");
  for (SendPlan& sp : plan) {
    ParticipantState& p = *sp.p;
    begin_tx_batch(p);
    if (p.needs_wmi) send_wmi(p);
    if (sp.send_mrs) {
      for (const MoveRectangle& mr : sp.mrs) send_move_rectangle(p, mr);
    }
    // Pending damage is host-space; rate-limited output-space leftovers map
    // back through the geometry before they re-queue (identity maps 1:1).
    auto pend_leftover = [&](const std::vector<Rect>& leftover) {
      for (const Rect& r : leftover) {
        const Rect mapped = transcode::map_rect_to_host(sp.geom, fb, r);
        if (!mapped.empty()) p.pending.add(mapped);
      }
    };
    if (sp.bundle != nullptr) {
      // Bundle-served refresh: cut this joiner's packets straight from the
      // checkpoint's pre-encoded fragment streams (no per-wave encode),
      // then inherit the bundle's accumulated delta as pending damage so
      // the joiner converges to the live frame on the next tick.
      snapshot::RefreshBundle& b = *sp.bundle;
      auto stream_for = [&](std::size_t i) -> const BandStream& {
        return b.streams[i];
      };
      auto leftover = packetize_regions(p, b.bands, stream_for);
      p.pending.clear();
      pend_leftover(leftover);
      for (const Rect& r : b.delta.rects()) p.pending.add(r);
    } else {
      // Cohort-mates cut their packets from the same lazily-serialised band
      // streams: the fragment stream is payload-identical for every member
      // (window id, origin, codec and content are operating-point facts), so
      // one buffer fill fans out to the whole cohort.
      Cohort* c = sp.bands.empty() ? nullptr : &cohorts[sp.key];
      auto stream_for = [&](std::size_t i) -> const BandStream& {
        const std::uint32_t s = sp.slots[i];
        BandStream& bs = c->streams[s];
        if (!bs.buf) {
          bs = make_band_stream(c->bands[s], c->pt, std::move(c->payloads[s]),
                                c->geom);
          ++stats_.band_streams_built;
        }
        return bs;
      };
      auto leftover = packetize_regions(p, sp.bands, stream_for);
      p.pending.clear();
      pend_leftover(leftover);
    }
    if (sp.full_refresh) {
      p.needs_full_refresh = false;
      // §5.2.4: late joiners get the current pointer position and image.
      if (opts_.pointer_messages) send_pointer(p, /*include_icon=*/true);
      p.pointer_dirty = false;
      p.pointer_icon_dirty = false;
    } else if (p.pointer_dirty && opts_.pointer_messages) {
      send_pointer(p, p.pointer_icon_dirty);
      p.pointer_dirty = false;
      p.pointer_icon_dirty = false;
    }
    ++p.frames_sent;
    flush_tx(p);
  }
}

void AppHost::snapshot_stage(const std::vector<MoveRectangle>& scrolls,
                             const std::vector<Rect>& damage) {
  const Image& frame = capturer_.last_frame();
  if (snapshot_.enabled()) {
    // A geometry change makes every checkpoint unservable (bundles cover
    // the old bounds); drop them all before window maintenance.
    if (frame.width() != snap_frame_w_ || frame.height() != snap_frame_h_) {
      if (snap_frame_w_ != 0 || snap_frame_h_ != 0) snapshot_.invalidate();
      snap_frame_w_ = frame.width();
      snap_frame_h_ = frame.height();
    }
    snapshot_.begin_tick(loop_.now());
    // This tick's churn lands in the deltas of bundles built on earlier
    // ticks. A bundle built later this tick starts with an empty delta
    // because it is encoded from the current frame, which already includes
    // this churn.
    for (const MoveRectangle& mr : scrolls) snapshot_.add_delta(dest_rect(mr));
    for (const Rect& r : damage) snapshot_.add_delta(r);
  }

  if (recorder_ == nullptr || !recorder_->ok()) return;
  const SimTime now = loop_.now();
  const SimTime interval = opts_.snapshot.refresh_interval_us > 0
                               ? opts_.snapshot.refresh_interval_us
                               : 1'000'000;
  if (!recorded_initial_checkpoint_ ||
      now - last_checkpoint_rec_us_ >= interval) {
    // Periodic replay anchor; it subsumes this tick's updates, so nothing
    // else is recorded this tick.
    recorder_->checkpoint(now, frame, WindowManagerInfo::from(wm_), pointer_);
    recorded_initial_checkpoint_ = true;
    last_checkpoint_rec_us_ = now;
    recorded_wmi_revision_ = wm_.revision();
    recorded_pointer_ = pointer_;
    return;
  }
  if (wm_.revision() != recorded_wmi_revision_) {
    recorder_->wmi(now, WindowManagerInfo::from(wm_));
    recorded_wmi_revision_ = wm_.revision();
  }
  // Replay applies moves before damage, mirroring how tick() computes the
  // residual diff against the post-move previous frame — bit-exact replay.
  for (const MoveRectangle& mr : scrolls) recorder_->move_rect(now, mr);
  if (!damage.empty()) {
    // Damage is recorded losslessly (PNG) whatever the session codec; the
    // bands flow through the shared encoder and its cache like any send.
    const std::vector<Rect> bands = band_split(damage);
    const std::vector<Bytes> payloads =
        encoder_.encode_regions(frame, bands, ContentPt::kPng, {});
    for (std::size_t i = 0; i < bands.size(); ++i) {
      recorder_->region_update(now, bands[i], ContentPt::kPng, payloads[i]);
    }
  }
  if (pointer_ != recorded_pointer_) {
    recorder_->pointer(now, pointer_);
    recorded_pointer_ = pointer_;
  }
}

snapshot::RefreshBundle* AppHost::snapshot_admit(
    ContentPt pt, std::uint8_t quality, const EncodeParams& params,
    const transcode::OutputGeometry& geom) {
  const Image& frame = capturer_.last_frame();
  const Rect fb = frame.bounds();
  const Rect src = transcode::source_rect(geom, fb);
  const bool native = geom.scale_shift == 0 && src == fb;
  const snapshot::BundleKey key{
      static_cast<std::uint8_t>(pt), quality, opts_.mtu_payload,
      geom.scale_shift,
      native ? std::array<std::int64_t, 4>{}
             : std::array<std::int64_t, 4>{src.left, src.top, src.width,
                                           src.height}};
  return snapshot_.admit(key, loop_.now(), [&](snapshot::RefreshBundle& b) {
    // Record the host-space source rect so the delta-fraction eviction
    // compares host-space delta against host-space area (bands below live
    // in output space for scaled geometries).
    b.source = native ? Rect{} : src;
    b.bands = geometry_bands(geom, {fb});
    if (b.bands.empty()) return false;
    // The one checkpoint encode of this operating point's join cohort: the
    // bands run through the shared encoder (cache first, then the worker
    // pool) and are serialised once into pooled streams that every
    // joiner's packets view.
    std::vector<Bytes> payloads = [&] {
      telemetry::ScopedSpan span(tel_->trace, "ah.encode");
      return encoder_.encode_regions(scaler_.view(frame, geom), b.bands, pt,
                                     params);
    }();
    b.streams.reserve(b.bands.size());
    for (std::size_t i = 0; i < b.bands.size(); ++i) {
      b.streams.push_back(
          make_band_stream(b.bands[i], pt, std::move(payloads[i]), geom));
      ++stats_.band_streams_built;
    }
    return true;
  });
}

void AppHost::tick() {
  telemetry::ScopedSpan tick_span(tel_->trace, "ah.tick");
  ++tick_count_;
  sweep_liveness();
  const CaptureResult capture = [this] {
    telemetry::ScopedSpan span(tel_->trace, "ah.capture");
    return capturer_.capture();
  }();
  const Image& frame = *capture.frame;
  ++stats_.frames_captured;

  // New tick, new scaler cache: at most one scaled frame per distinct
  // output geometry for everything this tick sends.
  scaler_.begin_tick();

  // Host resize watch: the clamped pointer position moves with the bounds,
  // so every participant's overlay re-arms — a pointer parked at the old
  // bottom-right corner must be re-sent re-clamped into the new frame.
  if (frame.width() != last_frame_w_ || frame.height() != last_frame_h_) {
    if (last_frame_w_ != 0 || last_frame_h_ != 0) {
      for (auto& [id, p] : participants_) {
        p.pointer_dirty = true;
        p.pointer_icon_dirty = true;
      }
    }
    last_frame_w_ = frame.width();
    last_frame_h_ = frame.height();
  }

  // WindowManagerInfo trigger: any window-manager change (§5.2.1).
  if (wm_.revision() != last_wmi_revision_) {
    last_wmi_revision_ = wm_.revision();
    for (auto& [id, p] : participants_) p.needs_wmi = true;
  }

  // Scroll pass (§5.2.3): find per-window vertical scrolls against the
  // previously exported frame, verify the replay is pixel-exact, and apply
  // the move to previous_frame_ so the residual diff below shrinks to the
  // newly exposed strip.
  std::vector<MoveRectangle> scrolls;
  const bool have_previous = !previous_frame_.empty() &&
                             previous_frame_.width() == frame.width() &&
                             previous_frame_.height() == frame.height();
  if (opts_.use_move_rectangle && have_previous) {
    telemetry::ScopedSpan span(tel_->trace, "ah.scroll_detect");
    for (const Window& w : wm_.shared_windows()) {
      const Rect area = intersect(w.frame, frame.bounds());
      auto match = detect_scroll(previous_frame_, frame, area);
      if (!match) continue;
      const Rect dest = match->source.translated(0, match->dy);
      Image replay = previous_frame_;
      replay.move_rect(match->source, {dest.left, dest.top});
      if (hash_rect(replay, dest) != hash_rect(frame, dest)) continue;

      MoveRectangle mr;
      mr.window_id = w.id;
      mr.source_left = static_cast<std::uint32_t>(match->source.left);
      mr.source_top = static_cast<std::uint32_t>(match->source.top);
      mr.width = static_cast<std::uint32_t>(match->source.width);
      mr.height = static_cast<std::uint32_t>(match->source.height);
      mr.dest_left = static_cast<std::uint32_t>(dest.left);
      mr.dest_top = static_cast<std::uint32_t>(dest.top);
      scrolls.push_back(mr);
      previous_frame_ = std::move(replay);
    }
  }

  // Residual damage against (post-move) previous frame.
  std::vector<Rect> damage;
  {
    telemetry::ScopedSpan span(tel_->trace, "ah.damage");
    if (have_previous) {
      damage = diff_rects(previous_frame_, frame, opts_.damage_tile);
    } else if (!frame.empty()) {
      damage = {frame.bounds()};
    }
    previous_frame_ = frame;
  }

  // Flash-crowd snapshot + record stage: refresh-window/bundle maintenance
  // and the on-disk checkpoint + update stream, both fed from this tick's
  // scrolls and damage. Runs before distribution so admissions below see
  // up-to-date bundle deltas.
  {
    telemetry::ScopedSpan span(tel_->trace, "ah.snapshot");
    snapshot_stage(scrolls, damage);
  }

  // Distribute to participants. (optional<> so the span can close before
  // the RTCP block below rather than at end of scope.)
  std::optional<telemetry::ScopedSpan> distribute_span;
  distribute_span.emplace(tel_->trace, "ah.distribute");
  if (opts_.shared_fanout) {
    distribute_shared(scrolls, damage);
  } else {
    distribute_legacy(scrolls, damage);
  }
  distribute_span.reset();

  // Periodic RTCP Sender Reports (RFC 3550 §6.4.1) so participants can
  // compute RTT and map RTP timestamps to wallclock.
  if (opts_.sr_interval_us != 0 &&
      loop_.now() - last_sr_at_ >= opts_.sr_interval_us) {
    telemetry::ScopedSpan span(tel_->trace, "ah.rtcp");
    last_sr_at_ = loop_.now();
    for (auto& [id, p] : participants_) {
      SenderReport sr;
      sr.ssrc = p.sender.ssrc();
      // "NTP" timestamp: simulated microseconds in the 32.32 fixed-point
      // shape real stacks use.
      sr.ntp_timestamp = (loop_.now() / 1'000'000) << 32 |
                         ((loop_.now() % 1'000'000) << 32) / 1'000'000;
      sr.rtp_timestamp = p.sender.timestamp_at(loop_.now());
      sr.packet_count = static_cast<std::uint32_t>(p.sender.packets_sent());
      sr.octet_count = static_cast<std::uint32_t>(p.sender.bytes_sent());
      const Bytes wire = sr.serialize();
      ++stats_.srs_sent;
      if (p.endpoint.kind == HostEndpoint::Kind::kUdp) {
        if (p.endpoint.send_datagram) p.endpoint.send_datagram(wire);
      } else if (p.endpoint.write_stream) {
        auto framed = frame_packet(wire);
        if (framed.ok()) p.endpoint.write_stream(*framed);
      }
    }
  }
}

void AppHost::on_uplink_stream(ParticipantId from, BytesView data) {
  auto it = participants_.find(from);
  if (it == participants_.end()) return;
  touch_liveness(from);  // even a partial frame proves the peer is alive
  it->second.uplink_deframer.feed(data);
  while (auto packet = it->second.uplink_deframer.next()) {
    on_uplink_packet(from, *packet);
  }
}

void AppHost::on_uplink_packet(ParticipantId from, BytesView packet) {
  touch_liveness(from);
  switch (classify_packet(packet)) {
    case PacketKind::kRtcp:
      handle_rtcp(from, packet);
      break;
    case PacketKind::kRtp: {
      auto pkt = RtpPacket::parse(packet);
      if (!pkt.ok() || pkt->payload_type != kHipPayloadType) {
        ++stats_.hip_parse_errors;
        return;
      }
      handle_hip(from, pkt->payload);
      break;
    }
    case PacketKind::kBfcp:
      handle_bfcp(from, packet);
      break;
    case PacketKind::kUnknown:
      break;
  }
}

void AppHost::handle_rtcp(ParticipantId from, BytesView packet) {
  // Multicast members alias to their group's stream state.
  auto alias = member_alias_.find(from);
  const ParticipantId stream_id = alias == member_alias_.end() ? from : alias->second;
  auto it = participants_.find(stream_id);
  if (it == participants_.end()) return;

  // A relay leg ships its aggregated feedback as one RFC 3550 compound
  // datagram (RR + pending NACK); a lone PLI/RR/NACK parses as a compound
  // of one, so both arrivals share this loop.
  auto msgs = parse_rtcp_compound(packet);
  if (!msgs.ok()) return;
  for (const RtcpMessage& msg : *msgs) handle_rtcp_message(it->second, msg);
}

void AppHost::handle_rtcp_message(ParticipantState& p, const RtcpMessage& msg) {
  if (std::holds_alternative<PictureLossIndication>(msg)) {
    // §5.3.1: full refresh preceded by WindowManagerInfo.
    ++stats_.plis_received;
    p.needs_wmi = true;
    p.needs_full_refresh = true;
    // Flash-crowd aggregation: the PLI either opens a refresh window or is
    // absorbed by the live one. Either way the refresh itself is answered
    // at the next tick's admission — from a shared bundle when possible —
    // so a PLI storm (including relay-coalesced waves) costs one window,
    // not one encode per PLI.
    if (opts_.shared_fanout) snapshot_.note_demand(loop_.now());
    return;
  }
  if (std::holds_alternative<ReceiverReport>(msg)) {
    const auto& rr = std::get<ReceiverReport>(msg);
    ++stats_.rrs_received;
    if (!rr.blocks.empty()) {
      const ReportBlock& block = rr.blocks.front();
      p.last_rr = block;
      if (opts_.adaptation.enabled) {
        p.rate_ctrl.on_receiver_report(block.fraction_lost, block.jitter,
                                       loop_.now());
      }
    }
    return;
  }
  if (!std::holds_alternative<GenericNack>(msg)) return;

  ++stats_.nacks_received;
  if (!opts_.retransmissions) return;
  for (std::uint16_t seq : std::get<GenericNack>(msg).requested_sequences()) {
    // Retransmissions count against the §4.3 rate budget too; a depleted
    // bucket defers the repair (the participant re-NACKs).
    if (!p.bucket.unlimited() && p.bucket.available(loop_.now()) <= 0) {
      break;
    }
    const PacketView* cached = p.cache.get(seq);
    if (cached == nullptr) continue;
    // For a multicast group the repair goes to the whole group, healing
    // every member that lost the packet on its own last hop.
    ++stats_.retransmissions_sent;
    stats_.bytes_sent += cached->wire_size();
    p.bucket.consume(cached->wire_size(), loop_.now());
    if (p.endpoint.kind == HostEndpoint::Kind::kUdp) {
      if (p.endpoint.send_packet) {
        p.endpoint.send_packet(*cached);
      } else if (p.endpoint.send_datagram) {
        const Bytes wire = cached->serialize();
        stats_.payload_bytes_copied += wire.size();
        p.endpoint.send_datagram(wire);
      }
    }
  }
}

void AppHost::handle_hip(ParticipantId from, BytesView payload) {
  auto msg = parse_hip(payload);
  if (!msg.ok()) {
    ++stats_.hip_parse_errors;
    return;
  }

  // Output-geometry inverse mapping: a scaled/viewport viewer reports mouse
  // coordinates in its own output space. Map them back to host space first,
  // so the §4.1 legitimacy check and the input sink both operate on real
  // desktop pixels (a quarter-res click on output (x, y) lands on the
  // centre of the 2^s × 2^s host block it covers).
  {
    auto alias = member_alias_.find(from);
    const ParticipantId pid =
        alias == member_alias_.end() ? from : alias->second;
    auto pit = participants_.find(pid);
    if (pit != participants_.end()) {
      const transcode::OutputGeometry geom = resolve_geometry(pit->second);
      if (hip::map_to_host(*msg, geom, capturer_.last_frame().bounds())) {
        ++stats_.hip_events_mapped;
      }
    }
  }

  std::uint32_t left = 0;
  std::uint32_t top = 0;
  const bool is_mouse = hip_coordinates(*msg, left, top);

  // Floor-control gate (Appendix A).
  const bool allowed = is_mouse ? floor_.may_send_mouse(from)
                                : floor_.may_send_keyboard(from);
  if (!allowed) {
    ++stats_.hip_events_rejected_floor;
    return;
  }

  // §4.1: "The AH MUST only accept legitimate HIP events by checking
  // whether the requested coordinates are inside the shared windows."
  if (is_mouse) {
    const Point p{static_cast<std::int64_t>(left), static_cast<std::int64_t>(top)};
    if (!wm_.point_in_shared_window(p)) {
      ++stats_.hip_events_rejected_coords;
      return;
    }
  }

  ++stats_.hip_events_accepted;
  if (input_sink_) input_sink_(from, *msg);
}

void AppHost::handle_bfcp(ParticipantId from, BytesView packet) {
  auto msg = BfcpMessage::parse(packet);
  if (!msg.ok()) return;
  // The wire user_id is advisory; the transport identity wins.
  BfcpMessage request = *msg;
  request.user_id = from;
  auto responses = floor_.on_message(request, loop_.now());
  for (const BfcpMessage& response : responses) {
    // Multicast members receive BFCP responses via their group stream and
    // filter by the user_id field.
    auto alias = member_alias_.find(response.user_id);
    const ParticipantId target =
        alias == member_alias_.end() ? response.user_id : alias->second;
    auto it = participants_.find(target);
    if (it == participants_.end()) continue;
    const Bytes wire = response.serialize();
    if (it->second.endpoint.kind == HostEndpoint::Kind::kUdp) {
      if (it->second.endpoint.send_datagram) it->second.endpoint.send_datagram(wire);
    } else if (it->second.endpoint.write_stream) {
      auto framed = frame_packet(wire);
      if (framed.ok()) it->second.endpoint.write_stream(*framed);
    }
  }
}

}  // namespace ads
