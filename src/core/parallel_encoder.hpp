// Parallel band-encoding stage of the AH frame pipeline.
//
// The AH splits each frame's damage into horizontal bands; this component
// encodes those bands concurrently on a fixed worker pool while preserving
// the serial path's exact wire bytes:
//   * every band is submitted with its sequence index and the results are
//     drained in index order, so downstream framing sees the same payloads
//     in the same order regardless of thread count;
//   * each worker owns a private EncodeScratch arena, so steady-state
//     encoding performs no per-band heap allocations and no locking;
//   * an EncodedRegionCache is consulted (keyed by pixel hash + geometry +
//     codec) before any band is compressed, and populated afterwards — the
//     cache lookup happens on the submitting thread, deterministically.
//
// With threads == 0 everything runs inline on the caller's thread through
// the identical cache/scratch code path, which is what makes the
// serial-vs-parallel golden test meaningful.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "codec/registry.hpp"
#include "core/encoded_region_cache.hpp"
#include "image/geometry.hpp"
#include "image/image.hpp"
#include "util/thread_pool.hpp"

namespace ads {

/// Sizing for the band-encode stage: pool width and cache budget.
struct ParallelEncoderOptions {
  /// Worker threads for band encoding; 0 = encode inline on the caller.
  std::size_t threads = 0;
  /// Byte budget for the encoded-region cache; 0 disables it.
  std::size_t cache_bytes = 0;
};

/// Encodes damage bands on a worker pool with deterministic output order
/// and an encoded-region cache in front of the codecs.
class ParallelEncoder {
 public:
  /// `registry` must outlive the encoder; its codecs are shared by all
  /// workers (they are stateless — per-call state lives in the scratches).
  ParallelEncoder(const CodecRegistry& registry, ParallelEncoderOptions opts);

  /// Encode frame.crop(r) for every rect with codec `pt` under per-call
  /// `params` (the ads::rate quality step rides in here; the cache key
  /// includes it). Results are in input order and byte-identical to
  /// encoding each band serially. Unknown payload types yield empty
  /// payloads.
  std::vector<Bytes> encode_regions(const Image& frame, const std::vector<Rect>& rects,
                                    ContentPt pt, const EncodeParams& params = {});

  /// Worker-pool width (0 = serial mode).
  std::size_t threads() const { return pool_ ? pool_->size() : 0; }
  /// The encoded-region cache in front of the codecs.
  EncodedRegionCache& cache() { return cache_; }

  /// Stage totals: band counts, cache effectiveness, queue depth.
  struct Stats {
    std::uint64_t bands_requested = 0;  ///< bands passed to encode_regions
    std::uint64_t bands_encoded = 0;    ///< bands that ran a codec
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;   ///< lookups that fell through (cache on)
    std::uint64_t cache_hit_bytes = 0;  ///< payload bytes served from cache
    std::uint64_t encode_calls = 0;     ///< encode_regions invocations
    std::uint64_t peak_queue_depth = 0; ///< most bands queued in one call
  };
  /// Stage totals (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  const CodecRegistry& registry_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in serial mode
  std::vector<EncodeScratch> scratch_;  ///< one per worker; [pool size] = caller's
  std::vector<Image> crop_;             ///< per-worker band staging, same layout
  EncodedRegionCache cache_;
  Stats stats_;
};

}  // namespace ads
