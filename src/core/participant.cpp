#include "core/participant.hpp"

#include <algorithm>

#include "hip/utf8.hpp"
#include "util/logging.hpp"

namespace ads {

Participant::Participant(EventLoop& loop, ParticipantOptions opts)
    : loop_(loop),
      opts_(opts),
      codecs_(CodecRegistry::with_defaults()),
      hip_sender_(kHipPayloadType, opts.seed),
      reorder_(opts.reorder_max_hold),
      rng_(opts.seed ^ 0x5EEDu),
      replica_(opts.screen_width, opts.screen_height, kBlack),
      pointer_icon_(8, 12, kWhite) {}

void Participant::send_packet(BytesView packet) {
  if (uplink_) uplink_(packet);
}

void Participant::join() {
  // §4.3 (UDP) — and harmless for TCP, where §5.3.1 allows PLI too.
  request_refresh();
  // Arm the starvation watchdog: if the join PLI (or everything after it)
  // is lost to a fault, the request is retried with backoff instead of
  // waiting on a screen that never arrives.
  last_media_us_ = loop_.now();
  watchdog_delay_us_ = opts_.starvation_timeout_us;
  arm_watchdog(watchdog_delay_us_);
}

void Participant::request_refresh() {
  PictureLossIndication pli;
  pli.sender_ssrc = hip_sender_.ssrc();
  pli.media_ssrc = remoting_ssrc_;
  ++stats_.plis_sent;
  send_packet(pli.serialize());
}

void Participant::request_floor() {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequest;
  msg.conference_id = 1;
  msg.transaction_id = next_transaction_++;
  msg.user_id = opts_.user_id;
  msg.floor_id = 0;
  floor_pending_ = true;
  send_packet(msg.serialize());
}

void Participant::release_floor() {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRelease;
  msg.conference_id = 1;
  msg.transaction_id = next_transaction_++;
  msg.user_id = opts_.user_id;
  msg.floor_id = 0;
  send_packet(msg.serialize());
}

void Participant::send_hip(const HipMessage& msg) {
  RtpPacket pkt =
      hip_sender_.make_packet(serialize_hip(msg), /*marker=*/false, loop_.now());
  ++stats_.hip_sent;
  send_packet(pkt.serialize());
}

void Participant::mouse_move(std::uint32_t x, std::uint32_t y) {
  last_mouse_ = {x, y};
  focus_window_ = 0;
  // Topmost record containing the point gives the HIP WindowID (§6.1.2).
  for (const auto& [id, rec] : windows_) {
    if (rec.rect().contains(last_mouse_)) focus_window_ = id;
  }
  send_hip(MouseMoved{focus_window_, x, y});
}

void Participant::mouse_press(std::uint32_t x, std::uint32_t y, MouseButton b) {
  send_hip(MousePressed{focus_window_, b, x, y});
}

void Participant::mouse_release(std::uint32_t x, std::uint32_t y, MouseButton b) {
  send_hip(MouseReleased{focus_window_, b, x, y});
}

void Participant::mouse_wheel(std::uint32_t x, std::uint32_t y,
                              std::int32_t distance) {
  send_hip(MouseWheelMoved{focus_window_, x, y, distance});
}

void Participant::key_press(vk::KeyCode code) {
  send_hip(KeyPressed{focus_window_, code});
}

void Participant::key_release(vk::KeyCode code) {
  send_hip(KeyReleased{focus_window_, code});
}

void Participant::key_type(const std::string& utf8) {
  // "The participant MUST send more than one KeyTyped message if the
  // string does not fit into a single KeyTyped packet." (§6.8)
  constexpr std::size_t kMaxChunk = 1024;
  for (const std::string& chunk : split_utf8(utf8, kMaxChunk)) {
    send_hip(KeyTyped{focus_window_, chunk});
  }
}

void Participant::on_datagram(BytesView data) { handle_packet(data); }

void Participant::on_stream_bytes(BytesView data) {
  deframer_.feed(data);
  while (auto packet = deframer_.next()) handle_packet(*packet);
}

void Participant::handle_packet(BytesView packet) {
  switch (classify_packet(packet)) {
    case PacketKind::kRtp: {
      auto pkt = RtpPacket::parse(packet);
      if (!pkt.ok()) {
        ++stats_.decode_errors;
        return;
      }
      if (pkt->payload_type != kRemotingPayloadType) return;
      handle_rtp(std::move(*pkt));
      break;
    }
    case PacketKind::kBfcp:
      handle_bfcp(packet);
      break;
    case PacketKind::kRtcp:
      handle_rtcp_downlink(packet);
      break;
    case PacketKind::kUnknown:
      break;
  }
}

void Participant::handle_rtcp_downlink(BytesView packet) {
  // Behind a relay the downlink may carry compound RTCP (the relay forwards
  // upstream control traffic verbatim); a plain SR parses as a compound of
  // one, so both shapes share this loop.
  auto msgs = parse_rtcp_compound(packet);
  if (!msgs.ok()) return;
  for (const RtcpMessage& msg : *msgs) {
    if (std::holds_alternative<SenderReport>(msg)) {
      const auto& sr = std::get<SenderReport>(msg);
      ++stats_.srs_received;
      last_sr_mid_ntp_ = static_cast<std::uint32_t>(sr.ntp_timestamp >> 16);
      last_sr_arrival_us_ = loop_.now();
    }
  }
}

void Participant::schedule_rr() {
  if (rr_timer_armed_ || opts_.rr_interval_us == 0) return;
  rr_timer_armed_ = true;
  loop_.after(opts_.rr_interval_us, [this] {
    rr_timer_armed_ = false;
    if (!receiver_.started() &&
        opts_.transport != ParticipantOptions::Transport::kTcp) {
      return;
    }
    ReceiverReport rr;
    rr.ssrc = hip_sender_.ssrc();
    ReportBlock block = receiver_.snapshot(remoting_ssrc_);
    block.last_sr = last_sr_mid_ntp_;
    if (last_sr_arrival_us_ != 0) {
      block.delay_since_last_sr = static_cast<std::uint32_t>(
          (loop_.now() - last_sr_arrival_us_) * 65536 / 1'000'000);
    }
    rr.blocks.push_back(block);
    ++stats_.rrs_sent;
    send_packet(rr.serialize());
    schedule_rr();
  });
}

void Participant::handle_rtp(RtpPacket pkt) {
  ++stats_.rtp_packets;
  stats_.bytes_received += pkt.wire_size();
  remoting_ssrc_ = pkt.ssrc;
  schedule_rr();
  on_media_activity();

  if (opts_.transport == ParticipantOptions::Transport::kTcp) {
    // TCP is reliable and ordered; bypass reorder/loss machinery.
    deliver(pkt);
    return;
  }

  if (!receiver_.on_packet(pkt, loop_.now())) return;  // duplicate

  const std::uint64_t gaps_before = reorder_.gaps_skipped();
  auto ready = reorder_.push(std::move(pkt), loop_.now());
  if (opts_.reorder_max_age_us != 0 && loop_.now() > opts_.reorder_max_age_us) {
    // Age bound: a head gap cannot hold delivery hostage forever just
    // because too few newer packets arrived to trip the count bound (e.g.
    // a low-rate stream, or a gap straddling the 16-bit sequence wrap).
    auto expired =
        reorder_.expire_older_than(loop_.now() - opts_.reorder_max_age_us);
    stats_.reorder_expired += expired.size();
    ready.insert(ready.end(), std::make_move_iterator(expired.begin()),
                 std::make_move_iterator(expired.end()));
  }
  if (reorder_.gaps_skipped() != gaps_before) {
    // A gap was abandoned: fragments are gone for good. Reset reassembly
    // and fall back to a full refresh (§5.3.1).
    stats_.gaps_skipped += reorder_.gaps_skipped() - gaps_before;
    demux_.reset();
    request_refresh();
  }
  for (RtpPacket& p : ready) deliver(p);

  if (!receiver_.missing(1).empty()) {
    if (opts_.send_nacks) schedule_nack();
    schedule_loss_recovery();
  }
}

void Participant::schedule_loss_recovery() {
  if (recovery_timer_armed_) return;
  recovery_timer_armed_ = true;
  loop_.after(opts_.loss_recovery_delay_us, [this] {
    recovery_timer_armed_ = false;
    if (receiver_.missing(1).empty()) return;
    recover_from_loss();
  });
}

void Participant::recover_from_loss() {
  // Fragments behind the gap are unrecoverable: flush what is buffered,
  // jump the delivery cursor past everything seen so far, drop partial
  // reassembly state, and ask for a full refresh (§5.3.1).
  auto flushed = reorder_.flush_all();
  stats_.gaps_skipped += 1;
  demux_.reset();
  for (RtpPacket& p : flushed) deliver(p);
  reorder_.reset_to(static_cast<std::uint16_t>(receiver_.highest_sequence() + 1));
  receiver_.reset_losses();
  nack_rounds_ = 0;
  nack_attempts_.clear();
  demux_.reset();
  request_refresh();
}

void Participant::on_transport_reset() {
  ++stats_.transport_resets;
  // The byte stream was replaced: a frame torn mid-length-prefix must not
  // prefix the new stream, and half-reassembled messages are unfinishable.
  deframer_.reset();
  demux_.reset();
  // Loss bookkeeping referred to the dead transport.
  reorder_.flush_all();  // discard — stale pre-reconnect packets
  receiver_.reset_losses();
  nack_rounds_ = 0;
  nack_attempts_.clear();
  // Replicated screen/window state is kept; the AH resyncs it through the
  // late-join path (WMI + full refresh). Ask explicitly anyway so recovery
  // does not depend on the AH remembering to refresh us.
  request_refresh();
  // Restart the starvation ladder from its base timeout.
  last_media_us_ = loop_.now();
  watchdog_delay_us_ = opts_.starvation_timeout_us;
  arm_watchdog(watchdog_delay_us_);
}

void Participant::on_media_activity() {
  last_media_us_ = loop_.now();
  media_seen_ = true;
  // Any media resets the escalation ladder to its base timeout.
  watchdog_delay_us_ = opts_.starvation_timeout_us;
  arm_watchdog(watchdog_delay_us_);
}

void Participant::arm_watchdog(SimTime delay) {
  if (watchdog_armed_ || opts_.starvation_timeout_us == 0) return;
  watchdog_armed_ = true;
  loop_.after(delay, [this] {
    watchdog_armed_ = false;
    const SimTime idle = loop_.now() - last_media_us_;
    if (idle < watchdog_delay_us_) {
      // Media arrived since this timer was set: sleep out the remainder.
      arm_watchdog(watchdog_delay_us_ - idle);
      return;
    }
    // Starved: last rung of the escalation ladder — request a full
    // refresh, then back off exponentially (capped) with jitter so a
    // roomful of starved participants does not PLI in lockstep. The
    // jitter draw happens only on escalation, keeping fault-free runs
    // bit-identical.
    ++stats_.starvation_plis;
    request_refresh();
    watchdog_delay_us_ =
        std::min(watchdog_delay_us_ * 2, opts_.starvation_backoff_max_us);
    SimTime jitter = 0;
    if (opts_.starvation_jitter > 0.0) {
      const auto span = static_cast<std::uint64_t>(
          static_cast<double>(watchdog_delay_us_) * opts_.starvation_jitter);
      if (span > 0) jitter = rng_.below(span);
    }
    last_media_us_ = loop_.now();
    arm_watchdog(watchdog_delay_us_ + jitter);
  });
}

void Participant::schedule_nack() {
  if (nack_timer_armed_) return;
  nack_timer_armed_ = true;
  const SimTime jitter =
      opts_.nack_jitter_us ? rng_.below(opts_.nack_jitter_us) : 0;
  loop_.after(opts_.nack_delay_us + jitter, [this] {
    nack_timer_armed_ = false;
    const auto missing = receiver_.missing();
    if (missing.empty()) {
      nack_rounds_ = 0;
      nack_attempts_.clear();
      return;
    }
    if (++nack_rounds_ > opts_.max_nack_rounds) {
      // The AH is evidently not retransmitting; stop asking and repair via
      // a full refresh instead.
      recover_from_loss();
      return;
    }
    // Per-sequence retry budget: prune bookkeeping for repaired sequences,
    // then check whether any still-missing one has exhausted its retries.
    // Under a blackout every NACK (or its repair) is lost, so without this
    // cap the timer would re-ask for the same sequences indefinitely.
    for (auto it = nack_attempts_.begin(); it != nack_attempts_.end();) {
      if (!std::binary_search(missing.begin(), missing.end(), it->first)) {
        it = nack_attempts_.erase(it);
      } else {
        ++it;
      }
    }
    bool exhausted = false;
    for (std::uint16_t seq : missing) {
      if (++nack_attempts_[seq] > opts_.max_nack_per_seq) exhausted = true;
    }
    if (exhausted) {
      // Retransmission is evidently not working for at least one sequence;
      // climb the ladder: give up on NACKs and repair via full refresh.
      ++stats_.nack_escalations;
      recover_from_loss();
      return;
    }
    GenericNack nack = GenericNack::for_sequences(hip_sender_.ssrc(),
                                                  remoting_ssrc_, missing);
    ++stats_.nacks_sent;
    send_packet(nack.serialize());
    // Re-arm: if the retransmissions do not arrive, ask again.
    schedule_nack();
  });
}

void Participant::deliver(const RtpPacket& pkt) {
  auto msg = demux_.feed(pkt.payload, pkt.marker);
  if (!msg.ok()) {
    ++stats_.decode_errors;
    return;
  }
  if (msg->has_value()) apply(std::move(**msg), pkt);
}

void Participant::apply(RemotingMessage msg, const RtpPacket& pkt) {
  std::visit(
      [&](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, WindowManagerInfo>) {
          apply_wmi(m);
        } else if constexpr (std::is_same_v<T, RegionUpdate>) {
          apply_region_update(m, pkt);
        } else if constexpr (std::is_same_v<T, MoveRectangle>) {
          apply_move_rectangle(m);
        } else if constexpr (std::is_same_v<T, MousePointerInfo>) {
          apply_pointer(m);
        }
      },
      msg);
}

void Participant::apply_wmi(const WindowManagerInfo& msg) {
  ++stats_.wmi_received;
  // "The participant MUST create a window for each new WindowID and MUST
  // close this window after receiving a WindowManagerInfo message which
  // does not contain this WindowID." — the map mirrors exactly the message
  // content; the replica pixels persist ("MUST keep the existing window
  // image after a resize and relocation").
  std::map<std::uint16_t, WindowRecord> next;
  for (const WindowRecord& rec : msg.records) next[rec.window_id] = rec;
  windows_ = std::move(next);
}

void Participant::apply_region_update(const RegionUpdate& msg, const RtpPacket& pkt) {
  const ImageCodec* codec = codecs_.find(msg.content_pt);
  if (codec == nullptr) {
    ++stats_.decode_errors;
    return;
  }
  auto img = codec->decode(msg.content);
  if (!img.ok()) {
    ++stats_.decode_errors;
    return;
  }
  replica_.blit(*img, img->bounds(),
                {static_cast<std::int64_t>(msg.left),
                 static_cast<std::int64_t>(msg.top)});
  ++stats_.region_updates;
  deliveries_.push_back(DeliveryRecord{
      loop_.now(), pkt.timestamp, msg.content.size(),
      Rect{static_cast<std::int64_t>(msg.left), static_cast<std::int64_t>(msg.top),
           img->width(), img->height()}});
}

void Participant::apply_move_rectangle(const MoveRectangle& msg) {
  ++stats_.move_rectangles;
  replica_.move_rect(
      Rect{static_cast<std::int64_t>(msg.source_left),
           static_cast<std::int64_t>(msg.source_top),
           static_cast<std::int64_t>(msg.width), static_cast<std::int64_t>(msg.height)},
      {static_cast<std::int64_t>(msg.dest_left),
       static_cast<std::int64_t>(msg.dest_top)});
}

void Participant::apply_pointer(const MousePointerInfo& msg) {
  ++stats_.pointer_updates;
  pointer_ = {static_cast<std::int64_t>(msg.left), static_cast<std::int64_t>(msg.top)};
  if (msg.has_icon()) {
    const ImageCodec* codec = codecs_.find(msg.content_pt);
    if (codec != nullptr) {
      auto icon = codec->decode(msg.icon);
      if (icon.ok()) {
        // "The participant MUST store and use this image until a new image
        // arrives from the AH."
        pointer_icon_ = std::move(*icon);
      } else {
        ++stats_.decode_errors;
      }
    }
  }
}

void Participant::handle_bfcp(BytesView packet) {
  auto msg = BfcpMessage::parse(packet);
  if (!msg.ok()) return;
  if (msg->primitive != BfcpPrimitive::kFloorRequestStatus || !msg->request_status)
    return;
  // On a multicast downlink every member sees every status message; only
  // the addressed user reacts.
  if (msg->user_id != opts_.user_id) return;
  switch (*msg->request_status) {
    case RequestStatus::kGranted:
      has_floor_ = true;
      floor_pending_ = false;
      hid_status_ = msg->hid_status.value_or(HidStatus::kAllAllowed);
      break;
    case RequestStatus::kPending:
    case RequestStatus::kAccepted:
      floor_pending_ = true;
      break;
    case RequestStatus::kReleased:
    case RequestStatus::kRevoked:
    case RequestStatus::kCancelled:
    case RequestStatus::kDenied:
      has_floor_ = false;
      floor_pending_ = false;
      hid_status_ = HidStatus::kNotAllowed;
      break;
  }
}

std::vector<Participant::DeliveryRecord> Participant::drain_deliveries() {
  std::vector<DeliveryRecord> out;
  out.swap(deliveries_);
  return out;
}

}  // namespace ads
