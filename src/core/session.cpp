#include "core/session.hpp"

namespace ads {

SharingSession::SharingSession(AppHostOptions host_opts)
    : host_(loop_, host_opts) {}

SharingSession::Connection& SharingSession::add_udp_participant(
    ParticipantOptions opts, UdpLinkConfig link) {
  auto conn = std::make_unique<Connection>();
  Connection* c = conn.get();

  opts.transport = ParticipantOptions::Transport::kUdp;
  if (link.down.seed == 1) link.down.seed = ++link_seed_;
  if (link.up.seed == 1) link.up.seed = ++link_seed_;

  c->down_udp = std::make_unique<UdpChannel>(loop_, link.down);
  c->up_udp = std::make_unique<UdpChannel>(loop_, link.up);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kUdp;
  endpoint.send_datagram = [down = c->down_udp.get()](BytesView d) {
    return down->send(d);
  };
  c->id = host_.add_participant(std::move(endpoint));
  opts.user_id = c->id;

  c->participant = std::make_unique<Participant>(loop_, opts);
  c->down_udp->set_receiver(
      [p = c->participant.get()](Bytes data) { p->on_datagram(data); });
  c->up_udp->set_receiver([this, id = c->id](Bytes data) {
    host_.on_uplink_packet(id, data);
  });
  c->participant->set_uplink(
      [up = c->up_udp.get()](BytesView packet) { up->send(packet); });

  connections_.push_back(std::move(conn));
  return *connections_.back();
}

SharingSession::Connection& SharingSession::add_tcp_participant(
    ParticipantOptions opts, TcpLinkConfig link) {
  auto conn = std::make_unique<Connection>();
  Connection* c = conn.get();

  opts.transport = ParticipantOptions::Transport::kTcp;
  opts.send_nacks = false;  // TCP repairs loss itself

  c->down_tcp = std::make_unique<TcpChannel>(loop_, link.down);
  c->up_tcp = std::make_unique<TcpChannel>(loop_, link.up);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kTcp;
  endpoint.write_stream = [down = c->down_tcp.get()](BytesView d) {
    return down->send(d);
  };
  endpoint.backlog = [down = c->down_tcp.get()] { return down->backlog_bytes(); };
  c->id = host_.add_participant(std::move(endpoint));
  opts.user_id = c->id;

  c->participant = std::make_unique<Participant>(loop_, opts);
  c->down_tcp->set_receiver(
      [p = c->participant.get()](Bytes data) { p->on_stream_bytes(data); });
  c->up_tcp->set_receiver([this, id = c->id](Bytes data) {
    host_.on_uplink_stream(id, data);
  });
  // Participant emits packets; the session adds RFC 4571 framing and
  // carries over partial writes.
  c->participant->set_uplink([this, c](BytesView packet) {
    auto framed = frame_packet(packet);
    if (!framed.ok()) return;
    c->up_carry.insert(c->up_carry.end(), framed->begin(), framed->end());
    const std::size_t wrote = c->up_tcp->send(c->up_carry);
    c->up_carry.erase(c->up_carry.begin(),
                      c->up_carry.begin() + static_cast<std::ptrdiff_t>(wrote));
    (void)this;
  });

  connections_.push_back(std::move(conn));
  return *connections_.back();
}

SharingSession::MulticastSession& SharingSession::add_multicast_session() {
  auto mc = std::make_unique<MulticastSession>();
  mc->group = std::make_unique<MulticastGroup>(loop_);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kUdp;
  endpoint.send_datagram = [group = mc->group.get()](BytesView d) {
    return group->send(d);
  };
  mc->group_id = host_.add_participant(std::move(endpoint));

  multicast_.push_back(std::move(mc));
  return *multicast_.back();
}

SharingSession::MulticastMember& SharingSession::add_multicast_member(
    MulticastSession& mc, ParticipantOptions opts, UdpChannelOptions down,
    UdpChannelOptions up) {
  auto member = std::make_unique<MulticastMember>();
  opts.transport = ParticipantOptions::Transport::kUdp;
  if (down.seed == 1) down.seed = ++link_seed_;
  if (up.seed == 1) up.seed = ++link_seed_;

  UdpChannel& down_channel = mc.group->add_member(down);
  member->up = std::make_unique<UdpChannel>(loop_, up);
  member->id = host_.add_member_alias(mc.group_id);
  opts.user_id = member->id;
  // Draw per-member NACK jitter unless the caller set one: this is the
  // §5.3.2 storm-avoidance randomisation.
  if (opts.nack_jitter_us == 0) opts.nack_jitter_us = 30'000;

  member->participant = std::make_unique<Participant>(loop_, opts);
  down_channel.set_receiver(
      [p = member->participant.get()](Bytes data) { p->on_datagram(data); });
  member->up->set_receiver([this, id = member->id](Bytes data) {
    host_.on_uplink_packet(id, data);
  });
  member->participant->set_uplink(
      [upc = member->up.get()](BytesView packet) { upc->send(packet); });

  mc.members.push_back(std::move(member));
  return *mc.members.back();
}

}  // namespace ads
