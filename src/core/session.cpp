#include "core/session.hpp"

#include <array>
#include <stdexcept>

namespace ads {
namespace {

/// RFC 4571 gather-framed stream write: offer {carry, 2-byte length prefix,
/// packet} to the channel as one send and re-stage the unaccepted suffix
/// into `carry` — the same bytes, in the same single offer, as appending
/// the framed packet to `carry` and writing that, without rebuilding the
/// concatenation. Oversized packets are dropped, matching frame_packet().
void gather_framed_write(TcpChannel& ch, Bytes& carry, BytesView packet) {
  if (packet.size() > 0xFFFF) return;
  const std::array<std::uint8_t, 2> prefix{
      static_cast<std::uint8_t>(packet.size() >> 8),
      static_cast<std::uint8_t>(packet.size() & 0xFF)};
  std::array<BytesView, 3> parts;
  std::size_t n = 0;
  if (!carry.empty()) parts[n++] = BytesView(carry);
  parts[n++] = BytesView(prefix.data(), prefix.size());
  parts[n++] = packet;
  const std::span<const BytesView> offer(parts.data(), n);
  std::size_t wrote = ch.send_gather(offer);
  Bytes rest;
  for (const BytesView& part : offer) {
    const std::size_t taken = std::min(wrote, part.size());
    wrote -= taken;
    if (taken < part.size()) {
      rest.insert(rest.end(), part.begin() + static_cast<std::ptrdiff_t>(taken),
                  part.end());
    }
  }
  carry = std::move(rest);
}

/// Leg endpoint feeding a child relay's subtree, routed through the child's
/// stable handle: a crash nulls the channel and sends fail cleanly instead
/// of dereferencing a dead UdpChannel.
relay::LegEndpoint child_leg_endpoint(SharingSession::RelayHandle* r) {
  relay::LegEndpoint ep;
  ep.kind = relay::LegEndpoint::Kind::kUdp;
  ep.send_datagram = [r](BytesView d) {
    return r->down ? r->down->send(d) : false;
  };
  ep.send_packet = [r](const PacketView& pkt) {
    return r->down ? r->down->send_packet(pkt) : false;
  };
  ep.send_packet_batch = [r](std::span<const PacketView> pkts) {
    return r->down ? r->down->send_batch(pkts) : std::size_t{0};
  };
  return ep;
}

/// Leg endpoint feeding one relay viewer, routed through the viewer handle
/// for the same lifetime-safety reason.
relay::LegEndpoint viewer_leg_endpoint(SharingSession::RelayViewer* v) {
  relay::LegEndpoint ep;
  ep.kind = relay::LegEndpoint::Kind::kUdp;
  ep.send_datagram = [v](BytesView d) {
    return v->down ? v->down->send(d) : false;
  };
  ep.send_packet = [v](const PacketView& pkt) {
    return v->down ? v->down->send_packet(pkt) : false;
  };
  ep.send_packet_batch = [v](std::span<const PacketView> pkts) {
    return v->down ? v->down->send_batch(pkts) : std::size_t{0};
  };
  return ep;
}

}  // namespace

SharingSession::SharingSession(AppHostOptions host_opts)
    : host_(loop_, host_opts) {
  host_.telemetry().metrics.add_collector(this, [this] { publish_net_metrics(); });
  // Liveness evictions reclaim the session-side transport too. The
  // Participant object is kept: its replica and stats outlive the links,
  // and reconnect_tcp() can revive the connection under the same id.
  host_.set_eviction_handler([this](ParticipantId id) {
    for (auto& conn : connections_) {
      if (conn->id != id) continue;
      teardown_links(*conn);
      ++evicted_connections_;
    }
  });
}

SharingSession::~SharingSession() {
  // Before members die: the collector walks connections_ and multicast_.
  host_.telemetry().metrics.remove_collectors(this);
}

void SharingSession::publish_net_metrics() {
  UdpChannel::Stats udp = retired_udp_;
  TcpChannel::Stats tcp = retired_tcp_;
  Participant::Stats part;
  const auto add_udp = [&udp](const UdpChannel* ch) {
    if (ch == nullptr) return;
    const UdpChannel::Stats& s = ch->stats();
    udp.sent += s.sent;
    udp.delivered += s.delivered;
    udp.lost += s.lost;
    udp.queue_dropped += s.queue_dropped;
    udp.duplicated += s.duplicated;
    udp.bytes_delivered += s.bytes_delivered;
  };
  const auto add_tcp = [&tcp](const TcpChannel* ch) {
    if (ch == nullptr) return;
    const TcpChannel::Stats& s = ch->stats();
    tcp.bytes_offered += s.bytes_offered;
    tcp.bytes_accepted += s.bytes_accepted;
    tcp.bytes_delivered += s.bytes_delivered;
    tcp.partial_writes += s.partial_writes;
    tcp.bytes_lost_on_drop += s.bytes_lost_on_drop;
  };
  const auto add_part = [&part](const Participant* p) {
    if (p == nullptr) return;
    const Participant::Stats& s = p->stats();
    part.rtp_packets += s.rtp_packets;
    part.bytes_received += s.bytes_received;
    part.region_updates += s.region_updates;
    part.move_rectangles += s.move_rectangles;
    part.wmi_received += s.wmi_received;
    part.pointer_updates += s.pointer_updates;
    part.decode_errors += s.decode_errors;
    part.nacks_sent += s.nacks_sent;
    part.plis_sent += s.plis_sent;
    part.gaps_skipped += s.gaps_skipped;
    part.hip_sent += s.hip_sent;
    part.rrs_sent += s.rrs_sent;
    part.srs_received += s.srs_received;
    part.nack_escalations += s.nack_escalations;
    part.starvation_plis += s.starvation_plis;
    part.reorder_expired += s.reorder_expired;
    part.transport_resets += s.transport_resets;
  };

  for (const auto& c : connections_) {
    add_udp(c->down_udp.get());
    add_udp(c->up_udp.get());
    add_tcp(c->down_tcp.get());
    add_tcp(c->up_tcp.get());
    add_part(c->participant.get());
  }
  for (const auto& mc : multicast_) {
    for (std::size_t i = 0; i < mc->group->member_count(); ++i) {
      add_udp(&mc->group->member(i));
    }
    for (const auto& m : mc->members) {
      add_udp(m->up.get());
      add_part(m->participant.get());
    }
  }
  for (const auto& r : relays_) {
    add_udp(r->down.get());
    add_udp(r->up.get());
  }
  for (const auto& v : relay_viewers_) {
    add_udp(v->down.get());
    add_udp(v->up.get());
    add_part(v->participant.get());
  }

  auto& met = host_.telemetry().metrics;
  met.counter("net.udp.sent").set(udp.sent);
  met.counter("net.udp.delivered").set(udp.delivered);
  met.counter("net.udp.lost").set(udp.lost);
  met.counter("net.udp.queue_dropped").set(udp.queue_dropped);
  met.counter("net.udp.duplicated").set(udp.duplicated);
  met.counter("net.udp.bytes_delivered").set(udp.bytes_delivered);
  met.counter("net.tcp.bytes_offered").set(tcp.bytes_offered);
  met.counter("net.tcp.bytes_accepted").set(tcp.bytes_accepted);
  met.counter("net.tcp.bytes_delivered").set(tcp.bytes_delivered);
  met.counter("net.tcp.partial_writes").set(tcp.partial_writes);
  met.counter("net.tcp.bytes_lost_on_drop").set(tcp.bytes_lost_on_drop);
  met.counter("participant.rtp_packets").set(part.rtp_packets);
  met.counter("participant.bytes_received").set(part.bytes_received);
  met.counter("participant.region_updates").set(part.region_updates);
  met.counter("participant.move_rectangles").set(part.move_rectangles);
  met.counter("participant.wmi_received").set(part.wmi_received);
  met.counter("participant.pointer_updates").set(part.pointer_updates);
  met.counter("participant.decode_errors").set(part.decode_errors);
  met.counter("participant.nacks_sent").set(part.nacks_sent);
  met.counter("participant.plis_sent").set(part.plis_sent);
  met.counter("participant.gaps_skipped").set(part.gaps_skipped);
  met.counter("participant.hip_sent").set(part.hip_sent);
  met.counter("participant.rrs_sent").set(part.rrs_sent);
  met.counter("participant.srs_received").set(part.srs_received);
  met.counter("participant.nack_escalations").set(part.nack_escalations);
  met.counter("participant.starvation_plis").set(part.starvation_plis);
  met.counter("participant.reorder_expired").set(part.reorder_expired);
  met.counter("participant.transport_resets").set(part.transport_resets);
  met.counter("recovery.dropped_links").set(dropped_links_);
  met.counter("recovery.reconnects").set(reconnects_);
  met.counter("recovery.evicted_connections").set(evicted_connections_);
  met.counter("recovery.relay_crashes").set(relay_crashes_);
  met.counter("recovery.relay_restarts").set(relay_restarts_);
  met.counter("recovery.relay_failovers").set(relay_failovers_);
}

void SharingSession::retire_udp(const UdpChannel* ch) {
  if (ch == nullptr) return;
  const UdpChannel::Stats& s = ch->stats();
  retired_udp_.sent += s.sent;
  retired_udp_.delivered += s.delivered;
  retired_udp_.lost += s.lost;
  retired_udp_.queue_dropped += s.queue_dropped;
  retired_udp_.duplicated += s.duplicated;
  retired_udp_.bytes_delivered += s.bytes_delivered;
}

void SharingSession::retire_stats(Connection& c) {
  const auto fold_udp = [this](const UdpChannel* ch) { retire_udp(ch); };
  const auto fold_tcp = [this](const TcpChannel* ch) {
    if (ch == nullptr) return;
    const TcpChannel::Stats& s = ch->stats();
    retired_tcp_.bytes_offered += s.bytes_offered;
    retired_tcp_.bytes_accepted += s.bytes_accepted;
    retired_tcp_.bytes_delivered += s.bytes_delivered;
    retired_tcp_.partial_writes += s.partial_writes;
    retired_tcp_.bytes_lost_on_drop += s.bytes_lost_on_drop;
  };
  fold_udp(c.down_udp.get());
  fold_udp(c.up_udp.get());
  fold_tcp(c.down_tcp.get());
  fold_tcp(c.up_tcp.get());
}

void SharingSession::teardown_links(Connection& c) {
  retire_stats(c);
  // Channel destructors cancel in-flight deliveries (weak-ptr tokens) and
  // withdraw their share of the net.tcp.backlog gauge.
  c.down_udp.reset();
  c.up_udp.reset();
  c.down_tcp.reset();
  c.up_tcp.reset();
  c.up_carry.clear();
}

void SharingSession::drop_tcp(Connection& c) {
  if (!c.down_tcp && !c.up_tcp) return;
  if (c.down_tcp) c.down_tcp->drop();
  if (c.up_tcp) c.up_tcp->drop();
  ++dropped_links_;
}

void SharingSession::reconnect_tcp(Connection& c, TcpLinkConfig link) {
  // The AH forgets the old transport first — its endpoint closures point at
  // the channels about to die.
  host_.remove_participant(c.id);
  teardown_links(c);

  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();
  c.down_tcp = std::make_unique<TcpChannel>(loop_, link.down);
  c.up_tcp = std::make_unique<TcpChannel>(loop_, link.up);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kTcp;
  endpoint.write_stream = [down = c.down_tcp.get()](BytesView d) {
    return down->send(d);
  };
  endpoint.write_gather =
      [down = c.down_tcp.get()](std::span<const BytesView> parts) {
        return down->send_gather(parts);
      };
  endpoint.backlog = [down = c.down_tcp.get()] { return down->backlog_bytes(); };
  // Same id: BFCP floor state and HIP identity survive; re-registering as a
  // TCP endpoint queues the §4.4 late-join resync (WMI + full refresh), and
  // the fresh AH-side ParticipantState brings a fresh uplink deframer (no
  // torn-frame prefix from the old stream).
  c.id = host_.add_participant(std::move(endpoint), c.id);

  c.down_tcp->set_receiver(
      [p = c.participant.get()](Bytes data) { p->on_stream_bytes(data); });
  c.up_tcp->set_receiver([this, id = c.id](Bytes data) {
    host_.on_uplink_stream(id, data);
  });
  c.participant->on_transport_reset();
  ++reconnects_;
}

SharingSession::Connection& SharingSession::add_udp_participant(
    ParticipantOptions opts, UdpLinkConfig link) {
  auto conn = std::make_unique<Connection>();
  Connection* c = conn.get();

  opts.transport = ParticipantOptions::Transport::kUdp;
  if (link.down.seed == 1) link.down.seed = ++link_seed_;
  if (link.up.seed == 1) link.up.seed = ++link_seed_;
  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();

  c->down_udp = std::make_unique<UdpChannel>(loop_, link.down);
  c->up_udp = std::make_unique<UdpChannel>(loop_, link.up);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kUdp;
  endpoint.send_datagram = [down = c->down_udp.get()](BytesView d) {
    return down->send(d);
  };
  endpoint.send_packet = [down = c->down_udp.get()](const PacketView& pkt) {
    return down->send_packet(pkt);
  };
  endpoint.send_packet_batch =
      [down = c->down_udp.get()](std::span<const PacketView> pkts) {
        return down->send_batch(pkts);
      };
  c->id = host_.add_participant(std::move(endpoint));
  opts.user_id = c->id;

  c->participant = std::make_unique<Participant>(loop_, opts);
  c->down_udp->set_receiver(
      [p = c->participant.get()](Bytes data) { p->on_datagram(data); });
  c->up_udp->set_receiver([this, id = c->id](Bytes data) {
    host_.on_uplink_packet(id, data);
  });
  // Route through the Connection, not the channel: eviction can destroy the
  // link while the participant (timers still pending) outlives it.
  c->participant->set_uplink([c](BytesView packet) {
    if (c->up_udp) c->up_udp->send(packet);
  });

  connections_.push_back(std::move(conn));
  return *connections_.back();
}

SharingSession::Connection& SharingSession::add_tcp_participant(
    ParticipantOptions opts, TcpLinkConfig link) {
  auto conn = std::make_unique<Connection>();
  Connection* c = conn.get();

  opts.transport = ParticipantOptions::Transport::kTcp;
  opts.send_nacks = false;  // TCP repairs loss itself
  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();

  c->down_tcp = std::make_unique<TcpChannel>(loop_, link.down);
  c->up_tcp = std::make_unique<TcpChannel>(loop_, link.up);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kTcp;
  endpoint.write_stream = [down = c->down_tcp.get()](BytesView d) {
    return down->send(d);
  };
  endpoint.write_gather =
      [down = c->down_tcp.get()](std::span<const BytesView> parts) {
        return down->send_gather(parts);
      };
  endpoint.backlog = [down = c->down_tcp.get()] { return down->backlog_bytes(); };
  c->id = host_.add_participant(std::move(endpoint));
  opts.user_id = c->id;

  c->participant = std::make_unique<Participant>(loop_, opts);
  c->down_tcp->set_receiver(
      [p = c->participant.get()](Bytes data) { p->on_stream_bytes(data); });
  c->up_tcp->set_receiver([this, id = c->id](Bytes data) {
    host_.on_uplink_stream(id, data);
  });
  // Participant emits packets; the session adds RFC 4571 framing via a
  // gather-write (length prefix and packet go to the channel as-is, only
  // the unaccepted suffix is re-staged). Routed through the Connection (not
  // a raw channel pointer) so the closure survives eviction teardown and
  // keeps working against the fresh channel after reconnect_tcp().
  c->participant->set_uplink([c](BytesView packet) {
    if (!c->up_tcp) return;
    gather_framed_write(*c->up_tcp, c->up_carry, packet);
  });

  connections_.push_back(std::move(conn));
  return *connections_.back();
}

bool SharingSession::apply_answer_geometry(Connection& c,
                                           const SessionDescription& answer) {
  const auto geom = answer_geometry(answer);
  if (!geom) return false;
  return host_.set_participant_geometry(c.id, *geom);
}

void SharingSession::wire_relay(RelayHandle* r) {
  // Every closure reads the handle at delivery time: re-parenting changes
  // r->parent / r->leg without re-wiring a channel, and a crash that nulls
  // node/channels turns deliveries into clean no-ops.
  r->down->set_receiver([r](Bytes data) {
    if (r->node) r->node->on_upstream_datagram(std::move(data));
  });
  r->up->set_receiver([this, r](Bytes data) {
    if (r->parent == nullptr) {
      host_.on_uplink_packet(r->upstream_id, data);
    } else if (r->parent->alive && r->parent->node) {
      r->parent->node->on_leg_packet(r->leg, data);
    }
  });
  r->node->set_upstream([r](BytesView packet) {
    return r->up ? r->up->send(packet) : false;
  });
  r->node->set_upstream_lost([this, r] { failover_relay(*r); });
}

void SharingSession::attach_relay_upstream(RelayHandle& r) {
  RelayHandle* rp = &r;
  if (r.parent == nullptr) {
    // The AH sees the relay as one more UDP participant: it gets the full
    // encode fan-out (joining the shared-encode cohort) and its uplink is
    // the aggregated feedback for the entire subtree. Re-attaching with a
    // known id (failover / restart) resyncs via the §4.4 late-join path.
    HostEndpoint endpoint;
    endpoint.kind = HostEndpoint::Kind::kUdp;
    endpoint.send_datagram = [rp](BytesView d) {
      return rp->down ? rp->down->send(d) : false;
    };
    endpoint.send_packet = [rp](const PacketView& pkt) {
      return rp->down ? rp->down->send_packet(pkt) : false;
    };
    endpoint.send_packet_batch = [rp](std::span<const PacketView> pkts) {
      return rp->down ? rp->down->send_batch(pkts) : std::size_t{0};
    };
    r.upstream_id = host_.add_participant(std::move(endpoint), r.upstream_id);
    r.leg = 0;
    r.depth = 1;
  } else {
    // One parent leg feeds this child's whole subtree.
    r.leg = r.parent->node->add_leg(child_leg_endpoint(rp), r.leg_cfg);
    r.depth = r.parent->depth + 1;
  }
}

void SharingSession::refresh_relay_depths(RelayHandle& r) {
  for (auto& c : relays_) {
    if (c->parent == &r) {
      c->depth = r.depth + 1;
      refresh_relay_depths(*c);
    }
  }
}

bool SharingSession::relay_in_subtree(const RelayHandle& candidate,
                                      const RelayHandle& root) {
  for (const RelayHandle* p = &candidate; p != nullptr; p = p->parent) {
    if (p == &root) return true;
  }
  return false;
}

SharingSession::RelayHandle& SharingSession::add_relay(
    relay::RelayOptions opts, UdpLinkConfig link) {
  auto handle = std::make_unique<RelayHandle>();
  RelayHandle* r = handle.get();

  if (link.down.seed == 1) link.down.seed = ++link_seed_;
  if (link.up.seed == 1) link.up.seed = ++link_seed_;
  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();
  // Distinct per-node identity and metrics namespace within one session.
  opts.telemetry = &host_.telemetry();
  opts.metrics_prefix = "relay.r" + std::to_string(relays_.size() + 1) + ".";
  opts.seed ^= (relays_.size() + 1) << 20;
  // The resolved configs survive in the handle so a cold restart rebuilds
  // the same deterministic node and channels.
  r->opts = opts;
  r->link = link;

  r->down = std::make_unique<UdpChannel>(loop_, link.down);
  r->up = std::make_unique<UdpChannel>(loop_, link.up);
  r->node = std::make_unique<relay::RelayNode>(loop_, std::move(opts));

  attach_relay_upstream(*r);
  wire_relay(r);
  r->node->start();

  relays_.push_back(std::move(handle));
  return *relays_.back();
}

SharingSession::RelayHandle& SharingSession::add_relay_child(
    RelayHandle& parent, relay::RelayOptions opts, UdpLinkConfig link,
    relay::LegConfig leg) {
  if (parent.depth + 1 > kMaxRelayDepth) {
    throw std::invalid_argument("SharingSession: relay cascade too deep");
  }
  auto handle = std::make_unique<RelayHandle>();
  RelayHandle* r = handle.get();
  r->parent = &parent;

  if (link.down.seed == 1) link.down.seed = ++link_seed_;
  if (link.up.seed == 1) link.up.seed = ++link_seed_;
  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();
  opts.telemetry = &host_.telemetry();
  opts.metrics_prefix = "relay.r" + std::to_string(relays_.size() + 1) + ".";
  opts.seed ^= (relays_.size() + 1) << 20;
  r->opts = opts;
  r->link = link;
  r->leg_cfg = leg;

  r->down = std::make_unique<UdpChannel>(loop_, link.down);
  r->up = std::make_unique<UdpChannel>(loop_, link.up);
  r->node = std::make_unique<relay::RelayNode>(loop_, std::move(opts));

  attach_relay_upstream(*r);
  wire_relay(r);
  r->node->start();

  relays_.push_back(std::move(handle));
  return *relays_.back();
}

SharingSession::RelayViewer& SharingSession::add_relay_viewer(
    RelayHandle& relay, ParticipantOptions opts, UdpLinkConfig link,
    relay::LegConfig leg) {
  auto viewer = std::make_unique<RelayViewer>();
  RelayViewer* v = viewer.get();
  v->relay = &relay;

  opts.transport = ParticipantOptions::Transport::kUdp;
  if (link.down.seed == 1) link.down.seed = ++link_seed_;
  if (link.up.seed == 1) link.up.seed = ++link_seed_;
  link.down.telemetry = &host_.telemetry();
  link.up.telemetry = &host_.telemetry();
  v->leg_cfg = leg;

  v->down = std::make_unique<UdpChannel>(loop_, link.down);
  v->up = std::make_unique<UdpChannel>(loop_, link.up);

  v->leg = relay.node->add_leg(viewer_leg_endpoint(v), leg);

  v->participant = std::make_unique<Participant>(loop_, opts);
  v->down->set_receiver(
      [p = v->participant.get()](Bytes data) { p->on_datagram(data); });
  // Handle-routed: v->leg is refreshed when a restarted relay re-adds the
  // leg, and a dead relay simply drops the viewer's feedback.
  v->up->set_receiver([v](Bytes data) {
    if (v->relay->alive && v->relay->node) {
      v->relay->node->on_leg_packet(v->leg, data);
    }
  });
  v->participant->set_uplink([v](BytesView packet) {
    if (v->up) v->up->send(packet);
  });

  relay_viewers_.push_back(std::move(viewer));
  return *relay_viewers_.back();
}

void SharingSession::reparent_relay(RelayHandle& r, RelayHandle* new_parent) {
  if (!r.alive || r.node == nullptr) return;
  if (new_parent != nullptr) {
    if (!new_parent->alive || new_parent->node == nullptr) {
      throw std::invalid_argument("SharingSession: new relay parent is dead");
    }
    if (new_parent == &r || relay_in_subtree(*new_parent, r)) {
      throw std::invalid_argument("SharingSession: relay re-parent would cycle");
    }
    if (new_parent->depth + 1 > kMaxRelayDepth) {
      throw std::invalid_argument("SharingSession: relay cascade too deep");
    }
  }
  // Withdraw from the old upstream (a dead parent already forgot the leg).
  if (r.parent != nullptr) {
    if (r.parent->alive && r.parent->node) r.parent->node->remove_leg(r.leg);
  } else if (r.upstream_id != 0 && new_parent != nullptr) {
    // Root moving under a relay: release the AH slot. A later re-parent
    // back to the AH registers afresh (the subtree resyncs either way).
    host_.remove_participant(r.upstream_id);
    r.upstream_id = 0;
  }
  r.parent = new_parent;
  attach_relay_upstream(r);
  refresh_relay_depths(r);
  // §4.4 resync into the new upstream epoch: fresh receiver / cache /
  // holdoff state, then a PLI so the new parent's stream keys in cleanly.
  r.node->adopt_upstream();
}

void SharingSession::failover_relay(RelayHandle& r) {
  ++relay_failovers_;
  // Ladder: configured backup, else nearest live ancestor ABOVE the dead
  // parent (the parent itself was just declared dead), else the AH. A
  // backup that IS that parent is skipped — re-parenting onto the node
  // just declared silent would orphan again every watchdog period — and
  // an over-deep backup is as useless as a dead one: letting
  // reparent_relay throw on this automatic (event-loop) path would
  // terminate the run and freeze the orphan.
  RelayHandle* target = nullptr;
  if (r.backup != nullptr && r.backup != &r && r.backup != r.parent &&
      r.backup->alive && r.backup->node != nullptr &&
      r.backup->depth + 1 <= kMaxRelayDepth &&
      !relay_in_subtree(*r.backup, r)) {
    target = r.backup;
  }
  if (target == nullptr && r.parent != nullptr) {
    for (RelayHandle* a = r.parent->parent; a != nullptr; a = a->parent) {
      if (a->alive && a->node != nullptr && !relay_in_subtree(*a, r)) {
        target = a;
        break;
      }
    }
  }
  reparent_relay(r, target);
}

void SharingSession::crash_relay(RelayHandle& r) {
  if (!r.alive || r.node == nullptr) return;
  // Quiesce first — holdoff windows die, the cache drops — so the crash
  // snapshot below includes the quiesce accounting and the restart fold
  // keeps the relay.rN.* namespace monotone across incarnations.
  r.node->stop();
  r.retired = r.node->stats();
  r.retired_rtx_hits = r.node->rtx_hits_total();
  r.retired_rtx_misses = r.node->rtx_misses_total();
  r.retired_rtx_evictions = r.node->rtx_evictions_total();
  // Withdraw the upstream attachment so the upstream stops feeding a dead
  // link: a live parent forgets the leg; a root relay's AH slot is
  // deregistered (mirroring reconnect_tcp), keeping r.upstream_id so
  // restart_relay re-registers the SAME id and resyncs via the §4.4
  // late-join path. Leaving the slot registered would leak it — a restart
  // would allocate a second id double-feeding this handle's down channel.
  if (r.parent != nullptr) {
    if (r.parent->alive && r.parent->node) r.parent->node->remove_leg(r.leg);
  } else if (r.upstream_id != 0) {
    host_.remove_participant(r.upstream_id);
  }
  retire_udp(r.down.get());
  retire_udp(r.up.get());
  // Node destruction publishes one final stopped-state snapshot (per-leg
  // backlog/rate gauges read zero while the node is down) and withdraws
  // the collector. Channel destructors cancel in-flight deliveries via
  // their weak-ptr tokens.
  r.node.reset();
  r.down.reset();
  r.up.reset();
  r.alive = false;
  ++relay_crashes_;
}

void SharingSession::restart_relay(RelayHandle& r) {
  if (r.alive) return;
  // Same resolved configs (and therefore the same deterministic seeds) as
  // the first incarnation.
  r.down = std::make_unique<UdpChannel>(loop_, r.link.down);
  r.up = std::make_unique<UdpChannel>(loop_, r.link.up);
  r.node = std::make_unique<relay::RelayNode>(loop_, r.opts);
  r.node->fold_stats(r.retired, r.retired_rtx_hits, r.retired_rtx_misses,
                     r.retired_rtx_evictions);
  r.alive = true;
  // If the old parent died while this node was down, climb to the nearest
  // live ancestor (nullptr = the AH adopts it).
  if (r.parent != nullptr && !r.parent->alive) {
    RelayHandle* a = r.parent->parent;
    while (a != nullptr && !a->alive) a = a->parent;
    r.parent = a;
  }
  wire_relay(&r);
  attach_relay_upstream(r);
  refresh_relay_depths(r);
  // Children and viewers still parented here get fresh legs on the new
  // node; their handle-routed receivers pick up the new leg ids at the
  // next delivery. Orphaned children re-home through their own watchdogs.
  for (auto& c : relays_) {
    if (c->parent == &r && c->alive && c->node) {
      c->leg = r.node->add_leg(child_leg_endpoint(c.get()), c->leg_cfg);
    }
  }
  for (auto& v : relay_viewers_) {
    if (v->relay == &r) {
      v->leg = r.node->add_leg(viewer_leg_endpoint(v.get()), v->leg_cfg);
    }
  }
  r.node->start();
  // The documented same-id resync, made real: a cold restart begins a new
  // upstream epoch exactly like a failover adoption — the PLI it sends
  // upward reaches the AH (directly, or relayed through the parent) and
  // pulls the §4.4 full refresh through the whole re-attached subtree.
  r.node->adopt_upstream();
  ++relay_restarts_;
}

SharingSession::MulticastSession& SharingSession::add_multicast_session() {
  auto mc = std::make_unique<MulticastSession>();
  mc->group = std::make_unique<MulticastGroup>(loop_);

  HostEndpoint endpoint;
  endpoint.kind = HostEndpoint::Kind::kUdp;
  endpoint.send_datagram = [group = mc->group.get()](BytesView d) {
    return group->send(d);
  };
  endpoint.send_packet = [group = mc->group.get()](const PacketView& pkt) {
    return group->send_packet(pkt);
  };
  endpoint.send_packet_batch =
      [group = mc->group.get()](std::span<const PacketView> pkts) {
        return group->send_batch(pkts);
      };
  mc->group_id = host_.add_participant(std::move(endpoint));

  multicast_.push_back(std::move(mc));
  return *multicast_.back();
}

SharingSession::MulticastMember& SharingSession::add_multicast_member(
    MulticastSession& mc, ParticipantOptions opts, UdpChannelOptions down,
    UdpChannelOptions up) {
  auto member = std::make_unique<MulticastMember>();
  opts.transport = ParticipantOptions::Transport::kUdp;
  if (down.seed == 1) down.seed = ++link_seed_;
  if (up.seed == 1) up.seed = ++link_seed_;
  down.telemetry = &host_.telemetry();
  up.telemetry = &host_.telemetry();

  UdpChannel& down_channel = mc.group->add_member(down);
  member->up = std::make_unique<UdpChannel>(loop_, up);
  member->id = host_.add_member_alias(mc.group_id);
  opts.user_id = member->id;
  // Draw per-member NACK jitter unless the caller set one: this is the
  // §5.3.2 storm-avoidance randomisation.
  if (opts.nack_jitter_us == 0) opts.nack_jitter_us = 30'000;

  member->participant = std::make_unique<Participant>(loop_, opts);
  down_channel.set_receiver(
      [p = member->participant.get()](Bytes data) { p->on_datagram(data); });
  member->up->set_receiver([this, id = member->id](Bytes data) {
    host_.on_uplink_packet(id, data);
  });
  member->participant->set_uplink(
      [upc = member->up.get()](BytesView packet) { upc->send(packet); });

  mc.members.push_back(std::move(member));
  return *mc.members.back();
}

}  // namespace ads
