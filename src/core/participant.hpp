// Participant: "the computer which receives screen updates from AH and
// sends human interface events back to the AH. Participants do not need to
// store or run the shared application." (§1)
//
// Receives the remoting RTP stream (over UDP with reorder/NACK/PLI
// handling, or over RFC 4571-framed TCP), maintains a replica of the shared
// screen region plus the window records from WindowManagerInfo, and
// originates HIP events and BFCP floor requests.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "bfcp/bfcp_message.hpp"
#include "codec/registry.hpp"
#include "rtp/packet_classify.hpp"
#include "hip/messages.hpp"
#include "image/image.hpp"
#include "net/event_loop.hpp"
#include "remoting/message.hpp"
#include "rtp/framing.hpp"
#include "rtp/reorder_buffer.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_session.hpp"

namespace ads {

/// Every knob of a participant: replica geometry, loss-recovery ladder,
/// feedback cadences and BFCP identity.
struct ParticipantOptions {
  /// Transport family of the downlink this participant receives on.
  enum class Transport { kUdp, kTcp };
  Transport transport = Transport::kUdp;
  std::int64_t screen_width = 1280;   ///< replica buffer dimensions
  std::int64_t screen_height = 1024;
  /// Send Generic NACKs for missing packets (§5.3.2); pointless when the
  /// AH's SDP said retransmissions=no.
  bool send_nacks = true;
  SimTime nack_delay_us = 15'000;
  /// Random extra NACK delay drawn per round — multicast NACK-storm
  /// avoidance (§5.3.2: "waiting random amount of time before sending a
  /// 'NACK Request'"). If a group-mate's NACK triggers a repair first, the
  /// pending NACK is suppressed.
  SimTime nack_jitter_us = 0;
  /// RTCP Receiver Report cadence (0 = no RRs).
  SimTime rr_interval_us = 1'000'000;
  /// After this long with an unrepaired gap (no NACKs, or NACKs that made
  /// no progress), abandon the gap and request a PLI full refresh.
  SimTime loss_recovery_delay_us = 250'000;
  /// NACK rounds without progress before falling back to PLI.
  int max_nack_rounds = 8;
  /// Per-sequence NACK retry cap: a sequence requested this many times
  /// without a repair arriving is abandoned and escalated to a PLI full
  /// refresh (bounded retries — a blackout must not generate NACKs
  /// forever).
  int max_nack_per_seq = 4;
  /// Give up on an unrepaired gap after this many newer packets and request
  /// a PLI full refresh instead.
  std::size_t reorder_max_hold = 128;
  /// Age bound on reorder-buffer entries: packets held longer than this
  /// behind an unrepaired gap are flushed past it (counted in
  /// gaps_skipped), so a permanently lost packet cannot stall delivery —
  /// even across a sequence wrap. 0 disables.
  SimTime reorder_max_age_us = 500'000;
  /// Starvation watchdog (escalation ladder, last rung): when no remoting
  /// media has arrived for this long after the stream started (or after
  /// join()), request a PLI full refresh. Repeated starvation doubles the
  /// delay up to starvation_backoff_max_us, with uniform random jitter of
  /// starvation_jitter × delay added to decorrelate refresh storms across
  /// participants. Any arriving media resets the ladder. 0 disables.
  SimTime starvation_timeout_us = 2'000'000;
  SimTime starvation_backoff_max_us = 30'000'000;
  double starvation_jitter = 0.25;
  std::uint16_t user_id = 0;  ///< BFCP identity (the AH-side ParticipantId)
  std::uint64_t seed = 7;
};

/// A sharing participant: replicates the AH screen from the remoting
/// stream and originates HIP input and BFCP floor requests.
class Participant {
 public:
  Participant(EventLoop& loop, ParticipantOptions opts = {});

  // ---- downlink (AH → participant) ----
  /// One UDP datagram (remoting RTP, or BFCP/RTCP from the AH).
  void on_datagram(BytesView data);
  /// TCP stream bytes (RFC 4571 frames).
  void on_stream_bytes(BytesView data);

  // ---- uplink (participant → AH) ----
  /// Packet-oriented transmit hook; the session layer adds RFC 4571
  /// framing for TCP transports.
  void set_uplink(std::function<void(BytesView)> send) { uplink_ = std::move(send); }

  /// §4.3: late joiners request the window state + full screen via PLI.
  /// Also arms the starvation watchdog, so a join PLI lost to a blackout is
  /// retried instead of waiting forever.
  void join();
  void request_refresh();  ///< send a PLI now

  /// The transport below was torn down and replaced (TCP reconnect): drop
  /// any partially received RFC 4571 frame and partial message reassembly,
  /// and reset the loss/NACK machinery. Replicated state (screen, windows)
  /// is kept — the AH resyncs it via the late-join WMI + full-refresh path.
  void on_transport_reset();

  // ---- floor control ----
  /// Queue a BFCP FloorRequest for the input floor.
  void request_floor();
  /// Release a held (or pending) floor.
  void release_floor();
  /// True while the AH has granted this participant the floor.
  bool has_floor() const { return has_floor_; }
  /// True while a floor request is queued but not yet granted.
  bool floor_pending() const { return floor_pending_; }
  /// Last HID status received from the floor server (Figure 20).
  HidStatus hid_status() const { return hid_status_; }

  // ---- HIP event sources ----
  /// Send a MouseMoved HIP event at absolute coordinates.
  void mouse_move(std::uint32_t x, std::uint32_t y);
  /// Send a MousePressed HIP event.
  void mouse_press(std::uint32_t x, std::uint32_t y, MouseButton b);
  /// Send a MouseReleased HIP event.
  void mouse_release(std::uint32_t x, std::uint32_t y, MouseButton b);
  /// Send a MouseWheelMoved HIP event (two's-complement distance, §6.5).
  void mouse_wheel(std::uint32_t x, std::uint32_t y, std::int32_t distance);
  /// Send a KeyPressed HIP event.
  void key_press(vk::KeyCode code);
  /// Send a KeyReleased HIP event.
  void key_release(vk::KeyCode code);
  /// Splits into multiple KeyTyped messages when needed (§6.8).
  void key_type(const std::string& utf8);

  // ---- replicated state ----
  /// The replica framebuffer this participant has reconstructed.
  const Image& screen() const { return replica_; }
  /// Window records from the last WindowManagerInfo, by window id.
  const std::map<std::uint16_t, WindowRecord>& windows() const { return windows_; }
  /// Last pointer position received via MousePointerInfo.
  Point pointer() const { return pointer_; }
  /// Last pointer icon received (empty when the AH never sent one).
  const Image& pointer_icon() const { return pointer_icon_; }

  /// Window that currently has "focus" for HIP WindowID stamping: topmost
  /// record containing the last mouse position (0 when none).
  std::uint16_t focus_window() const { return focus_window_; }

  /// One completed RegionUpdate delivery (for latency measurements).
  struct DeliveryRecord {
    SimTime arrived_us = 0;
    std::uint32_t rtp_timestamp = 0;
    std::size_t content_bytes = 0;
    Rect region;
  };

  /// Lifetime totals for everything received, repaired and sent.
  struct Stats {
    std::uint64_t rtp_packets = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t region_updates = 0;
    std::uint64_t move_rectangles = 0;
    std::uint64_t wmi_received = 0;
    std::uint64_t pointer_updates = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t nacks_sent = 0;
    std::uint64_t plis_sent = 0;
    std::uint64_t gaps_skipped = 0;
    std::uint64_t hip_sent = 0;
    std::uint64_t rrs_sent = 0;
    std::uint64_t srs_received = 0;
    std::uint64_t nack_escalations = 0;   ///< per-seq retry cap hit → PLI
    std::uint64_t starvation_plis = 0;    ///< watchdog-triggered refreshes
    std::uint64_t reorder_expired = 0;    ///< packets flushed by the age bound
    std::uint64_t transport_resets = 0;   ///< reconnects survived
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

  /// Completed RegionUpdate deliveries since the last drain (for latency
  /// benchmarks).
  std::vector<DeliveryRecord> drain_deliveries();

 private:
  void send_packet(BytesView packet);
  void send_hip(const HipMessage& msg);
  void handle_packet(BytesView packet);
  void handle_rtp(RtpPacket pkt);
  void deliver(const RtpPacket& pkt);
  void apply(RemotingMessage msg, const RtpPacket& pkt);
  void apply_wmi(const WindowManagerInfo& msg);
  void apply_region_update(const RegionUpdate& msg, const RtpPacket& pkt);
  void apply_move_rectangle(const MoveRectangle& msg);
  void apply_pointer(const MousePointerInfo& msg);
  void handle_bfcp(BytesView packet);
  void handle_rtcp_downlink(BytesView packet);
  void schedule_nack();
  void schedule_loss_recovery();
  void recover_from_loss();
  void schedule_rr();
  void arm_watchdog(SimTime delay);
  void on_media_activity();

  EventLoop& loop_;
  ParticipantOptions opts_;
  CodecRegistry codecs_;
  std::function<void(BytesView)> uplink_;

  RtpSender hip_sender_;
  RtpReceiver receiver_;
  ReorderBuffer reorder_;
  RemotingDemux demux_;
  StreamDeframer deframer_;
  std::uint32_t remoting_ssrc_ = 0;  ///< learned from the first packet
  bool nack_timer_armed_ = false;
  bool recovery_timer_armed_ = false;
  bool rr_timer_armed_ = false;
  int nack_rounds_ = 0;
  std::map<std::uint16_t, int> nack_attempts_;  ///< per-seq retry counts
  // Starvation watchdog state.
  bool watchdog_armed_ = false;
  SimTime watchdog_delay_us_ = 0;   ///< current (backed-off) timeout
  SimTime last_media_us_ = 0;
  bool media_seen_ = false;
  Prng rng_;
  // Last Sender Report, for the LSR/DLSR fields of our Receiver Reports.
  std::uint32_t last_sr_mid_ntp_ = 0;
  SimTime last_sr_arrival_us_ = 0;

 public:
  /// Receiver-side link statistics (jitter in RTP ticks, cumulative loss).
  const RtpReceiver& receiver() const { return receiver_; }

 private:

  Image replica_;
  std::map<std::uint16_t, WindowRecord> windows_;
  Point pointer_{0, 0};
  Image pointer_icon_;
  Point last_mouse_{0, 0};
  std::uint16_t focus_window_ = 0;

  bool has_floor_ = false;
  bool floor_pending_ = false;
  HidStatus hid_status_ = HidStatus::kNotAllowed;
  std::uint16_t next_transaction_ = 1;

  Stats stats_;
  std::vector<DeliveryRecord> deliveries_;
};

}  // namespace ads
