#include "core/parallel_encoder.hpp"

#include <algorithm>

#include "image/damage.hpp"

namespace ads {

ParallelEncoder::ParallelEncoder(const CodecRegistry& registry,
                                 ParallelEncoderOptions opts)
    : registry_(registry), cache_(opts.cache_bytes) {
  if (opts.threads > 0) pool_ = std::make_unique<ThreadPool>(opts.threads);
  // One scratch per worker plus one for the submitting thread (serial mode
  // and cache-miss bookkeeping both run there).
  scratch_.resize((pool_ ? pool_->size() : 0) + 1);
  crop_.resize(scratch_.size());
}

std::vector<Bytes> ParallelEncoder::encode_regions(const Image& frame,
                                                   const std::vector<Rect>& rects,
                                                   ContentPt pt,
                                                   const EncodeParams& params) {
  std::vector<Bytes> results(rects.size());
  const bool use_cache = cache_.max_bytes() > 0;
  ++stats_.encode_calls;
  stats_.bands_requested += rects.size();

  // Pass 1 (submitting thread, deterministic order): cache lookups. Misses
  // are queued for encoding; their keys are kept so pass 3 can fill the
  // cache in submission order, keeping LRU state independent of thread
  // interleaving.
  std::vector<std::size_t> pending;
  std::vector<EncodedRegionKey> keys(rects.size());
  pending.reserve(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) {
    if (use_cache) {
      keys[i] = EncodedRegionKey{hash_rect(frame, rects[i]),
                                 static_cast<std::uint8_t>(pt),
                                 static_cast<std::uint8_t>(
                                     std::clamp(params.dct_quality, 0, 100)),
                                 static_cast<std::uint32_t>(rects[i].width),
                                 static_cast<std::uint32_t>(rects[i].height)};
      // Copy-out lookup: a raw find() pointer would be invalidated by the
      // pass-3 inserts (and by any interleaved caller), so hits never
      // escape the cache as references.
      if (cache_.find_copy(keys[i], results[i])) {
        ++stats_.cache_hits;
        stats_.cache_hit_bytes += results[i].size();
        continue;
      }
      ++stats_.cache_misses;
    }
    pending.push_back(i);
  }

  // Pass 2: encode the misses — fanned out when a pool exists, inline
  // otherwise. Workers only touch their own scratch and their own result
  // slots; wait_idle() publishes the writes back to this thread.
  if (pool_ && pending.size() > 1) {
    for (const std::size_t i : pending) {
      pool_->submit([this, &frame, &rects, &results, pt, params, i](std::size_t worker) {
        frame.crop_into(rects[i], crop_[worker]);
        registry_.encode_into(pt, crop_[worker], results[i], scratch_[worker], params);
      });
    }
    pool_->wait_idle();
  } else {
    for (const std::size_t i : pending) {
      frame.crop_into(rects[i], crop_.back());
      registry_.encode_into(pt, crop_.back(), results[i], scratch_.back(), params);
    }
  }
  stats_.bands_encoded += pending.size();
  stats_.peak_queue_depth = std::max<std::uint64_t>(stats_.peak_queue_depth,
                                                    pending.size());

  // Pass 3 (submitting thread): populate the cache in submission order.
  if (use_cache) {
    for (const std::size_t i : pending) cache_.insert(keys[i], results[i]);
  }
  return results;
}

}  // namespace ads
