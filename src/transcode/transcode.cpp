#include "transcode/transcode.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>

#include "util/simd.hpp"

namespace ads::transcode {
namespace {

static_assert(sizeof(Pixel) == 4, "box_halve_row assumes packed RGBA8");

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

// Parse a decimal int64 from [p, end); advances p past the digits. False on
// no digits or out-of-range.
bool parse_i64(const char*& p, const char* end, std::int64_t& out) {
  const auto [next, ec] = std::from_chars(p, end, out);
  if (ec != std::errc{} || next == p) return false;
  p = next;
  return true;
}

}  // namespace

DeviceClass device_class(const OutputGeometry& g) {
  if (g.follow || !g.viewport.empty()) return DeviceClass::kViewport;
  if (g.scale_shift == 0) return DeviceClass::kFull;
  if (g.scale_shift == 1) return DeviceClass::kHalf;
  return DeviceClass::kQuarter;
}

std::string_view device_class_name(DeviceClass c) {
  switch (c) {
    case DeviceClass::kHalf: return "half";
    case DeviceClass::kQuarter: return "quarter";
    case DeviceClass::kViewport: return "viewport";
    case DeviceClass::kFull: break;
  }
  return "full";
}

std::string to_token(const OutputGeometry& g) {
  std::string out = "s";
  out += std::to_string(static_cast<int>(g.scale_shift));
  if (!g.viewport.empty()) {
    out += ";v";
    out += std::to_string(g.viewport.left);
    out += ',';
    out += std::to_string(g.viewport.top);
    out += ',';
    out += std::to_string(g.viewport.width);
    out += ',';
    out += std::to_string(g.viewport.height);
  }
  if (g.follow) out += ";f";
  return out;
}

std::optional<OutputGeometry> parse_token(std::string_view token) {
  OutputGeometry g;
  const char* p = token.data();
  const char* const end = p + token.size();
  if (p == end || *p != 's') return std::nullopt;
  ++p;
  std::int64_t shift = 0;
  if (!parse_i64(p, end, shift) || shift < 0 || shift > kMaxScaleShift) {
    return std::nullopt;
  }
  g.scale_shift = static_cast<std::uint8_t>(shift);
  while (p != end) {
    if (*p != ';' || ++p == end) return std::nullopt;
    if (*p == 'v') {
      ++p;
      std::int64_t v[4];
      for (int i = 0; i < 4; ++i) {
        if (i > 0) {
          if (p == end || *p != ',') return std::nullopt;
          ++p;
        }
        if (!parse_i64(p, end, v[i]) || v[i] < 0) return std::nullopt;
      }
      if (v[2] <= 0 || v[3] <= 0) return std::nullopt;
      g.viewport = Rect{v[0], v[1], v[2], v[3]};
    } else if (*p == 'f') {
      ++p;
      g.follow = true;
    } else {
      return std::nullopt;
    }
  }
  return g;
}

Rect source_rect(const OutputGeometry& g, const Rect& frame_bounds) {
  if (g.viewport.empty()) return frame_bounds;
  const Rect r = intersect(g.viewport, frame_bounds);
  // A viewport pushed entirely off-frame (host resize, window moved away)
  // degrades to the whole frame rather than an empty stream.
  return r.empty() ? frame_bounds : r;
}

Rect output_bounds(const OutputGeometry& g, const Rect& frame_bounds) {
  const Rect src = source_rect(g, frame_bounds);
  const std::int64_t f = g.factor();
  return {0, 0, ceil_div(src.width, f), ceil_div(src.height, f)};
}

Rect map_rect_to_output(const OutputGeometry& g, const Rect& frame_bounds,
                        const Rect& host_rect) {
  const Rect src = source_rect(g, frame_bounds);
  const Rect r = intersect(host_rect, src);
  if (r.empty()) return {};
  const std::int64_t f = g.factor();
  const std::int64_t left = (r.left - src.left) / f;
  const std::int64_t top = (r.top - src.top) / f;
  const std::int64_t right = ceil_div(r.right() - src.left, f);
  const std::int64_t bottom = ceil_div(r.bottom() - src.top, f);
  return {left, top, right - left, bottom - top};
}

Rect map_rect_to_host(const OutputGeometry& g, const Rect& frame_bounds,
                      const Rect& out_rect) {
  const Rect src = source_rect(g, frame_bounds);
  const Rect r = intersect(out_rect, output_bounds(g, frame_bounds));
  if (r.empty()) return {};
  const std::int64_t f = g.factor();
  const std::int64_t left = src.left + r.left * f;
  const std::int64_t top = src.top + r.top * f;
  const std::int64_t right = std::min(src.right(), src.left + r.right() * f);
  const std::int64_t bottom = std::min(src.bottom(), src.top + r.bottom() * f);
  return {left, top, right - left, bottom - top};
}

Point map_point_to_output(const OutputGeometry& g, const Rect& frame_bounds,
                          Point host_pt) {
  const Rect src = source_rect(g, frame_bounds);
  const std::int64_t f = g.factor();
  const std::int64_t x = std::clamp(host_pt.x, src.left, src.right() - 1);
  const std::int64_t y = std::clamp(host_pt.y, src.top, src.bottom() - 1);
  return {(x - src.left) / f, (y - src.top) / f};
}

Point map_point_to_host(const OutputGeometry& g, const Rect& frame_bounds,
                        Point out_pt) {
  const Rect src = source_rect(g, frame_bounds);
  const Rect out = output_bounds(g, frame_bounds);
  const std::int64_t f = g.factor();
  const std::int64_t ox = std::clamp(out_pt.x, std::int64_t{0}, out.width - 1);
  const std::int64_t oy = std::clamp(out_pt.y, std::int64_t{0}, out.height - 1);
  // Centre of the 2^shift × 2^shift source block, clamped for edge blocks
  // that the odd-extent replication rule truncated.
  const std::int64_t hx = std::min(src.left + ox * f + f / 2, src.right() - 1);
  const std::int64_t hy = std::min(src.top + oy * f + f / 2, src.bottom() - 1);
  return {hx, hy};
}

Image box_halve(const Image& src) {
  if (src.empty()) return src;
  const std::int64_t w = src.width();
  const std::int64_t h = src.height();
  Image out((w + 1) / 2, (h + 1) / 2);
  const std::span<Pixel> dst = out.pixels();
  for (std::int64_t y = 0; y < out.height(); ++y) {
    const std::span<const Pixel> r0 = src.row(2 * y);
    const std::span<const Pixel> r1 = src.row(std::min(2 * y + 1, h - 1));
    simd::box_halve_row(reinterpret_cast<const std::uint8_t*>(r0.data()),
                        reinterpret_cast<const std::uint8_t*>(r1.data()),
                        static_cast<std::size_t>(w),
                        reinterpret_cast<std::uint8_t*>(
                            dst.subspan(static_cast<std::size_t>(y * out.width()))
                                .data()));
  }
  return out;
}

Image scale_frame(const Image& frame, const OutputGeometry& g) {
  Image out = frame.crop(source_rect(g, frame.bounds()));
  for (std::uint8_t s = 0; s < g.scale_shift && !out.empty(); ++s)
    out = box_halve(out);
  return out;
}

void FrameScaler::begin_tick() { cache_.clear(); }

const Image& FrameScaler::view(const Image& frame, const OutputGeometry& g) {
  const Rect src = source_rect(g, frame.bounds());
  // Pixel-identity geometries (native rung, whole frame) pass the live frame
  // through — no copy, no cache entry.
  if (frame.empty() || (g.scale_shift == 0 && src == frame.bounds())) return frame;
  for (const Entry& e : cache_) {
    if (e.scale_shift == g.scale_shift && e.src == src) {
      ++stats_.cache_hits;
      return e.image;
    }
  }
  Entry& e = cache_.emplace_back();
  e.scale_shift = g.scale_shift;
  e.src = src;
  e.image = scale_frame(frame, g);
  ++stats_.frames_scaled;
  stats_.pixels_scaled += static_cast<std::uint64_t>(e.image.width()) *
                          static_cast<std::uint64_t>(e.image.height());
  return e.image;
}

}  // namespace ads::transcode
