// Output-geometry transcode stage (ROADMAP item 4, E20).
//
// The fan-out cohorts of docs/ARCHITECTURE.md share one encode per operating
// point, but until this module the operating point fixed the *geometry*: every
// viewer received the host's native resolution. Heterogeneous receivers
// (VirtuMob-style quarter-resolution smartphones, WebNC-style region-of-
// interest viewers) want the cohort operating point to include an **output
// geometry** — a power-of-two downscale rung plus an optional host-space
// crop/viewport rect — so a device class pays only for the pixels it can
// show.
//
// This module owns the geometry value type, the host↔output coordinate
// mapping used on both the media path (damage rects, MoveRectangle, pointer
// overlay) and the input path (HIP events mapped back to host space), and the
// per-tick `FrameScaler` cache that materialises each distinct geometry's
// scaled frame at most once per tick. Scaling is an iterated 2× box average
// over the (cropped) source rect, built on `simd::box_halve_row`
// (AVX2/SSE/scalar, byte-identical across dispatch) so cohort encodes stay
// deterministic regardless of the host CPU.
//
// Coordinate conventions (see docs/TRANSCODE.md):
//   * `source_rect` is the host-space rect actually streamed: the viewport
//     clipped to the frame, or the whole frame when no viewport is set.
//   * Output space has origin (0,0) at the source rect's top-left and is
//     `ceil(source_extent / 2^scale_shift)` in each axis; odd source extents
//     replicate the right/bottom edge (the simd kernel's clamp rule).
//   * Host→output rect mapping uses *cover* semantics (floor the near edge,
//     ceil the far edge) so any damaged source pixel's output block is
//     re-encoded; output→host point mapping returns the source block's
//     centre, clamped into the source rect (§4.1 legitimacy checks and the
//     input sink both operate on host coordinates).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ads::transcode {

/// Deepest downscale rung any geometry may request (1/64 per axis — far
/// below the smallest device class worth streaming). Shared bound for the
/// SDP token parser, the offer's geometry-max attribute and the AH's
/// set_participant_geometry validation.
inline constexpr std::uint8_t kMaxScaleShift = 6;

/// One cohort's output geometry: a power-of-two downscale rung plus an
/// optional host-space viewport. Default-constructed = identity (full frame,
/// native resolution). Part of the fan-out cohort key and the snapshot
/// BundleKey, so it is ordered and cheap to compare.
struct OutputGeometry {
  /// Downscale exponent: each axis shrinks by 2^scale_shift (0 = native).
  std::uint8_t scale_shift = 0;
  /// Host-space crop; empty = whole frame. For follow mode this holds the
  /// *resolved* viewport (the focused window's frame) once the host has
  /// anchored it for the tick.
  Rect viewport{};
  /// Viewport-follow: the viewport tracks the focused shared window and is
  /// re-anchored by the host on WM focus/move/resize events.
  bool follow = false;

  /// True for the identity geometry (native resolution, no crop, no follow).
  bool identity() const { return scale_shift == 0 && viewport.empty() && !follow; }
  /// Per-axis downscale factor, 2^scale_shift.
  std::int64_t factor() const { return std::int64_t{1} << scale_shift; }

  friend bool operator==(const OutputGeometry&, const OutputGeometry&) = default;
};

/// Device classes for telemetry / per-class byte accounting (E20): the
/// scale rung, or kViewport whenever a crop/follow viewport is in play.
enum class DeviceClass { kFull = 0, kHalf = 1, kQuarter = 2, kViewport = 3 };

/// Classify a geometry: any viewport/follow → kViewport, else by rung
/// (shift 0 → full, 1 → half, >= 2 → quarter).
DeviceClass device_class(const OutputGeometry& g);

/// Telemetry suffix for a device class ("full", "half", "quarter",
/// "viewport").
std::string_view device_class_name(DeviceClass c);

/// Serialise a geometry as the compact SDP token used by the
/// `a=geometry:` answer attribute — "s<shift>[;v<l>,<t>,<w>,<h>][;f]",
/// e.g. "s0" (identity), "s2" (quarter rung), "s1;v8,8,64,48", "s0;f".
std::string to_token(const OutputGeometry& g);

/// Parse the `to_token` format; nullopt on malformed input.
std::optional<OutputGeometry> parse_token(std::string_view token);

/// The host-space rect actually streamed: viewport ∩ frame bounds, or the
/// whole frame when the viewport is empty (or the intersection is).
Rect source_rect(const OutputGeometry& g, const Rect& frame_bounds);

/// Output-space bounds: origin (0,0), extent ceil(source / 2^shift) per axis.
Rect output_bounds(const OutputGeometry& g, const Rect& frame_bounds);

/// Map a host-space rect into output space with cover semantics (floor near
/// edge, ceil far edge), clipped to the source rect first. Empty result when
/// the rect misses the source rect entirely.
Rect map_rect_to_output(const OutputGeometry& g, const Rect& frame_bounds,
                        const Rect& host_rect);

/// Map an output-space rect back to the host-space region it covers
/// (the inverse cover: every source pixel feeding the output rect). Clipped
/// to the source rect.
Rect map_rect_to_host(const OutputGeometry& g, const Rect& frame_bounds,
                      const Rect& out_rect);

/// Map a host-space point to the output pixel containing it (clamped into
/// the source rect first, so edge/outside points land on the nearest output
/// pixel).
Point map_point_to_output(const OutputGeometry& g, const Rect& frame_bounds,
                          Point host_pt);

/// Map an output-space point back to host space: the centre of its source
/// block, clamped into the source rect. This is the HIP inverse mapping —
/// a click on a quarter-resolution stream lands on the middle of the 4×4
/// host block the output pixel was averaged from.
Point map_point_to_host(const OutputGeometry& g, const Rect& frame_bounds,
                        Point out_pt);

/// One 2× box-halve pass over `src` (edge-replicating on odd extents),
/// producing a ceil(w/2) × ceil(h/2) image via `simd::box_halve_row`.
/// Exposed for the golden byte-identity tests.
Image box_halve(const Image& src);

/// Materialise `frame` under `g`: crop to the source rect, then halve
/// `scale_shift` times. Identity geometry returns a plain copy.
Image scale_frame(const Image& frame, const OutputGeometry& g);

/// Per-tick cache of scaled frames, keyed by (scale rung × source rect).
/// The host calls `begin_tick()` once per capture tick, then `view()` per
/// cohort; each distinct geometry is materialised at most once per tick no
/// matter how many cohorts or joiners share it. Identity geometries pass the
/// live frame through without copying.
class FrameScaler {
 public:
  /// Lifetime counters for telemetry (`transcode.*`).
  struct Stats {
    std::uint64_t frames_scaled = 0;  ///< cache misses: scaled frames built
    std::uint64_t pixels_scaled = 0;  ///< output pixels produced by misses
    std::uint64_t cache_hits = 0;     ///< views served from the tick cache
  };

  /// Invalidate the cache for a new tick (the capture frame changed).
  void begin_tick();

  /// The scaled view of `frame` under `g` (valid until the next
  /// begin_tick()). Identity geometry returns `frame` itself.
  const Image& view(const Image& frame, const OutputGeometry& g);

  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  /// One cached scaled frame for a (rung × source rect) pair.
  struct Entry {
    std::uint8_t scale_shift = 0;
    Rect src;
    Image image;
  };

  /// A handful of device classes per session — linear scan; deque so
  /// references handed out by view() survive later insertions in the tick.
  std::deque<Entry> cache_;
  Stats stats_;
};

}  // namespace ads::transcode
