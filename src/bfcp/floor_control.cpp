#include "bfcp/floor_control.hpp"

#include <algorithm>

namespace ads {

BfcpMessage FloorControlServer::make_status(std::uint16_t user_id,
                                            std::uint16_t transaction_id,
                                            std::uint16_t floor_request_id,
                                            RequestStatus status,
                                            std::uint8_t queue_position) const {
  BfcpMessage msg;
  msg.primitive = BfcpPrimitive::kFloorRequestStatus;
  msg.conference_id = opts_.conference_id;
  msg.transaction_id = transaction_id;
  msg.user_id = user_id;
  msg.floor_id = opts_.floor_id;
  msg.floor_request_id = floor_request_id;
  msg.request_status = status;
  msg.queue_position = queue_position;
  if (status == RequestStatus::kGranted) msg.hid_status = hid_status_;
  return msg;
}

std::vector<BfcpMessage> FloorControlServer::grant_next(std::uint64_t now_us) {
  std::vector<BfcpMessage> out;
  if (holder_ || queue_.empty()) return out;
  const PendingRequest next = queue_.front();
  queue_.pop_front();
  holder_ = next.user_id;
  holder_request_id_ = next.floor_request_id;
  grant_expires_us_ =
      opts_.grant_duration_us ? now_us + opts_.grant_duration_us : 0;
  out.push_back(make_status(next.user_id, next.transaction_id,
                            next.floor_request_id, RequestStatus::kGranted, 0));
  return out;
}

std::vector<BfcpMessage> FloorControlServer::on_message(const BfcpMessage& request,
                                                        std::uint64_t now_us) {
  std::vector<BfcpMessage> out;
  if (request.conference_id != opts_.conference_id) return out;

  switch (request.primitive) {
    case BfcpPrimitive::kFloorRequest: {
      // Duplicate request from the current holder or an already-queued user
      // is answered with its current state rather than double-queued.
      if (holder_ == request.user_id) {
        out.push_back(make_status(request.user_id, request.transaction_id,
                                  holder_request_id_, RequestStatus::kGranted, 0));
        return out;
      }
      auto queued = std::find_if(queue_.begin(), queue_.end(),
                                 [&](const PendingRequest& p) {
                                   return p.user_id == request.user_id;
                                 });
      if (queued != queue_.end()) {
        const auto pos = static_cast<std::uint8_t>(
            std::distance(queue_.begin(), queued) + 1);
        out.push_back(make_status(request.user_id, request.transaction_id,
                                  queued->floor_request_id, RequestStatus::kPending,
                                  pos));
        return out;
      }
      const std::uint16_t request_id = next_floor_request_id_++;
      queue_.push_back({request.user_id, request.transaction_id, request_id});
      if (!holder_) {
        auto granted = grant_next(now_us);
        out.insert(out.end(), granted.begin(), granted.end());
      } else {
        // "Floor Request Queued"
        out.push_back(make_status(request.user_id, request.transaction_id, request_id,
                                  RequestStatus::kPending,
                                  static_cast<std::uint8_t>(queue_.size())));
      }
      return out;
    }
    case BfcpPrimitive::kFloorRelease: {
      if (holder_ == request.user_id) {
        out.push_back(make_status(request.user_id, request.transaction_id,
                                  holder_request_id_, RequestStatus::kReleased, 0));
        holder_.reset();
        auto granted = grant_next(now_us);
        out.insert(out.end(), granted.begin(), granted.end());
        return out;
      }
      // Releasing a queued (not yet granted) request cancels it.
      auto queued = std::find_if(queue_.begin(), queue_.end(),
                                 [&](const PendingRequest& p) {
                                   return p.user_id == request.user_id;
                                 });
      if (queued != queue_.end()) {
        out.push_back(make_status(request.user_id, request.transaction_id,
                                  queued->floor_request_id, RequestStatus::kCancelled,
                                  0));
        queue_.erase(queued);
      }
      return out;
    }
    case BfcpPrimitive::kFloorRequestStatus:
      return out;  // server-originated only
  }
  return out;
}

std::vector<BfcpMessage> FloorControlServer::tick(std::uint64_t now_us) {
  std::vector<BfcpMessage> out;
  if (holder_ && grant_expires_us_ != 0 && now_us >= grant_expires_us_) {
    out.push_back(
        make_status(*holder_, 0, holder_request_id_, RequestStatus::kRevoked, 0));
    holder_.reset();
    auto granted = grant_next(now_us);
    out.insert(out.end(), granted.begin(), granted.end());
  }
  return out;
}

std::vector<BfcpMessage> FloorControlServer::set_hid_status(HidStatus status) {
  hid_status_ = status;
  std::vector<BfcpMessage> out;
  if (holder_) {
    // "The participant MAY receive several 'Floor Granted' messages with
    // different 'HID Status' values." (Appendix A)
    out.push_back(
        make_status(*holder_, 0, holder_request_id_, RequestStatus::kGranted, 0));
  }
  return out;
}

bool FloorControlServer::may_send_mouse(std::uint16_t user_id) const {
  if (holder_ != user_id) return false;
  return hid_status_ == HidStatus::kMouseAllowed || hid_status_ == HidStatus::kAllAllowed;
}

bool FloorControlServer::may_send_keyboard(std::uint16_t user_id) const {
  if (holder_ != user_id) return false;
  return hid_status_ == HidStatus::kKeyboardAllowed ||
         hid_status_ == HidStatus::kAllAllowed;
}

}  // namespace ads
