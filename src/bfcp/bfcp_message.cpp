#include "bfcp/bfcp_message.hpp"

namespace ads {
namespace {

// RFC 4582 §5.2 attribute types used here.
constexpr std::uint8_t kAttrFloorId = 2;
constexpr std::uint8_t kAttrFloorRequestId = 3;
constexpr std::uint8_t kAttrRequestStatus = 5;
constexpr std::uint8_t kAttrStatusInfo = 9;

/// Write one attribute TLV: Type(7)|M(1), Length (covers header+payload,
/// before padding), payload, zero padding to a 32-bit boundary.
void write_attr(ByteWriter& out, std::uint8_t type, BytesView payload) {
  const std::size_t len = 2 + payload.size();
  out.u8(static_cast<std::uint8_t>(type << 1));  // M bit 0
  out.u8(static_cast<std::uint8_t>(len));
  out.bytes(payload);
  while ((out.size() & 3) != 0) out.u8(0);
}

}  // namespace

Bytes BfcpMessage::serialize() const {
  ByteWriter attrs;
  if (floor_id) {
    ByteWriter p;
    p.u16(*floor_id);
    write_attr(attrs, kAttrFloorId, p.view());
  }
  if (floor_request_id) {
    ByteWriter p;
    p.u16(*floor_request_id);
    write_attr(attrs, kAttrFloorRequestId, p.view());
  }
  if (request_status) {
    ByteWriter p;
    p.u8(static_cast<std::uint8_t>(*request_status));
    p.u8(queue_position);
    write_attr(attrs, kAttrRequestStatus, p.view());
  }
  if (hid_status) {
    // Appendix A: HID Status values are 16-bit unsigned, carried in
    // STATUS-INFO.
    ByteWriter p;
    p.u16(static_cast<std::uint16_t>(*hid_status));
    write_attr(attrs, kAttrStatusInfo, p.view());
  }

  ByteWriter out(12 + attrs.size());
  out.u8(0x20);  // Ver=1 (3 bits), R=0, Res=0
  out.u8(static_cast<std::uint8_t>(primitive));
  // Payload Length: number of 32-bit words following the common header.
  out.u16(static_cast<std::uint16_t>(attrs.size() / 4));
  out.u32(conference_id);
  out.u16(transaction_id);
  out.u16(user_id);
  out.bytes(attrs.view());
  return out.take();
}

Result<BfcpMessage> BfcpMessage::parse(BytesView data) {
  ByteReader in(data);
  auto ver = in.u8();
  auto prim = in.u8();
  auto payload_len = in.u16();
  auto conf = in.u32();
  auto trans = in.u16();
  auto user = in.u16();
  if (!ver || !prim || !payload_len || !conf || !trans || !user)
    return ParseError::kTruncated;
  if ((*ver >> 5) != 1) return ParseError::kBadValue;
  if (*prim != 1 && *prim != 2 && *prim != 4) return ParseError::kUnsupported;

  BfcpMessage msg;
  msg.primitive = static_cast<BfcpPrimitive>(*prim);
  msg.conference_id = *conf;
  msg.transaction_id = *trans;
  msg.user_id = *user;

  const std::size_t attr_bytes = static_cast<std::size_t>(*payload_len) * 4;
  if (in.remaining() < attr_bytes) return ParseError::kTruncated;
  auto body = in.bytes(attr_bytes);
  ByteReader attrs(*body);
  while (!attrs.at_end()) {
    auto tm = attrs.u8();
    auto len = attrs.u8();
    if (!tm || !len) return ParseError::kTruncated;
    if (*len < 2) return ParseError::kBadValue;
    const std::uint8_t type = *tm >> 1;
    const std::size_t payload_size = *len - 2;
    auto payload = attrs.bytes(payload_size);
    if (!payload) return payload.error();
    // Consume padding to the 32-bit boundary.
    const std::size_t padded = (static_cast<std::size_t>(*len) + 3) / 4 * 4;
    if (auto s = attrs.skip(padded - *len); !s.ok()) return s.error();

    ByteReader p(*payload);
    switch (type) {
      case kAttrFloorId: {
        auto v = p.u16();
        if (!v) return v.error();
        msg.floor_id = *v;
        break;
      }
      case kAttrFloorRequestId: {
        auto v = p.u16();
        if (!v) return v.error();
        msg.floor_request_id = *v;
        break;
      }
      case kAttrRequestStatus: {
        auto status = p.u8();
        auto queue = p.u8();
        if (!status || !queue) return ParseError::kTruncated;
        if (*status < 1 || *status > 7) return ParseError::kBadValue;
        msg.request_status = static_cast<RequestStatus>(*status);
        msg.queue_position = *queue;
        break;
      }
      case kAttrStatusInfo: {
        auto v = p.u16();
        if (!v) return v.error();
        if (*v > 3) return ParseError::kBadValue;
        msg.hid_status = static_cast<HidStatus>(*v);
        break;
      }
      default:
        break;  // unknown attributes are skipped
    }
  }
  return msg;
}

}  // namespace ads
