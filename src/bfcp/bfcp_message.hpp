// BFCP (RFC 4582) wire subset required by draft Appendix A: "only five of
// them is a MUST for Application and Desktop Sharing, namely 'Floor
// Request', 'Floor Release', 'Floor Granted', 'Floor Released' and 'Floor
// Request Queued'". In RFC 4582 terms the latter three are
// FloorRequestStatus messages whose REQUEST-STATUS attribute carries
// Granted / Released / Pending; the HID permission state rides in the
// STATUS-INFO attribute (Appendix A, Figure 20).
//
// COMMON-HEADER (RFC 4582 §5.1):
//  | Ver |R| Res   |  Primitive    |        Payload Length         |
//  |                        Conference ID                          |
//  |        Transaction ID         |            User ID            |
// Attributes are TLVs padded to 32 bits.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace ads {

enum class BfcpPrimitive : std::uint8_t {
  kFloorRequest = 1,
  kFloorRelease = 2,
  kFloorRequestStatus = 4,
};

/// RFC 4582 §5.2.5 Request Status values.
enum class RequestStatus : std::uint8_t {
  kPending = 1,   ///< "Floor Request Queued" in the draft's terminology
  kAccepted = 2,
  kGranted = 3,   ///< "Floor Granted"
  kDenied = 4,
  kCancelled = 5,
  kReleased = 6,  ///< "Floor Released"
  kRevoked = 7,
};

constexpr const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kPending: return "Pending";
    case RequestStatus::kAccepted: return "Accepted";
    case RequestStatus::kGranted: return "Granted";
    case RequestStatus::kDenied: return "Denied";
    case RequestStatus::kCancelled: return "Cancelled";
    case RequestStatus::kReleased: return "Released";
    case RequestStatus::kRevoked: return "Revoked";
  }
  return "?";
}

/// HID Status values (draft Appendix A, Figure 20), carried in STATUS-INFO.
enum class HidStatus : std::uint16_t {
  kNotAllowed = 0,
  kKeyboardAllowed = 1,
  kMouseAllowed = 2,
  kAllAllowed = 3,
};

struct BfcpMessage {
  BfcpPrimitive primitive = BfcpPrimitive::kFloorRequest;
  std::uint32_t conference_id = 0;
  std::uint16_t transaction_id = 0;
  std::uint16_t user_id = 0;

  // Attributes (each optional on the wire).
  std::optional<std::uint16_t> floor_id;
  std::optional<std::uint16_t> floor_request_id;
  std::optional<RequestStatus> request_status;
  std::uint8_t queue_position = 0;  ///< meaningful with request_status
  std::optional<HidStatus> hid_status;

  Bytes serialize() const;
  static Result<BfcpMessage> parse(BytesView data);

  friend bool operator==(const BfcpMessage&, const BfcpMessage&) = default;
};

}  // namespace ads
