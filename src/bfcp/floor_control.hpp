// Floor control state machine (draft §4.2 + Appendix A): "BFCP receives
// floor request and floor release messages from participants; and then it
// grants the floor to the appropriate participant for a period of time
// while keeping the requests from other participants in a FIFO queue."
//
// The server also owns the HID permission state: "the AH MAY temporarily
// block HID events without revoking the floor control", announced to the
// current holder via Floor Granted messages with a new STATUS-INFO value.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "bfcp/bfcp_message.hpp"

namespace ads {

struct FloorControlOptions {
  std::uint32_t conference_id = 1;
  std::uint16_t floor_id = 0;
  /// Microseconds a grant lasts before automatic revocation; 0 = unlimited.
  std::uint64_t grant_duration_us = 0;
};

class FloorControlServer {
 public:
  explicit FloorControlServer(FloorControlOptions opts = {}) : opts_(opts) {}

  /// Process one participant message; returns the responses/notifications
  /// the AH must transmit (addressed via their user_id field).
  std::vector<BfcpMessage> on_message(const BfcpMessage& request, std::uint64_t now_us);

  /// Expire an overdue grant. Returns revocation + next-grant messages.
  std::vector<BfcpMessage> tick(std::uint64_t now_us);

  /// Change the HID permission of the current holder ("the AH MAY
  /// temporarily block HID events"); emits a Floor Granted update carrying
  /// the new STATUS-INFO. No-op (empty) without a holder.
  std::vector<BfcpMessage> set_hid_status(HidStatus status);

  std::optional<std::uint16_t> holder() const { return holder_; }
  HidStatus hid_status() const { return hid_status_; }
  std::size_t queue_length() const { return queue_.size(); }

  /// §4.1/§6: the AH accepts input events only from the floor holder with
  /// a permission covering the event class.
  bool may_send_mouse(std::uint16_t user_id) const;
  bool may_send_keyboard(std::uint16_t user_id) const;

 private:
  struct PendingRequest {
    std::uint16_t user_id;
    std::uint16_t transaction_id;
    std::uint16_t floor_request_id;
  };

  BfcpMessage make_status(std::uint16_t user_id, std::uint16_t transaction_id,
                          std::uint16_t floor_request_id, RequestStatus status,
                          std::uint8_t queue_position) const;
  std::vector<BfcpMessage> grant_next(std::uint64_t now_us);

  FloorControlOptions opts_;
  std::deque<PendingRequest> queue_;
  std::optional<std::uint16_t> holder_;
  std::uint16_t holder_request_id_ = 0;
  std::uint64_t grant_expires_us_ = 0;
  HidStatus hid_status_ = HidStatus::kAllAllowed;
  std::uint16_t next_floor_request_id_ = 1;
};

}  // namespace ads
