// Deterministic fault injection for the simulated network: a FaultSchedule
// scripts virtual-clock-timed fault episodes onto existing UdpChannel /
// TcpChannel links — blackout windows, Gilbert–Elliott burst loss,
// bandwidth collapse, stall/resume, and hard connection drops. Every draw
// (episode layout, burst-state dwell times) comes from an explicitly seeded
// Prng, and loss inside an episode rides the channels' own set_loss()
// episode-reseeding contract, so a given (schedule seed, link seed) pair
// replays bit-identically regardless of how much traffic earlier phases
// carried. This is the harness behind the resilience invariant: after the
// last episode clears, every surviving participant must reconverge.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/event_loop.hpp"
#include "net/tcp_channel.hpp"
#include "net/udp_channel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/prng.hpp"

namespace ads::chaos {

/// Two-state Gilbert–Elliott loss process: the link alternates between a
/// good state (light loss) and a bad state (burst loss), with exponentially
/// distributed sojourn times. The schedule drives the state flips by
/// calling UdpChannel::set_loss() at the transition instants.
struct GilbertElliott {
  double loss_good = 0.0;
  double loss_bad = 0.9;
  SimTime mean_good_us = 200'000;  ///< mean sojourn in the good state
  SimTime mean_bad_us = 60'000;    ///< mean sojourn in the bad state
};

enum class FaultClass : std::uint8_t {
  kBlackout,           ///< 100% loss window (UDP)
  kBurstLoss,          ///< Gilbert–Elliott episode (UDP)
  kBandwidthCollapse,  ///< link rate collapses, then restores (UDP or TCP)
  kStall,              ///< send window closes: zero bytes accepted (TCP)
  kDrop,               ///< hard connection drop — permanent until reconnect
  kRelayCrash,         ///< relay node killed cold mid-tree (optional restart)
  kRelayStall,         ///< relay node wedged: forwards and reports nothing
  kJoinFlood,          ///< flash crowd: a wave of late joiners in one window
};

const char* fault_class_name(FaultClass c);

/// One scheduled episode, for introspection and convergence deadlines.
/// For kDrop (and a kRelayCrash scheduled without a restart),
/// end_us == start_us: the fault never clears by itself.
struct FaultEpisode {
  FaultClass kind = FaultClass::kBlackout;
  SimTime start_us = 0;
  SimTime end_us = 0;
};

/// Knobs for the seeded random-schedule generators. Episodes are laid out
/// sequentially (never overlapping on one link) between start_us and
/// horizon_us; every fault has cleared by horizon_us.
struct RandomScheduleOptions {
  SimTime start_us = 500'000;
  SimTime horizon_us = 4'000'000;
  int max_episodes = 4;
  SimTime min_gap_us = 200'000;   ///< healthy time between episodes
  SimTime max_gap_us = 600'000;
  SimTime min_duration_us = 80'000;
  SimTime max_duration_us = 700'000;
  std::uint64_t collapsed_bps = 400'000;  ///< rate during a collapse
};

class FaultSchedule {
 public:
  /// `seed` drives every stochastic choice the schedule makes. When `tel`
  /// is set, episode lifecycle lands in chaos.* counters and the
  /// chaos.active_episodes gauge.
  FaultSchedule(EventLoop& loop, std::uint64_t seed,
                telemetry::Telemetry* tel = nullptr);

  // ---- scripting API (absolute virtual-clock microseconds) ----
  /// 100% loss on `link` during [start, start+duration); loss returns to
  /// `restore_loss` when the window closes.
  void blackout(UdpChannel& link, SimTime start, SimTime duration,
                double restore_loss = 0.0);

  /// Gilbert–Elliott burst loss during [start, start+duration). Dwell times
  /// are drawn from this schedule's seed (one sub-stream per episode).
  void burst_loss(UdpChannel& link, SimTime start, SimTime duration,
                  GilbertElliott ge = {}, double restore_loss = 0.0);

  /// Link rate collapses to `collapsed_bps` during the window, then
  /// restores to `restore_bps`.
  void bandwidth_collapse(UdpChannel& link, SimTime start, SimTime duration,
                          std::uint64_t collapsed_bps, std::uint64_t restore_bps);
  void bandwidth_collapse(TcpChannel& link, SimTime start, SimTime duration,
                          std::uint64_t collapsed_bps, std::uint64_t restore_bps);

  /// TCP send window closes (zero bytes accepted) during the window.
  void stall(TcpChannel& link, SimTime start, SimTime duration);

  /// Hard connection drop at `at`: the channel goes down for good. Recovery
  /// is out of band (SharingSession::reconnect_tcp) — the episode never
  /// counts as cleared.
  void drop(TcpChannel& link, SimTime at);

  /// Kill a relay node cold at `at` and (when `restart` is set) bring it
  /// back `down_for` later. Callback-scripted — `kill` is typically
  /// SharingSession::crash_relay and `restart` restart_relay — so the
  /// chaos layer stays free of relay-tier dependencies. With no restart
  /// the crash is permanent and, like kDrop, never counts as cleared.
  void relay_crash(SimTime at, SimTime down_for, std::function<void()> kill,
                   std::function<void()> restart = nullptr);

  /// Wedge a relay node during [start, start+duration): `set_stalled(true)`
  /// at start and `(false)` at the end — typically bound to
  /// RelayNode::set_stalled. A stalled node drops ingest, forwards nothing
  /// and emits no feedback, so its subtree sees pure upstream silence.
  void relay_stall(SimTime start, SimTime duration,
                   std::function<void(bool)> set_stalled);

  /// Flash crowd (the E19 load pattern): `count` late joins scripted across
  /// [start, start+window). `admit(i)` is invoked once per joiner, in index
  /// order, at instants spread evenly over the window with a small seeded
  /// jitter — deterministic for a given schedule seed. Callback-scripted
  /// like relay_crash, so the chaos layer stays free of session/AH
  /// dependencies: `admit` typically adds a participant (or viewer leg) and
  /// sends its join PLI. The episode clears at the end of the window.
  void join_flood(SimTime start, SimTime window, std::size_t count,
                  std::function<void(std::size_t)> admit);

  // ---- seeded random schedules (the chaos-soak matrix entry point) ----
  /// Script a random sequence of blackout / burst / collapse episodes onto
  /// a UDP link.
  void script_random(UdpChannel& link, const RandomScheduleOptions& opts = {});
  /// Script a random sequence of stall / collapse episodes onto a TCP link.
  void script_random(TcpChannel& link, const RandomScheduleOptions& opts = {});

  // ---- introspection ----
  const std::vector<FaultEpisode>& episodes() const { return episodes_; }
  /// Instant by which every self-clearing episode has cleared (0 when
  /// nothing is scheduled). Drops never clear and are excluded.
  SimTime all_clear_at() const;
  std::size_t episodes_started() const { return started_; }
  std::size_t episodes_cleared() const { return cleared_; }
  std::size_t active_episodes() const { return active_; }

 private:
  std::size_t add_episode(FaultClass kind, SimTime start, SimTime end);
  void begin_episode(FaultClass kind);
  void end_episode();
  /// One Gilbert–Elliott state flip; reschedules itself until `end`.
  void burst_step(UdpChannel& link, std::shared_ptr<Prng> rng, SimTime end,
                  GilbertElliott ge, bool bad);

  EventLoop& loop_;
  std::uint64_t seed_;
  Prng rng_;
  telemetry::Telemetry* tel_;
  std::vector<FaultEpisode> episodes_;
  std::size_t started_ = 0;
  std::size_t cleared_ = 0;
  std::size_t active_ = 0;
};

}  // namespace ads::chaos
