#include "chaos/fault_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

namespace ads::chaos {
namespace {

// Per-episode sub-stream seed: splitmix64-style mix so episode N's dwell
// draws are independent of every other episode and of call order.
std::uint64_t episode_seed(std::uint64_t seed, std::size_t index) {
  return seed ^ (0x9E3779B97F4A7C15ull * (index + 1));
}

// Exponential dwell with the given mean, clamped away from zero so the
// burst chain always makes progress.
SimTime exp_dwell(Prng& rng, SimTime mean_us) {
  const double u = rng.next_double();
  const double d = -static_cast<double>(mean_us) * std::log(1.0 - u);
  return std::max<SimTime>(1'000, static_cast<SimTime>(d));
}

}  // namespace

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kBlackout: return "blackout";
    case FaultClass::kBurstLoss: return "burst_loss";
    case FaultClass::kBandwidthCollapse: return "bandwidth_collapse";
    case FaultClass::kStall: return "stall";
    case FaultClass::kDrop: return "drop";
    case FaultClass::kRelayCrash: return "relay_crash";
    case FaultClass::kRelayStall: return "relay_stall";
    case FaultClass::kJoinFlood: return "join_flood";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(EventLoop& loop, std::uint64_t seed,
                             telemetry::Telemetry* tel)
    : loop_(loop), seed_(seed), rng_(seed), tel_(tel) {}

std::size_t FaultSchedule::add_episode(FaultClass kind, SimTime start,
                                       SimTime end) {
  episodes_.push_back(FaultEpisode{kind, start, end});
  return episodes_.size() - 1;
}

void FaultSchedule::begin_episode(FaultClass kind) {
  ++started_;
  ++active_;
  if (tel_ != nullptr) {
    tel_->metrics.counter("chaos.episodes_started").add(1);
    tel_->metrics
        .counter(std::string("chaos.") + fault_class_name(kind) + "_episodes")
        .add(1);
    tel_->metrics.gauge("chaos.active_episodes")
        .set(static_cast<std::int64_t>(active_));
  }
}

void FaultSchedule::end_episode() {
  ++cleared_;
  if (active_ > 0) --active_;
  if (tel_ != nullptr) {
    tel_->metrics.counter("chaos.episodes_cleared").add(1);
    tel_->metrics.gauge("chaos.active_episodes")
        .set(static_cast<std::int64_t>(active_));
  }
}

SimTime FaultSchedule::all_clear_at() const {
  SimTime latest = 0;
  for (const FaultEpisode& e : episodes_) {
    if (e.kind == FaultClass::kDrop) continue;  // never clears by itself
    if (e.kind == FaultClass::kRelayCrash && e.end_us == e.start_us) {
      continue;  // permanent crash: recovery is out of band
    }
    latest = std::max(latest, e.end_us);
  }
  return latest;
}

void FaultSchedule::blackout(UdpChannel& link, SimTime start, SimTime duration,
                             double restore_loss) {
  add_episode(FaultClass::kBlackout, start, start + duration);
  loop_.at(start, [this, &link] {
    begin_episode(FaultClass::kBlackout);
    link.set_loss(1.0);
  });
  loop_.at(start + duration, [this, &link, restore_loss] {
    link.set_loss(restore_loss);
    end_episode();
  });
}

void FaultSchedule::burst_loss(UdpChannel& link, SimTime start, SimTime duration,
                               GilbertElliott ge, double restore_loss) {
  const std::size_t idx = add_episode(FaultClass::kBurstLoss, start, start + duration);
  const SimTime end = start + duration;
  auto chain_rng = std::make_shared<Prng>(episode_seed(seed_, idx));
  loop_.at(start, [this, &link, chain_rng, end, ge] {
    begin_episode(FaultClass::kBurstLoss);
    burst_step(link, chain_rng, end, ge, /*bad=*/true);
  });
  loop_.at(end, [this, &link, restore_loss] {
    link.set_loss(restore_loss);
    end_episode();
  });
}

void FaultSchedule::burst_step(UdpChannel& link, std::shared_ptr<Prng> rng,
                               SimTime end, GilbertElliott ge, bool bad) {
  // The end-of-episode restore was scheduled first, so at `end` it runs
  // before this flip; `>=` then retires the chain.
  if (loop_.now() >= end) return;
  link.set_loss(bad ? ge.loss_bad : ge.loss_good);
  const SimTime dwell =
      exp_dwell(*rng, bad ? ge.mean_bad_us : ge.mean_good_us);
  loop_.after(std::min(dwell, end - loop_.now()), [this, &link, rng, end, ge, bad] {
    burst_step(link, rng, end, ge, !bad);
  });
}

void FaultSchedule::bandwidth_collapse(UdpChannel& link, SimTime start,
                                       SimTime duration,
                                       std::uint64_t collapsed_bps,
                                       std::uint64_t restore_bps) {
  add_episode(FaultClass::kBandwidthCollapse, start, start + duration);
  loop_.at(start, [this, &link, collapsed_bps] {
    begin_episode(FaultClass::kBandwidthCollapse);
    link.set_bandwidth(collapsed_bps);
  });
  loop_.at(start + duration, [this, &link, restore_bps] {
    link.set_bandwidth(restore_bps);
    end_episode();
  });
}

void FaultSchedule::bandwidth_collapse(TcpChannel& link, SimTime start,
                                       SimTime duration,
                                       std::uint64_t collapsed_bps,
                                       std::uint64_t restore_bps) {
  add_episode(FaultClass::kBandwidthCollapse, start, start + duration);
  loop_.at(start, [this, &link, collapsed_bps] {
    begin_episode(FaultClass::kBandwidthCollapse);
    link.set_bandwidth(collapsed_bps);
  });
  loop_.at(start + duration, [this, &link, restore_bps] {
    link.set_bandwidth(restore_bps);
    end_episode();
  });
}

void FaultSchedule::stall(TcpChannel& link, SimTime start, SimTime duration) {
  add_episode(FaultClass::kStall, start, start + duration);
  loop_.at(start, [this, &link] {
    begin_episode(FaultClass::kStall);
    link.set_stalled(true);
  });
  loop_.at(start + duration, [this, &link] {
    link.set_stalled(false);
    end_episode();
  });
}

void FaultSchedule::drop(TcpChannel& link, SimTime at) {
  add_episode(FaultClass::kDrop, at, at);
  loop_.at(at, [this, &link] {
    begin_episode(FaultClass::kDrop);
    link.drop();
  });
}

void FaultSchedule::relay_crash(SimTime at, SimTime down_for,
                                std::function<void()> kill,
                                std::function<void()> restart) {
  // Without a restart the node never comes back: end == start marks the
  // episode permanent (all_clear_at() skips it, like kDrop).
  const bool permanent = restart == nullptr;
  add_episode(FaultClass::kRelayCrash, at, permanent ? at : at + down_for);
  loop_.at(at, [this, kill = std::move(kill)] {
    begin_episode(FaultClass::kRelayCrash);
    kill();
  });
  if (!permanent) {
    loop_.at(at + down_for, [this, restart = std::move(restart)] {
      restart();
      end_episode();
    });
  }
}

void FaultSchedule::relay_stall(SimTime start, SimTime duration,
                                std::function<void(bool)> set_stalled) {
  add_episode(FaultClass::kRelayStall, start, start + duration);
  auto shared = std::make_shared<std::function<void(bool)>>(std::move(set_stalled));
  loop_.at(start, [this, shared] {
    begin_episode(FaultClass::kRelayStall);
    (*shared)(true);
  });
  loop_.at(start + duration, [this, shared] {
    (*shared)(false);
    end_episode();
  });
}

void FaultSchedule::join_flood(SimTime start, SimTime window, std::size_t count,
                               std::function<void(std::size_t)> admit) {
  if (count == 0) return;
  if (window <= 0) window = 1;
  const std::size_t idx =
      add_episode(FaultClass::kJoinFlood, start, start + window);
  loop_.at(start, [this] { begin_episode(FaultClass::kJoinFlood); });
  // Even spacing across the window plus a per-joiner seeded jitter of up to
  // half a slot, so arrivals are bursty-but-aperiodic like a real flash
  // crowd — and bit-identical for a given schedule seed.
  Prng rng(episode_seed(seed_, idx));
  const SimTime slot = std::max<SimTime>(1, window / static_cast<SimTime>(count));
  auto shared = std::make_shared<std::function<void(std::size_t)>>(std::move(admit));
  for (std::size_t i = 0; i < count; ++i) {
    const SimTime jitter =
        slot > 1 ? static_cast<SimTime>(rng.below(
                       static_cast<std::uint64_t>(slot / 2 + 1)))
                 : 0;
    const SimTime at = std::min<SimTime>(
        start + window - 1, start + static_cast<SimTime>(i) * slot + jitter);
    loop_.at(at, [shared, i] { (*shared)(i); });
  }
  loop_.at(start + window, [this] { end_episode(); });
}

void FaultSchedule::script_random(UdpChannel& link,
                                  const RandomScheduleOptions& opts) {
  const std::uint64_t base_bps = link.bandwidth_bps();
  SimTime cursor = opts.start_us;
  for (int i = 0; i < opts.max_episodes; ++i) {
    const SimTime gap = opts.min_gap_us +
                        rng_.below(opts.max_gap_us - opts.min_gap_us + 1);
    const SimTime duration =
        opts.min_duration_us +
        rng_.below(opts.max_duration_us - opts.min_duration_us + 1);
    if (cursor + gap + duration > opts.horizon_us) break;
    cursor += gap;
    switch (rng_.below(3)) {
      case 0:
        blackout(link, cursor, duration);
        break;
      case 1:
        burst_loss(link, cursor, duration);
        break;
      default:
        // A collapse on an unlimited link would be a no-op contract change;
        // fall back to a blackout there.
        if (base_bps > 0) {
          bandwidth_collapse(link, cursor, duration, opts.collapsed_bps, base_bps);
        } else {
          blackout(link, cursor, duration);
        }
        break;
    }
    cursor += duration;
  }
}

void FaultSchedule::script_random(TcpChannel& link,
                                  const RandomScheduleOptions& opts) {
  const std::uint64_t base_bps = link.bandwidth_bps();
  SimTime cursor = opts.start_us;
  for (int i = 0; i < opts.max_episodes; ++i) {
    const SimTime gap = opts.min_gap_us +
                        rng_.below(opts.max_gap_us - opts.min_gap_us + 1);
    const SimTime duration =
        opts.min_duration_us +
        rng_.below(opts.max_duration_us - opts.min_duration_us + 1);
    if (cursor + gap + duration > opts.horizon_us) break;
    cursor += gap;
    if (rng_.below(2) == 0) {
      stall(link, cursor, duration);
    } else {
      bandwidth_collapse(link, cursor, duration, opts.collapsed_bps, base_bps);
    }
    cursor += duration;
  }
}

}  // namespace ads::chaos
