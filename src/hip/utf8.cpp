#include "hip/utf8.hpp"

#include <cassert>

namespace ads {
namespace {

/// Decode one code point starting at s[i]; returns its byte length or 0 on
/// error. Writes the code point to `cp`.
int decode_one(std::string_view s, std::size_t i, char32_t& cp) {
  const auto b0 = static_cast<std::uint8_t>(s[i]);
  if (b0 < 0x80) {
    cp = b0;
    return 1;
  }
  int len = 0;
  char32_t value = 0;
  char32_t min = 0;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    value = b0 & 0x1F;
    min = 0x80;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    value = b0 & 0x0F;
    min = 0x800;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    value = b0 & 0x07;
    min = 0x10000;
  } else {
    return 0;  // stray continuation byte or 0xF8+ lead
  }
  if (i + static_cast<std::size_t>(len) > s.size()) return 0;
  for (int k = 1; k < len; ++k) {
    const auto b = static_cast<std::uint8_t>(s[i + static_cast<std::size_t>(k)]);
    if ((b & 0xC0) != 0x80) return 0;
    value = (value << 6) | (b & 0x3F);
  }
  if (value < min) return 0;                        // overlong
  if (value >= 0xD800 && value <= 0xDFFF) return 0; // surrogate
  if (value > 0x10FFFF) return 0;
  cp = value;
  return len;
}

}  // namespace

bool is_valid_utf8(std::string_view s) {
  std::size_t i = 0;
  char32_t cp = 0;
  while (i < s.size()) {
    const int len = decode_one(s, i, cp);
    if (len == 0) return false;
    i += static_cast<std::size_t>(len);
  }
  return true;
}

bool decode_utf8(std::string_view s, std::vector<char32_t>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < s.size()) {
    char32_t cp = 0;
    const int len = decode_one(s, i, cp);
    if (len == 0) return false;
    out.push_back(cp);
    i += static_cast<std::size_t>(len);
  }
  return true;
}

std::string encode_utf8(char32_t cp) {
  assert(cp <= 0x10FFFF && !(cp >= 0xD800 && cp <= 0xDFFF));
  std::string out;
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return out;
}

std::vector<std::string> split_utf8(std::string_view s, std::size_t max_bytes) {
  assert(max_bytes >= 4);
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = std::min(start + max_bytes, s.size());
    // Back off to a sequence boundary: a continuation byte (10xxxxxx) at
    // `end` means we are cutting mid-sequence.
    while (end < s.size() && end > start &&
           (static_cast<std::uint8_t>(s[end]) & 0xC0) == 0x80) {
      --end;
    }
    assert(end > start);
    out.emplace_back(s.substr(start, end - start));
    start = end;
  }
  return out;
}

}  // namespace ads
