// UTF-8 helpers for KeyTyped (§6.8): the payload is a raw UTF-8 string with
// no padding, and the AH must validate before injecting the characters into
// the OS input queue. The draft also requires participants to split long
// strings across multiple KeyTyped messages; split points must not cut a
// multi-byte sequence.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ads {

/// Strict UTF-8 validation: rejects overlong encodings, surrogates
/// (U+D800..DFFF), and code points above U+10FFFF.
bool is_valid_utf8(std::string_view s);

/// Decoded code points, or empty optional-like failure via bool return.
/// On invalid input returns false and leaves `out` unspecified.
bool decode_utf8(std::string_view s, std::vector<char32_t>& out);

/// Encode one code point (must be a valid scalar value).
std::string encode_utf8(char32_t cp);

/// Split `s` into chunks of at most `max_bytes` without breaking a
/// multi-byte sequence. Precondition: `s` is valid UTF-8 and
/// `max_bytes >= 4`.
std::vector<std::string> split_utf8(std::string_view s, std::size_t max_bytes);

}  // namespace ads
