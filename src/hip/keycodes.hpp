// Java virtual key codes, as mandated by the draft (§4.2, §6.6): "For
// keyboard events publicly available Java virtual key codes [keycodes] are
// used. ... The actual values are inside the KeyEvent.java file."
// The constants below are the openJDK java.awt.event.KeyEvent VK_* values.
#pragma once

#include <cstdint>
#include <string_view>

namespace ads::vk {

using KeyCode = std::uint32_t;

inline constexpr KeyCode kEnter = 0x0A;
inline constexpr KeyCode kBackSpace = 0x08;
inline constexpr KeyCode kTab = 0x09;
inline constexpr KeyCode kCancel = 0x03;
inline constexpr KeyCode kClear = 0x0C;
inline constexpr KeyCode kShift = 0x10;
inline constexpr KeyCode kControl = 0x11;
inline constexpr KeyCode kAlt = 0x12;
inline constexpr KeyCode kPause = 0x13;
inline constexpr KeyCode kCapsLock = 0x14;
inline constexpr KeyCode kEscape = 0x1B;
inline constexpr KeyCode kSpace = 0x20;
inline constexpr KeyCode kPageUp = 0x21;
inline constexpr KeyCode kPageDown = 0x22;
inline constexpr KeyCode kEnd = 0x23;
inline constexpr KeyCode kHome = 0x24;
inline constexpr KeyCode kLeft = 0x25;
inline constexpr KeyCode kUp = 0x26;
inline constexpr KeyCode kRight = 0x27;
inline constexpr KeyCode kDown = 0x28;
inline constexpr KeyCode kComma = 0x2C;
inline constexpr KeyCode kMinus = 0x2D;
inline constexpr KeyCode kPeriod = 0x2E;
inline constexpr KeyCode kSlash = 0x2F;

// VK_0..VK_9 equal '0'..'9' (0x30..0x39).
inline constexpr KeyCode k0 = 0x30;
inline constexpr KeyCode k9 = 0x39;
// VK_A..VK_Z equal 'A'..'Z' (0x41..0x5A).
inline constexpr KeyCode kA = 0x41;
inline constexpr KeyCode kZ = 0x5A;

inline constexpr KeyCode kSemicolon = 0x3B;
inline constexpr KeyCode kEquals = 0x3D;
inline constexpr KeyCode kOpenBracket = 0x5B;
inline constexpr KeyCode kBackSlash = 0x5C;
inline constexpr KeyCode kCloseBracket = 0x5D;

inline constexpr KeyCode kNumpad0 = 0x60;
inline constexpr KeyCode kNumpad9 = 0x69;
inline constexpr KeyCode kMultiply = 0x6A;
inline constexpr KeyCode kAdd = 0x6B;
inline constexpr KeyCode kSeparator = 0x6C;
inline constexpr KeyCode kSubtract = 0x6D;
inline constexpr KeyCode kDecimal = 0x6E;
inline constexpr KeyCode kDivide = 0x6F;

// "For example, F1 key is defined as 'int VK_F1 = 0x70;'" (§6.6).
inline constexpr KeyCode kF1 = 0x70;
inline constexpr KeyCode kF2 = 0x71;
inline constexpr KeyCode kF3 = 0x72;
inline constexpr KeyCode kF4 = 0x73;
inline constexpr KeyCode kF5 = 0x74;
inline constexpr KeyCode kF6 = 0x75;
inline constexpr KeyCode kF7 = 0x76;
inline constexpr KeyCode kF8 = 0x77;
inline constexpr KeyCode kF9 = 0x78;
inline constexpr KeyCode kF10 = 0x79;
inline constexpr KeyCode kF11 = 0x7A;
inline constexpr KeyCode kF12 = 0x7B;

inline constexpr KeyCode kDelete = 0x7F;
inline constexpr KeyCode kNumLock = 0x90;
inline constexpr KeyCode kScrollLock = 0x91;
inline constexpr KeyCode kPrintScreen = 0x9A;
inline constexpr KeyCode kInsert = 0x9B;
inline constexpr KeyCode kHelp = 0x9C;
inline constexpr KeyCode kMeta = 0x9D;
inline constexpr KeyCode kQuote = 0xDE;
inline constexpr KeyCode kBackQuote = 0xC0;
inline constexpr KeyCode kAltGraph = 0xFF7E;
inline constexpr KeyCode kContextMenu = 0x20D;
inline constexpr KeyCode kWindows = 0x20C;
inline constexpr KeyCode kUndefined = 0x0;

/// Letter/digit convenience: key code for an ASCII character where the Java
/// mapping is identity ('A'-'Z', '0'-'9'); lowercase letters map to their
/// uppercase key. Returns kUndefined for characters without a direct VK.
KeyCode from_ascii(char c);

/// Human-readable name for diagnostics ("F1", "Enter", "A", ...).
/// Unknown codes return "VK_<hex>"-style via the out-parameter-free
/// std::string overload in keycodes.cpp; this returns a static name or
/// empty view when unnamed.
std::string_view name_of(KeyCode code);

/// True if this implementation knows the code (useful for validation; the
/// AH MAY still inject unknown codes as-is).
bool is_known(KeyCode code);

}  // namespace ads::vk
