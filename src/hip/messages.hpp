// Human Interface Protocol messages (draft §6, Table 3): the seven
// participant→AH input events, all carried as RTP packets on the HIP
// payload type with the common remoting/HIP header. The header's WindowID
// names the window that had keyboard/mouse focus; for mouse messages the
// Parameter byte carries the button (1=left, 2=right, 3=middle).
#pragma once

#include <string>
#include <variant>

#include "hip/keycodes.hpp"
#include "remoting/header.hpp"
#include "util/bytes.hpp"

namespace ads {

/// HIP message types (draft Table 3).
enum class HipType : std::uint8_t {
  kMousePressed = 121,
  kMouseReleased = 122,
  kMouseMoved = 123,
  kMouseWheelMoved = 124,
  kKeyPressed = 125,
  kKeyReleased = 126,
  kKeyTyped = 127,
};

constexpr bool is_known_hip_type(std::uint8_t value) {
  return value >= 121 && value <= 127;
}

constexpr const char* to_string(HipType t) {
  switch (t) {
    case HipType::kMousePressed: return "MousePressed";
    case HipType::kMouseReleased: return "MouseReleased";
    case HipType::kMouseMoved: return "MouseMoved";
    case HipType::kMouseWheelMoved: return "MouseWheelMoved";
    case HipType::kKeyPressed: return "KeyPressed";
    case HipType::kKeyReleased: return "KeyReleased";
    case HipType::kKeyTyped: return "KeyTyped";
  }
  return "?";
}

/// Mouse button values defined by §6.2 (others may be negotiated; the AH
/// MAY ignore unrecognised values).
enum class MouseButton : std::uint8_t { kNone = 0, kLeft = 1, kRight = 2, kMiddle = 3 };

struct MousePressed {
  std::uint16_t window_id = 0;
  MouseButton button = MouseButton::kLeft;
  std::uint32_t left = 0;  ///< absolute screen coordinates (§4.1)
  std::uint32_t top = 0;
  friend bool operator==(const MousePressed&, const MousePressed&) = default;
};

struct MouseReleased {
  std::uint16_t window_id = 0;
  MouseButton button = MouseButton::kLeft;
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  friend bool operator==(const MouseReleased&, const MouseReleased&) = default;
};

struct MouseMoved {
  std::uint16_t window_id = 0;
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  friend bool operator==(const MouseMoved&, const MouseMoved&) = default;
};

struct MouseWheelMoved {
  std::uint16_t window_id = 0;
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  /// "120 * (number of notches)"; positive = away from the user; negative
  /// values are transmitted in two's complement (§6.5).
  std::int32_t distance = 0;
  friend bool operator==(const MouseWheelMoved&, const MouseWheelMoved&) = default;
};

struct KeyPressed {
  std::uint16_t window_id = 0;
  vk::KeyCode key_code = 0;
  friend bool operator==(const KeyPressed&, const KeyPressed&) = default;
};

struct KeyReleased {
  std::uint16_t window_id = 0;
  vk::KeyCode key_code = 0;
  friend bool operator==(const KeyReleased&, const KeyReleased&) = default;
};

struct KeyTyped {
  std::uint16_t window_id = 0;
  std::string utf8;  ///< raw UTF-8, no padding (§6.8)
  friend bool operator==(const KeyTyped&, const KeyTyped&) = default;
};

using HipMessage = std::variant<MousePressed, MouseReleased, MouseMoved,
                                MouseWheelMoved, KeyPressed, KeyReleased, KeyTyped>;

/// Serialise any HIP message to its RTP payload (common header included).
Bytes serialize_hip(const HipMessage& msg);

/// Parse one HIP RTP payload. KeyTyped payloads failing UTF-8 validation
/// are rejected (the AH must not inject malformed strings). Unknown message
/// types return kUnsupported so callers can count-and-ignore.
Result<HipMessage> parse_hip(BytesView payload);

/// Message type of a HipMessage value.
HipType hip_type(const HipMessage& msg);

/// WindowID field of any HIP message.
std::uint16_t hip_window_id(const HipMessage& msg);

/// Screen coordinates of a mouse event; (0,0) + false for key events.
bool hip_coordinates(const HipMessage& msg, std::uint32_t& left, std::uint32_t& top);

}  // namespace ads
