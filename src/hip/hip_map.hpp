// HIP coordinate mapping for scaled / viewport-follow viewers (ROADMAP
// item 4). A viewer consuming a downscaled or cropped cohort stream reports
// mouse events in *output space* — the coordinate system of the stream it
// renders. The AH must map those back to host space (inverse scale +
// viewport offset, clamped into the streamed source rect) before the §4.1
// coordinate legitimacy check and before injecting into the input sink,
// exactly as VirtuMob maps smartphone touches back to host pixels.
#pragma once

#include "hip/messages.hpp"
#include "image/geometry.hpp"
#include "transcode/transcode.hpp"

namespace ads::hip {

/// Rewrite a mouse message's coordinates from the sender's output space to
/// host space under `geom` (the sender's resolved output geometry) and the
/// host `frame_bounds`. Key events and identity geometries pass through
/// unchanged. Returns true when the message carried coordinates that were
/// remapped.
bool map_to_host(HipMessage& msg, const transcode::OutputGeometry& geom,
                 const Rect& frame_bounds);

}  // namespace ads::hip
