#include "hip/keycodes.hpp"

#include <array>
#include <utility>

namespace ads::vk {
namespace {

struct Named {
  KeyCode code;
  std::string_view name;
};

constexpr std::array kNames = {
    Named{kEnter, "Enter"},        Named{kBackSpace, "BackSpace"},
    Named{kTab, "Tab"},            Named{kCancel, "Cancel"},
    Named{kClear, "Clear"},        Named{kShift, "Shift"},
    Named{kControl, "Control"},    Named{kAlt, "Alt"},
    Named{kPause, "Pause"},        Named{kCapsLock, "CapsLock"},
    Named{kEscape, "Escape"},      Named{kSpace, "Space"},
    Named{kPageUp, "PageUp"},      Named{kPageDown, "PageDown"},
    Named{kEnd, "End"},            Named{kHome, "Home"},
    Named{kLeft, "Left"},          Named{kUp, "Up"},
    Named{kRight, "Right"},        Named{kDown, "Down"},
    Named{kComma, "Comma"},        Named{kMinus, "Minus"},
    Named{kPeriod, "Period"},      Named{kSlash, "Slash"},
    Named{kSemicolon, "Semicolon"}, Named{kEquals, "Equals"},
    Named{kOpenBracket, "OpenBracket"}, Named{kBackSlash, "BackSlash"},
    Named{kCloseBracket, "CloseBracket"}, Named{kMultiply, "Multiply"},
    Named{kAdd, "Add"},            Named{kSeparator, "Separator"},
    Named{kSubtract, "Subtract"},  Named{kDecimal, "Decimal"},
    Named{kDivide, "Divide"},      Named{kF1, "F1"},
    Named{kF2, "F2"},              Named{kF3, "F3"},
    Named{kF4, "F4"},              Named{kF5, "F5"},
    Named{kF6, "F6"},              Named{kF7, "F7"},
    Named{kF8, "F8"},              Named{kF9, "F9"},
    Named{kF10, "F10"},            Named{kF11, "F11"},
    Named{kF12, "F12"},            Named{kDelete, "Delete"},
    Named{kNumLock, "NumLock"},    Named{kScrollLock, "ScrollLock"},
    Named{kPrintScreen, "PrintScreen"}, Named{kInsert, "Insert"},
    Named{kHelp, "Help"},          Named{kMeta, "Meta"},
    Named{kQuote, "Quote"},        Named{kBackQuote, "BackQuote"},
    Named{kAltGraph, "AltGraph"},  Named{kContextMenu, "ContextMenu"},
    Named{kWindows, "Windows"},
};

}  // namespace

KeyCode from_ascii(char c) {
  if (c >= '0' && c <= '9') return static_cast<KeyCode>(c);
  if (c >= 'A' && c <= 'Z') return static_cast<KeyCode>(c);
  if (c >= 'a' && c <= 'z') return static_cast<KeyCode>(c - 'a' + 'A');
  switch (c) {
    case ' ': return kSpace;
    case '\n': return kEnter;
    case '\t': return kTab;
    case ',': return kComma;
    case '-': return kMinus;
    case '.': return kPeriod;
    case '/': return kSlash;
    case ';': return kSemicolon;
    case '=': return kEquals;
    case '[': return kOpenBracket;
    case '\\': return kBackSlash;
    case ']': return kCloseBracket;
    case '\'': return kQuote;
    case '`': return kBackQuote;
    default: return kUndefined;
  }
}

std::string_view name_of(KeyCode code) {
  if (code >= k0 && code <= k9) {
    static constexpr std::string_view kDigits[] = {"0", "1", "2", "3", "4",
                                                   "5", "6", "7", "8", "9"};
    return kDigits[code - k0];
  }
  if (code >= kA && code <= kZ) {
    static constexpr std::string_view kLetters[] = {
        "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M",
        "N", "O", "P", "Q", "R", "S", "T", "U", "V", "W", "X", "Y", "Z"};
    return kLetters[code - kA];
  }
  if (code >= kNumpad0 && code <= kNumpad9) return "Numpad";
  for (const Named& n : kNames) {
    if (n.code == code) return n.name;
  }
  return {};
}

bool is_known(KeyCode code) { return !name_of(code).empty(); }

}  // namespace ads::vk
