#include "hip/hip_map.hpp"

#include <algorithm>

namespace ads::hip {
namespace {

// Apply the mapped host-space point to whichever alternative carries
// coordinates.
struct SetCoords {
  std::uint32_t left;
  std::uint32_t top;
  bool operator()(MousePressed& m) const { return set(m); }
  bool operator()(MouseReleased& m) const { return set(m); }
  bool operator()(MouseMoved& m) const { return set(m); }
  bool operator()(MouseWheelMoved& m) const { return set(m); }
  bool operator()(KeyPressed&) const { return false; }
  bool operator()(KeyReleased&) const { return false; }
  bool operator()(KeyTyped&) const { return false; }

  template <typename M>
  bool set(M& m) const {
    m.left = left;
    m.top = top;
    return true;
  }
};

}  // namespace

bool map_to_host(HipMessage& msg, const transcode::OutputGeometry& geom,
                 const Rect& frame_bounds) {
  if (geom.identity() || frame_bounds.empty()) return false;
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  if (!hip_coordinates(msg, left, top)) return false;
  const Point host = transcode::map_point_to_host(
      geom, frame_bounds,
      Point{static_cast<std::int64_t>(left), static_cast<std::int64_t>(top)});
  const std::uint32_t hx =
      static_cast<std::uint32_t>(std::max<std::int64_t>(0, host.x));
  const std::uint32_t hy =
      static_cast<std::uint32_t>(std::max<std::int64_t>(0, host.y));
  return std::visit(SetCoords{hx, hy}, msg);
}

}  // namespace ads::hip
