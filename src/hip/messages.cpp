#include "hip/messages.hpp"

#include "hip/utf8.hpp"

namespace ads {
namespace {

void write_header(ByteWriter& out, HipType type, std::uint8_t parameter,
                  std::uint16_t window_id) {
  CommonHeader header;
  header.msg_type = static_cast<std::uint8_t>(type);
  header.parameter = parameter;
  header.window_id = window_id;
  header.write(out);
}

Result<std::pair<std::uint32_t, std::uint32_t>> read_coords(ByteReader& in) {
  auto left = in.u32();
  auto top = in.u32();
  if (!left || !top) return ParseError::kTruncated;
  return std::make_pair(*left, *top);
}

}  // namespace

Bytes serialize_hip(const HipMessage& msg) {
  ByteWriter out(CommonHeader::kSize + 12);
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MousePressed>) {
          write_header(out, HipType::kMousePressed,
                       static_cast<std::uint8_t>(m.button), m.window_id);
          out.u32(m.left);
          out.u32(m.top);
        } else if constexpr (std::is_same_v<T, MouseReleased>) {
          write_header(out, HipType::kMouseReleased,
                       static_cast<std::uint8_t>(m.button), m.window_id);
          out.u32(m.left);
          out.u32(m.top);
        } else if constexpr (std::is_same_v<T, MouseMoved>) {
          write_header(out, HipType::kMouseMoved, 0, m.window_id);
          out.u32(m.left);
          out.u32(m.top);
        } else if constexpr (std::is_same_v<T, MouseWheelMoved>) {
          write_header(out, HipType::kMouseWheelMoved, 0, m.window_id);
          out.u32(m.left);
          out.u32(m.top);
          out.i32(m.distance);
        } else if constexpr (std::is_same_v<T, KeyPressed>) {
          write_header(out, HipType::kKeyPressed, 0, m.window_id);
          out.u32(m.key_code);
        } else if constexpr (std::is_same_v<T, KeyReleased>) {
          write_header(out, HipType::kKeyReleased, 0, m.window_id);
          out.u32(m.key_code);
        } else if constexpr (std::is_same_v<T, KeyTyped>) {
          write_header(out, HipType::kKeyTyped, 0, m.window_id);
          out.str(m.utf8);
        }
      },
      msg);
  return out.take();
}

Result<HipMessage> parse_hip(BytesView payload) {
  ByteReader in(payload);
  auto header = CommonHeader::read(in);
  if (!header) return header.error();

  switch (header->msg_type) {
    case static_cast<std::uint8_t>(HipType::kMousePressed): {
      auto coords = read_coords(in);
      if (!coords) return coords.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(MousePressed{header->window_id,
                                     static_cast<MouseButton>(header->parameter),
                                     coords->first, coords->second});
    }
    case static_cast<std::uint8_t>(HipType::kMouseReleased): {
      auto coords = read_coords(in);
      if (!coords) return coords.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(MouseReleased{header->window_id,
                                      static_cast<MouseButton>(header->parameter),
                                      coords->first, coords->second});
    }
    case static_cast<std::uint8_t>(HipType::kMouseMoved): {
      auto coords = read_coords(in);
      if (!coords) return coords.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(MouseMoved{header->window_id, coords->first, coords->second});
    }
    case static_cast<std::uint8_t>(HipType::kMouseWheelMoved): {
      auto coords = read_coords(in);
      if (!coords) return coords.error();
      auto distance = in.i32();
      if (!distance) return distance.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(MouseWheelMoved{header->window_id, coords->first,
                                        coords->second, *distance});
    }
    case static_cast<std::uint8_t>(HipType::kKeyPressed): {
      auto code = in.u32();
      if (!code) return code.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(KeyPressed{header->window_id, *code});
    }
    case static_cast<std::uint8_t>(HipType::kKeyReleased): {
      auto code = in.u32();
      if (!code) return code.error();
      if (!in.at_end()) return ParseError::kBadValue;
      return HipMessage(KeyReleased{header->window_id, *code});
    }
    case static_cast<std::uint8_t>(HipType::kKeyTyped): {
      const BytesView body = in.rest();
      std::string s(body.begin(), body.end());
      if (!is_valid_utf8(s)) return ParseError::kBadValue;
      return HipMessage(KeyTyped{header->window_id, std::move(s)});
    }
    default:
      return ParseError::kUnsupported;
  }
}

HipType hip_type(const HipMessage& msg) {
  return std::visit(
      [](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MousePressed>) return HipType::kMousePressed;
        else if constexpr (std::is_same_v<T, MouseReleased>) return HipType::kMouseReleased;
        else if constexpr (std::is_same_v<T, MouseMoved>) return HipType::kMouseMoved;
        else if constexpr (std::is_same_v<T, MouseWheelMoved>) return HipType::kMouseWheelMoved;
        else if constexpr (std::is_same_v<T, KeyPressed>) return HipType::kKeyPressed;
        else if constexpr (std::is_same_v<T, KeyReleased>) return HipType::kKeyReleased;
        else return HipType::kKeyTyped;
      },
      msg);
}

std::uint16_t hip_window_id(const HipMessage& msg) {
  return std::visit([](const auto& m) { return m.window_id; }, msg);
}

bool hip_coordinates(const HipMessage& msg, std::uint32_t& left, std::uint32_t& top) {
  return std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MousePressed> ||
                      std::is_same_v<T, MouseReleased> ||
                      std::is_same_v<T, MouseMoved> ||
                      std::is_same_v<T, MouseWheelMoved>) {
          left = m.left;
          top = m.top;
          return true;
        } else {
          left = 0;
          top = 0;
          return false;
        }
      },
      msg);
}

}  // namespace ads
