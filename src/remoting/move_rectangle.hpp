// MoveRectangle message (draft §5.2.3, Figure 12): instructs the
// participant to copy a source rectangle of a window to a destination
// position — "efficient for some drawing operations like scrolls". Source
// and destination may overlap.
#pragma once

#include "remoting/header.hpp"
#include "util/bytes.hpp"

namespace ads {

struct MoveRectangle {
  std::uint16_t window_id = 0;
  std::uint32_t source_left = 0;
  std::uint32_t source_top = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::uint32_t dest_left = 0;
  std::uint32_t dest_top = 0;

  /// Serialise including the common remoting/HIP header.
  Bytes serialize() const;
  static Result<MoveRectangle> parse(BytesView payload);
  static Result<MoveRectangle> parse_body(ByteReader& in, std::uint16_t window_id);

  friend bool operator==(const MoveRectangle&, const MoveRectangle&) = default;
};

}  // namespace ads
