// MousePointerInfo message (draft §5.2.4): same wire format as
// RegionUpdate with message type 4. Two payload shapes:
//   * position only — left/top fields, empty content: "the participant MUST
//     move the existing pointer image to the given coordinates";
//   * position + image — content carries the new pointer icon, which the
//     participant "MUST store and use ... until a new image arrives".
#pragma once

#include <optional>

#include "remoting/region_update.hpp"

namespace ads {

struct MousePointerInfo {
  std::uint16_t window_id = 0;
  std::uint8_t content_pt = 0;
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  Bytes icon;  ///< empty = position-only update

  bool has_icon() const { return !icon.empty(); }

  /// Convert to the shared RegionUpdate carrier (for fragmentation).
  RegionUpdate as_region_update() const {
    return RegionUpdate{window_id, content_pt, left, top, icon};
  }
  static MousePointerInfo from_region_update(const RegionUpdate& ru) {
    return MousePointerInfo{ru.window_id, ru.content_pt, ru.left, ru.top, ru.content};
  }

  /// Single-packet serialisation (pointer icons are small; callers needing
  /// fragmentation use fragment_region_update with kMousePointerInfo).
  Bytes serialize() const;
  static Result<MousePointerInfo> parse(BytesView payload);

  friend bool operator==(const MousePointerInfo&, const MousePointerInfo&) = default;
};

}  // namespace ads
