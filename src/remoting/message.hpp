// Participant-side demultiplexer for the remoting stream: takes each RTP
// payload (in delivery order, after the reorder buffer) plus its marker bit
// and yields complete remoting messages. RegionUpdate and MousePointerInfo
// may span multiple packets; the other types are single-packet.
// Unknown message types are counted and skipped ("Participants MAY ignore
// such additional message types", §5.1.2).
#pragma once

#include <optional>
#include <variant>

#include "remoting/header.hpp"
#include "remoting/mouse_pointer_info.hpp"
#include "remoting/move_rectangle.hpp"
#include "remoting/region_update.hpp"
#include "remoting/window_manager_info.hpp"

namespace ads {

using RemotingMessage =
    std::variant<WindowManagerInfo, RegionUpdate, MoveRectangle, MousePointerInfo>;

class RemotingDemux {
 public:
  /// Feed one in-order RTP payload. Returns a message when one completes,
  /// nullopt while a fragmented message is pending or the type was
  /// ignorable, and a ParseError on malformed input.
  Result<std::optional<RemotingMessage>> feed(BytesView payload, bool marker);

  /// Abandon any in-progress reassembly (after an unrepaired loss).
  void reset();

  std::uint64_t ignored_unknown_types() const { return ignored_; }
  std::uint64_t parse_errors() const { return errors_; }

 private:
  RegionUpdateReassembler region_reasm_{RemotingType::kRegionUpdate};
  RegionUpdateReassembler pointer_reasm_{RemotingType::kMousePointerInfo};
  std::uint64_t ignored_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace ads
