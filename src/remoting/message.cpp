#include "remoting/message.hpp"

namespace ads {

Result<std::optional<RemotingMessage>> RemotingDemux::feed(BytesView payload,
                                                           bool marker) {
  ByteReader peek(payload);
  auto header = CommonHeader::read(peek);
  if (!header) {
    ++errors_;
    return header.error();
  }

  switch (header->msg_type) {
    case static_cast<std::uint8_t>(RemotingType::kWindowManagerInfo): {
      auto msg = WindowManagerInfo::parse(payload);
      if (!msg) {
        ++errors_;
        return msg.error();
      }
      return std::optional<RemotingMessage>(std::move(*msg));
    }
    case static_cast<std::uint8_t>(RemotingType::kRegionUpdate): {
      auto msg = region_reasm_.feed(payload, marker);
      if (!msg) {
        ++errors_;
        return msg.error();
      }
      if (!msg->has_value()) return std::optional<RemotingMessage>{};
      return std::optional<RemotingMessage>(std::move(**msg));
    }
    case static_cast<std::uint8_t>(RemotingType::kMoveRectangle): {
      auto msg = MoveRectangle::parse(payload);
      if (!msg) {
        ++errors_;
        return msg.error();
      }
      return std::optional<RemotingMessage>(std::move(*msg));
    }
    case static_cast<std::uint8_t>(RemotingType::kMousePointerInfo): {
      auto msg = pointer_reasm_.feed(payload, marker);
      if (!msg) {
        ++errors_;
        return msg.error();
      }
      if (!msg->has_value()) return std::optional<RemotingMessage>{};
      return std::optional<RemotingMessage>(
          MousePointerInfo::from_region_update(**msg));
    }
    default:
      ++ignored_;
      return std::optional<RemotingMessage>{};
  }
}

void RemotingDemux::reset() {
  region_reasm_.reset();
  pointer_reasm_.reset();
}

}  // namespace ads
