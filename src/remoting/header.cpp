#include "remoting/header.hpp"

namespace ads {

void CommonHeader::write(ByteWriter& out) const {
  out.u8(msg_type);
  out.u8(parameter);
  out.u16(window_id);
}

Result<CommonHeader> CommonHeader::read(ByteReader& in) {
  auto type = in.u8();
  auto param = in.u8();
  auto wid = in.u16();
  if (!type || !param || !wid) return ParseError::kTruncated;
  return CommonHeader{*type, *param, *wid};
}

}  // namespace ads
