#include "remoting/mouse_pointer_info.hpp"

namespace ads {

Bytes MousePointerInfo::serialize() const {
  auto frags = fragment_region_update(as_region_update(),
                                      CommonHeader::kSize + 8 + icon.size() + 1,
                                      RemotingType::kMousePointerInfo);
  return std::move(frags.front().payload);
}

Result<MousePointerInfo> MousePointerInfo::parse(BytesView payload) {
  RegionUpdateReassembler reasm(RemotingType::kMousePointerInfo);
  auto result = reasm.feed(payload, /*marker=*/true);
  if (!result) return result.error();
  if (!result->has_value()) return ParseError::kBadState;
  return from_region_update(**result);
}

}  // namespace ads
