#include "remoting/window_manager_info.hpp"

#include <algorithm>

namespace ads {

Bytes WindowManagerInfo::serialize() const {
  ByteWriter out(CommonHeader::kSize + records.size() * WindowRecord::kSize);
  CommonHeader header;
  header.msg_type = static_cast<std::uint8_t>(RemotingType::kWindowManagerInfo);
  header.parameter = 0;
  header.window_id = 0;
  header.write(out);
  for (const WindowRecord& r : records) {
    out.u16(r.window_id);
    out.u8(r.group_id);
    out.u8(0);  // reserved
    out.u32(r.left);
    out.u32(r.top);
    out.u32(r.width);
    out.u32(r.height);
  }
  return out.take();
}

Result<WindowManagerInfo> WindowManagerInfo::parse(BytesView payload) {
  ByteReader in(payload);
  auto header = CommonHeader::read(in);
  if (!header) return header.error();
  if (header->msg_type != static_cast<std::uint8_t>(RemotingType::kWindowManagerInfo))
    return ParseError::kBadValue;
  // Parameter and WindowID are deliberately ignored (§5.2.1).
  return parse_body(in);
}

Result<WindowManagerInfo> WindowManagerInfo::parse_body(ByteReader& in) {
  if (in.remaining() % WindowRecord::kSize != 0) return ParseError::kBadValue;
  WindowManagerInfo msg;
  while (!in.at_end()) {
    WindowRecord r;
    auto wid = in.u16();
    auto gid = in.u8();
    auto reserved = in.u8();
    auto left = in.u32();
    auto top = in.u32();
    auto width = in.u32();
    auto height = in.u32();
    if (!wid || !gid || !reserved || !left || !top || !width || !height)
      return ParseError::kTruncated;
    r.window_id = *wid;
    r.group_id = *gid;
    r.left = *left;
    r.top = *top;
    r.width = *width;
    r.height = *height;
    msg.records.push_back(r);
  }
  // Duplicate WindowIDs in one message are malformed.
  std::vector<std::uint16_t> ids;
  ids.reserve(msg.records.size());
  for (const auto& r : msg.records) ids.push_back(r.window_id);
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
    return ParseError::kBadValue;
  return msg;
}

WindowManagerInfo WindowManagerInfo::from(const WindowManager& wm) {
  WindowManagerInfo msg;
  for (const Window& w : wm.shared_windows()) {
    WindowRecord r;
    r.window_id = w.id;
    r.group_id = w.group;
    // Wire fields are unsigned 32-bit pixels (§4.1); clamp negatives that
    // can arise from off-screen window positions in the model.
    r.left = static_cast<std::uint32_t>(std::max<std::int64_t>(0, w.frame.left));
    r.top = static_cast<std::uint32_t>(std::max<std::int64_t>(0, w.frame.top));
    r.width = static_cast<std::uint32_t>(std::max<std::int64_t>(0, w.frame.width));
    r.height = static_cast<std::uint32_t>(std::max<std::int64_t>(0, w.frame.height));
    msg.records.push_back(r);
  }
  return msg;
}

}  // namespace ads
