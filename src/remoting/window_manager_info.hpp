// WindowManagerInfo message (draft §5.2.1, Figures 8-9): transfers the
// complete window-manager state. Records are 20 bytes each and transmitted
// bottom-most window first — the z-order is implicit in record order.
// Participants MUST close windows absent from the newest message and create
// windows for new WindowIDs.
#pragma once

#include <vector>

#include "remoting/header.hpp"
#include "util/bytes.hpp"
#include "wm/window_manager.hpp"

namespace ads {

struct WindowRecord {
  std::uint16_t window_id = 0;
  std::uint8_t group_id = 0;
  // 8 reserved bits follow group_id on the wire (transmitted as 0).
  std::uint32_t left = 0;
  std::uint32_t top = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;

  static constexpr std::size_t kSize = 20;

  Rect rect() const {
    return {static_cast<std::int64_t>(left), static_cast<std::int64_t>(top),
            static_cast<std::int64_t>(width), static_cast<std::int64_t>(height)};
  }

  friend bool operator==(const WindowRecord&, const WindowRecord&) = default;
};

struct WindowManagerInfo {
  /// Bottom-most first (z-order implicit).
  std::vector<WindowRecord> records;

  /// Serialise including the common remoting/HIP header (Parameter and
  /// WindowID fields are 0; receivers MUST ignore them).
  Bytes serialize() const;

  /// Parse from a payload that begins with the common header.
  static Result<WindowManagerInfo> parse(BytesView payload);
  /// Parse the record list, header already consumed.
  static Result<WindowManagerInfo> parse_body(ByteReader& in);

  /// Build the message from the shared windows of a WindowManager.
  static WindowManagerInfo from(const WindowManager& wm);

  friend bool operator==(const WindowManagerInfo&, const WindowManagerInfo&) = default;
};

}  // namespace ads
