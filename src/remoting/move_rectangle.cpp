#include "remoting/move_rectangle.hpp"

namespace ads {

Bytes MoveRectangle::serialize() const {
  ByteWriter out(CommonHeader::kSize + 24);
  CommonHeader header;
  header.msg_type = static_cast<std::uint8_t>(RemotingType::kMoveRectangle);
  header.parameter = 0;
  header.window_id = window_id;
  header.write(out);
  out.u32(source_left);
  out.u32(source_top);
  out.u32(width);
  out.u32(height);
  out.u32(dest_left);
  out.u32(dest_top);
  return out.take();
}

Result<MoveRectangle> MoveRectangle::parse(BytesView payload) {
  ByteReader in(payload);
  auto header = CommonHeader::read(in);
  if (!header) return header.error();
  if (header->msg_type != static_cast<std::uint8_t>(RemotingType::kMoveRectangle))
    return ParseError::kBadValue;
  return parse_body(in, header->window_id);
}

Result<MoveRectangle> MoveRectangle::parse_body(ByteReader& in,
                                                std::uint16_t window_id) {
  MoveRectangle msg;
  msg.window_id = window_id;
  auto sl = in.u32();
  auto st = in.u32();
  auto w = in.u32();
  auto h = in.u32();
  auto dl = in.u32();
  auto dt = in.u32();
  if (!sl || !st || !w || !h || !dl || !dt) return ParseError::kTruncated;
  if (!in.at_end()) return ParseError::kBadValue;
  msg.source_left = *sl;
  msg.source_top = *st;
  msg.width = *w;
  msg.height = *h;
  msg.dest_left = *dl;
  msg.dest_top = *dt;
  return msg;
}

}  // namespace ads
