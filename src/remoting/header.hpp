// Common remoting/HIP header (draft §5.1.2, Figure 7):
//
//   0                   1                   2                   3
//   0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//  +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//  |  Msg Type     |    Parameter  |          WindowID             |
//  +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//
// For RegionUpdate (and MousePointerInfo, which shares its format) the
// Parameter byte is subdivided into the FirstPacket bit and a 7-bit
// content payload type (Figure 10).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace ads {

/// Remoting message types (draft Table 1; IANA "Specification Required").
enum class RemotingType : std::uint8_t {
  kWindowManagerInfo = 1,
  kRegionUpdate = 2,
  kMoveRectangle = 3,
  kMousePointerInfo = 4,
};

/// True for the four types of Table 1.
constexpr bool is_known_remoting_type(std::uint8_t value) {
  return value >= 1 && value <= 4;
}

constexpr const char* to_string(RemotingType t) {
  switch (t) {
    case RemotingType::kWindowManagerInfo: return "WindowManagerInfo";
    case RemotingType::kRegionUpdate: return "RegionUpdate";
    case RemotingType::kMoveRectangle: return "MoveRectangle";
    case RemotingType::kMousePointerInfo: return "MousePointerInfo";
  }
  return "?";
}

struct CommonHeader {
  std::uint8_t msg_type = 0;
  std::uint8_t parameter = 0;
  std::uint16_t window_id = 0;

  static constexpr std::size_t kSize = 4;

  void write(ByteWriter& out) const;
  static Result<CommonHeader> read(ByteReader& in);

  /// RegionUpdate Parameter-byte helpers (F bit is the MSB, Figure 10).
  bool first_packet() const { return parameter & 0x80; }
  std::uint8_t content_pt() const { return parameter & 0x7F; }
  static std::uint8_t make_parameter(bool first, std::uint8_t pt) {
    return static_cast<std::uint8_t>((first ? 0x80 : 0x00) | (pt & 0x7F));
  }

  friend bool operator==(const CommonHeader&, const CommonHeader&) = default;
};

/// Fragment classification per draft Table 2 (marker bit x FirstPacket bit).
enum class FragmentType {
  kNotFragmented,  ///< marker=1, first=1
  kStart,          ///< marker=0, first=1
  kContinuation,   ///< marker=0, first=0
  kEnd,            ///< marker=1, first=0
};

constexpr FragmentType classify_fragment(bool marker, bool first_packet) {
  if (marker && first_packet) return FragmentType::kNotFragmented;
  if (!marker && first_packet) return FragmentType::kStart;
  if (!marker && !first_packet) return FragmentType::kContinuation;
  return FragmentType::kEnd;
}

}  // namespace ads
