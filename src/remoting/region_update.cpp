#include "remoting/region_update.hpp"

#include <algorithm>
#include <cassert>

namespace ads {
namespace {

constexpr std::size_t kFirstHeader = CommonHeader::kSize + 8;  // + left + top

void write_common(ByteWriter& out, RemotingType type, const RegionUpdate& msg,
                  bool first) {
  CommonHeader header;
  header.msg_type = static_cast<std::uint8_t>(type);
  header.parameter = CommonHeader::make_parameter(first, msg.content_pt);
  header.window_id = msg.window_id;
  header.write(out);
}

}  // namespace

FragmentType RegionUpdateFragment::type() const {
  ByteReader in(payload);
  auto header = CommonHeader::read(in);
  const bool first = header.ok() && header->first_packet();
  return classify_fragment(marker, first);
}

std::vector<RegionUpdateFragment> fragment_region_update(const RegionUpdate& msg,
                                                         std::size_t max_payload,
                                                         RemotingType type) {
  assert(max_payload > kFirstHeader);
  std::vector<RegionUpdateFragment> out;

  const std::size_t first_room = max_payload - kFirstHeader;
  const std::size_t cont_room = max_payload - CommonHeader::kSize;

  std::size_t offset = std::min(msg.content.size(), first_room);
  {
    RegionUpdateFragment frag;
    ByteWriter w(kFirstHeader + offset);
    write_common(w, type, msg, /*first=*/true);
    w.u32(msg.left);
    w.u32(msg.top);
    w.bytes(BytesView(msg.content).first(offset));
    frag.payload = w.take();
    frag.marker = offset == msg.content.size();
    out.push_back(std::move(frag));
  }
  while (offset < msg.content.size()) {
    const std::size_t take = std::min(cont_room, msg.content.size() - offset);
    RegionUpdateFragment frag;
    ByteWriter w(CommonHeader::kSize + take);
    write_common(w, type, msg, /*first=*/false);
    w.bytes(BytesView(msg.content).subspan(offset, take));
    frag.payload = w.take();
    offset += take;
    frag.marker = offset == msg.content.size();
    out.push_back(std::move(frag));
  }
  return out;
}

std::vector<FragmentSpan> fragment_region_update_into(const RegionUpdate& msg,
                                                      std::size_t max_payload,
                                                      Bytes& dest,
                                                      RemotingType type) {
  assert(max_payload > kFirstHeader);
  std::vector<FragmentSpan> out;
  // ByteWriter's adopting constructor clears: stash any existing content and
  // re-write it first. The hot path (a cleared pooled buffer) has an empty
  // prefix, so it pays nothing and keeps the recycled allocation.
  const Bytes prefix(dest);
  ByteWriter w(std::move(dest));
  w.bytes(prefix);

  const std::size_t first_room = max_payload - kFirstHeader;
  const std::size_t cont_room = max_payload - CommonHeader::kSize;

  std::size_t offset = std::min(msg.content.size(), first_room);
  {
    FragmentSpan span;
    span.offset = static_cast<std::uint32_t>(w.size());
    write_common(w, type, msg, /*first=*/true);
    w.u32(msg.left);
    w.u32(msg.top);
    w.bytes(BytesView(msg.content).first(offset));
    span.length = static_cast<std::uint32_t>(w.size() - span.offset);
    span.marker = offset == msg.content.size();
    out.push_back(span);
  }
  while (offset < msg.content.size()) {
    const std::size_t take = std::min(cont_room, msg.content.size() - offset);
    FragmentSpan span;
    span.offset = static_cast<std::uint32_t>(w.size());
    write_common(w, type, msg, /*first=*/false);
    w.bytes(BytesView(msg.content).subspan(offset, take));
    span.length = static_cast<std::uint32_t>(w.size() - span.offset);
    offset += take;
    span.marker = offset == msg.content.size();
    out.push_back(span);
  }
  dest = w.take();
  return out;
}

Result<std::optional<RegionUpdate>> RegionUpdateReassembler::feed(BytesView payload,
                                                                  bool marker) {
  ByteReader in(payload);
  auto header = CommonHeader::read(in);
  if (!header) {
    reset();
    return header.error();
  }
  if (header->msg_type != static_cast<std::uint8_t>(msg_type_)) {
    reset();
    return ParseError::kBadValue;
  }

  const bool first = header->first_packet();
  if (first) {
    if (in_progress_) {
      // A new message started while another was open: the tail of the old
      // one was lost. Abandon it and accept the new start.
      ++aborted_;
    }
    auto left = in.u32();
    auto top = in.u32();
    if (!left || !top) {
      reset();
      return ParseError::kTruncated;
    }
    partial_ = RegionUpdate{};
    partial_.window_id = header->window_id;
    partial_.content_pt = header->content_pt();
    partial_.left = *left;
    partial_.top = *top;
    in_progress_ = true;
  } else {
    if (!in_progress_) {
      // Continuation without a start: the first packet was lost.
      return ParseError::kBadState;
    }
    if (header->window_id != partial_.window_id ||
        header->content_pt() != partial_.content_pt) {
      reset();
      return ParseError::kBadValue;
    }
  }

  const BytesView chunk = in.rest();
  if (partial_.content.size() + chunk.size() > max_bytes_) {
    reset();
    return ParseError::kOverflow;
  }
  partial_.content.insert(partial_.content.end(), chunk.begin(), chunk.end());

  if (!marker) return std::optional<RegionUpdate>{};

  ++completed_;
  in_progress_ = false;
  std::optional<RegionUpdate> done = std::move(partial_);
  partial_ = RegionUpdate{};
  return done;
}

void RegionUpdateReassembler::reset() {
  if (in_progress_) ++aborted_;
  in_progress_ = false;
  partial_ = RegionUpdate{};
}

}  // namespace ads
