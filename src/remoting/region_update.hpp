// RegionUpdate message (draft §5.2.2, Figures 10-11) and its fragmentation
// machinery (Table 2).
//
// Wire layout of the first (or only) packet payload:
//   CommonHeader{type=2, parameter=F|PT, windowID} | Left u32 | Top u32 |
//   content bytes...
// Continuation/end packets repeat only the CommonHeader (F=0) before more
// content bytes. The RTP marker bit closes the message; all fragments share
// one RTP timestamp (§5.1.1). Width/height are NOT on the wire — they come
// from the encoded image itself.
#pragma once

#include <optional>
#include <vector>

#include "remoting/header.hpp"
#include "util/bytes.hpp"

namespace ads {

struct RegionUpdate {
  std::uint16_t window_id = 0;
  std::uint8_t content_pt = 0;  ///< 7-bit codec payload type
  std::uint32_t left = 0;       ///< window-relative region origin
  std::uint32_t top = 0;
  Bytes content;                ///< encoded image bytes

  friend bool operator==(const RegionUpdate&, const RegionUpdate&) = default;
};

/// One RTP payload of a (possibly fragmented) RegionUpdate plus the marker
/// bit the RTP packet must carry.
struct RegionUpdateFragment {
  Bytes payload;
  bool marker = false;

  FragmentType type() const;
};

/// Split `msg` into fragments whose payloads are each at most
/// `max_payload` bytes (must exceed the 12-byte first-packet header).
/// A message that fits yields one kNotFragmented fragment. `type` selects
/// the Table-1 message type: MousePointerInfo "is same as RegionUpdate …
/// except they have different message types" (§5.2.4).
std::vector<RegionUpdateFragment> fragment_region_update(
    const RegionUpdate& msg, std::size_t max_payload,
    RemotingType type = RemotingType::kRegionUpdate);

/// One fragment's window into a serialised fragment stream (see
/// fragment_region_update_into) plus the RTP marker bit it must carry.
struct FragmentSpan {
  std::uint32_t offset = 0;  ///< byte offset into the stream buffer
  std::uint32_t length = 0;  ///< fragment payload length
  bool marker = false;       ///< closes the message (last fragment)
};

/// Zero-copy variant of fragment_region_update: appends the concatenated
/// fragment payloads to `dest` (one contiguous stream, written once) and
/// returns the per-fragment windows. Each window's bytes are identical to
/// the corresponding fragment_region_update(...)[i].payload, so packets can
/// be built as header-plus-view (ads::PacketView) into a shared buffer —
/// every field serialised here (window id, content payload type, origin,
/// content) is participant-independent, which is what lets one stream feed
/// a whole fan-out cohort.
std::vector<FragmentSpan> fragment_region_update_into(
    const RegionUpdate& msg, std::size_t max_payload, Bytes& dest,
    RemotingType type = RemotingType::kRegionUpdate);

/// Reassembles RegionUpdate (and MousePointerInfo, which shares the
/// format) messages from in-order fragments.
class RegionUpdateReassembler {
 public:
  /// `msg_type` selects which Table-1 type this instance accepts.
  explicit RegionUpdateReassembler(
      RemotingType msg_type = RemotingType::kRegionUpdate,
      std::size_t max_message_bytes = 64 * 1024 * 1024)
      : msg_type_(msg_type), max_bytes_(max_message_bytes) {}

  /// Feed one RTP payload (+ marker). Returns a complete message when the
  /// fragment closes one, nullopt while more fragments are pending, or a
  /// ParseError for malformed input (state resets on error).
  Result<std::optional<RegionUpdate>> feed(BytesView payload, bool marker);

  /// Drop any partial state (call after a detected packet loss that will
  /// not be repaired, e.g. a skipped gap).
  void reset();

  bool in_progress() const { return in_progress_; }
  std::uint64_t messages_completed() const { return completed_; }
  std::uint64_t messages_aborted() const { return aborted_; }

 private:
  RemotingType msg_type_;
  std::size_t max_bytes_;
  bool in_progress_ = false;
  RegionUpdate partial_;
  std::uint64_t completed_ = 0;
  std::uint64_t aborted_ = 0;
};

}  // namespace ads
