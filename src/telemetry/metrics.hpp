// Session-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms cheap enough for per-packet / per-band hot paths.
//
// Design rules (the ROADMAP's "one way to observe a session"):
//   * the increment path is a single relaxed atomic RMW — no locks, no
//     allocation, no branches beyond the caller's own null check;
//   * registration (name → metric) takes a mutex once; callers cache the
//     returned reference, which stays valid for the registry's lifetime
//     (metrics are never removed);
//   * components that already keep a plain ad-hoc Stats struct publish it
//     through a *collector* — a callback run at snapshot() time that set()s
//     the struct's totals into registry metrics. Hot paths stay exactly as
//     cheap as before, yet every layer lands in one Snapshot;
//   * snapshot() produces a plain-data Snapshot that the exporter layer
//     (telemetry/export.hpp) serialises to JSON lines or Prometheus text.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ads::telemetry {

/// Monotonic event count. add() is the hot-path operation: one relaxed
/// fetch_add. set() exists for collectors that mirror an externally-kept
/// total into the registry at snapshot time.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, cache bytes). Signed so deltas can go
/// both ways.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; an implicit +inf bucket catches the rest. observe() is a binary
/// search over ≤ a few dozen bounds plus three relaxed adds — no locks.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Plain-data view of a histogram at one instant.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

/// Plain-data view of one trace span (see telemetry/trace.hpp).
struct SpanRecord {
  const char* name = "";        ///< string literal supplied at span creation
  std::uint64_t begin_us = 0;   ///< virtual (event-loop) microseconds
  std::uint64_t end_us = 0;
  std::uint64_t seq = 0;        ///< global completion order, 0-based
};

/// Everything the registry knew at snapshot time, as plain data. The
/// exporters in telemetry/export.hpp serialise this; tests index into it.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<SpanRecord> spans;  ///< filled by Telemetry::snapshot()

  /// Counter value, or `fallback` when the name was never registered.
  std::uint64_t counter(std::string_view name, std::uint64_t fallback = 0) const;
  std::int64_t gauge(std::string_view name, std::int64_t fallback = 0) const;
  bool has_counter(std::string_view name) const;
};

/// Name → metric table. Lookups lock; the returned references never move or
/// die, so hot paths resolve once and increment lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The metric named `name`, creating it on first use. A histogram's
  /// bucket bounds are fixed by the first caller; later callers share it.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// Register a callback run at the start of every snapshot(). Collectors
  /// bridge ad-hoc Stats structs into the registry: they set() totals that
  /// the component keeps outside the registry. `owner` keys removal —
  /// call remove_collectors(owner) before the captured state dies.
  void add_collector(const void* owner, std::function<void()> fn);
  void remove_collectors(const void* owner);

  /// Run collectors, then copy every metric. Not cheap; not for hot paths.
  Snapshot snapshot();

  /// Zero every counter, gauge and histogram (multi-phase benchmarks
  /// measure per phase). Registrations and collectors survive.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::pair<const void*, std::function<void()>>> collectors_;
};

}  // namespace ads::telemetry
