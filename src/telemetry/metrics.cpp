#include "telemetry/metrics.hpp"

#include <algorithm>

namespace ads::telemetry {

Histogram::Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t Snapshot::counter(std::string_view name, std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

std::int64_t Snapshot::gauge(std::string_view name, std::int64_t fallback) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

bool Snapshot::has_counter(std::string_view name) const {
  return counters.find(std::string(name)) != counters.end();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::add_collector(const void* owner, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.emplace_back(owner, std::move(fn));
}

void MetricsRegistry::remove_collectors(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(collectors_, [owner](const auto& c) { return c.first == owner; });
}

Snapshot MetricsRegistry::snapshot() {
  // Collectors may call back into counter()/gauge() (which lock), so run
  // them on a copy outside the mutex.
  std::vector<std::function<void()>> to_run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_run.reserve(collectors_.size());
    for (const auto& [owner, fn] : collectors_) to_run.push_back(fn);
  }
  for (const auto& fn : to_run) fn();

  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = HistogramSnapshot{h->bounds(), h->counts(), h->count(),
                                              h->sum()};
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace ads::telemetry
