#include "telemetry/export.hpp"

#include <sstream>

namespace ads::telemetry {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(v[i]);
  }
  out += ']';
}

void append_span(std::string& out, const SpanRecord& s) {
  out += "{\"name\": \"";
  append_escaped(out, s.name);
  out += "\", \"begin_us\": " + std::to_string(s.begin_us) +
         ", \"end_us\": " + std::to_string(s.end_us) +
         ", \"seq\": " + std::to_string(s.seq) + "}";
}

void append_histogram(std::string& out, const HistogramSnapshot& h) {
  out += "{\"bounds\": ";
  append_u64_array(out, h.bounds);
  out += ", \"counts\": ";
  append_u64_array(out, h.counts);
  out += ", \"count\": " + std::to_string(h.count) +
         ", \"sum\": " + std::to_string(h.sum) + "}";
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\": ";
    append_histogram(out, h);
  }
  out += "}, \"spans\": [";
  first = true;
  for (const auto& s : snap.spans) {
    if (!first) out += ", ";
    first = false;
    append_span(out, s);
  }
  out += "]}";
  return out;
}

std::string to_json_lines(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "{\"type\": \"counter\", \"name\": \"";
    append_escaped(out, name);
    out += "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "{\"type\": \"gauge\", \"name\": \"";
    append_escaped(out, name);
    out += "\", \"value\": " + std::to_string(value) + "}\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "{\"type\": \"histogram\", \"name\": \"";
    append_escaped(out, name);
    out += "\", \"value\": ";
    append_histogram(out, h);
    out += "}\n";
  }
  for (const auto& s : snap.spans) {
    out += "{\"type\": \"span\", \"value\": ";
    append_span(out, s);
    out += "}\n";
  }
  return out;
}

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prometheus_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prometheus_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += n + "_bucket{le=\"" + std::to_string(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace ads::telemetry
