// Trace spans over the simulator's virtual clock.
//
// A ScopedSpan records a {name, begin, end} triple into a bounded ring
// buffer when it goes out of scope. Timestamps come from a caller-supplied
// clock — in this codebase always EventLoop::now(), i.e. virtual
// microseconds — so a traced run is bit-reproducible: the same session
// produces the same spans at the same times on any machine.
//
// A disabled ring (the default) costs one predictable branch per span: the
// ScopedSpan constructor reads a bool and skips the clock entirely, which
// is what lets spans sit permanently in the AppHost tick pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ads::telemetry {

/// Bounded ring of completed spans, oldest overwritten first. Not thread
/// safe: spans are recorded from the event-loop thread only (the tick
/// pipeline), which is also what keeps span order deterministic.
class TraceRing {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// Start recording: keep the last `capacity` spans, timestamped by
  /// `clock`. capacity == 0 disables again.
  void enable(std::size_t capacity, Clock clock);
  void disable();
  bool enabled() const { return enabled_; }

  std::uint64_t now() const { return clock_ ? clock_() : 0; }

  void record(const char* name, std::uint64_t begin_us, std::uint64_t end_us);

  /// Completed spans, oldest first. `seq` preserves the global completion
  /// index even after the ring wrapped.
  std::vector<SpanRecord> spans() const;
  std::uint64_t total_recorded() const { return total_; }
  std::size_t capacity() const { return ring_.size(); }
  void clear();

 private:
  bool enabled_ = false;
  Clock clock_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;    ///< ring slot the next record lands in
  std::uint64_t total_ = 0; ///< spans ever recorded (drives seq)
};

/// RAII span: stamps begin at construction, records on destruction. `name`
/// must outlive the ring (use string literals).
class ScopedSpan {
 public:
  ScopedSpan(TraceRing& ring, const char* name)
      : ring_(ring), name_(name), armed_(ring.enabled()) {
    if (armed_) begin_ = ring_.now();
  }
  ~ScopedSpan() {
    if (armed_) ring_.record(name_, begin_, ring_.now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRing& ring_;
  const char* name_;
  std::uint64_t begin_ = 0;
  bool armed_;
};

}  // namespace ads::telemetry
