// Snapshot serialisers. Two wire formats:
//   * JSON — one object (to_json) for embedding in BENCH_*.json or test
//     fixtures, and one-metric-per-line JSON lines (to_json_lines) for
//     streaming/appending to a log;
//   * Prometheus text exposition format (to_prometheus) — counters end in
//     `_total`, histograms expand to `_bucket{le=...}` / `_sum` / `_count`,
//     and metric names are sanitised to [a-zA-Z0-9_:] (dots become
//     underscores), so the output scrapes cleanly.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace ads::telemetry {

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {"bounds": [...], "counts": [...], "count": n,
/// "sum": n}}, "spans": [{"name": ..., "begin_us": ..., "end_us": ...,
/// "seq": ...}]}. Keys are sorted (std::map order) so equal snapshots
/// serialise to equal strings — tests diff them directly.
std::string to_json(const Snapshot& snap);

/// One metric per line: {"type": "counter", "name": ..., "value": ...}\n ...
/// Spans follow as {"type": "span", ...} lines.
std::string to_json_lines(const Snapshot& snap);

/// Prometheus text format (spans are not exported — Prometheus has no span
/// type; scrape the histograms instead).
std::string to_prometheus(const Snapshot& snap);

/// `name` with every character outside [a-zA-Z0-9_:] replaced by '_', and a
/// leading digit prefixed with '_' (the Prometheus metric-name charset).
std::string prometheus_name(std::string_view name);

}  // namespace ads::telemetry
