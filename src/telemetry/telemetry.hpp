// The session-wide observability bundle: one MetricsRegistry plus one
// TraceRing. The AppHost owns a Telemetry by default (so every session is
// observable with zero configuration); tests and multi-host setups can
// inject a shared instance through AppHostOptions/channel options instead.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace ads::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  TraceRing trace;

  /// Metrics snapshot with the trace ring's spans attached.
  Snapshot snapshot() {
    Snapshot snap = metrics.snapshot();
    snap.spans = trace.spans();
    return snap;
  }
};

}  // namespace ads::telemetry
