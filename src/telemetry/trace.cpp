#include "telemetry/trace.hpp"

namespace ads::telemetry {

void TraceRing::enable(std::size_t capacity, Clock clock) {
  if (capacity == 0) {
    disable();
    return;
  }
  ring_.assign(capacity, SpanRecord{});
  clock_ = std::move(clock);
  next_ = 0;
  total_ = 0;
  enabled_ = true;
}

void TraceRing::disable() {
  enabled_ = false;
  clock_ = nullptr;
  ring_.clear();
  next_ = 0;
}

void TraceRing::record(const char* name, std::uint64_t begin_us,
                       std::uint64_t end_us) {
  if (!enabled_ || ring_.empty()) return;
  ring_[next_] = SpanRecord{name, begin_us, end_us, total_};
  ++total_;
  next_ = (next_ + 1) % ring_.size();
}

std::vector<SpanRecord> TraceRing::spans() const {
  std::vector<SpanRecord> out;
  if (ring_.empty() || total_ == 0) return out;
  const std::size_t held = total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                                 : ring_.size();
  out.reserve(held);
  // Oldest-first: when the ring wrapped, the oldest entry sits at next_.
  const std::size_t start = total_ < ring_.size() ? 0 : next_;
  for (std::size_t i = 0; i < held; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRing::clear() {
  next_ = 0;
  total_ = 0;
  for (auto& s : ring_) s = SpanRecord{};
}

}  // namespace ads::telemetry
