// Window manager model — the AH-side state that WindowManagerInfo messages
// serialise (§5.2.1): per-window id, group, geometry, and an implicit
// z-order (bottom-first, exactly the order window records are transmitted).
//
// Application sharing vs desktop sharing (§2): in application-sharing mode
// only windows whose group is marked shared are exported, and "a true
// application sharing system must blank all the nonshared windows"; the
// capture layer uses visible_shared_region() for that.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "image/geometry.hpp"

namespace ads {

using WindowId = std::uint16_t;
using GroupId = std::uint8_t;

/// GroupID 0 is reserved: "represents no grouping for given window".
inline constexpr GroupId kNoGroup = 0;

struct Window {
  WindowId id = 0;
  GroupId group = kNoGroup;
  Rect frame;

  friend bool operator==(const Window&, const Window&) = default;
};

class WindowManager {
 public:
  /// Create a window on top of the stack. Window ids are assigned
  /// sequentially starting at 1 (the id is a 16-bit wire field).
  WindowId create(const Rect& frame, GroupId group = kNoGroup);

  /// Close (destroy) a window. Returns false if the id is unknown.
  bool close(WindowId id);

  bool move(WindowId id, Point top_left);
  bool resize(WindowId id, std::int64_t width, std::int64_t height);
  bool set_frame(WindowId id, const Rect& frame);
  bool set_group(WindowId id, GroupId group);

  /// Raise to top / lower to bottom of the stacking order.
  bool raise(WindowId id);
  bool lower(WindowId id);

  const Window* find(WindowId id) const;
  bool exists(WindowId id) const { return find(id) != nullptr; }

  /// All windows, bottom-most first — the order Figure 8 records are sent.
  const std::vector<Window>& stacking_order() const { return windows_; }
  std::size_t count() const { return windows_.size(); }

  /// Mark a group as shared (application-sharing mode) or share everything
  /// (desktop mode, the default).
  void set_desktop_mode() { shared_groups_.clear(); desktop_mode_ = true; bump(); }
  void share_group(GroupId group);
  void unshare_group(GroupId group);
  bool is_shared(const Window& w) const;

  /// Shared windows in stacking order — the record list for
  /// WindowManagerInfo.
  std::vector<Window> shared_windows() const;

  /// Part of `id`'s frame not covered by shared-or-not windows above it.
  /// (A non-shared window covering a shared one hides that area from
  /// participants too — they see the blanked overlap.)
  Region visible_region(WindowId id) const;

  /// Union of the visible parts of all shared windows: everything the AH
  /// may export. Pixels outside must be blanked.
  Region visible_shared_region() const;

  /// §4.1: "The AH MUST only accept legitimate HIP events by checking
  /// whether the requested coordinates are inside the shared windows."
  bool point_in_shared_window(Point p) const;

  /// Topmost shared window containing `p`, if any.
  std::optional<WindowId> shared_window_at(Point p) const;

  /// Monotone revision counter: any change that would require a new
  /// WindowManagerInfo message (create/close/move/resize/restack/regroup,
  /// §5.2.1) increments it.
  std::uint64_t revision() const { return revision_; }

 private:
  void bump() { ++revision_; }
  Window* find_mutable(WindowId id);

  std::vector<Window> windows_;  ///< bottom-most first
  std::vector<GroupId> shared_groups_;
  bool desktop_mode_ = true;
  WindowId next_id_ = 1;
  std::uint64_t revision_ = 0;
};

}  // namespace ads
