#include "wm/window_manager.hpp"

#include <algorithm>

namespace ads {

WindowId WindowManager::create(const Rect& frame, GroupId group) {
  Window w;
  w.id = next_id_++;
  w.group = group;
  w.frame = frame;
  windows_.push_back(w);
  bump();
  return w.id;
}

bool WindowManager::close(WindowId id) {
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [id](const Window& w) { return w.id == id; });
  if (it == windows_.end()) return false;
  windows_.erase(it);
  bump();
  return true;
}

Window* WindowManager::find_mutable(WindowId id) {
  for (Window& w : windows_) {
    if (w.id == id) return &w;
  }
  return nullptr;
}

const Window* WindowManager::find(WindowId id) const {
  for (const Window& w : windows_) {
    if (w.id == id) return &w;
  }
  return nullptr;
}

bool WindowManager::move(WindowId id, Point top_left) {
  Window* w = find_mutable(id);
  if (!w) return false;
  if (w->frame.left != top_left.x || w->frame.top != top_left.y) {
    w->frame.left = top_left.x;
    w->frame.top = top_left.y;
    bump();
  }
  return true;
}

bool WindowManager::resize(WindowId id, std::int64_t width, std::int64_t height) {
  Window* w = find_mutable(id);
  if (!w) return false;
  if (w->frame.width != width || w->frame.height != height) {
    w->frame.width = width;
    w->frame.height = height;
    bump();
  }
  return true;
}

bool WindowManager::set_frame(WindowId id, const Rect& frame) {
  Window* w = find_mutable(id);
  if (!w) return false;
  if (w->frame != frame) {
    w->frame = frame;
    bump();
  }
  return true;
}

bool WindowManager::set_group(WindowId id, GroupId group) {
  Window* w = find_mutable(id);
  if (!w) return false;
  if (w->group != group) {
    w->group = group;
    bump();
  }
  return true;
}

bool WindowManager::raise(WindowId id) {
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [id](const Window& w) { return w.id == id; });
  if (it == windows_.end()) return false;
  if (it + 1 != windows_.end()) {
    std::rotate(it, it + 1, windows_.end());
    bump();
  }
  return true;
}

bool WindowManager::lower(WindowId id) {
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [id](const Window& w) { return w.id == id; });
  if (it == windows_.end()) return false;
  if (it != windows_.begin()) {
    std::rotate(windows_.begin(), it, it + 1);
    bump();
  }
  return true;
}

void WindowManager::share_group(GroupId group) {
  desktop_mode_ = false;
  if (std::find(shared_groups_.begin(), shared_groups_.end(), group) ==
      shared_groups_.end()) {
    shared_groups_.push_back(group);
  }
  bump();
}

void WindowManager::unshare_group(GroupId group) {
  auto it = std::find(shared_groups_.begin(), shared_groups_.end(), group);
  if (it != shared_groups_.end()) {
    shared_groups_.erase(it);
    bump();
  }
}

bool WindowManager::is_shared(const Window& w) const {
  if (desktop_mode_) return true;
  return std::find(shared_groups_.begin(), shared_groups_.end(), w.group) !=
         shared_groups_.end();
}

std::vector<Window> WindowManager::shared_windows() const {
  std::vector<Window> out;
  for (const Window& w : windows_) {
    if (is_shared(w)) out.push_back(w);
  }
  return out;
}

Region WindowManager::visible_region(WindowId id) const {
  Region region;
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [id](const Window& w) { return w.id == id; });
  if (it == windows_.end()) return region;
  region.add(it->frame);
  for (auto above = it + 1; above != windows_.end(); ++above) {
    region.subtract_rect(above->frame);
  }
  return region;
}

Region WindowManager::visible_shared_region() const {
  Region region;
  for (const Window& w : windows_) {
    if (!is_shared(w)) continue;
    const Region visible = visible_region(w.id);
    for (const Rect& r : visible.rects()) region.add(r);
  }
  region.simplify();
  return region;
}

bool WindowManager::point_in_shared_window(Point p) const {
  return shared_window_at(p).has_value();
}

std::optional<WindowId> WindowManager::shared_window_at(Point p) const {
  // Scan top-down; a non-shared window covering the point blocks input to
  // shared windows underneath it.
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    if (it->frame.contains(p)) {
      if (is_shared(*it)) return it->id;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace ads
