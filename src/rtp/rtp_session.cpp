#include "rtp/rtp_session.hpp"

namespace ads {

RtpSender::RtpSender(std::uint8_t payload_type, std::uint64_t seed)
    : payload_type_(payload_type) {
  Prng rng(seed);
  ssrc_ = rng.next_u32();
  next_seq_ = static_cast<std::uint16_t>(rng.next_u32());
  initial_timestamp_ = rng.next_u32();
}

std::uint32_t RtpSender::timestamp_at(std::uint64_t now_us) const {
  return initial_timestamp_ + us_to_rtp_ticks(now_us);
}

RtpPacket RtpSender::make_packet(Bytes payload, bool marker, std::uint64_t now_us) {
  RtpPacket pkt;
  pkt.marker = marker;
  pkt.payload_type = payload_type_;
  pkt.sequence = next_seq_++;
  pkt.timestamp = timestamp_at(now_us);
  pkt.ssrc = ssrc_;
  pkt.payload = std::move(payload);
  ++packets_sent_;
  bytes_sent_ += pkt.wire_size();
  return pkt;
}

PacketView RtpSender::make_view(bool marker, std::uint64_t now_us,
                                buf::BufRef buf, std::size_t offset,
                                std::size_t length) {
  PacketView v = PacketView::build(marker, payload_type_, next_seq_++,
                                   timestamp_at(now_us), ssrc_, std::move(buf),
                                   offset, length);
  ++packets_sent_;
  bytes_sent_ += v.wire_size();
  return v;
}

bool RtpReceiver::on_packet(const RtpPacket& pkt, SimTimeUs arrival_us) {
  // RFC 3550 A.8 interarrival jitter, in 90 kHz ticks.
  const std::int64_t arrival_ticks =
      static_cast<std::int64_t>(us_to_rtp_ticks(arrival_us));
  const std::int64_t transit =
      arrival_ticks - static_cast<std::int64_t>(pkt.timestamp);
  if (have_transit_) {
    std::int64_t d = transit - prev_transit_;
    if (d < 0) d = -d;
    jitter_ += (static_cast<double>(d) - jitter_) / 16.0;
  }
  prev_transit_ = transit;
  have_transit_ = true;
  return on_packet(pkt);
}

std::uint32_t RtpReceiver::cumulative_lost() const {
  const std::uint32_t expected =
      extended_highest_sequence() -
      ((0u << 16) | base_seq_) + 1;  // cycles of base are 0 by construction
  if (received_ >= expected) return 0;
  return expected - static_cast<std::uint32_t>(received_);
}

ReportBlock RtpReceiver::snapshot(std::uint32_t media_ssrc) {
  ReportBlock block;
  block.ssrc = media_ssrc;
  block.ext_highest_seq = extended_highest_sequence();
  block.jitter = jitter();
  block.cumulative_lost = cumulative_lost() & 0xFFFFFF;

  // Fraction lost over the interval since the last snapshot (RFC 3550 A.3).
  const std::uint32_t expected = extended_highest_sequence() - base_seq_ + 1;
  const std::uint32_t expected_interval = expected - expected_prior_;
  const std::uint64_t received_interval = received_ - received_prior_;
  expected_prior_ = expected;
  received_prior_ = received_;
  if (expected_interval > 0 && received_interval < expected_interval) {
    const std::uint32_t lost =
        expected_interval - static_cast<std::uint32_t>(received_interval);
    block.fraction_lost = static_cast<std::uint8_t>((lost << 8) / expected_interval);
  }
  return block;
}

bool RtpReceiver::on_packet(const RtpPacket& pkt) {
  if (!started_) {
    started_ = true;
    highest_seq_ = pkt.sequence;
    base_seq_ = pkt.sequence;
    seen_window_.insert(pkt.sequence);
    ++received_;
    return true;
  }

  if (seen_window_.count(pkt.sequence)) {
    ++duplicates_;
    return false;
  }

  // RFC 3550 A.1-style validation on the unsigned modular delta.
  const std::uint16_t udelta =
      static_cast<std::uint16_t>(pkt.sequence - highest_seq_);
  if (udelta > 0 && udelta < kMaxDropout) {
    // In order, possibly with a plausible gap: every skipped number between
    // highest+1 and the new packet is missing.
    for (std::uint16_t s = static_cast<std::uint16_t>(highest_seq_ + 1);
         s != pkt.sequence; ++s) {
      missing_.insert(s);
    }
    if (pkt.sequence < highest_seq_) ++cycles_;  // 16-bit wrap
    highest_seq_ = pkt.sequence;
    bad_seq_valid_ = false;
  } else if (udelta <= 0x8000) {
    // Suspect zone: either a genuine restart after a very large burst, or
    // an ancient straggler from more than half a window back. Advancing on
    // the straggler would inflate the extended sequence by a whole cycle
    // and regress highest_seq_, so require two consecutive packets before
    // accepting the new position.
    if (bad_seq_valid_ && pkt.sequence == bad_seq_) {
      if (pkt.sequence < highest_seq_) ++cycles_;  // restart crossed a wrap
      highest_seq_ = pkt.sequence;
      bad_seq_valid_ = false;
      // A gap this wide is beyond NACK repair; the escalation ladder (PLI
      // full refresh) owns recovery, so do not enumerate it as missing.
      missing_.clear();
    } else {
      bad_seq_ = static_cast<std::uint16_t>(pkt.sequence + 1);
      bad_seq_valid_ = true;
    }
  } else {
    // Behind by at most half a window: a late packet fills (or re-fills) a
    // gap. Never a wrap.
    missing_.erase(pkt.sequence);
  }

  seen_window_.insert(pkt.sequence);
  // Bound duplicate-detection memory: keep roughly one wrap of history,
  // evicting the modularly oldest entry — after a wrap that is the smallest
  // sequence *above* the current highest, not *begin().
  while (seen_window_.size() > 4096) {
    auto oldest = seen_window_.upper_bound(highest_seq_);
    if (oldest == seen_window_.end()) oldest = seen_window_.begin();
    seen_window_.erase(oldest);
  }
  ++received_;
  return true;
}

std::vector<std::uint16_t> RtpReceiver::missing(std::size_t limit) const {
  std::vector<std::uint16_t> out;
  for (std::uint16_t s : missing_) {
    if (out.size() >= limit) break;
    out.push_back(s);
  }
  return out;
}

}  // namespace ads
