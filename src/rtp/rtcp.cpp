#include "rtp/rtcp.hpp"

#include <algorithm>

namespace ads {
namespace {

void write_fb_header(ByteWriter& out, std::uint8_t fmt, std::uint8_t pt,
                     std::uint16_t length_words, std::uint32_t sender_ssrc,
                     std::uint32_t media_ssrc) {
  out.u8(static_cast<std::uint8_t>(0x80 | (fmt & 0x1F)));  // V=2, P=0, FMT
  out.u8(pt);
  out.u16(length_words);  // length in 32-bit words minus one
  out.u32(sender_ssrc);
  out.u32(media_ssrc);
}

}  // namespace

Bytes PictureLossIndication::serialize() const {
  ByteWriter out(12);
  // PLI has no FCI: length = 2 (3 words total minus one).
  write_fb_header(out, 1, kRtcpPtPsfb, 2, sender_ssrc, media_ssrc);
  return out.take();
}

Bytes GenericNack::serialize() const {
  ByteWriter out(12 + entries.size() * 4);
  write_fb_header(out, 1, kRtcpPtRtpfb,
                  static_cast<std::uint16_t>(2 + entries.size()), sender_ssrc,
                  media_ssrc);
  for (const NackEntry& e : entries) {
    out.u16(e.pid);
    out.u16(e.blp);
  }
  return out.take();
}

std::vector<std::uint16_t> GenericNack::requested_sequences() const {
  std::vector<std::uint16_t> out;
  for (const NackEntry& e : entries) {
    out.push_back(e.pid);
    for (int bit = 0; bit < 16; ++bit) {
      if (e.blp & (1u << bit)) {
        out.push_back(static_cast<std::uint16_t>(e.pid + 1 + bit));
      }
    }
  }
  return out;
}

GenericNack GenericNack::for_sequences(std::uint32_t sender_ssrc,
                                       std::uint32_t media_ssrc,
                                       std::vector<std::uint16_t> lost) {
  GenericNack nack;
  nack.sender_ssrc = sender_ssrc;
  nack.media_ssrc = media_ssrc;
  if (lost.empty()) return nack;
  // Sort in modular order relative to the first element so wrap-around
  // batches pack correctly.
  const std::uint16_t base = *std::min_element(
      lost.begin(), lost.end(), [&](std::uint16_t a, std::uint16_t b) {
        return static_cast<std::uint16_t>(a - lost[0]) <
               static_cast<std::uint16_t>(b - lost[0]);
      });
  std::sort(lost.begin(), lost.end(), [&](std::uint16_t a, std::uint16_t b) {
    return static_cast<std::uint16_t>(a - base) < static_cast<std::uint16_t>(b - base);
  });
  lost.erase(std::unique(lost.begin(), lost.end()), lost.end());

  std::size_t i = 0;
  while (i < lost.size()) {
    NackEntry entry;
    entry.pid = lost[i];
    ++i;
    while (i < lost.size()) {
      const std::uint16_t offset = static_cast<std::uint16_t>(lost[i] - entry.pid);
      if (offset == 0 || offset > 16) break;
      entry.blp |= static_cast<std::uint16_t>(1u << (offset - 1));
      ++i;
    }
    nack.entries.push_back(entry);
  }
  return nack;
}

namespace {

void write_report_block(ByteWriter& out, const ReportBlock& b) {
  out.u32(b.ssrc);
  out.u8(b.fraction_lost);
  out.u24(b.cumulative_lost & 0xFFFFFF);
  out.u32(b.ext_highest_seq);
  out.u32(b.jitter);
  out.u32(b.last_sr);
  out.u32(b.delay_since_last_sr);
}

Result<ReportBlock> read_report_block(ByteReader& in) {
  ReportBlock b;
  auto ssrc = in.u32();
  auto frac = in.u8();
  auto lost = in.u24();
  auto seq = in.u32();
  auto jitter = in.u32();
  auto lsr = in.u32();
  auto dlsr = in.u32();
  if (!ssrc || !frac || !lost || !seq || !jitter || !lsr || !dlsr)
    return ParseError::kTruncated;
  b.ssrc = *ssrc;
  b.fraction_lost = *frac;
  b.cumulative_lost = *lost;
  b.ext_highest_seq = *seq;
  b.jitter = *jitter;
  b.last_sr = *lsr;
  b.delay_since_last_sr = *dlsr;
  return b;
}

}  // namespace

Bytes SenderReport::serialize() const {
  ByteWriter out(28 + blocks.size() * 24);
  out.u8(static_cast<std::uint8_t>(0x80 | (blocks.size() & 0x1F)));  // RC
  out.u8(kRtcpPtSr);
  out.u16(static_cast<std::uint16_t>(6 + blocks.size() * 6));  // words - 1
  out.u32(ssrc);
  out.u64(ntp_timestamp);
  out.u32(rtp_timestamp);
  out.u32(packet_count);
  out.u32(octet_count);
  for (const ReportBlock& b : blocks) write_report_block(out, b);
  return out.take();
}

Bytes ReceiverReport::serialize() const {
  ByteWriter out(8 + blocks.size() * 24);
  out.u8(static_cast<std::uint8_t>(0x80 | (blocks.size() & 0x1F)));
  out.u8(kRtcpPtRr);
  out.u16(static_cast<std::uint16_t>(1 + blocks.size() * 6));
  out.u32(ssrc);
  for (const ReportBlock& b : blocks) write_report_block(out, b);
  return out.take();
}

Result<RtcpMessage> parse_rtcp(BytesView data) {
  ByteReader in(data);
  auto b0 = in.u8();
  auto pt = in.u8();
  auto length = in.u16();
  if (!b0 || !pt || !length) return ParseError::kTruncated;
  if ((*b0 >> 6) != 2) return ParseError::kBadValue;
  const int count = *b0 & 0x1F;
  const std::size_t declared_bytes = (static_cast<std::size_t>(*length) + 1) * 4;
  if (declared_bytes > data.size()) return ParseError::kTruncated;

  switch (*pt) {
    case kRtcpPtSr: {
      SenderReport sr;
      auto ssrc = in.u32();
      auto ntp = in.u64();
      auto rtp_ts = in.u32();
      auto packets = in.u32();
      auto octets = in.u32();
      if (!ssrc || !ntp || !rtp_ts || !packets || !octets)
        return ParseError::kTruncated;
      sr.ssrc = *ssrc;
      sr.ntp_timestamp = *ntp;
      sr.rtp_timestamp = *rtp_ts;
      sr.packet_count = *packets;
      sr.octet_count = *octets;
      for (int i = 0; i < count; ++i) {
        auto block = read_report_block(in);
        if (!block) return block.error();
        sr.blocks.push_back(*block);
      }
      return RtcpMessage(std::move(sr));
    }
    case kRtcpPtRr: {
      ReceiverReport rr;
      auto ssrc = in.u32();
      if (!ssrc) return ssrc.error();
      rr.ssrc = *ssrc;
      for (int i = 0; i < count; ++i) {
        auto block = read_report_block(in);
        if (!block) return block.error();
        rr.blocks.push_back(*block);
      }
      return RtcpMessage(std::move(rr));
    }
    case kRtcpPtPsfb:
    case kRtcpPtRtpfb: {
      auto fb = RtcpFeedback::parse(data);
      if (!fb) return fb.error();
      if (fb->type == RtcpFeedback::Type::kPli) return RtcpMessage(fb->pli);
      return RtcpMessage(fb->nack);
    }
    default:
      return ParseError::kUnsupported;
  }
}

Bytes serialize_rtcp(const RtcpMessage& msg) {
  return std::visit([](const auto& m) { return m.serialize(); }, msg);
}

Bytes serialize_rtcp_compound(const std::vector<RtcpMessage>& msgs) {
  Bytes out;
  for (const RtcpMessage& msg : msgs) {
    const Bytes part = serialize_rtcp(msg);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Result<std::vector<RtcpMessage>> parse_rtcp_compound(BytesView data) {
  std::vector<RtcpMessage> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const BytesView rest = data.subspan(offset);
    if (rest.size() < 4) return ParseError::kTruncated;
    if ((rest[0] >> 6) != 2) return ParseError::kBadValue;
    const std::size_t declared_bytes =
        ((static_cast<std::size_t>(rest[2]) << 8 | rest[3]) + 1) * 4;
    if (declared_bytes > rest.size()) return ParseError::kTruncated;
    if ((rest[0] & 0x20) != 0) {
      // RFC 3550 §6.4.1: padding belongs to the compound as a whole, so
      // only the *last* packet may carry the P bit.
      if (offset + declared_bytes != data.size()) return ParseError::kBadValue;
      // The trailing count includes itself, must keep the body 32-bit
      // aligned, and must not swallow the fixed header.
      const std::uint8_t pad = rest[declared_bytes - 1];
      if (pad == 0 || pad % 4 != 0 ||
          static_cast<std::size_t>(pad) + 4 > declared_bytes) {
        return ParseError::kBadValue;
      }
      // Re-frame without the padding (clear P, shrink the length field) so
      // the per-packet parser sees a self-consistent header and FCI-bearing
      // payloads keep their exact word count.
      Bytes trimmed(rest.begin(), rest.begin() + static_cast<std::ptrdiff_t>(
                                                     declared_bytes - pad));
      trimmed[0] &= static_cast<std::uint8_t>(~0x20);
      const std::size_t words = trimmed.size() / 4 - 1;
      trimmed[2] = static_cast<std::uint8_t>(words >> 8);
      trimmed[3] = static_cast<std::uint8_t>(words);
      auto msg = parse_rtcp(trimmed);
      if (msg.ok()) {
        out.push_back(std::move(*msg));
      } else if (msg.error() != ParseError::kUnsupported) {
        return msg.error();
      }
      break;  // by construction this was the final sub-packet
    }
    // Hand the parser exactly this sub-packet so its own trailing-bytes
    // tolerance cannot swallow the next one.
    auto msg = parse_rtcp(rest.subspan(0, declared_bytes));
    if (msg.ok()) {
      out.push_back(std::move(*msg));
    } else if (msg.error() != ParseError::kUnsupported) {
      return msg.error();
    }
    offset += declared_bytes;
  }
  return out;
}

Result<RtcpFeedback> RtcpFeedback::parse(BytesView data) {
  ByteReader in(data);
  auto b0 = in.u8();
  auto pt = in.u8();
  auto length = in.u16();
  auto sender = in.u32();
  auto media = in.u32();
  if (!b0 || !pt || !length || !sender || !media) return ParseError::kTruncated;
  if ((*b0 >> 6) != 2) return ParseError::kBadValue;
  const std::uint8_t fmt = *b0 & 0x1F;

  // Validate the declared length against the actual buffer.
  const std::size_t declared_bytes = (static_cast<std::size_t>(*length) + 1) * 4;
  if (declared_bytes > data.size()) return ParseError::kTruncated;

  RtcpFeedback fb;
  if (*pt == kRtcpPtPsfb && fmt == 1) {
    fb.type = Type::kPli;
    fb.pli.sender_ssrc = *sender;
    fb.pli.media_ssrc = *media;
    return fb;
  }
  if (*pt == kRtcpPtRtpfb && fmt == 1) {
    fb.type = Type::kNack;
    fb.nack.sender_ssrc = *sender;
    fb.nack.media_ssrc = *media;
    const std::size_t fci_bytes = declared_bytes - 12;
    if (fci_bytes % 4 != 0) return ParseError::kBadValue;
    for (std::size_t k = 0; k < fci_bytes / 4; ++k) {
      auto pid = in.u16();
      auto blp = in.u16();
      if (!pid || !blp) return ParseError::kTruncated;
      fb.nack.entries.push_back({*pid, *blp});
    }
    return fb;
  }
  return ParseError::kUnsupported;
}

}  // namespace ads
