#include "rtp/packet_view.hpp"

namespace ads {

PacketView PacketView::build(bool marker, std::uint8_t payload_type,
                             std::uint16_t sequence, std::uint32_t timestamp,
                             std::uint32_t ssrc, buf::BufRef buf,
                             std::size_t offset, std::size_t length) {
  PacketView v;
  const std::size_t frame_len = kHeaderSize + length;
  v.hdr_[0] = static_cast<std::uint8_t>(frame_len >> 8);
  v.hdr_[1] = static_cast<std::uint8_t>(frame_len);
  // V=2, P=0, X=0, CC=0 — mirrors RtpPacket::serialize().
  v.hdr_[2] = 0x80;
  v.hdr_[3] =
      static_cast<std::uint8_t>((marker ? 0x80 : 0x00) | (payload_type & 0x7F));
  v.hdr_[4] = static_cast<std::uint8_t>(sequence >> 8);
  v.hdr_[5] = static_cast<std::uint8_t>(sequence);
  v.hdr_[6] = static_cast<std::uint8_t>(timestamp >> 24);
  v.hdr_[7] = static_cast<std::uint8_t>(timestamp >> 16);
  v.hdr_[8] = static_cast<std::uint8_t>(timestamp >> 8);
  v.hdr_[9] = static_cast<std::uint8_t>(timestamp);
  v.hdr_[10] = static_cast<std::uint8_t>(ssrc >> 24);
  v.hdr_[11] = static_cast<std::uint8_t>(ssrc >> 16);
  v.hdr_[12] = static_cast<std::uint8_t>(ssrc >> 8);
  v.hdr_[13] = static_cast<std::uint8_t>(ssrc);
  v.buf_ = std::move(buf);
  v.offset_ = static_cast<std::uint32_t>(offset);
  v.length_ = static_cast<std::uint32_t>(length);
  return v;
}

Bytes PacketView::serialize() const {
  Bytes out;
  out.reserve(wire_size());
  serialize_into(out);
  return out;
}

void PacketView::serialize_into(Bytes& dest) const {
  const BytesView hdr = header();
  const BytesView body = payload();
  dest.insert(dest.end(), hdr.begin(), hdr.end());
  dest.insert(dest.end(), body.begin(), body.end());
}

}  // namespace ads
