// Header-plus-view RTP packet for the zero-copy datapath.
//
// A PacketView owns only its 16 bytes of header storage; the payload is a
// [offset, offset+length) window into a shared, refcounted PayloadBuf
// (ads::buf). N cohort members' packets for one band — and their
// retransmission-cache entries — all point into one buffer, so payload bytes
// are written exactly once per cohort instead of once per member.
//
// Header storage layout (16 bytes, 14 used):
//   [0, 2)   RFC 4571 big-endian frame length (12 + payload length), so a
//            TCP gather write can emit {framed(), payload()} with no
//            staging copy.
//   [2, 14)  the 12-byte RTP header (RFC 3550 §5.1), bit-compatible with
//            RtpPacket::serialize().
//
// serialize()/serialize_into() materialise the classic contiguous datagram
// for endpoints that predate the batch API (golden-test harnesses, fuzzers).
#pragma once

#include <array>
#include <cstdint>

#include "buf/buf.hpp"
#include "util/bytes.hpp"

namespace ads {

class PacketView {
 public:
  /// RTP header size on the wire (matches RtpPacket::kHeaderSize).
  static constexpr std::size_t kHeaderSize = 12;
  /// RFC 4571 length-prefix size prepended for stream transports.
  static constexpr std::size_t kFramePrefixSize = 2;

  PacketView() = default;

  /// Assemble a packet whose payload is `buf[offset, offset+length)`.
  /// `buf` is shared (refcount bumped); the caller must not resize the
  /// buffer afterwards. Payload length must fit the RFC 4571 u16 frame.
  static PacketView build(bool marker, std::uint8_t payload_type,
                          std::uint16_t sequence, std::uint32_t timestamp,
                          std::uint32_t ssrc, buf::BufRef buf,
                          std::size_t offset, std::size_t length);

  /// True when the view carries a payload buffer (default-constructed views
  /// do not).
  explicit operator bool() const { return static_cast<bool>(buf_); }

  /// The 12-byte RTP header.
  BytesView header() const { return BytesView(hdr_.data() + kFramePrefixSize, kHeaderSize); }
  /// RFC 4571 length prefix + RTP header (14 bytes) for TCP gather writes.
  BytesView framed_header() const {
    return BytesView(hdr_.data(), kFramePrefixSize + kHeaderSize);
  }
  /// The payload window into the shared buffer.
  BytesView payload() const { return buf_.slice(offset_, length_); }
  /// Datagram size: header + payload.
  std::size_t wire_size() const { return kHeaderSize + length_; }
  /// Stream size: length prefix + header + payload.
  std::size_t framed_size() const {
    return kFramePrefixSize + kHeaderSize + length_;
  }

  /// RTP sequence number (decoded from header storage).
  std::uint16_t sequence() const {
    return static_cast<std::uint16_t>(hdr_[4] << 8 | hdr_[5]);
  }
  /// RTP marker bit.
  bool marker() const { return (hdr_[3] & 0x80) != 0; }
  /// RTP payload type (7 bits).
  std::uint8_t payload_type() const { return hdr_[3] & 0x7F; }
  /// RTP timestamp.
  std::uint32_t timestamp() const {
    return static_cast<std::uint32_t>(hdr_[6]) << 24 |
           static_cast<std::uint32_t>(hdr_[7]) << 16 |
           static_cast<std::uint32_t>(hdr_[8]) << 8 | hdr_[9];
  }
  /// RTP SSRC.
  std::uint32_t ssrc() const {
    return static_cast<std::uint32_t>(hdr_[10]) << 24 |
           static_cast<std::uint32_t>(hdr_[11]) << 16 |
           static_cast<std::uint32_t>(hdr_[12]) << 8 | hdr_[13];
  }

  /// Contiguous header+payload datagram (the compatibility/oracle path —
  /// byte-identical to RtpPacket::serialize()).
  Bytes serialize() const;
  /// Append the contiguous datagram to `dest`.
  void serialize_into(Bytes& dest) const;

 private:
  std::array<std::uint8_t, 16> hdr_{};
  buf::BufRef buf_;
  std::uint32_t offset_ = 0;
  std::uint32_t length_ = 0;
};

}  // namespace ads
