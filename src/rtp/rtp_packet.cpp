#include "rtp/rtp_packet.hpp"

namespace ads {

Bytes RtpPacket::serialize() const {
  ByteWriter out(kHeaderSize + payload.size());
  // V=2, P=0, X=0, CC=0.
  out.u8(0x80);
  out.u8(static_cast<std::uint8_t>((marker ? 0x80 : 0x00) | (payload_type & 0x7F)));
  out.u16(sequence);
  out.u32(timestamp);
  out.u32(ssrc);
  out.bytes(payload);
  return out.take();
}

Result<RtpPacket> RtpPacket::parse(BytesView data) {
  ByteReader in(data);
  auto b0 = in.u8();
  auto b1 = in.u8();
  auto seq = in.u16();
  auto ts = in.u32();
  auto ssrc = in.u32();
  if (!b0 || !b1 || !seq || !ts || !ssrc) return ParseError::kTruncated;

  const int version = *b0 >> 6;
  if (version != 2) return ParseError::kBadValue;
  const bool padding = *b0 & 0x20;
  const bool extension = *b0 & 0x10;
  const int csrc_count = *b0 & 0x0F;
  if (extension) return ParseError::kUnsupported;
  if (auto s = in.skip(static_cast<std::size_t>(csrc_count) * 4); !s.ok())
    return s.error();

  RtpPacket pkt;
  pkt.marker = *b1 & 0x80;
  pkt.payload_type = *b1 & 0x7F;
  pkt.sequence = *seq;
  pkt.timestamp = *ts;
  pkt.ssrc = *ssrc;
  BytesView body = in.rest();
  if (padding) {
    if (body.empty()) return ParseError::kTruncated;
    const std::uint8_t pad = body.back();
    if (pad == 0 || pad > body.size()) return ParseError::kBadValue;
    body = body.first(body.size() - pad);
  }
  pkt.payload.assign(body.begin(), body.end());
  return pkt;
}

}  // namespace ads
