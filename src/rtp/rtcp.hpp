// RTCP feedback messages used by the draft (§5.3): Picture Loss Indication
// per RFC 4585 §6.3.1 (payload-specific feedback, FMT=1, PT=206) and
// Generic NACK per RFC 4585 §6.2.1 (transport-layer feedback, FMT=1,
// PT=205). Each Generic NACK FCI entry is a (PID, BLP) pair naming the lost
// packet and a bitmask of the 16 following sequence numbers.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "util/bytes.hpp"

namespace ads {

inline constexpr std::uint8_t kRtcpPtSr = 200;     ///< sender report
inline constexpr std::uint8_t kRtcpPtRr = 201;     ///< receiver report
inline constexpr std::uint8_t kRtcpPtRtpfb = 205;  ///< transport-layer FB
inline constexpr std::uint8_t kRtcpPtPsfb = 206;   ///< payload-specific FB

struct PictureLossIndication {
  std::uint32_t sender_ssrc = 0;
  std::uint32_t media_ssrc = 0;

  Bytes serialize() const;
};

struct NackEntry {
  std::uint16_t pid = 0;  ///< first lost sequence number
  std::uint16_t blp = 0;  ///< bitmask: bit i => pid + 1 + i also lost

  friend bool operator==(const NackEntry&, const NackEntry&) = default;
};

struct GenericNack {
  std::uint32_t sender_ssrc = 0;
  std::uint32_t media_ssrc = 0;
  std::vector<NackEntry> entries;

  Bytes serialize() const;

  /// All sequence numbers this NACK requests (pid plus set BLP bits).
  std::vector<std::uint16_t> requested_sequences() const;

  /// Pack an arbitrary list of lost sequence numbers into minimal
  /// (PID, BLP) entries. Input need not be sorted.
  static GenericNack for_sequences(std::uint32_t sender_ssrc, std::uint32_t media_ssrc,
                                   std::vector<std::uint16_t> lost);
};

/// A parsed RTCP feedback message (only the two types the draft uses).
struct RtcpFeedback {
  enum class Type { kPli, kNack };
  Type type = Type::kPli;
  PictureLossIndication pli;
  GenericNack nack;

  static Result<RtcpFeedback> parse(BytesView data);
};

/// Reception report block (RFC 3550 §6.4.1), carried in SR and RR packets.
struct ReportBlock {
  std::uint32_t ssrc = 0;              ///< source this block reports on
  std::uint8_t fraction_lost = 0;      ///< fixed point, /256
  std::uint32_t cumulative_lost = 0;   ///< 24-bit on the wire
  std::uint32_t ext_highest_seq = 0;   ///< cycles<<16 | highest seq
  std::uint32_t jitter = 0;            ///< interarrival jitter, RTP ticks
  std::uint32_t last_sr = 0;           ///< LSR
  std::uint32_t delay_since_last_sr = 0;  ///< DLSR, 1/65536 s

  friend bool operator==(const ReportBlock&, const ReportBlock&) = default;
};

/// Sender Report (RFC 3550 §6.4.1). The AH emits these periodically so
/// participants can map RTP timestamps to wallclock and compute RTT.
struct SenderReport {
  std::uint32_t ssrc = 0;
  std::uint64_t ntp_timestamp = 0;
  std::uint32_t rtp_timestamp = 0;
  std::uint32_t packet_count = 0;
  std::uint32_t octet_count = 0;
  std::vector<ReportBlock> blocks;

  Bytes serialize() const;

  friend bool operator==(const SenderReport&, const SenderReport&) = default;
};

/// Receiver Report (RFC 3550 §6.4.2): the participant's periodic link
/// quality feedback (loss fraction, jitter) about the remoting stream.
struct ReceiverReport {
  std::uint32_t ssrc = 0;  ///< reporter
  std::vector<ReportBlock> blocks;

  Bytes serialize() const;

  friend bool operator==(const ReceiverReport&, const ReceiverReport&) = default;
};

/// Any RTCP packet this implementation understands.
using RtcpMessage =
    std::variant<SenderReport, ReceiverReport, PictureLossIndication, GenericNack>;

Result<RtcpMessage> parse_rtcp(BytesView data);

/// Concatenate several RTCP packets into one RFC 3550 §6.1 compound
/// datagram (each sub-packet keeps its own header; the relay tier ships its
/// aggregated RR together with any pending NACK this way, so one upstream
/// datagram carries a subtree's whole feedback interval).
Bytes serialize_rtcp_compound(const std::vector<RtcpMessage>& msgs);

/// Serialise one RtcpMessage variant (dispatches to the member serialize()).
Bytes serialize_rtcp(const RtcpMessage& msg);

/// Parse every sub-packet of a (possibly compound) RTCP datagram. Walks the
/// 32-bit-word length chain; packet types this implementation does not
/// understand are skipped (RFC 3550 §6.1 says a receiver "should simply
/// ignore" them), while a malformed header or truncated sub-packet fails
/// the whole datagram. A non-compound datagram parses as a vector of one.
/// Padding (the P bit) is accepted only on the final sub-packet — RFC 3550
/// §6.4.1 padding applies to the compound as a whole — and is stripped
/// before the sub-packet body is parsed; a P bit on a non-final sub-packet
/// or an inconsistent pad count rejects the datagram. An empty datagram
/// parses as an empty vector (the serialize side mirrors this: an empty
/// message list serialises to zero bytes).
Result<std::vector<RtcpMessage>> parse_rtcp_compound(BytesView data);

}  // namespace ads
