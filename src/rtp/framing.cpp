#include "rtp/framing.hpp"

namespace ads {

Result<Bytes> frame_packet(BytesView packet) {
  if (packet.size() > 0xFFFF) return ParseError::kOverflow;
  ByteWriter out(packet.size() + 2);
  out.u16(static_cast<std::uint16_t>(packet.size()));
  out.bytes(packet);
  return out.take();
}

void StreamDeframer::feed(BytesView data) {
  // Compact lazily so long sessions don't grow the buffer unboundedly.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 65536) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<Bytes> StreamDeframer::next() {
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 2) return std::nullopt;
  const std::uint16_t len = static_cast<std::uint16_t>(buffer_[consumed_] << 8 |
                                                       buffer_[consumed_ + 1]);
  if (avail < 2u + len) return std::nullopt;
  Bytes out(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 2),
            buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 2 + len));
  consumed_ += 2u + len;
  return out;
}

}  // namespace ads
