#include "rtp/reorder_buffer.hpp"

namespace ads {

std::vector<RtpPacket> ReorderBuffer::push(RtpPacket pkt, std::uint64_t now_us) {
  if (!started_) {
    started_ = true;
    next_seq_ = pkt.sequence;
  }

  const std::uint16_t offset = static_cast<std::uint16_t>(pkt.sequence - next_seq_);
  if (offset >= 0x8000) {
    // Behind the delivery cursor: late duplicate or already-skipped packet.
    ++dropped_late_;
    return {};
  }
  if (!held_.emplace(offset, Held{std::move(pkt), now_us}).second) {
    ++dropped_late_;  // duplicate of a held packet
    return {};
  }

  auto out = drain();
  // Head-of-line blocking bound: give up on the gap when the buffer holds
  // too much newer data.
  if (held_.size() > max_hold_) {
    auto flushed = skip_gap();
    out.insert(out.end(), std::make_move_iterator(flushed.begin()),
               std::make_move_iterator(flushed.end()));
  }
  return out;
}

std::vector<RtpPacket> ReorderBuffer::drain() {
  // Deliver the contiguous prefix (offsets 0,1,2,...), then rekey the
  // remaining packets once.
  std::vector<RtpPacket> out;
  std::uint16_t expect = 0;
  while (!held_.empty() && held_.begin()->first == expect) {
    out.push_back(std::move(held_.begin()->second.pkt));
    held_.erase(held_.begin());
    ++expect;
  }
  if (expect == 0) return out;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + expect);
  std::map<std::uint16_t, Held> rekeyed;
  for (auto& [off, h] : held_) {
    rekeyed.emplace(static_cast<std::uint16_t>(off - expect), std::move(h));
  }
  held_ = std::move(rekeyed);
  return out;
}

std::optional<std::uint64_t> ReorderBuffer::oldest_held_us() const {
  std::optional<std::uint64_t> oldest;
  for (const auto& [off, h] : held_) {
    if (!oldest || h.arrived_us < *oldest) oldest = h.arrived_us;
  }
  return oldest;
}

std::vector<RtpPacket> ReorderBuffer::expire_older_than(std::uint64_t cutoff_us) {
  std::vector<RtpPacket> out;
  // Each skip_gap() unblocks at least one held packet, so this terminates.
  while (!held_.empty()) {
    const auto oldest = oldest_held_us();
    if (!oldest || *oldest >= cutoff_us) break;
    auto flushed = skip_gap();
    out.insert(out.end(), std::make_move_iterator(flushed.begin()),
               std::make_move_iterator(flushed.end()));
  }
  return out;
}

std::vector<RtpPacket> ReorderBuffer::flush_all() {
  std::vector<RtpPacket> out;
  if (held_.empty()) return out;
  ++gaps_skipped_;
  const std::uint16_t last_offset = held_.rbegin()->first;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + last_offset + 1);
  for (auto& [off, h] : held_) out.push_back(std::move(h.pkt));
  held_.clear();
  return out;
}

void ReorderBuffer::reset_to(std::uint16_t next) {
  if (!held_.empty()) return;  // refuse to drop data silently
  next_seq_ = next;
  started_ = true;
}

std::vector<RtpPacket> ReorderBuffer::skip_gap() {
  if (held_.empty()) return {};
  ++gaps_skipped_;
  // Jump the cursor to the first held packet.
  const std::uint16_t jump = held_.begin()->first;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + jump);
  std::map<std::uint16_t, Held> rekeyed;
  for (auto& [off, h] : held_) {
    rekeyed.emplace(static_cast<std::uint16_t>(off - jump), std::move(h));
  }
  held_ = std::move(rekeyed);
  return drain();
}

}  // namespace ads
