#include "rtp/reorder_buffer.hpp"

namespace ads {

std::vector<RtpPacket> ReorderBuffer::push(RtpPacket pkt) {
  if (!started_) {
    started_ = true;
    next_seq_ = pkt.sequence;
  }

  const std::uint16_t offset = static_cast<std::uint16_t>(pkt.sequence - next_seq_);
  if (offset >= 0x8000) {
    // Behind the delivery cursor: late duplicate or already-skipped packet.
    ++dropped_late_;
    return {};
  }
  if (!held_.emplace(offset, std::move(pkt)).second) {
    ++dropped_late_;  // duplicate of a held packet
    return {};
  }

  auto out = drain();
  // Head-of-line blocking bound: give up on the gap when the buffer holds
  // too much newer data.
  if (held_.size() > max_hold_) {
    auto flushed = skip_gap();
    out.insert(out.end(), std::make_move_iterator(flushed.begin()),
               std::make_move_iterator(flushed.end()));
  }
  return out;
}

std::vector<RtpPacket> ReorderBuffer::drain() {
  // Deliver the contiguous prefix (offsets 0,1,2,...), then rekey the
  // remaining packets once.
  std::vector<RtpPacket> out;
  std::uint16_t expect = 0;
  while (!held_.empty() && held_.begin()->first == expect) {
    out.push_back(std::move(held_.begin()->second));
    held_.erase(held_.begin());
    ++expect;
  }
  if (expect == 0) return out;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + expect);
  std::map<std::uint16_t, RtpPacket> rekeyed;
  for (auto& [off, p] : held_) {
    rekeyed.emplace(static_cast<std::uint16_t>(off - expect), std::move(p));
  }
  held_ = std::move(rekeyed);
  return out;
}

std::vector<RtpPacket> ReorderBuffer::flush_all() {
  std::vector<RtpPacket> out;
  if (held_.empty()) return out;
  ++gaps_skipped_;
  const std::uint16_t last_offset = held_.rbegin()->first;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + last_offset + 1);
  for (auto& [off, p] : held_) out.push_back(std::move(p));
  held_.clear();
  return out;
}

void ReorderBuffer::reset_to(std::uint16_t next) {
  if (!held_.empty()) return;  // refuse to drop data silently
  next_seq_ = next;
  started_ = true;
}

std::vector<RtpPacket> ReorderBuffer::skip_gap() {
  if (held_.empty()) return {};
  ++gaps_skipped_;
  // Jump the cursor to the first held packet.
  const std::uint16_t jump = held_.begin()->first;
  next_seq_ = static_cast<std::uint16_t>(next_seq_ + jump);
  std::map<std::uint16_t, RtpPacket> rekeyed;
  for (auto& [off, p] : held_) {
    rekeyed.emplace(static_cast<std::uint16_t>(off - jump), std::move(p));
  }
  held_ = std::move(rekeyed);
  return drain();
}

}  // namespace ads
