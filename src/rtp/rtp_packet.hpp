// RTP packet (RFC 3550 §5.1). The draft carries both sub-protocols over
// RTP: remoting messages on one payload type, HIP messages on another
// (§4.5: "The HIP messages have a different payload type than the remoting
// messages"), with the marker bit signalling the last packet of a
// multi-packet RegionUpdate (§5.1.1).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace ads {

/// Static payload type assignments used by this implementation's SDP
/// (§10.3 example: "a=rtpmap:99 remoting/90000", "a=rtpmap:100 hip/90000"
/// — dynamic range).
inline constexpr std::uint8_t kRemotingPayloadType = 99;
inline constexpr std::uint8_t kHipPayloadType = 100;

/// RTP timestamps for both sub-protocols run on a 90 kHz clock (§5.1.1,
/// §6.1.1).
inline constexpr std::uint32_t kRtpClockHz = 90000;

struct RtpPacket {
  // Header fields (CSRC lists and header extensions are not used by this
  // payload format and are rejected/ignored on the wire).
  bool marker = false;
  std::uint8_t payload_type = 0;  ///< 7 bits
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t ssrc = 0;
  Bytes payload;

  /// Serialised size in bytes.
  std::size_t wire_size() const { return kHeaderSize + payload.size(); }

  static constexpr std::size_t kHeaderSize = 12;

  Bytes serialize() const;
  static Result<RtpPacket> parse(BytesView data);
};

/// a <= b in RFC 1982 / RFC 3550 modular sequence arithmetic.
constexpr bool seq_less(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) < 0;
}

/// b - a in modular arithmetic, as a signed distance.
constexpr std::int32_t seq_diff(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(b - a));
}

}  // namespace ads
