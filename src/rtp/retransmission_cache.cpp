#include "rtp/retransmission_cache.hpp"

namespace ads {

void RetransmissionCache::put(const RtpPacket& pkt) {
  if (capacity_ == 0) return;
  auto [it, inserted] = by_seq_.insert_or_assign(pkt.sequence, pkt);
  (void)it;
  if (inserted) {
    order_.push_back(pkt.sequence);
    while (order_.size() > capacity_) {
      by_seq_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
  }
}

std::optional<RtpPacket> RetransmissionCache::get(std::uint16_t sequence) const {
  auto it = by_seq_.find(sequence);
  if (it == by_seq_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

}  // namespace ads
