#include "rtp/retransmission_cache.hpp"

namespace ads {

void RetransmissionCache::put(PacketView pkt) {
  if (capacity_ == 0) return;
  const std::uint16_t seq = pkt.sequence();
  auto [it, inserted] = by_seq_.insert_or_assign(seq, std::move(pkt));
  (void)it;
  if (inserted) {
    order_.push_back(seq);
    while (order_.size() > capacity_) {
      by_seq_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
    }
  }
}

const PacketView* RetransmissionCache::get(std::uint16_t sequence) const {
  auto it = by_seq_.find(sequence);
  if (it == by_seq_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

}  // namespace ads
