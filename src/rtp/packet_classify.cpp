#include "rtp/packet_classify.hpp"

namespace ads {

PacketKind classify_packet(BytesView data) {
  if (data.size() < 2) return PacketKind::kUnknown;
  const std::uint8_t b0 = data[0];
  const std::uint8_t b1 = data[1];
  if ((b0 >> 6) == 2) {
    if (b1 >= 200 && b1 <= 207) return PacketKind::kRtcp;
    return PacketKind::kRtp;
  }
  if ((b0 >> 5) == 1) return PacketKind::kBfcp;
  return PacketKind::kUnknown;
}

}  // namespace ads
