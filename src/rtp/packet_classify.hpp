// First-byte demultiplexing of the three packet families that share a
// participant's uplink: RTP (HIP events), RTCP feedback (PLI/NACK), and
// BFCP floor-control messages.
//  * RTP/RTCP start with version 2 in the top two bits (0x80); RTCP is
//    distinguished by its packet type byte falling in 200..207 (RFC 5761
//    demux rule) — our HIP payload type (100, or 228 with marker) never
//    collides.
//  * BFCP (RFC 4582) starts with version 1 in the top three bits (0x20).
#pragma once

#include "util/bytes.hpp"

namespace ads {

/// The packet family a first byte announces.
enum class PacketKind { kRtp, kRtcp, kBfcp, kUnknown };

/// Classify one uplink packet by its first byte (RFC 5761 demux rule).
PacketKind classify_packet(BytesView data);

}  // namespace ads
