// Sender- and receiver-side RTP session state (RFC 3550 subset sufficient
// for the draft): sequence number assignment, 90 kHz timestamps with random
// unpredictable initial values (§5.1.1/§6.1.1), and receiver-side loss
// accounting that feeds Generic NACK generation.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "buf/buf.hpp"
#include "rtp/packet_view.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/rtp_packet.hpp"
#include "util/prng.hpp"

namespace ads {

/// Microseconds since an arbitrary epoch (the simulator's SimTime; any
/// monotonic microsecond clock works).
using SimTimeUs = std::uint64_t;

/// Converts a microsecond duration to 90 kHz RTP ticks.
constexpr std::uint32_t us_to_rtp_ticks(std::uint64_t microseconds) {
  return static_cast<std::uint32_t>(microseconds * (kRtpClockHz / 1000) / 1000);
}

/// Outbound RTP stream: stamps packets with consecutive sequence numbers
/// and clock-derived timestamps.
class RtpSender {
 public:
  /// `seed` drives the randomised SSRC and initial sequence/timestamp.
  RtpSender(std::uint8_t payload_type, std::uint64_t seed);

  std::uint32_t ssrc() const { return ssrc_; }
  std::uint16_t next_sequence() const { return next_seq_; }

  /// Build (and account) the next packet. `now_us` is the sender clock;
  /// the RTP timestamp is initial_ts + 90 kHz ticks since stream start.
  RtpPacket make_packet(Bytes payload, bool marker, std::uint64_t now_us);

  /// Zero-copy variant of make_packet: stamps the same header fields onto a
  /// PacketView whose payload is `buf[offset, offset + length)`. Sequence,
  /// timestamp and the packets/bytes accounting advance exactly as for
  /// make_packet, so the two forms are interchangeable on one stream.
  PacketView make_view(bool marker, std::uint64_t now_us, buf::BufRef buf,
                       std::size_t offset, std::size_t length);

  /// Timestamp that make_packet would use at `now_us` — needed because all
  /// fragments of one RegionUpdate must share one timestamp (§5.1.1).
  std::uint32_t timestamp_at(std::uint64_t now_us) const;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  std::uint8_t payload_type_;
  std::uint32_t ssrc_;
  std::uint16_t next_seq_;
  std::uint32_t initial_timestamp_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// Inbound RTP stream bookkeeping: highest-seen sequence, duplicate
/// detection, and the set of missing sequence numbers (for NACK).
///
/// Sequence-number validation follows RFC 3550 A.1: a forward jump of less
/// than kMaxDropout advances the extended highest sequence (wrapping
/// through zero increments the cycle count), a jump into the suspect zone
/// between kMaxDropout and half the sequence space is ignored until two
/// consecutive packets confirm the new position, and anything numerically
/// behind by up to half the space is treated as a reordered straggler. The
/// half-window rule matters: before it, an ancient straggler (more than
/// kMaxDropout behind) looked like a forward wrap, inflating the extended
/// sequence by 65536 and pinning the next Receiver Report's loss fields.
class RtpReceiver {
 public:
  /// Largest plausible loss burst (RFC 3550 suggests order-of-3000): a
  /// forward jump beyond this is quarantined until a consecutive packet
  /// confirms the stream really restarted there.
  static constexpr std::uint16_t kMaxDropout = 3000;
  /// Record an arriving packet. Returns false for duplicates (already seen
  /// or already delivered). When `arrival_us` is supplied, interarrival
  /// jitter is maintained per RFC 3550 §6.4.1/A.8.
  bool on_packet(const RtpPacket& pkt);
  bool on_packet(const RtpPacket& pkt, SimTimeUs arrival_us);

  /// Sequence numbers currently believed lost (between the first packet
  /// seen and the highest seen). Cleared entries reappear only if still
  /// missing. Capped at `limit` entries.
  std::vector<std::uint16_t> missing(std::size_t limit = 64) const;

  /// Forget a missing entry (e.g. recovered via retransmission or given up).
  void forget(std::uint16_t seq) { missing_.erase(seq); }
  /// Drop all loss state (e.g. after requesting a PLI full refresh).
  void reset_losses() { missing_.clear(); }

  std::uint64_t received() const { return received_; }
  std::uint64_t duplicates() const { return duplicates_; }
  bool started() const { return started_; }
  std::uint16_t highest_sequence() const { return highest_seq_; }

  /// cycles<<16 | highest sequence — the RFC 3550 extended sequence number
  /// carried in report blocks.
  std::uint32_t extended_highest_sequence() const {
    return (cycles_ << 16) | highest_seq_;
  }

  /// Interarrival jitter in RTP ticks (RFC 3550 A.8); only meaningful when
  /// packets were fed through the timed on_packet overload.
  std::uint32_t jitter() const { return static_cast<std::uint32_t>(jitter_); }

  /// Packets lost so far: expected minus received (never negative).
  std::uint32_t cumulative_lost() const;

  /// Build the RFC 3550 report block for this stream, computing the
  /// fraction lost over the interval since the previous snapshot() call.
  ReportBlock snapshot(std::uint32_t media_ssrc);

 private:
  bool started_ = false;
  std::uint16_t highest_seq_ = 0;
  std::uint16_t base_seq_ = 0;
  std::uint32_t cycles_ = 0;
  std::set<std::uint16_t> missing_;
  std::set<std::uint16_t> seen_window_;  ///< recent seqs for dup detection
  // RFC 3550 A.1 probation for suspect forward jumps: the sequence that
  // would confirm the jump (previous suspect + 1), armed while valid.
  std::uint16_t bad_seq_ = 0;
  bool bad_seq_valid_ = false;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  // Jitter state (RFC 3550 A.8).
  double jitter_ = 0.0;
  std::int64_t prev_transit_ = 0;
  bool have_transit_ = false;
  // Interval state for fraction_lost.
  std::uint32_t expected_prior_ = 0;
  std::uint64_t received_prior_ = 0;
};

}  // namespace ads
