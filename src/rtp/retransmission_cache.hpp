// AH-side retransmission store. When the SDP advertises
// "retransmissions=yes" (§9.3.1), the AH answers Generic NACKs by resending
// cached packets. The cache holds the most recent `capacity` packets keyed
// by sequence number.
//
// Entries are PacketViews: a cached packet holds a reference into the shared
// payload buffer it was originally sent from (ads::buf), not a copy — so N
// cohort members caching the same band pin one buffer, and putting a packet
// costs 16 bytes of header storage plus a refcount bump.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "rtp/packet_view.hpp"

namespace ads {

class RetransmissionCache {
 public:
  explicit RetransmissionCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Retain `pkt` (sharing its payload buffer) under its sequence number.
  void put(PacketView pkt);

  /// The cached packet for `sequence`, or nullptr if no longer retained.
  /// The pointer is valid until the next put().
  const PacketView* get(std::uint16_t sequence) const;

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  /// Packets aged out to keep the cache at `capacity` (telemetry feed).
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::deque<std::uint16_t> order_;
  std::unordered_map<std::uint16_t, PacketView> by_seq_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace ads
