// RFC 4571 framing: "Neither TCP nor RTP declares the length of an RTP
// packet. Therefore, RTP framing [RFC4571] is used to split RTP packets
// within the TCP byte stream" (draft §4.4). Each frame is a 16-bit
// big-endian length followed by that many bytes of RTP/RTCP packet.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace ads {

/// Prefix `packet` with its RFC 4571 length header.
/// Packets longer than 65535 bytes cannot be framed (kOverflow).
Result<Bytes> frame_packet(BytesView packet);

/// Incremental deframer for a TCP byte stream: feed arbitrary chunks,
/// pop complete packets.
class StreamDeframer {
 public:
  /// Append raw stream bytes.
  void feed(BytesView data);

  /// Next complete packet, or nullopt if more bytes are needed.
  std::optional<Bytes> next();

  /// Bytes buffered but not yet consumed as complete frames.
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

  /// Drop any partially received frame. A reconnect replaces the byte
  /// stream, so a frame torn by mid-frame disconnect must never prefix the
  /// new stream (it would desynchronise every following length header).
  void reset() {
    buffer_.clear();
    consumed_ = 0;
  }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace ads
