// In-order delivery of out-of-order RTP packets. The draft relies on RTP
// to let participants "re-order the packets, recognize missing packets"
// (§4.2); this buffer performs the reordering and exposes a bounded-wait
// policy: if a gap persists while more than `max_hold` newer packets are
// queued, the gap is abandoned and delivery resumes (the remoting layer
// recovers via NACK retransmission or PLI refresh). An age bound
// complements the count bound: expire_older_than() abandons a head gap
// once held packets have waited too long, so a permanently lost packet
// cannot stall delivery even across a sequence-number wrap where newer
// arrivals alone would never exceed the count bound.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "rtp/rtp_packet.hpp"

namespace ads {

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t max_hold = 256) : max_hold_(max_hold) {}

  /// Insert an arriving packet; returns every packet now deliverable in
  /// order (possibly none). Duplicates and packets older than the delivery
  /// cursor are dropped. `now_us` (any monotonic microsecond clock) stamps
  /// the packet for the expire_older_than() age bound.
  std::vector<RtpPacket> push(RtpPacket pkt, std::uint64_t now_us = 0);

  /// Age bound: while the oldest held packet arrived before `cutoff_us`,
  /// abandon the head gap blocking it (counted in gaps_skipped) and deliver
  /// from the next packet actually present. Returns the flushed packets.
  std::vector<RtpPacket> expire_older_than(std::uint64_t cutoff_us);

  /// Abandon the current head gap: deliver buffered packets from the next
  /// one actually present. Returns the flushed packets.
  std::vector<RtpPacket> skip_gap();

  /// Deliver everything held (in order, regardless of gaps) and return it.
  std::vector<RtpPacket> flush_all();

  /// Move the delivery cursor to `next` (buffer must be empty — flush
  /// first). Used after a loss-recovery full refresh to jump past a gap
  /// even when nothing newer is buffered.
  void reset_to(std::uint16_t next);

  std::size_t buffered() const { return held_.size(); }
  std::uint64_t dropped_late() const { return dropped_late_; }
  std::uint64_t gaps_skipped() const { return gaps_skipped_; }

  /// Arrival time of the oldest held packet (nullopt when empty).
  std::optional<std::uint64_t> oldest_held_us() const;

  /// Sequence number the buffer is waiting to deliver next.
  std::optional<std::uint16_t> expected_sequence() const {
    return started_ ? std::optional<std::uint16_t>(next_seq_) : std::nullopt;
  }

 private:
  struct Held {
    RtpPacket pkt;
    std::uint64_t arrived_us = 0;
  };

  std::vector<RtpPacket> drain();

  // Key is the modular distance from next_seq_ so iteration order matches
  // delivery order even across the 16-bit wrap.
  std::map<std::uint16_t, Held> held_;
  std::size_t max_hold_;
  bool started_ = false;
  std::uint16_t next_seq_ = 0;
  std::uint64_t dropped_late_ = 0;
  std::uint64_t gaps_skipped_ = 0;
};

}  // namespace ads
