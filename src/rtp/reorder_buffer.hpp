// In-order delivery of out-of-order RTP packets. The draft relies on RTP
// to let participants "re-order the packets, recognize missing packets"
// (§4.2); this buffer performs the reordering and exposes a bounded-wait
// policy: if a gap persists while more than `max_hold` newer packets are
// queued, the gap is abandoned and delivery resumes (the remoting layer
// recovers via NACK retransmission or PLI refresh).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "rtp/rtp_packet.hpp"

namespace ads {

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t max_hold = 256) : max_hold_(max_hold) {}

  /// Insert an arriving packet; returns every packet now deliverable in
  /// order (possibly none). Duplicates and packets older than the delivery
  /// cursor are dropped.
  std::vector<RtpPacket> push(RtpPacket pkt);

  /// Abandon the current head gap: deliver buffered packets from the next
  /// one actually present. Returns the flushed packets.
  std::vector<RtpPacket> skip_gap();

  /// Deliver everything held (in order, regardless of gaps) and return it.
  std::vector<RtpPacket> flush_all();

  /// Move the delivery cursor to `next` (buffer must be empty — flush
  /// first). Used after a loss-recovery full refresh to jump past a gap
  /// even when nothing newer is buffered.
  void reset_to(std::uint16_t next);

  std::size_t buffered() const { return held_.size(); }
  std::uint64_t dropped_late() const { return dropped_late_; }
  std::uint64_t gaps_skipped() const { return gaps_skipped_; }

  /// Sequence number the buffer is waiting to deliver next.
  std::optional<std::uint16_t> expected_sequence() const {
    return started_ ? std::optional<std::uint16_t>(next_seq_) : std::nullopt;
  }

 private:
  std::vector<RtpPacket> drain();

  // Key is the modular distance from next_seq_ so iteration order matches
  // delivery order even across the 16-bit wrap.
  std::map<std::uint16_t, RtpPacket> held_;
  std::size_t max_hold_;
  bool started_ = false;
  std::uint16_t next_seq_ = 0;
  std::uint64_t dropped_late_ = 0;
  std::uint64_t gaps_skipped_ = 0;
};

}  // namespace ads
