// SDP (RFC 4566) subset used by draft §10: m= lines for BFCP and the
// remoting/hip RTP streams, with a=rtpmap / a=fmtp / a=floorid / a=label
// attributes. The parser is line-oriented and lenient about unknown
// attributes (they are preserved verbatim).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace ads {

struct RtpMap {
  std::uint8_t payload_type = 0;
  std::string encoding;       ///< "remoting", "hip", ...
  std::uint32_t clock_rate = 0;
};

struct MediaSection {
  std::string media;          ///< "application"
  std::uint16_t port = 0;
  std::string protocol;       ///< "RTP/AVP", "TCP/RTP/AVP", "TCP/BFCP"
  std::vector<std::string> formats;  ///< payload types or "*"
  /// (name, value) attribute pairs; value empty for flag attributes.
  std::vector<std::pair<std::string, std::string>> attributes;

  std::optional<std::string> attribute(const std::string& name) const;
  std::vector<RtpMap> rtpmaps() const;
  /// fmtp parameter string for `pt`, e.g. "retransmissions=yes".
  std::optional<std::string> fmtp(std::uint8_t pt) const;

  friend bool operator==(const MediaSection&, const MediaSection&) = default;
};

struct SessionDescription {
  // Minimal session-level fields (v= is implied as 0).
  std::string origin = "- 0 0 IN IP4 127.0.0.1";  ///< o= line payload
  std::string session_name = "-";                 ///< s= line payload
  std::string connection;                         ///< c= line payload, optional
  std::vector<MediaSection> media;

  std::string to_string() const;
  static Result<SessionDescription> parse(const std::string& text);

  friend bool operator==(const SessionDescription&, const SessionDescription&) = default;
};

}  // namespace ads
