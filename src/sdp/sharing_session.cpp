#include "sdp/sharing_session.hpp"

#include <charconv>
#include <string>

namespace ads {
namespace {

std::optional<std::uint64_t> to_number(std::string_view s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

SessionDescription build_sharing_offer(const SharingOffer& offer) {
  SessionDescription sd;
  sd.session_name = "application sharing";
  sd.connection = "IN IP4 0.0.0.0";

  {
    MediaSection bfcp;
    bfcp.media = "application";
    bfcp.port = offer.bfcp_port;
    bfcp.protocol = "TCP/BFCP";
    bfcp.formats = {"*"};
    bfcp.attributes.emplace_back(
        "floorid", std::to_string(offer.floor_id) + " m-stream:" +
                       std::to_string(offer.label));
    sd.media.push_back(std::move(bfcp));
  }

  const std::string remoting_map =
      std::to_string(offer.remoting_pt) + " remoting/90000";
  // Output-geometry capability: the deepest downscale rung the AH serves
  // (255 = capability withheld; answers must then request identity).
  const bool advertise_geometry =
      offer.geometry_max_shift <= transcode::kMaxScaleShift;
  if (offer.offer_udp) {
    MediaSection udp;
    udp.media = "application";
    udp.port = offer.remoting_port;
    udp.protocol = "RTP/AVP";
    udp.formats = {std::to_string(offer.remoting_pt)};
    udp.attributes.emplace_back("rtpmap", remoting_map);
    udp.attributes.emplace_back(
        "fmtp", std::to_string(offer.remoting_pt) + " retransmissions=" +
                    (offer.retransmissions ? "yes" : "no"));
    if (advertise_geometry) {
      udp.attributes.emplace_back("geometry-max",
                                  std::to_string(offer.geometry_max_shift));
    }
    sd.media.push_back(std::move(udp));
  }
  if (offer.offer_tcp) {
    MediaSection tcp;
    tcp.media = "application";
    tcp.port = offer.remoting_port;  // "port numbers MUST be same" (§10.3)
    tcp.protocol = "TCP/RTP/AVP";
    tcp.formats = {std::to_string(offer.remoting_pt)};
    tcp.attributes.emplace_back("rtpmap", remoting_map);
    if (advertise_geometry) {
      tcp.attributes.emplace_back("geometry-max",
                                  std::to_string(offer.geometry_max_shift));
    }
    sd.media.push_back(std::move(tcp));
  }

  {
    MediaSection hip;
    hip.media = "application";
    hip.port = offer.hip_port;
    hip.protocol = "TCP/RTP/AVP";
    hip.formats = {std::to_string(offer.hip_pt)};
    hip.attributes.emplace_back("rtpmap",
                                std::to_string(offer.hip_pt) + " hip/90000");
    hip.attributes.emplace_back("label", std::to_string(offer.label));
    sd.media.push_back(std::move(hip));
  }
  return sd;
}

Result<ParsedSharingOffer> parse_sharing_offer(const SessionDescription& sd) {
  ParsedSharingOffer out;
  for (const MediaSection& m : sd.media) {
    if (m.protocol == "TCP/BFCP") {
      out.bfcp_port = m.port;
      if (auto floorid = m.attribute("floorid")) {
        // "<floor> m-stream:<label>"
        const auto space = floorid->find(' ');
        const auto id = to_number(std::string_view(*floorid).substr(0, space));
        if (id) out.floor_id = static_cast<std::uint16_t>(*id);
      }
      continue;
    }
    for (const RtpMap& map : m.rtpmaps()) {
      if (map.clock_rate != 90000) continue;
      if (map.encoding == "remoting") {
        out.remoting_pt = map.payload_type;
        if (auto gmax = m.attribute("geometry-max")) {
          if (auto v = to_number(*gmax);
              v && *v <= transcode::kMaxScaleShift) {
            out.geometry_max_shift = static_cast<std::uint8_t>(*v);
          }
        }
        if (m.protocol == "RTP/AVP") {
          out.udp_remoting_port = m.port;
          if (auto params = m.fmtp(map.payload_type)) {
            out.retransmissions = params->find("retransmissions=yes") !=
                                  std::string::npos;
          }
        } else if (m.protocol == "TCP/RTP/AVP") {
          out.tcp_remoting_port = m.port;
        }
      } else if (map.encoding == "hip") {
        out.hip_pt = map.payload_type;
        out.hip_port = m.port;
        if (auto label = m.attribute("label")) {
          if (auto v = to_number(*label)) out.label = static_cast<std::uint16_t>(*v);
        }
      }
    }
  }
  if (out.remoting_pt == 0 && out.hip_pt == 0) return ParseError::kBadValue;
  return out;
}

Result<SessionDescription> build_sharing_answer(const SessionDescription& offer,
                                                const AnswerChoice& choice) {
  const bool want_udp = choice.transport == AnswerChoice::Transport::kUdp;
  const bool want_geometry = !choice.geometry.identity();
  bool matched_transport = false;
  bool matched_geometry = !want_geometry;

  SessionDescription answer;
  answer.session_name = "application sharing answer";
  answer.connection = "IN IP4 0.0.0.0";
  std::uint16_t next_port = choice.local_port_base;

  for (const MediaSection& offered : offer.media) {
    MediaSection m = offered;  // mirror media/proto/formats/attributes
    bool accept = false;
    bool is_remoting = false;
    if (offered.protocol == "TCP/BFCP") {
      accept = choice.accept_bfcp;
    } else {
      bool is_hip = false;
      for (const RtpMap& map : offered.rtpmaps()) {
        is_remoting |= map.encoding == "remoting";
        is_hip |= map.encoding == "hip";
      }
      if (is_remoting) {
        accept = want_udp ? offered.protocol == "RTP/AVP"
                          : offered.protocol == "TCP/RTP/AVP";
        matched_transport |= accept;
      } else if (is_hip) {
        accept = true;
      }
    }
    // A non-identity geometry request rides on the accepted remoting
    // m-line, and only against an offer that advertised the capability at a
    // deep-enough rung — asking a geometry-blind AH for a quarter view
    // would just get full-resolution bytes the viewer cannot afford.
    if (accept && is_remoting && want_geometry) {
      if (auto gmax = offered.attribute("geometry-max")) {
        if (auto v = to_number(*gmax);
            v && choice.geometry.scale_shift <= *v) {
          m.attributes.emplace_back("geometry",
                                    transcode::to_token(choice.geometry));
          matched_geometry = true;
        }
      }
    }
    m.port = accept ? next_port++ : 0;
    answer.media.push_back(std::move(m));
  }
  if (!matched_transport || !matched_geometry) return ParseError::kBadValue;
  return answer;
}

std::optional<transcode::OutputGeometry> answer_geometry(
    const SessionDescription& answer) {
  for (const MediaSection& m : answer.media) {
    if (m.port == 0) continue;
    for (const RtpMap& map : m.rtpmaps()) {
      if (map.encoding != "remoting") continue;
      const auto token = m.attribute("geometry");
      if (!token) return transcode::OutputGeometry{};
      return transcode::parse_token(*token);
    }
  }
  return transcode::OutputGeometry{};
}

}  // namespace ads
