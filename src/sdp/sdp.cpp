#include "sdp/sdp.hpp"

#include <charconv>
#include <sstream>

namespace ads {
namespace {

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::optional<std::uint64_t> to_number(std::string_view s) {
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::optional<std::string> MediaSection::attribute(const std::string& name) const {
  for (const auto& [n, v] : attributes) {
    if (n == name) return v;
  }
  return std::nullopt;
}

std::vector<RtpMap> MediaSection::rtpmaps() const {
  std::vector<RtpMap> out;
  for (const auto& [n, v] : attributes) {
    if (n != "rtpmap") continue;
    // "<pt> <encoding>/<rate>"
    const auto space = v.find(' ');
    if (space == std::string::npos) continue;
    const auto slash = v.find('/', space);
    if (slash == std::string::npos) continue;
    const auto pt = to_number(std::string_view(v).substr(0, space));
    const auto rate = to_number(std::string_view(v).substr(slash + 1));
    if (!pt || *pt > 127 || !rate) continue;
    RtpMap map;
    map.payload_type = static_cast<std::uint8_t>(*pt);
    map.encoding = v.substr(space + 1, slash - space - 1);
    map.clock_rate = static_cast<std::uint32_t>(*rate);
    out.push_back(std::move(map));
  }
  return out;
}

std::optional<std::string> MediaSection::fmtp(std::uint8_t pt) const {
  for (const auto& [n, v] : attributes) {
    if (n != "fmtp") continue;
    const auto space = v.find(' ');
    if (space == std::string::npos) {
      // Tolerate the draft's "a=fmtp: retransmissions=yes" form (no pt).
      if (v.find('=') != std::string::npos) return v;
      continue;
    }
    const auto parsed = to_number(std::string_view(v).substr(0, space));
    if (parsed && *parsed == pt) return v.substr(space + 1);
    if (!parsed) return v;  // pt-less form with spaces in parameters
  }
  return std::nullopt;
}

std::string SessionDescription::to_string() const {
  std::ostringstream os;
  os << "v=0\r\n";
  os << "o=" << origin << "\r\n";
  os << "s=" << session_name << "\r\n";
  if (!connection.empty()) os << "c=" << connection << "\r\n";
  os << "t=0 0\r\n";
  for (const MediaSection& m : media) {
    os << "m=" << m.media << " " << m.port << " " << m.protocol;
    for (const std::string& f : m.formats) os << " " << f;
    os << "\r\n";
    for (const auto& [n, v] : m.attributes) {
      os << "a=" << n;
      if (!v.empty()) os << ":" << v;
      os << "\r\n";
    }
  }
  return os.str();
}

Result<SessionDescription> SessionDescription::parse(const std::string& text) {
  SessionDescription sd;
  sd.origin.clear();
  sd.session_name.clear();
  MediaSection* current = nullptr;

  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) line.pop_back();
    if (line.empty()) continue;
    if (line.size() < 2 || line[1] != '=') return ParseError::kBadValue;
    const char kind = line[0];
    const std::string value = line.substr(2);

    switch (kind) {
      case 'v':
        if (value != "0") return ParseError::kUnsupported;
        break;
      case 'o': sd.origin = value; break;
      case 's': sd.session_name = value; break;
      case 'c':
        if (current == nullptr) sd.connection = value;
        break;
      case 't': break;
      case 'm': {
        auto parts = split_ws(value);
        if (parts.size() < 3) return ParseError::kBadValue;
        MediaSection m;
        m.media = parts[0];
        const auto port = to_number(parts[1]);
        if (!port || *port > 0xFFFF) return ParseError::kBadValue;
        m.port = static_cast<std::uint16_t>(*port);
        m.protocol = parts[2];
        m.formats.assign(parts.begin() + 3, parts.end());
        sd.media.push_back(std::move(m));
        current = &sd.media.back();
        break;
      }
      case 'a': {
        const auto colon = value.find(':');
        std::pair<std::string, std::string> attr;
        if (colon == std::string::npos) {
          attr.first = value;
        } else {
          attr.first = value.substr(0, colon);
          attr.second = value.substr(colon + 1);
          // The draft's "a=fmtp: retransmissions=yes" puts a space after
          // the colon; normalise it away.
          while (!attr.second.empty() && attr.second.front() == ' ') {
            attr.second.erase(attr.second.begin());
          }
        }
        if (current != nullptr) {
          current->attributes.push_back(std::move(attr));
        }
        break;
      }
      default:
        break;  // unknown session-level lines ignored
    }
  }
  if (sd.media.empty()) return ParseError::kBadValue;
  return sd;
}

}  // namespace ads
