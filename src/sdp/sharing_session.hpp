// High-level mapping between sharing-session parameters and the SDP of
// draft §10: the AH builds an offer advertising BFCP floor control, UDP and
// TCP remoting (same port when carrying the same content, §10.3) and the
// HIP stream; a participant extracts the parameters it needs from such an
// offer.
#pragma once

#include <cstdint>
#include <optional>

#include "sdp/sdp.hpp"
#include "transcode/transcode.hpp"

namespace ads {

struct SharingOffer {
  std::uint16_t bfcp_port = 50000;
  std::uint16_t remoting_port = 6000;  ///< UDP and TCP (same content)
  std::uint16_t hip_port = 6006;
  std::uint8_t remoting_pt = 99;
  std::uint8_t hip_pt = 100;
  bool offer_udp = true;
  bool offer_tcp = true;
  bool retransmissions = true;  ///< mandated fmtp parameter (§9.3.1)
  std::uint16_t floor_id = 0;
  std::uint16_t label = 10;     ///< ties HIP m-line to the BFCP floor (§10.3)
  /// Output-geometry capability (docs/TRANSCODE.md): the deepest downscale
  /// rung the AH offers (a=geometry-max on the remoting m-lines). Viewport
  /// crops and follow mode ride on the same capability. 255 = don't
  /// advertise geometry at all.
  std::uint8_t geometry_max_shift = 6;
};

/// Build the §10.3-shaped session description.
SessionDescription build_sharing_offer(const SharingOffer& offer);

/// Parameters a participant recovers from a sharing offer.
struct ParsedSharingOffer {
  std::optional<std::uint16_t> bfcp_port;
  std::optional<std::uint16_t> udp_remoting_port;
  std::optional<std::uint16_t> tcp_remoting_port;
  std::optional<std::uint16_t> hip_port;
  std::uint8_t remoting_pt = 0;
  std::uint8_t hip_pt = 0;
  bool retransmissions = false;
  std::optional<std::uint16_t> floor_id;
  std::optional<std::uint16_t> label;
  /// Deepest downscale rung the offerer supports (absent = no geometry).
  std::optional<std::uint8_t> geometry_max_shift;
};

Result<ParsedSharingOffer> parse_sharing_offer(const SessionDescription& sd);

/// The participant's answer: which transport it accepted.
struct AnswerChoice {
  enum class Transport { kUdp, kTcp };
  Transport transport = Transport::kTcp;
  bool accept_bfcp = true;
  std::uint16_t local_port_base = 7000;  ///< ports the answerer listens on
  /// Requested output geometry (docs/TRANSCODE.md), emitted as
  /// a=geometry:<token> on the accepted remoting m-line. Identity = omit
  /// the attribute (full-resolution view, the default).
  transcode::OutputGeometry geometry{};
};

/// Build an RFC 3264-style answer mirroring the offer's m-line order:
/// accepted streams carry the answerer's ports, rejected ones port 0.
/// Fails (kBadValue) when the offer lacks the requested transport, or when
/// a non-identity geometry is requested against an offer that does not
/// advertise geometry (or asks past its geometry-max rung).
Result<SessionDescription> build_sharing_answer(const SessionDescription& offer,
                                                const AnswerChoice& choice);

/// Recover the geometry a participant requested in its answer: the
/// a=geometry token on the accepted (non-zero-port) remoting m-line.
/// Identity when the attribute is absent; nullopt on a malformed token.
std::optional<transcode::OutputGeometry> answer_geometry(
    const SessionDescription& answer);

}  // namespace ads
