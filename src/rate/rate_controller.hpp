// Closed-loop per-participant rate & quality adaptation (draft §4.3 / §7).
//
// The static knobs the draft prescribes — a fixed token-bucket rate for UDP
// participants and a fixed send-buffer backlog limit for TCP participants —
// starve or flood a link whose capacity changes mid-session. This module
// closes the loop over the signals the session already collects:
//
//   * UDP: RTCP Receiver Report loss fraction and interarrival jitter
//     (RFC 3550 §6.4.2) drive an AIMD budget, TFRC-style in spirit but
//     deliberately simpler: multiplicative decrease on a lossy report,
//     additive increase on a clean one.
//   * TCP: the §7 select()-style send-buffer backlog (level and slope over
//     a sliding window) drives the same AIMD budget — a growing backlog is
//     this transport's loss signal.
//
// The budget maps to a discrete *operating point*: a token-bucket rate, a
// DCT quality rung (anchored to the E1b rate-distortion curve), and a
// frame-interval divisor. Degradation is ordered so fps is sacrificed
// before quality collapses to the bottom rung (RLM-style layered
// adjustment, applied to one stream).
//
// Everything is a pure function of the fed signals and the virtual clock:
// no wallclock, no randomness — a replayed session produces bit-identical
// adaptation traces, which is what lets the chaos convergence matrix assert
// on rate.* telemetry across seeds.
#pragma once

#include <cstdint>
#include <vector>

#include "net/event_loop.hpp"

namespace ads::rate {

/// One rung of the DCT quality ladder: a codec quality setting and the
/// bitrate it costs at the reference pixel rate (E1b: 320x240 @ 10 fps).
struct QualityRung {
  int dct_quality = 75;          ///< DctOptions::quality for this rung
  std::uint64_t ref_bps = 0;     ///< measured E1b rate at the reference load

  friend bool operator==(const QualityRung&, const QualityRung&) = default;
};

/// Tuning for the closed loop. Defaults follow classic AIMD practice
/// (decrease fast, probe slowly) with thresholds in RTCP wire units.
struct AdaptationOptions {
  /// Master switch: when false the AH keeps its static configuration and
  /// no controller state is updated.
  bool enabled = false;

  /// AIMD budget clamp (bits/s). The budget never leaves [min, max].
  std::uint64_t min_rate_bps = 200'000;
  std::uint64_t max_rate_bps = 20'000'000;
  /// Starting budget (clamped into [min, max]).
  std::uint64_t initial_rate_bps = 2'000'000;

  /// Additive increase applied per clean feedback interval.
  std::uint64_t additive_increase_bps = 100'000;
  /// Multiplicative decrease factor applied on a congestion signal.
  double multiplicative_decrease = 0.7;

  /// RR fraction_lost (/256) at or above which the loop decreases (~5%).
  std::uint8_t loss_decrease_threshold = 13;
  /// RR fraction_lost (/256) at or below which an interval counts as clean
  /// (~1%); between the two thresholds the budget holds.
  std::uint8_t loss_clean_threshold = 3;
  /// Interarrival jitter (RTP 90 kHz ticks) above which the loop treats the
  /// interval as congested even without loss (2700 ticks = 30 ms). Applies
  /// only while jitter is rising report-over-report: the RFC 3550 EWMA
  /// decays slowly after a queueing episode, and a decaying tail must not
  /// hold the budget at the floor.
  std::uint32_t jitter_decrease_ticks = 2700;

  /// Minimum spacing between multiplicative decreases, so one congestion
  /// episode reported across several RRs is punished once per RTT-ish
  /// window rather than once per report.
  SimTime decrease_holdoff_us = 500'000;

  /// TCP: backlog at or above this decreases the budget outright.
  std::size_t backlog_high_bytes = 32 * 1024;
  /// TCP: backlog at or below this (and not growing) counts as clean.
  std::size_t backlog_low_bytes = 2 * 1024;
  /// TCP: samples in the sliding backlog-trend window.
  int backlog_window = 8;

  /// Deepest frame-interval scaling the controller may pick (send every
  /// Nth capture tick). 1 disables fps degradation.
  int max_fps_divisor = 8;

  /// Demand scale relative to the E1b reference load (320x240 @ 10 fps):
  /// (width*height*fps) / (320*240*10). Lets one ladder serve any screen
  /// geometry and capture rate.
  double pixel_rate_scale = 1.0;
};

/// Transport family the controller adapts for — selects which signal path
/// (RR loss/jitter vs backlog trend) feeds the AIMD loop.
enum class Transport { kUdp, kTcp };

/// The controller's output: everything the AH needs to parameterise one
/// participant's encode + send path for the next tick.
struct OperatingPoint {
  std::uint64_t rate_bps = 0;  ///< token-bucket budget (UDP) / pacing hint
  int quality_step = 0;        ///< ladder index, 0 = best quality
  int dct_quality = 90;        ///< DctOptions::quality for photographic content
  int fps_divisor = 1;         ///< send frames every Nth capture tick

  /// The quality rung as it appears in encode-cache keys and shared-encode
  /// cohort keys: the clamped DCT quality for lossy codecs, 0 (= codec
  /// default) for lossless ones. Two participants whose quality_key (and
  /// codec and MTU) coincide can share one encode per band per tick.
  std::uint8_t quality_key(bool lossy_codec) const {
    if (!lossy_codec) return 0;
    const int q = dct_quality < 0 ? 0 : (dct_quality > 100 ? 100 : dct_quality);
    return static_cast<std::uint8_t>(q);
  }

  friend bool operator==(const OperatingPoint&, const OperatingPoint&) = default;
};

/// Adaptation event counts, for telemetry and tests.
struct ControllerStats {
  std::uint64_t increases = 0;        ///< additive increases applied
  std::uint64_t decreases = 0;        ///< multiplicative decreases applied
  std::uint64_t quality_changes = 0;  ///< operating-point quality-step moves
  std::uint64_t fps_changes = 0;      ///< operating-point fps-divisor moves
  std::uint64_t rr_consumed = 0;      ///< receiver reports fed to the loop
  std::uint64_t backlog_samples = 0;  ///< backlog samples fed to the loop
};

/// Deterministic per-participant AIMD controller. Feed signals as they
/// arrive (on_receiver_report / on_backlog_sample), then call update() once
/// per capture tick; the returned OperatingPoint is stable between ticks.
class RateController {
 public:
  RateController(Transport transport, AdaptationOptions opts);

  /// Feed one RTCP Receiver Report block (UDP transports). fraction_lost is
  /// the RFC 3550 /256 fixed-point field; jitter is in RTP timestamp ticks.
  void on_receiver_report(std::uint8_t fraction_lost, std::uint32_t jitter_ticks,
                          SimTime now);

  /// Feed one send-buffer backlog observation (TCP transports) — the §7
  /// select()-style signal, sampled on the capture clock.
  void on_backlog_sample(std::size_t backlog_bytes, SimTime now);

  /// Run one control interval at virtual time `now`: consume any pending
  /// signals, apply AIMD, and re-derive the operating point.
  const OperatingPoint& update(SimTime now);

  /// The operating point chosen by the last update().
  const OperatingPoint& current() const { return op_; }

  /// The raw AIMD budget in bits/s (before ladder quantisation).
  std::uint64_t budget_bps() const { return static_cast<std::uint64_t>(budget_bps_); }

  /// Adaptation event counts since construction.
  const ControllerStats& stats() const { return stats_; }

  /// The built-in DCT quality ladder, best rung first — quality settings
  /// anchored to the measured E1b rate-distortion curve.
  static const std::vector<QualityRung>& default_ladder();

 private:
  void apply_decrease(SimTime now);
  void apply_increase();
  void choose_operating_point();

  Transport transport_;
  AdaptationOptions opts_;
  double budget_bps_;
  OperatingPoint op_;

  // Pending UDP feedback (latest report wins within one tick).
  bool rr_pending_ = false;
  std::uint8_t rr_fraction_lost_ = 0;
  std::uint32_t rr_jitter_ticks_ = 0;
  std::uint32_t prev_jitter_ticks_ = 0;  ///< jitter gates on its gradient

  // TCP backlog sliding window (ring buffer, oldest overwritten).
  std::vector<std::size_t> backlog_ring_;
  std::size_t backlog_next_ = 0;
  std::size_t backlog_count_ = 0;
  bool backlog_pending_ = false;

  SimTime last_decrease_us_ = 0;
  bool decreased_ever_ = false;
  ControllerStats stats_;
};

}  // namespace ads::rate
