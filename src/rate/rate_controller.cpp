#include "rate/rate_controller.hpp"

#include <algorithm>

namespace ads::rate {
namespace {

// Degradation schedule: which (quality rung, fps divisor) pairs the
// controller is allowed to occupy, ordered best-first. Quality drops to the
// mid rungs at full frame rate; the bottom rung is only reached after fps
// has already been halved twice — "graceful fps degradation before quality
// collapse". Divisors beyond 4 extend the tail for very deep collapses.
struct Candidate {
  int quality_step;
  int fps_divisor;
};

constexpr Candidate kSchedule[] = {
    {0, 1},  // q90 @ full rate
    {1, 1},  // q75
    {2, 1},  // q50
    {2, 2},  // q50 @ half rate
    {3, 2},  // q30 @ half rate
    {3, 4},  // q30 @ quarter rate
    {4, 4},  // q10 @ quarter rate
    {4, 8},  // q10 @ eighth rate — the floor
};

}  // namespace

const std::vector<QualityRung>& RateController::default_ladder() {
  // Anchored to the measured E1b rate-distortion curve (EXPERIMENTS.md):
  // q10 = 0.51, q50 = 2.0, q90 = 6.3 Mbit/s at 320x240 @ 10 fps; the q30
  // and q75 rungs are interpolated on the same monotone curve.
  static const std::vector<QualityRung> ladder = {
      {90, 6'300'000},
      {75, 4'200'000},
      {50, 2'000'000},
      {30, 1'200'000},
      {10, 510'000},
  };
  return ladder;
}

RateController::RateController(Transport transport, AdaptationOptions opts)
    : transport_(transport), opts_(opts) {
  if (opts_.min_rate_bps > opts_.max_rate_bps) {
    std::swap(opts_.min_rate_bps, opts_.max_rate_bps);
  }
  opts_.max_fps_divisor = std::max(1, opts_.max_fps_divisor);
  opts_.backlog_window = std::max(1, opts_.backlog_window);
  if (opts_.pixel_rate_scale <= 0.0) opts_.pixel_rate_scale = 1.0;
  budget_bps_ = static_cast<double>(
      std::clamp(opts_.initial_rate_bps, opts_.min_rate_bps, opts_.max_rate_bps));
  backlog_ring_.assign(static_cast<std::size_t>(opts_.backlog_window), 0);
  choose_operating_point();
  // Construction is not an adaptation event.
  stats_ = {};
}

void RateController::on_receiver_report(std::uint8_t fraction_lost,
                                        std::uint32_t jitter_ticks, SimTime now) {
  (void)now;
  if (!opts_.enabled || transport_ != Transport::kUdp) return;
  // Latest report wins inside one control interval; RR cadence (~1 s) is
  // slower than the tick clock, so coalescing loses nothing.
  rr_pending_ = true;
  rr_fraction_lost_ = fraction_lost;
  rr_jitter_ticks_ = jitter_ticks;
  ++stats_.rr_consumed;
}

void RateController::on_backlog_sample(std::size_t backlog_bytes, SimTime now) {
  (void)now;
  if (!opts_.enabled || transport_ != Transport::kTcp) return;
  backlog_ring_[backlog_next_] = backlog_bytes;
  backlog_next_ = (backlog_next_ + 1) % backlog_ring_.size();
  backlog_count_ = std::min(backlog_count_ + 1, backlog_ring_.size());
  backlog_pending_ = true;
  ++stats_.backlog_samples;
}

void RateController::apply_decrease(SimTime now) {
  if (decreased_ever_ && now - last_decrease_us_ < opts_.decrease_holdoff_us) {
    return;  // one punishment per congestion window
  }
  const double floor = static_cast<double>(opts_.min_rate_bps);
  const double next =
      std::max(floor, budget_bps_ * opts_.multiplicative_decrease);
  if (next < budget_bps_) {
    budget_bps_ = next;
    ++stats_.decreases;
  }
  last_decrease_us_ = now;
  decreased_ever_ = true;
}

void RateController::apply_increase() {
  const double ceil = static_cast<double>(opts_.max_rate_bps);
  const double next = std::min(
      ceil, budget_bps_ + static_cast<double>(opts_.additive_increase_bps));
  if (next > budget_bps_) {
    budget_bps_ = next;
    ++stats_.increases;
  }
}

const OperatingPoint& RateController::update(SimTime now) {
  if (!opts_.enabled) return op_;

  if (transport_ == Transport::kUdp && rr_pending_) {
    rr_pending_ = false;
    // Jitter counts as congestion only while it is still rising: the RFC
    // 3550 jitter EWMA decays at 15/16 per packet, so after a deep queueing
    // episode its absolute level stays above any threshold for many seconds
    // of perfectly clean air — gating on the gradient lets recovery start
    // as soon as the queue actually drains.
    const bool jitter_congested =
        rr_jitter_ticks_ >= opts_.jitter_decrease_ticks &&
        rr_jitter_ticks_ >= prev_jitter_ticks_;
    prev_jitter_ticks_ = rr_jitter_ticks_;
    const bool congested =
        rr_fraction_lost_ >= opts_.loss_decrease_threshold || jitter_congested;
    if (congested) {
      apply_decrease(now);
    } else if (rr_fraction_lost_ <= opts_.loss_clean_threshold) {
      apply_increase();
    }
    // Between the thresholds: hold — the link is lossy but not collapsing.
  }

  if (transport_ == Transport::kTcp && backlog_pending_) {
    backlog_pending_ = false;
    const std::size_t latest =
        backlog_ring_[(backlog_next_ + backlog_ring_.size() - 1) %
                      backlog_ring_.size()];
    const std::size_t oldest =
        backlog_count_ < backlog_ring_.size()
            ? backlog_ring_[0]
            : backlog_ring_[backlog_next_];
    const bool growing = latest > oldest;
    if (latest >= opts_.backlog_high_bytes ||
        (growing && latest >= opts_.backlog_high_bytes / 2)) {
      apply_decrease(now);
    } else if (latest <= opts_.backlog_low_bytes && !growing) {
      apply_increase();
    }
  }

  choose_operating_point();
  return op_;
}

void RateController::choose_operating_point() {
  const std::vector<QualityRung>& ladder = default_ladder();
  OperatingPoint next = op_;
  next.rate_bps = budget_bps();

  // Walk the degradation schedule best-first and take the first candidate
  // whose demand fits the budget; a budget below even the floor candidate
  // still gets the floor (the token bucket then paces it further down).
  const Candidate* chosen = &kSchedule[std::size(kSchedule) - 1];
  for (const Candidate& c : kSchedule) {
    if (c.fps_divisor > opts_.max_fps_divisor) continue;
    const double demand =
        static_cast<double>(ladder[static_cast<std::size_t>(c.quality_step)].ref_bps) *
        opts_.pixel_rate_scale / static_cast<double>(c.fps_divisor);
    if (demand <= budget_bps_) {
      chosen = &c;
      break;
    }
  }
  // If max_fps_divisor filtered out the configured floor, fall back to the
  // deepest allowed candidate.
  if (chosen->fps_divisor > opts_.max_fps_divisor) {
    for (auto it = std::rbegin(kSchedule); it != std::rend(kSchedule); ++it) {
      if (it->fps_divisor <= opts_.max_fps_divisor) {
        chosen = &*it;
        break;
      }
    }
  }

  next.quality_step = chosen->quality_step;
  next.dct_quality =
      ladder[static_cast<std::size_t>(chosen->quality_step)].dct_quality;
  next.fps_divisor = chosen->fps_divisor;

  if (next.quality_step != op_.quality_step) ++stats_.quality_changes;
  if (next.fps_divisor != op_.fps_divisor) ++stats_.fps_changes;
  op_ = next;
}

}  // namespace ads::rate
