#include "snapshot/record.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

namespace ads::snapshot {
namespace {

constexpr char kMagic[8] = {'A', 'D', 'S', 'R', 'E', 'C', '0', '1'};

}  // namespace

// ----- SessionRecorder --------------------------------------------------

SessionRecorder::SessionRecorder(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_.is_open()) return;
  out_.write(kMagic, sizeof(kMagic));
  ok_ = out_.good();
  if (ok_) stats_.bytes_written += sizeof(kMagic);
}

SessionRecorder::~SessionRecorder() { finish(); }

void SessionRecorder::write_record(RecordType type, SimTime t,
                                   BytesView payload) {
  if (!ok_) return;
  ByteWriter w(13 + payload.size());
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(static_cast<std::uint64_t>(t));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  out_.write(reinterpret_cast<const char*>(w.view().data()),
             static_cast<std::streamsize>(w.size()));
  if (!out_.good()) {
    ok_ = false;
    return;
  }
  stats_.bytes_written += w.size();
}

void SessionRecorder::checkpoint(SimTime t, const Image& frame,
                                 const WindowManagerInfo& wmi, Point pointer) {
  if (!ok_) return;
  const Bytes frame_png = codecs_.find(ContentPt::kPng)->encode(frame);
  const Bytes wmi_bytes = wmi.serialize();
  ByteWriter w(frame_png.size() + wmi_bytes.size() + 16);
  w.u32(static_cast<std::uint32_t>(frame_png.size()));
  w.bytes(frame_png);
  w.u32(static_cast<std::uint32_t>(wmi_bytes.size()));
  w.bytes(wmi_bytes);
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, pointer.x)));
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, pointer.y)));
  write_record(RecordType::kCheckpoint, t, w.view());
  if (ok_) ++stats_.checkpoints;
}

void SessionRecorder::region_update(SimTime t, const Rect& r, ContentPt pt,
                                    BytesView content) {
  if (!ok_) return;
  ByteWriter w(content.size() + 9);
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, r.left)));
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, r.top)));
  w.u8(static_cast<std::uint8_t>(pt));
  w.bytes(content);
  write_record(RecordType::kRegionUpdate, t, w.view());
  if (ok_) ++stats_.region_updates;
}

void SessionRecorder::move_rect(SimTime t, const MoveRectangle& mr) {
  if (!ok_) return;
  write_record(RecordType::kMoveRect, t, mr.serialize());
  if (ok_) ++stats_.move_rects;
}

void SessionRecorder::wmi(SimTime t, const WindowManagerInfo& msg) {
  if (!ok_) return;
  write_record(RecordType::kWmi, t, msg.serialize());
  if (ok_) ++stats_.wmi_records;
}

void SessionRecorder::pointer(SimTime t, Point p) {
  if (!ok_) return;
  ByteWriter w(8);
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, p.x)));
  w.u32(static_cast<std::uint32_t>(std::max<std::int64_t>(0, p.y)));
  write_record(RecordType::kPointer, t, w.view());
  if (ok_) ++stats_.pointer_records;
}

void SessionRecorder::finish() {
  if (finished_ || !ok_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  write_record(RecordType::kEnd, 0, {});
  out_.flush();
  if (!out_.good()) ok_ = false;
}

// ----- SessionReplayer --------------------------------------------------

SessionReplayer::SessionReplayer(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return;
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return;
  }
  ByteReader r(BytesView(data).subspan(sizeof(kMagic)));
  while (!r.at_end()) {
    auto type = r.u8();
    auto t = r.u64();
    auto len = r.u32();
    if (!type.ok() || !t.ok() || !len.ok()) return;
    auto payload = r.bytes(*len);
    if (!payload.ok()) return;
    RawRecord rec;
    rec.type = static_cast<RecordType>(*type);
    rec.t = static_cast<SimTime>(*t);
    rec.payload.assign(payload->begin(), payload->end());
    if (rec.type == RecordType::kCheckpoint) {
      last_checkpoint_ = records_.size();
      have_checkpoint_ = true;
      ++stats_.checkpoints_seen;
    }
    records_.push_back(std::move(rec));
    ++stats_.records_total;
    if (records_.back().type == RecordType::kEnd) break;
  }
  ok_ = true;
}

bool SessionReplayer::apply(const RawRecord& rec) {
  ByteReader r(rec.payload);
  switch (rec.type) {
    case RecordType::kCheckpoint: {
      auto frame_len = r.u32();
      if (!frame_len.ok()) return false;
      auto frame_bytes = r.bytes(*frame_len);
      if (!frame_bytes.ok()) return false;
      auto img = codecs_.find(ContentPt::kPng)->decode(*frame_bytes);
      if (!img.ok()) {
        ++stats_.decode_errors;
        return false;
      }
      frame_ = std::move(*img);
      auto wmi_len = r.u32();
      if (!wmi_len.ok()) return false;
      auto wmi_bytes = r.bytes(*wmi_len);
      if (!wmi_bytes.ok()) return false;
      auto wmi = WindowManagerInfo::parse(*wmi_bytes);
      if (!wmi.ok()) return false;
      wmi_ = std::move(*wmi);
      auto x = r.u32();
      auto y = r.u32();
      if (!x.ok() || !y.ok()) return false;
      pointer_ = Point{static_cast<std::int64_t>(*x),
                       static_cast<std::int64_t>(*y)};
      return true;
    }
    case RecordType::kRegionUpdate: {
      auto left = r.u32();
      auto top = r.u32();
      auto pt = r.u8();
      if (!left.ok() || !top.ok() || !pt.ok()) return false;
      const ImageCodec* codec = codecs_.find(*pt);
      if (codec == nullptr) {
        ++stats_.decode_errors;
        return false;
      }
      auto img = codec->decode(r.rest());
      if (!img.ok()) {
        ++stats_.decode_errors;
        return false;
      }
      frame_.blit(*img, img->bounds(),
                  Point{static_cast<std::int64_t>(*left),
                        static_cast<std::int64_t>(*top)});
      ++stats_.region_updates_applied;
      return true;
    }
    case RecordType::kMoveRect: {
      auto mr = MoveRectangle::parse(rec.payload);
      if (!mr.ok()) return false;
      frame_.move_rect(Rect{static_cast<std::int64_t>(mr->source_left),
                            static_cast<std::int64_t>(mr->source_top),
                            static_cast<std::int64_t>(mr->width),
                            static_cast<std::int64_t>(mr->height)},
                       Point{static_cast<std::int64_t>(mr->dest_left),
                             static_cast<std::int64_t>(mr->dest_top)});
      ++stats_.move_rects_applied;
      return true;
    }
    case RecordType::kWmi: {
      auto wmi = WindowManagerInfo::parse(rec.payload);
      if (!wmi.ok()) return false;
      wmi_ = std::move(*wmi);
      return true;
    }
    case RecordType::kPointer: {
      auto x = r.u32();
      auto y = r.u32();
      if (!x.ok() || !y.ok()) return false;
      pointer_ = Point{static_cast<std::int64_t>(*x),
                       static_cast<std::int64_t>(*y)};
      return true;
    }
    case RecordType::kEnd:
      return true;
  }
  return false;
}

bool SessionReplayer::replay() {
  if (!ok_ || !have_checkpoint_) return false;
  for (std::size_t i = last_checkpoint_; i < records_.size(); ++i) {
    if (!apply(records_[i])) return false;
    if (records_[i].type != RecordType::kEnd) last_time_us_ = records_[i].t;
  }
  return true;
}

}  // namespace ads::snapshot
