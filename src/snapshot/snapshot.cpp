#include "snapshot/snapshot.hpp"

#include <stdexcept>

namespace ads::snapshot {

SnapshotOptions SnapshotService::validated(SnapshotOptions opts) {
  if (opts.enabled && opts.refresh_interval_us <= 0) {
    throw std::invalid_argument(
        "SnapshotOptions: refresh_interval_us must be > 0 when enabled");
  }
  if (opts.max_bundles == 0) opts.max_bundles = 1;
  if (opts.max_delta_fraction <= 0.0 || opts.max_delta_fraction > 1.0) {
    opts.max_delta_fraction = 0.5;
  }
  return opts;
}

SnapshotService::SnapshotService(SnapshotOptions opts)
    : opts_(validated(std::move(opts))) {}

void SnapshotService::drop_bundles() { bundles_.clear(); }

void SnapshotService::begin_tick(SimTime now) {
  if (!opts_.enabled) return;
  // The window is anchored at the *finalisation* instant of the most recent
  // bundle (admit() re-anchors), not at the open instant. Anchoring at open
  // time would close the window one tick early relative to the bundle: a
  // PLI arriving in the same tick the bundle was finalised would then find
  // the bundle already dropped at the next tick and force a second encode —
  // the refresh-storm regression tests/core/latejoin_cohort_test.cpp pins.
  if (window_open_ && now - window_anchor_us_ >= opts_.refresh_interval_us) {
    window_open_ = false;
    ++stats_.windows_closed;
    drop_bundles();
  }
  // A bundle whose delta outgrew its own area is worse than a fresh
  // refresh: serving it costs checkpoint + delta. Evict it; the next
  // admission of that operating point rebuilds from the live frame.
  for (auto it = bundles_.begin(); it != bundles_.end();) {
    // Scaled bundles band-split in output space but accumulate host-space
    // delta, so the budget base is the host-space source rect when the
    // builder recorded one; native bundles keep the band-union base.
    const Rect b = !it->second.source.empty() ? it->second.source
                   : it->second.bands.empty() ? Rect{}
                                              : [&] {
                                                  Rect all = it->second.bands.front();
                                                  for (const Rect& r :
                                                       it->second.bands)
                                                    all = bounding_union(all, r);
                                                  return all;
                                                }();
    const double budget =
        static_cast<double>(b.area()) * opts_.max_delta_fraction;
    if (!b.empty() && static_cast<double>(it->second.delta.area()) > budget) {
      it = bundles_.erase(it);
      ++stats_.delta_evictions;
    } else {
      ++it;
    }
  }
}

bool SnapshotService::note_demand(SimTime now) {
  if (!opts_.enabled) return false;
  if (window_open_) {
    ++stats_.plis_absorbed;
    return true;
  }
  window_open_ = true;
  window_anchor_us_ = now;
  ++stats_.windows_opened;
  return false;
}

RefreshBundle* SnapshotService::admit(const BundleKey& key, SimTime now,
                                      const BuildFn& build) {
  if (!opts_.enabled) return nullptr;
  if (!window_open_) {
    // Demand that reaches admission without a recorded PLI (e.g. a TCP
    // joiner registered mid-tick) opens the window here.
    window_open_ = true;
    window_anchor_us_ = now;
    ++stats_.windows_opened;
  }
  auto it = bundles_.find(key);
  if (it != bundles_.end()) {
    RefreshBundle& b = it->second;
    ++b.serves;
    ++stats_.bundles_served;
    stats_.encodes_saved += b.bands.size();
    return &b;
  }
  if (bundles_.size() >= opts_.max_bundles) {
    ++stats_.budget_rejections;
    return nullptr;
  }
  RefreshBundle bundle;
  bundle.key = key;
  if (!build || !build(bundle) || bundle.bands.empty() ||
      bundle.streams.size() != bundle.bands.size()) {
    ++stats_.build_failures;
    return nullptr;
  }
  bundle.built_at_us = now;
  bundle.checkpoint = next_checkpoint_++;
  // Re-anchor the window at finalisation so same-tick (and same-interval)
  // demand is absorbed by this bundle instead of expiring it early.
  window_anchor_us_ = now;
  ++stats_.bundles_built;
  stats_.bundle_bands += bundle.bands.size();
  auto [pos, inserted] = bundles_.emplace(key, std::move(bundle));
  RefreshBundle& b = pos->second;
  ++b.serves;
  ++stats_.bundles_served;
  return &b;
}

void SnapshotService::add_delta(const Rect& r) {
  if (!opts_.enabled || r.empty() || bundles_.empty()) return;
  for (auto& [key, b] : bundles_) b.delta.add(r);
  ++stats_.delta_rects;
}

void SnapshotService::invalidate() {
  if (bundles_.empty() && !window_open_) return;
  if (window_open_) {
    window_open_ = false;
    ++stats_.windows_closed;
  }
  drop_bundles();
  ++stats_.invalidations;
}

}  // namespace ads::snapshot
