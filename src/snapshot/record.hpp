// Deterministic session record/replay on the checkpoint substrate
// (ROADMAP item 3: "write the checkpoint + update stream to disk;
// deterministic replay is free given the virtual clock").
//
// File format (all integers big-endian, see docs/LATEJOIN.md §5):
//
//   magic   "ADSREC01"                                      (8 bytes)
//   record  type u8 | t u64 (virtual-clock µs) | len u32 | payload[len]
//   ...
//   record  kEnd (len 0)
//
// Record payloads:
//   kCheckpoint   frame_len u32 | PNG frame | wmi_len u32 | serialized
//                 WindowManagerInfo | pointer_x u32 | pointer_y u32
//   kRegionUpdate left u32 | top u32 | content_pt u8 | encoded content
//   kMoveRect     serialized MoveRectangle (§5.2.3 wire format)
//   kWmi          serialized WindowManagerInfo (§5.2.1 wire format)
//   kPointer      x u32 | y u32
//
// The recorder always encodes with PNG (the draft's mandatory codec,
// lossless) regardless of the session's distribution codec, so replay is
// bit-exact even for lossy DCT sessions. A replayer seeks to the LAST
// checkpoint and applies the update stream from there — which is exactly
// the late-join bundle semantics, applied to disk instead of the wire.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "codec/registry.hpp"
#include "image/image.hpp"
#include "net/event_loop.hpp"
#include "remoting/move_rectangle.hpp"
#include "remoting/window_manager_info.hpp"
#include "util/bytes.hpp"

namespace ads::snapshot {

/// Record types of the checkpoint + update stream.
enum class RecordType : std::uint8_t {
  kCheckpoint = 1,    ///< full-frame PNG + WMI + pointer (replay anchor)
  kRegionUpdate = 2,  ///< one encoded damage band
  kMoveRect = 3,      ///< one verified scroll (§5.2.3)
  kWmi = 4,           ///< window-manager state change (§5.2.1)
  kPointer = 5,       ///< AH pointer position (§5.2.4)
  kEnd = 6,           ///< clean end-of-stream marker
};

/// Streams one session's checkpoint + update records to disk. All writes
/// happen on the tick thread; failures latch ok() false and subsequent
/// writes no-op (recording must never take the session down).
class SessionRecorder {
 public:
  /// Opens (truncates) `path` and writes the magic. Check ok().
  explicit SessionRecorder(const std::string& path);
  ~SessionRecorder();

  /// True while the stream is healthy (open succeeded, no write failed).
  bool ok() const { return ok_; }

  /// Write a replay anchor: the full frame (PNG), the complete WMI and the
  /// pointer position at virtual time `t`.
  void checkpoint(SimTime t, const Image& frame, const WindowManagerInfo& wmi,
                  Point pointer);
  /// Write one encoded damage band (already-compressed content bytes).
  void region_update(SimTime t, const Rect& r, ContentPt pt, BytesView content);
  /// Write one verified scroll.
  void move_rect(SimTime t, const MoveRectangle& mr);
  /// Write a window-manager state change.
  void wmi(SimTime t, const WindowManagerInfo& msg);
  /// Write a pointer move.
  void pointer(SimTime t, Point p);
  /// Write the end marker and flush. Idempotent; the destructor calls it.
  void finish();

  /// Lifetime totals for everything recorded.
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t region_updates = 0;
    std::uint64_t move_rects = 0;
    std::uint64_t wmi_records = 0;
    std::uint64_t pointer_records = 0;
    std::uint64_t bytes_written = 0;  ///< payload + framing, magic included
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  /// Frame and write one record; latches ok_ false on stream failure.
  void write_record(RecordType type, SimTime t, BytesView payload);

  std::ofstream out_;
  CodecRegistry codecs_ = CodecRegistry::with_defaults();
  bool ok_ = false;
  bool finished_ = false;
  Stats stats_;
};

/// Reconstructs a recorded session's frame/WMI/pointer state from disk.
/// Replay is deterministic: the same file yields the same frame bytes on
/// any machine (PNG is lossless and the virtual clock is in the records).
class SessionReplayer {
 public:
  /// Reads and parses `path` in full. Check ok() before replay().
  explicit SessionReplayer(const std::string& path);

  /// True when the file opened, the magic matched and framing was sound.
  bool ok() const { return ok_; }

  /// Apply the record stream from the LAST checkpoint to the end (the
  /// checkpoint-seek that makes long recordings cheap to resume). Returns
  /// false when the stream contains no checkpoint or a record fails to
  /// decode.
  bool replay();

  /// The reconstructed frame after replay().
  const Image& frame() const { return frame_; }
  /// The last WindowManagerInfo applied (empty before one is seen).
  const WindowManagerInfo& windows() const { return wmi_; }
  /// The last pointer position applied.
  Point pointer() const { return pointer_; }
  /// Virtual-clock time of the last applied record.
  SimTime last_time_us() const { return last_time_us_; }

  /// Replay totals (records applied from the seek point onward).
  struct Stats {
    std::uint64_t checkpoints_seen = 0;   ///< in the whole file
    std::uint64_t records_total = 0;      ///< in the whole file (incl. kEnd)
    std::uint64_t region_updates_applied = 0;
    std::uint64_t move_rects_applied = 0;
    std::uint64_t decode_errors = 0;
  };
  /// Replay counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  struct RawRecord {
    RecordType type = RecordType::kEnd;
    SimTime t = 0;
    Bytes payload;
  };

  bool apply(const RawRecord& rec);

  std::vector<RawRecord> records_;
  std::size_t last_checkpoint_ = 0;  ///< index into records_
  bool have_checkpoint_ = false;
  bool ok_ = false;
  CodecRegistry codecs_ = CodecRegistry::with_defaults();
  Image frame_;
  WindowManagerInfo wmi_;
  Point pointer_{0, 0};
  SimTime last_time_us_ = 0;
  Stats stats_;
};

}  // namespace ads::snapshot
