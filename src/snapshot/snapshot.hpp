// Checkpoint snapshot service for flash-crowd late joins (ROADMAP item 3).
//
// The paper's §4.4 late-join path (WindowManagerInfo transfer + full
// refresh) is per joiner: N viewers arriving in one RTT cost the AH N full
// encodes (or N cache walks) and an upstream PLI storm. This service
// amortises that cost across an entire *refresh interval*: the AH
// checkpoints its framebuffer state into pre-encoded, cohort-keyed
// **refresh bundles** — each bundle is the full shared region, band-split,
// encoded once per operating point and serialised once into pooled
// `ads::buf` fragment streams — and every joiner (or PLI) that lands while
// the bundle is live is served by cutting header-plus-view packets from
// those shared streams. One encode pass per operating point per join wave,
// no matter whether the wave is one viewer or ten thousand.
//
// Semantics (see docs/LATEJOIN.md for the full state machine):
//   * A **refresh window** opens at the first refresh demand (PLI or TCP
//     admission) and is re-anchored to the instant a bundle is finalised;
//     it closes refresh_interval_us later. All demand inside the window
//     shares the window's bundles. A PLI arriving in the same tick a
//     bundle is finalised therefore falls inside that bundle's interval
//     and is absorbed — it must never trigger a second encode.
//   * Each live bundle accumulates a **delta** region: damage (and scroll
//     destinations) from ticks after the bundle was built. A joiner served
//     from the bundle inherits the delta as pending damage, so it
//     converges to the live frame on the very next tick.
//   * Window close (or an explicit invalidation: geometry change, codec
//     churn) drops every bundle; the pooled stream buffers recycle once
//     the last in-flight PacketView releases them.
//
// The service is deliberately host-agnostic: it owns interval/bundle/delta
// state and counters, while the AH supplies a build callback that encodes
// and serialises the bands (reusing its ParallelEncoder, EncodedRegionCache
// and BufPool). That keeps `ads::snapshot` free of `ads::core` and lets
// tests drive it with synthetic builders.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "buf/buf.hpp"
#include "image/geometry.hpp"
#include "net/event_loop.hpp"
#include "remoting/region_update.hpp"

namespace ads::snapshot {

/// Every knob of the snapshot service. Validated like AppHostOptions:
/// impossible settings throw, nonsensical ones clamp — see
/// SnapshotService::validated().
struct SnapshotOptions {
  /// Master switch. Off = the AH answers every joiner through the §4.4
  /// per-joiner path (the E19 baseline).
  bool enabled = false;
  /// Lifetime of a refresh bundle and width of the PLI aggregation window.
  /// All refresh demand within one window shares one encode per operating
  /// point. Must be > 0 when enabled.
  SimTime refresh_interval_us = 500'000;
  /// Upper bound on simultaneously live cohort-keyed bundles (distinct
  /// operating points per window). Admissions past it fall back to the
  /// per-joiner path. Clamped to at least 1.
  std::size_t max_bundles = 16;
  /// Drop a bundle whose accumulated delta covers more than this fraction
  /// of the bundle area — serving checkpoint + near-full delta would cost
  /// more than a fresh refresh. Clamped into (0, 1].
  double max_delta_fraction = 0.5;
  /// When non-empty, the AH records the session (checkpoint + update
  /// stream) to this file for deterministic replay — see record.hpp.
  std::string record_path;
};

/// Identity of one refresh bundle — the operating point whose members can
/// share encoded refresh bytes. Mirrors the fan-out CohortKey, including the
/// output geometry introduced by ROADMAP item 4: bundles for different
/// device classes (scale rungs or viewport source rects) never mix.
struct BundleKey {
  std::uint8_t content_pt = 0;   ///< RegionUpdate codec payload type
  std::uint8_t quality = 0;      ///< ads::rate quality rung (cache-key value)
  std::size_t mtu_payload = 0;   ///< fragmentation threshold
  std::uint8_t scale_shift = 0;  ///< output geometry downscale rung (2^shift)
  /// Resolved host-space source rect {left, top, width, height} streamed by
  /// the geometry; all-zero = the whole frame (identity / plain rungs).
  std::array<std::int64_t, 4> source{};
  friend auto operator<=>(const BundleKey&, const BundleKey&) = default;
};

/// One band of a bundle: the serialised RegionUpdate fragment stream in a
/// pooled buffer plus its per-fragment windows. Identical in shape to the
/// AH's internal BandStream so a bundle band feeds packetize_regions
/// directly — every joiner's packets are views into this one buffer.
struct BundleBand {
  buf::BufRef buf;                  ///< pooled fragment-stream buffer
  std::vector<FragmentSpan> frags;  ///< per-fragment windows + markers
};

/// One pre-encoded, cohort-keyed refresh checkpoint. Built at most once per
/// operating point per refresh window; served to every joiner of the wave.
struct RefreshBundle {
  BundleKey key;
  SimTime built_at_us = 0;       ///< finalisation instant (window anchor)
  std::uint64_t checkpoint = 0;  ///< monotone id across the session
  std::vector<Rect> bands;       ///< band-split shared region (output space)
  std::vector<BundleBand> streams;  ///< parallel to bands
  /// Host-space source rect the bundle's bands were scaled from. Bands live
  /// in output space while the delta accumulates host-space damage, so the
  /// delta-fraction eviction compares against this rect's area; empty =
  /// native geometry (fall back to the band union).
  Rect source;
  Region delta;                  ///< damage accumulated since built_at_us
  std::uint64_t serves = 0;      ///< joiners served from this bundle
};

/// Checkpoint/bundle/window bookkeeping for the flash-crowd late-join path.
/// Single-threaded on the event-loop/tick thread, like the AH that owns it.
class SnapshotService {
 public:
  /// Constructs the service with validated options (throws
  /// std::invalid_argument on impossible settings).
  explicit SnapshotService(SnapshotOptions opts);

  /// Validate and normalise options: enabled with a zero refresh interval
  /// throws; max_bundles clamps to >= 1, max_delta_fraction into (0, 1].
  static SnapshotOptions validated(SnapshotOptions opts);

  /// The validated options this service runs with.
  const SnapshotOptions& options() const { return opts_; }
  /// True when the service answers refresh demand (the master switch).
  bool enabled() const { return opts_.enabled; }

  /// Builder callback: fill `bands` + `streams` of the bundle for its key
  /// (band-split, encode, serialise). Return false on failure — the caller
  /// then falls back to the per-joiner path and nothing is cached.
  using BuildFn = std::function<bool(RefreshBundle&)>;

  /// Per-tick maintenance, called before distribution: closes the refresh
  /// window (dropping every bundle) once refresh_interval_us has elapsed
  /// since its anchor, and evicts bundles whose delta outgrew
  /// max_delta_fraction.
  void begin_tick(SimTime now);

  /// Record refresh demand (a PLI, or a TCP admission wanting the §4.4
  /// push): opens the window if none is open. Returns true when a live
  /// bundle (any key) already covers the demand — the PLI is absorbed by
  /// the current window instead of anchoring a new one.
  bool note_demand(SimTime now);

  /// Fetch the live bundle for `key`, building it via `build` on first
  /// demand in this window. Building re-anchors the window at `now`, so
  /// demand arriving in the same tick the bundle is finalised shares it.
  /// Returns nullptr when the service is disabled, the bundle budget is
  /// exhausted, or `build` fails (callers fall back to §4.4).
  RefreshBundle* admit(const BundleKey& key, SimTime now, const BuildFn& build);

  /// Accumulate one damage (or scroll-destination) rect into every live
  /// bundle's delta. Call once per tick per rect, before any admission.
  void add_delta(const Rect& r);

  /// Drop every bundle and close the window (frame geometry change, codec
  /// registry churn, stop()).
  void invalidate();

  /// Live bundles (distinct operating points in the current window).
  std::size_t bundle_count() const { return bundles_.size(); }
  /// True while a refresh window is open.
  bool window_open() const { return window_open_; }
  /// Monotone checkpoint id of the most recently built bundle (0 = none).
  std::uint64_t checkpoint_id() const { return next_checkpoint_ - 1; }

  /// Lifetime totals for windows, bundles and absorbed demand.
  struct Stats {
    std::uint64_t windows_opened = 0;   ///< refresh windows begun
    std::uint64_t windows_closed = 0;   ///< windows expired (interval over)
    std::uint64_t bundles_built = 0;    ///< checkpoint encodes performed
    std::uint64_t bundle_bands = 0;     ///< bands across built bundles
    std::uint64_t bundles_served = 0;   ///< joiners served from a bundle
    std::uint64_t encodes_saved = 0;    ///< band encodes avoided by sharing
    std::uint64_t plis_absorbed = 0;    ///< demand folded into a live window
    std::uint64_t build_failures = 0;   ///< builder returned false
    std::uint64_t budget_rejections = 0; ///< admissions past max_bundles
    std::uint64_t delta_evictions = 0;  ///< bundles dropped (delta outgrew)
    std::uint64_t invalidations = 0;    ///< explicit invalidate() calls
    std::uint64_t delta_rects = 0;      ///< rects folded into bundle deltas
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  /// Drop every bundle (shared by window close and invalidate()).
  void drop_bundles();

  SnapshotOptions opts_;
  std::map<BundleKey, RefreshBundle> bundles_;
  bool window_open_ = false;
  SimTime window_anchor_us_ = 0;  ///< open instant, re-anchored per build
  std::uint64_t next_checkpoint_ = 1;
  Stats stats_;
};

}  // namespace ads::snapshot
