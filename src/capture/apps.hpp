// Scripted application painters — the workload generators that substitute
// for real applications on the AH. Each one reproduces a content class the
// draft's §4.2 discusses when motivating codec choice:
//   * TerminalApp   — computer-generated text, small localised updates
//   * SlideshowApp  — large flat areas, rare full-window transitions
//   * DocumentApp   — text page that scrolls (MoveRectangle workload)
//   * VideoApp      — photographic, every-pixel-changes content
//   * PaintApp      — sparse interactive strokes
//   * WebPageApp    — tiled incremental page loads (bursty, tile-aligned)
//   * EditingApp    — multi-presenter editing with rotating turns (the
//                     BFCP floor-handoff workload)
// Painters are deterministic functions of (seed, tick).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "image/image.hpp"
#include "util/prng.hpp"

namespace ads {

class AppPainter {
 public:
  AppPainter(std::int64_t width, std::int64_t height, Pixel background)
      : content_(width, height, background) {}
  virtual ~AppPainter() = default;

  /// Advance the application by one frame tick, mutating content().
  virtual void tick(std::uint64_t tick_index) = 0;

  /// Identifier used in benchmark output rows.
  virtual std::string_view name() const = 0;

  const Image& content() const { return content_; }

  /// React to a window resize: default reallocates and repaints nothing.
  virtual void resize(std::int64_t width, std::int64_t height);

 protected:
  Image content_;
};

/// Terminal emulator: dark background, characters appear cell by cell;
/// scrolls one line when the cursor passes the last row. Besides its
/// self-typing workload mode, it accepts injected input — the AH-side
/// "regenerate human interface events" hook (§1): wire AppHost's input
/// sink to inject_utf8()/inject_key() and participants literally type into
/// the shared terminal.
class TerminalApp final : public AppPainter {
 public:
  TerminalApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
              int chars_per_tick = 8);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "terminal"; }

  /// Queue text to be "typed" on upcoming ticks (ASCII subset rendered;
  /// other code points show as a block glyph).
  void inject_utf8(std::string_view utf8);
  /// Queue a key event; Enter maps to newline, Backspace erases.
  void inject_key(std::uint32_t java_keycode);

  std::uint64_t injected_chars() const { return injected_chars_; }

 private:
  void put_char(std::uint8_t glyph);
  void backspace();
  void newline();

  Prng rng_;
  int chars_per_tick_;
  std::int64_t cell_w_ = 8;
  std::int64_t cell_h_ = 16;
  std::int64_t cursor_col_ = 0;
  std::int64_t cursor_row_ = 0;
  std::string pending_input_;
  std::uint64_t injected_chars_ = 0;
};

/// Slide deck: every `ticks_per_slide` ticks the whole window repaints with
/// a new computer-generated layout; otherwise nothing changes.
class SlideshowApp final : public AppPainter {
 public:
  SlideshowApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
               int ticks_per_slide = 30);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "slideshow"; }

 private:
  void paint_slide();

  Prng rng_;
  int ticks_per_slide_;
};

/// Document viewer: a long synthetic text page scrolled by `pixels_per_tick`
/// each tick — the canonical MoveRectangle workload (§5.2.3).
class DocumentApp final : public AppPainter {
 public:
  DocumentApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
              std::int64_t pixels_per_tick = 16);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "document"; }

  std::int64_t scroll_per_tick() const { return pixels_per_tick_; }

 private:
  void render_viewport();

  Prng rng_;
  std::int64_t pixels_per_tick_;
  std::int64_t scroll_offset_ = 0;
  Image page_;  ///< the full document, taller than the window
};

/// Movie pane: smooth moving gradients plus per-pixel noise; every pixel
/// changes every tick (the content class "rendering the output of a modern
/// computer-generated animation application ... blurs the distinction").
class VideoApp final : public AppPainter {
 public:
  VideoApp(std::int64_t width, std::int64_t height, std::uint64_t seed);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "video"; }

 private:
  Prng rng_;
  double phase_ = 0.0;
};

/// Whiteboard: each tick draws a short stroke segment at a wandering
/// position — small, scattered damage.
class PaintApp final : public AppPainter {
 public:
  PaintApp(std::int64_t width, std::int64_t height, std::uint64_t seed);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "paint"; }

 private:
  Prng rng_;
  Point brush_;
  Pixel colour_;
};

/// Web browser: tiled incremental page loads. A navigation repaints the
/// window with the new page's skeleton (header band, sidebar, grey text
/// placeholders); the following ticks pop content tiles in a few at a time
/// in raster order — image tiles as gradients, text tiles as typeset lines
/// — until the page is loaded, then the page idles before the next
/// navigation. Damage is bursty and tile-aligned: many small distinct
/// rects per tick, the shape that exercises per-band cohort encode and the
/// E20 downscale rungs (a quarter-res viewer pays ~1/16 of each tile).
class WebPageApp final : public AppPainter {
 public:
  WebPageApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
             int tiles_per_tick = 3, int idle_ticks = 12);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "webpage"; }

  /// Completed navigations (full skeleton repaints) so far.
  std::uint64_t navigations() const { return navigations_; }

 private:
  void navigate();
  void load_tile(std::int64_t index);

  Prng rng_;
  int tiles_per_tick_;
  int idle_ticks_;
  std::int64_t tile_w_ = 96;
  std::int64_t tile_h_ = 64;
  std::int64_t cols_ = 0;
  std::int64_t rows_ = 0;
  std::int64_t next_tile_ = 0;  ///< raster-order load cursor
  int idle_left_ = 0;
  std::uint64_t navigations_ = 0;
  Pixel theme_{255, 255, 255, 255};
};

/// Collaborative editor: `presenters` authors share one canvas, each
/// owning a vertical strip. Every `ticks_per_turn` ticks the edit turn
/// rotates to the next presenter — the new owner's strip gets a coloured
/// focus border and subsequent edits (typeset lines at that presenter's
/// caret) land only there. Session harnesses mirror each rotation as a
/// BFCP floor release/grant pair (active_presenter() names who should hold
/// the floor), so the paper's Appendix A floor-control gate sees a
/// realistic multi-presenter handoff cadence.
class EditingApp final : public AppPainter {
 public:
  EditingApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
             int presenters = 3, int ticks_per_turn = 20);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "editing"; }

  /// Whose turn it is (0-based strip index).
  int active_presenter() const { return active_; }
  /// Completed turn rotations — the floor-handoff count a BFCP-driving
  /// harness should mirror.
  std::uint64_t handoffs() const { return handoffs_; }
  int presenters() const { return presenters_; }

 private:
  Rect strip(int presenter) const;
  void mark_active();

  Prng rng_;
  int presenters_;
  int ticks_per_turn_;
  int active_ = 0;
  std::uint64_t ticks_seen_ = 0;
  std::uint64_t handoffs_ = 0;
  std::vector<Point> carets_;  ///< per-presenter edit position
};

/// Factory by workload name ("terminal", "slideshow", "document", "video",
/// "paint", "webpage", "editing"); nullptr for unknown names.
std::unique_ptr<AppPainter> make_app(std::string_view name, std::int64_t width,
                                     std::int64_t height, std::uint64_t seed);

}  // namespace ads
