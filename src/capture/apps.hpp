// Scripted application painters — the workload generators that substitute
// for real applications on the AH. Each one reproduces a content class the
// draft's §4.2 discusses when motivating codec choice:
//   * TerminalApp   — computer-generated text, small localised updates
//   * SlideshowApp  — large flat areas, rare full-window transitions
//   * DocumentApp   — text page that scrolls (MoveRectangle workload)
//   * VideoApp      — photographic, every-pixel-changes content
//   * PaintApp      — sparse interactive strokes
// Painters are deterministic functions of (seed, tick).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "image/image.hpp"
#include "util/prng.hpp"

namespace ads {

class AppPainter {
 public:
  AppPainter(std::int64_t width, std::int64_t height, Pixel background)
      : content_(width, height, background) {}
  virtual ~AppPainter() = default;

  /// Advance the application by one frame tick, mutating content().
  virtual void tick(std::uint64_t tick_index) = 0;

  /// Identifier used in benchmark output rows.
  virtual std::string_view name() const = 0;

  const Image& content() const { return content_; }

  /// React to a window resize: default reallocates and repaints nothing.
  virtual void resize(std::int64_t width, std::int64_t height);

 protected:
  Image content_;
};

/// Terminal emulator: dark background, characters appear cell by cell;
/// scrolls one line when the cursor passes the last row. Besides its
/// self-typing workload mode, it accepts injected input — the AH-side
/// "regenerate human interface events" hook (§1): wire AppHost's input
/// sink to inject_utf8()/inject_key() and participants literally type into
/// the shared terminal.
class TerminalApp final : public AppPainter {
 public:
  TerminalApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
              int chars_per_tick = 8);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "terminal"; }

  /// Queue text to be "typed" on upcoming ticks (ASCII subset rendered;
  /// other code points show as a block glyph).
  void inject_utf8(std::string_view utf8);
  /// Queue a key event; Enter maps to newline, Backspace erases.
  void inject_key(std::uint32_t java_keycode);

  std::uint64_t injected_chars() const { return injected_chars_; }

 private:
  void put_char(std::uint8_t glyph);
  void backspace();
  void newline();

  Prng rng_;
  int chars_per_tick_;
  std::int64_t cell_w_ = 8;
  std::int64_t cell_h_ = 16;
  std::int64_t cursor_col_ = 0;
  std::int64_t cursor_row_ = 0;
  std::string pending_input_;
  std::uint64_t injected_chars_ = 0;
};

/// Slide deck: every `ticks_per_slide` ticks the whole window repaints with
/// a new computer-generated layout; otherwise nothing changes.
class SlideshowApp final : public AppPainter {
 public:
  SlideshowApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
               int ticks_per_slide = 30);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "slideshow"; }

 private:
  void paint_slide();

  Prng rng_;
  int ticks_per_slide_;
};

/// Document viewer: a long synthetic text page scrolled by `pixels_per_tick`
/// each tick — the canonical MoveRectangle workload (§5.2.3).
class DocumentApp final : public AppPainter {
 public:
  DocumentApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
              std::int64_t pixels_per_tick = 16);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "document"; }

  std::int64_t scroll_per_tick() const { return pixels_per_tick_; }

 private:
  void render_viewport();

  Prng rng_;
  std::int64_t pixels_per_tick_;
  std::int64_t scroll_offset_ = 0;
  Image page_;  ///< the full document, taller than the window
};

/// Movie pane: smooth moving gradients plus per-pixel noise; every pixel
/// changes every tick (the content class "rendering the output of a modern
/// computer-generated animation application ... blurs the distinction").
class VideoApp final : public AppPainter {
 public:
  VideoApp(std::int64_t width, std::int64_t height, std::uint64_t seed);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "video"; }

 private:
  Prng rng_;
  double phase_ = 0.0;
};

/// Whiteboard: each tick draws a short stroke segment at a wandering
/// position — small, scattered damage.
class PaintApp final : public AppPainter {
 public:
  PaintApp(std::int64_t width, std::int64_t height, std::uint64_t seed);
  void tick(std::uint64_t tick_index) override;
  std::string_view name() const override { return "paint"; }

 private:
  Prng rng_;
  Point brush_;
  Pixel colour_;
};

/// Factory by workload name ("terminal", "slideshow", "document", "video",
/// "paint"); nullptr for unknown names.
std::unique_ptr<AppPainter> make_app(std::string_view name, std::int64_t width,
                                     std::int64_t height, std::uint64_t seed);

}  // namespace ads
