#include "capture/apps.hpp"

#include <algorithm>
#include <cmath>

namespace ads {
namespace {

constexpr Pixel kTerminalBg{12, 12, 16, 255};
constexpr Pixel kTerminalFg{180, 220, 180, 255};
constexpr Pixel kPageBg{250, 250, 248, 255};

/// Deterministic "glyph": a 2-colour pattern keyed by character value,
/// painted into a cell. Stands in for font rendering — what matters for the
/// pipeline is that distinct characters produce distinct pixels.
void draw_glyph(Image& img, const Rect& cell, std::uint8_t glyph, Pixel fg, Pixel bg) {
  img.fill_rect(cell, bg);
  // 5x7 pseudo-bitmap from the glyph bits.
  std::uint64_t bits = 0x5DEECE66Dull * (glyph + 17) + 0xB;
  for (int gy = 0; gy < 7; ++gy) {
    for (int gx = 0; gx < 5; ++gx) {
      bits = bits * 6364136223846793005ull + 1442695040888963407ull;
      if ((bits >> 40) & 1) {
        const Rect dot{cell.left + 1 + gx, cell.top + 2 + gy * 2, 1, 2};
        img.fill_rect(intersect(dot, cell), fg);
      }
    }
  }
}

}  // namespace

void AppPainter::resize(std::int64_t width, std::int64_t height) {
  Image next(width, height, kBlack);
  next.blit(content_, content_.bounds(), {0, 0});
  content_ = std::move(next);
}

// ---------------------------------------------------------------- Terminal

TerminalApp::TerminalApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
                         int chars_per_tick)
    : AppPainter(width, height, kTerminalBg),
      rng_(seed),
      chars_per_tick_(chars_per_tick) {}

void TerminalApp::put_char(std::uint8_t glyph) {
  const Rect cell{cursor_col_ * cell_w_, cursor_row_ * cell_h_, cell_w_, cell_h_};
  draw_glyph(content_, cell, glyph, kTerminalFg, kTerminalBg);
  if (++cursor_col_ >= content_.width() / cell_w_) newline();
}

void TerminalApp::newline() {
  cursor_col_ = 0;
  const std::int64_t rows = content_.height() / cell_h_;
  if (cursor_row_ + 1 >= rows) {
    // Scroll the terminal one line (content moves up).
    content_.move_rect({0, cell_h_, content_.width(), (rows - 1) * cell_h_}, {0, 0});
    content_.fill_rect({0, (rows - 1) * cell_h_, content_.width(), cell_h_},
                       kTerminalBg);
  } else {
    ++cursor_row_;
  }
}

void TerminalApp::backspace() {
  if (cursor_col_ == 0) return;
  --cursor_col_;
  content_.fill_rect({cursor_col_ * cell_w_, cursor_row_ * cell_h_, cell_w_, cell_h_},
                     kTerminalBg);
}

void TerminalApp::inject_utf8(std::string_view utf8) {
  pending_input_.append(utf8);
}

void TerminalApp::inject_key(std::uint32_t java_keycode) {
  switch (java_keycode) {
    case 0x0A: pending_input_.push_back('\n'); break;  // VK_ENTER
    case 0x08: pending_input_.push_back('\b'); break;  // VK_BACK_SPACE
    default: break;  // other keys have no terminal-visible effect here
  }
}

void TerminalApp::tick(std::uint64_t) {
  // Injected input takes priority over the self-typing workload: a tick
  // with pending participant input renders that instead.
  if (!pending_input_.empty()) {
    for (char c : pending_input_) {
      ++injected_chars_;
      const auto b = static_cast<std::uint8_t>(c);
      if (c == '\n') {
        newline();
      } else if (c == '\b') {
        backspace();
      } else if (b >= 32 && b < 127) {
        put_char(b);
      } else {
        put_char(0x7F);  // block glyph for non-ASCII bytes
      }
    }
    pending_input_.clear();
    return;
  }
  for (int i = 0; i < chars_per_tick_; ++i) {
    if (rng_.chance(0.05)) {
      newline();
    } else {
      put_char(static_cast<std::uint8_t>(32 + rng_.below(95)));
    }
  }
}

// --------------------------------------------------------------- Slideshow

SlideshowApp::SlideshowApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
                           int ticks_per_slide)
    : AppPainter(width, height, kWhite), rng_(seed), ticks_per_slide_(ticks_per_slide) {
  paint_slide();
}

void SlideshowApp::paint_slide() {
  const Pixel bg{static_cast<std::uint8_t>(200 + rng_.below(55)),
                 static_cast<std::uint8_t>(200 + rng_.below(55)),
                 static_cast<std::uint8_t>(200 + rng_.below(55)), 255};
  content_.fill(bg);
  // Title bar.
  content_.fill_rect({0, 0, content_.width(), content_.height() / 8},
                     Pixel{static_cast<std::uint8_t>(rng_.below(128)),
                           static_cast<std::uint8_t>(rng_.below(128)),
                           static_cast<std::uint8_t>(128 + rng_.below(127)), 255});
  // A handful of content blocks ("bullet text", "figures").
  const int blocks = static_cast<int>(3 + rng_.below(5));
  for (int i = 0; i < blocks; ++i) {
    const std::int64_t w = static_cast<std::int64_t>(rng_.range(40, content_.width() / 2));
    const std::int64_t h = static_cast<std::int64_t>(rng_.range(10, content_.height() / 4));
    const std::int64_t x = static_cast<std::int64_t>(
        rng_.range(0, std::max<std::int64_t>(1, content_.width() - w)));
    const std::int64_t y = static_cast<std::int64_t>(
        rng_.range(content_.height() / 8,
                   std::max<std::int64_t>(content_.height() / 8 + 1,
                                          content_.height() - h)));
    content_.fill_rect({x, y, w, h},
                       Pixel{static_cast<std::uint8_t>(rng_.below(256)),
                             static_cast<std::uint8_t>(rng_.below(256)),
                             static_cast<std::uint8_t>(rng_.below(256)), 255});
  }
}

void SlideshowApp::tick(std::uint64_t tick_index) {
  if (ticks_per_slide_ > 0 &&
      tick_index % static_cast<std::uint64_t>(ticks_per_slide_) == 0 &&
      tick_index != 0) {
    paint_slide();
  }
}

// ---------------------------------------------------------------- Document

DocumentApp::DocumentApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
                         std::int64_t pixels_per_tick)
    : AppPainter(width, height, kPageBg),
      rng_(seed),
      pixels_per_tick_(pixels_per_tick),
      page_(width, height * 8, kPageBg) {
  // Typeset the synthetic page once: grey text lines with ragged right
  // margins and paragraph gaps.
  std::int64_t y = 8;
  while (y < page_.height() - 4) {
    if (rng_.chance(0.12)) {
      y += 14;  // paragraph break
      continue;
    }
    const std::int64_t line_w =
        width * static_cast<std::int64_t>(rng_.range(55, 96)) / 100;
    const auto shade = static_cast<std::uint8_t>(40 + rng_.below(60));
    page_.fill_rect({8, y, line_w - 16, 3}, Pixel{shade, shade, shade, 255});
    y += 7;
  }
  render_viewport();
}

void DocumentApp::render_viewport() {
  content_.blit(page_, {0, scroll_offset_, content_.width(), content_.height()},
                {0, 0});
}

void DocumentApp::tick(std::uint64_t) {
  scroll_offset_ =
      std::min(scroll_offset_ + pixels_per_tick_, page_.height() - content_.height());
  if (scroll_offset_ >= page_.height() - content_.height()) scroll_offset_ = 0;
  render_viewport();
}

// ------------------------------------------------------------------- Video

VideoApp::VideoApp(std::int64_t width, std::int64_t height, std::uint64_t seed)
    : AppPainter(width, height, kBlack), rng_(seed) {}

void VideoApp::tick(std::uint64_t) {
  phase_ += 0.15;
  const double fx = 2.0 * M_PI / static_cast<double>(std::max<std::int64_t>(1, content_.width()));
  const double fy = 2.0 * M_PI / static_cast<double>(std::max<std::int64_t>(1, content_.height()));
  for (std::int64_t y = 0; y < content_.height(); ++y) {
    for (std::int64_t x = 0; x < content_.width(); ++x) {
      const double v =
          128 + 70 * std::sin(fx * static_cast<double>(x) * 3 + phase_) *
                    std::cos(fy * static_cast<double>(y) * 2 - phase_ * 0.7);
      const int noise = static_cast<int>(rng_.range(-10, 10));
      const auto lum = static_cast<std::uint8_t>(std::clamp(v + noise, 0.0, 255.0));
      content_.set(x, y,
                   Pixel{lum, static_cast<std::uint8_t>(255 - lum),
                         static_cast<std::uint8_t>((lum * 2) & 0xFF), 255});
    }
  }
}

// ------------------------------------------------------------------- Paint

PaintApp::PaintApp(std::int64_t width, std::int64_t height, std::uint64_t seed)
    : AppPainter(width, height, kWhite), rng_(seed) {
  brush_ = {width / 2, height / 2};
  colour_ = Pixel{200, 30, 30, 255};
}

void PaintApp::tick(std::uint64_t) {
  if (rng_.chance(0.05)) {
    colour_ = Pixel{static_cast<std::uint8_t>(rng_.below(220)),
                    static_cast<std::uint8_t>(rng_.below(220)),
                    static_cast<std::uint8_t>(rng_.below(220)), 255};
  }
  for (int step = 0; step < 12; ++step) {
    brush_.x = std::clamp<std::int64_t>(brush_.x + rng_.range(-6, 6), 0,
                                        content_.width() - 4);
    brush_.y = std::clamp<std::int64_t>(brush_.y + rng_.range(-6, 6), 0,
                                        content_.height() - 4);
    content_.fill_rect({brush_.x, brush_.y, 4, 4}, colour_);
  }
}

// ---------------------------------------------------------------- Web page

WebPageApp::WebPageApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
                       int tiles_per_tick, int idle_ticks)
    : AppPainter(width, height, kPageBg),
      rng_(seed),
      tiles_per_tick_(tiles_per_tick),
      idle_ticks_(idle_ticks) {
  tile_w_ = std::min<std::int64_t>(tile_w_, std::max<std::int64_t>(1, width));
  tile_h_ = std::min<std::int64_t>(tile_h_, std::max<std::int64_t>(1, height));
  cols_ = (width + tile_w_ - 1) / tile_w_;
  rows_ = (height + tile_h_ - 1) / tile_h_;
  navigate();
}

void WebPageApp::navigate() {
  ++navigations_;
  theme_ = Pixel{static_cast<std::uint8_t>(rng_.below(96)),
                 static_cast<std::uint8_t>(rng_.below(96)),
                 static_cast<std::uint8_t>(96 + rng_.below(159)), 255};
  // Skeleton: page background, header band, left sidebar, grey placeholder
  // lines where content tiles will land.
  content_.fill(kPageBg);
  content_.fill_rect({0, 0, content_.width(), content_.height() / 10}, theme_);
  content_.fill_rect({0, content_.height() / 10, content_.width() / 6,
                      content_.height() - content_.height() / 10},
                     Pixel{235, 235, 238, 255});
  for (std::int64_t y = content_.height() / 10 + 8; y < content_.height() - 4;
       y += 12) {
    content_.fill_rect({content_.width() / 6 + 8, y,
                        content_.width() - content_.width() / 6 - 16, 3},
                       Pixel{210, 210, 210, 255});
  }
  next_tile_ = 0;
  idle_left_ = 0;
}

void WebPageApp::load_tile(std::int64_t index) {
  const std::int64_t col = index % cols_;
  const std::int64_t row = index / cols_;
  const Rect tile = intersect(
      {col * tile_w_, row * tile_h_, tile_w_, tile_h_}, content_.bounds());
  if (tile.empty()) return;
  if (rng_.chance(0.3)) {
    // "Image" tile: a two-axis gradient keyed to the page theme.
    for (std::int64_t y = tile.top; y < tile.bottom(); ++y) {
      for (std::int64_t x = tile.left; x < tile.right(); ++x) {
        const auto gx = static_cast<std::uint8_t>(
            (x - tile.left) * 255 / std::max<std::int64_t>(1, tile.width - 1));
        const auto gy = static_cast<std::uint8_t>(
            (y - tile.top) * 255 / std::max<std::int64_t>(1, tile.height - 1));
        content_.set(x, y, Pixel{static_cast<std::uint8_t>((theme_.r + gx) / 2),
                                 static_cast<std::uint8_t>((theme_.g + gy) / 2),
                                 theme_.b, 255});
      }
    }
  } else {
    // "Text" tile: typeset dark lines over the placeholder skeleton.
    content_.fill_rect(tile, kPageBg);
    for (std::int64_t y = tile.top + 4; y + 3 < tile.bottom(); y += 9) {
      const std::int64_t w =
          tile.width * static_cast<std::int64_t>(rng_.range(50, 95)) / 100;
      const auto shade = static_cast<std::uint8_t>(30 + rng_.below(50));
      content_.fill_rect(intersect({tile.left + 4, y, w - 8, 3}, tile),
                         Pixel{shade, shade, shade, 255});
    }
  }
}

void WebPageApp::tick(std::uint64_t) {
  const std::int64_t total = cols_ * rows_;
  if (next_tile_ >= total) {
    // Page fully loaded: idle, then navigate to the next page.
    if (++idle_left_ > idle_ticks_) navigate();
    return;
  }
  for (int i = 0; i < tiles_per_tick_ && next_tile_ < total; ++i) {
    load_tile(next_tile_++);
  }
}

// ----------------------------------------------------------------- Editing

namespace {

/// Presenter accent colours — distinct per strip so a floor handoff is
/// visible as a border-colour change.
constexpr Pixel kPresenterColours[] = {
    {200, 60, 60, 255}, {60, 140, 60, 255}, {60, 80, 200, 255},
    {180, 140, 40, 255}, {140, 60, 180, 255}, {40, 160, 160, 255},
};

}  // namespace

EditingApp::EditingApp(std::int64_t width, std::int64_t height, std::uint64_t seed,
                       int presenters, int ticks_per_turn)
    : AppPainter(width, height, kWhite),
      rng_(seed),
      presenters_(std::max(1, presenters)),
      ticks_per_turn_(std::max(1, ticks_per_turn)) {
  carets_.resize(static_cast<std::size_t>(presenters_));
  for (int p = 0; p < presenters_; ++p) {
    const Rect s = strip(p);
    carets_[static_cast<std::size_t>(p)] = {s.left + 6, s.top + 6};
  }
  mark_active();
}

Rect EditingApp::strip(int presenter) const {
  const std::int64_t w = content_.width() / presenters_;
  const std::int64_t left = presenter * w;
  // Last strip absorbs the division remainder.
  const std::int64_t width =
      presenter + 1 == presenters_ ? content_.width() - left : w;
  return {left, 0, width, content_.height()};
}

void EditingApp::mark_active() {
  // Repaint every strip border; only the active presenter's is coloured.
  for (int p = 0; p < presenters_; ++p) {
    const Rect s = strip(p);
    const Pixel edge =
        p == active_
            ? kPresenterColours[static_cast<std::size_t>(p) %
                                std::size(kPresenterColours)]
            : Pixel{225, 225, 225, 255};
    content_.fill_rect({s.left, s.top, s.width, 3}, edge);
    content_.fill_rect({s.left, s.bottom() - 3, s.width, 3}, edge);
    content_.fill_rect({s.left, s.top, 3, s.height}, edge);
    content_.fill_rect({s.right() - 3, s.top, 3, s.height}, edge);
  }
}

void EditingApp::tick(std::uint64_t) {
  if (ticks_seen_ != 0 &&
      ticks_seen_ % static_cast<std::uint64_t>(ticks_per_turn_) == 0) {
    active_ = (active_ + 1) % presenters_;
    ++handoffs_;
    mark_active();
  }
  ++ticks_seen_;

  // The floor holder types a few words at its caret, wrapping inside its
  // strip and restarting from the top when the strip fills.
  const Rect s = strip(active_);
  Point& caret = carets_[static_cast<std::size_t>(active_)];
  const Pixel ink = kPresenterColours[static_cast<std::size_t>(active_) %
                                      std::size(kPresenterColours)];
  for (int i = 0; i < 6; ++i) {
    const std::int64_t w = static_cast<std::int64_t>(rng_.range(8, 28));
    if (caret.x + w > s.right() - 6) {
      caret.x = s.left + 6;
      caret.y += 8;
      if (caret.y + 3 > s.bottom() - 6) caret.y = s.top + 6;
    }
    content_.fill_rect({caret.x, caret.y, w, 3},
                       rng_.chance(0.8) ? Pixel{60, 60, 60, 255} : ink);
    caret.x += w + 4;
  }
}

std::unique_ptr<AppPainter> make_app(std::string_view name, std::int64_t width,
                                     std::int64_t height, std::uint64_t seed) {
  if (name == "terminal") return std::make_unique<TerminalApp>(width, height, seed);
  if (name == "slideshow") return std::make_unique<SlideshowApp>(width, height, seed);
  if (name == "document") return std::make_unique<DocumentApp>(width, height, seed);
  if (name == "video") return std::make_unique<VideoApp>(width, height, seed);
  if (name == "paint") return std::make_unique<PaintApp>(width, height, seed);
  if (name == "webpage") return std::make_unique<WebPageApp>(width, height, seed);
  if (name == "editing") return std::make_unique<EditingApp>(width, height, seed);
  return nullptr;
}

}  // namespace ads
