#include "capture/screen_capturer.hpp"

namespace ads {

ScreenCapturer::ScreenCapturer(WindowManager& wm, std::int64_t width,
                               std::int64_t height, std::int64_t damage_tile)
    : wm_(wm),
      desktop_(width, height, Pixel{40, 44, 52, 255}),
      shared_view_(width, height, kBlack),
      damage_(damage_tile) {}

void ScreenCapturer::attach(WindowId id, std::unique_ptr<AppPainter> app) {
  if (const Window* w = wm_.find(id)) {
    if (app->content().width() != w->frame.width ||
        app->content().height() != w->frame.height) {
      app->resize(w->frame.width, w->frame.height);
    }
  }
  apps_[id] = std::move(app);
}

AppPainter* ScreenCapturer::app(WindowId id) {
  auto it = apps_.find(id);
  return it == apps_.end() ? nullptr : it->second.get();
}

void ScreenCapturer::set_screen_size(std::int64_t width, std::int64_t height) {
  if (width <= 0 || height <= 0) return;
  if (width == desktop_.width() && height == desktop_.height()) return;
  desktop_ = Image(width, height, Pixel{40, 44, 52, 255});
  shared_view_ = Image(width, height, kBlack);
}

void ScreenCapturer::composite() {
  desktop_.fill(Pixel{40, 44, 52, 255});
  for (const Window& w : wm_.stacking_order()) {
    auto it = apps_.find(w.id);
    if (it == apps_.end()) {
      desktop_.fill_rect(w.frame, Pixel{90, 90, 90, 255});
      continue;
    }
    AppPainter& app = *it->second;
    if (app.content().width() != w.frame.width ||
        app.content().height() != w.frame.height) {
      app.resize(w.frame.width, w.frame.height);
    }
    desktop_.blit(app.content(), app.content().bounds(), {w.frame.left, w.frame.top});
  }

  // Export view: black except the visible parts of shared windows.
  shared_view_.fill(kBlack);
  const Region shared_region = wm_.visible_shared_region();
  for (const Rect& r : shared_region.rects()) {
    const Rect clipped = intersect(r, desktop_.bounds());
    shared_view_.blit(desktop_, clipped, {clipped.left, clipped.top});
  }
}

CaptureResult ScreenCapturer::capture() {
  for (auto& [id, app] : apps_) {
    if (wm_.exists(id)) app->tick(tick_);
  }
  ++tick_;
  composite();

  CaptureResult result;
  result.damage = damage_.update(shared_view_);
  result.frame = &shared_view_;
  return result;
}

}  // namespace ads
