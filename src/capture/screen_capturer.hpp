// Screen capture substitute: composites the window manager's windows (each
// backed by an AppPainter) into a desktop framebuffer, blanks everything
// outside the visible shared region ("must blank all the nonshared
// windows", §2), and extracts damage rectangles via tile hashing.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "capture/apps.hpp"
#include "image/damage.hpp"
#include "image/image.hpp"
#include "wm/window_manager.hpp"

namespace ads {

struct CaptureResult {
  /// The shared view: desktop-sized, non-shared areas blanked.
  const Image* frame = nullptr;
  /// Changed areas since the previous capture (desktop coordinates).
  std::vector<Rect> damage;
};

class ScreenCapturer {
 public:
  ScreenCapturer(WindowManager& wm, std::int64_t width, std::int64_t height,
                 std::int64_t damage_tile = 32);

  /// Attach a content source to a window. The painter is resized to the
  /// window's current frame.
  void attach(WindowId id, std::unique_ptr<AppPainter> app);
  AppPainter* app(WindowId id);

  /// Advance all attached applications one tick and recomposite.
  CaptureResult capture();

  /// Force the next capture to report full damage (PLI refresh, §5.3.1).
  void force_full_damage() { damage_.reset(); }

  /// Resize the host desktop (display-mode change). Both framebuffers are
  /// reallocated; the DamageTracker's resize fast path reports the whole new
  /// frame as damage on the next capture. No-op on a non-positive or
  /// unchanged size.
  void set_screen_size(std::int64_t width, std::int64_t height);

  const Image& last_frame() const { return shared_view_; }
  const Image& desktop() const { return desktop_; }
  std::int64_t width() const { return desktop_.width(); }
  std::int64_t height() const { return desktop_.height(); }
  std::uint64_t ticks() const { return tick_; }

 private:
  void composite();

  WindowManager& wm_;
  std::map<WindowId, std::unique_ptr<AppPainter>> apps_;
  Image desktop_;      ///< all windows, as the AH user sees them
  Image shared_view_;  ///< blanked view exported to participants
  DamageTracker damage_;
  std::uint64_t tick_ = 0;
};

}  // namespace ads
