#include "relay/relay.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "rtp/rtp_packet.hpp"
#include "util/prng.hpp"

namespace ads::relay {

RelayOptions RelayNode::validated(RelayOptions opts) {
  if (opts.max_legs == 0) {
    throw std::invalid_argument("RelayOptions::max_legs must be >= 1");
  }
  if (opts.report_interval_us == 0) {
    throw std::invalid_argument("RelayOptions::report_interval_us must be > 0");
  }
  if (opts.nack_flush_us == 0) opts.nack_flush_us = 1;
  opts.nack_holdoff_us = std::max(opts.nack_holdoff_us, opts.nack_flush_us);
  if (opts.retransmission_cache < 16) opts.retransmission_cache = 16;
  if (opts.leg_rate_bps != 0 && opts.leg_burst_bytes < 1500) {
    opts.leg_burst_bytes = 1500;
  }
  if (opts.adaptation.min_rate_bps > opts.adaptation.max_rate_bps) {
    std::swap(opts.adaptation.min_rate_bps, opts.adaptation.max_rate_bps);
  }
  if (opts.probe_interval_us == 0) opts.probe_interval_us = 1;
  if (opts.probe_count < 1) opts.probe_count = 1;
  if (opts.watchdog_jitter < 0.0) opts.watchdog_jitter = 0.0;
  return opts;
}

RelayNode::RelayNode(EventLoop& loop, RelayOptions opts)
    : loop_(loop),
      opts_(validated(std::move(opts))),
      owned_tel_(opts_.telemetry ? nullptr : std::make_unique<telemetry::Telemetry>()),
      tel_(opts_.telemetry ? opts_.telemetry : owned_tel_.get()),
      cache_(opts_.retransmission_cache),
      ssrc_(Prng(opts_.seed).next_u32()),
      wd_rng_(opts_.seed ^ 0xFA11FA11ull) {
  tel_->metrics.add_collector(this, [this] { publish_metrics(); });
}

void RelayNode::fold_stats(const Stats& prior, std::uint64_t rtx_hits,
                           std::uint64_t rtx_misses,
                           std::uint64_t rtx_evictions) {
  stats_ = prior;
  rtx_hits_base_ += rtx_hits;
  rtx_misses_base_ += rtx_misses;
  rtx_evictions_base_ += rtx_evictions;
}

RelayNode::~RelayNode() {
  // Quiesce (idempotent when the session already called stop()) and push
  // one final stopped-state snapshot before the collector withdraws: the
  // per-leg backlog/rate gauges publish zero, so a destroyed node never
  // leaves last-known readings dangling in the registry to steer upstream
  // adaptation on fiction.
  stop();
  publish_metrics();
  tel_->metrics.remove_collectors(this);
}

// ----- downstream legs ------------------------------------------------

LegId RelayNode::add_leg(LegEndpoint endpoint, LegConfig cfg) {
  if (legs_.size() >= opts_.max_legs) {
    throw std::invalid_argument("RelayNode: leg count would exceed max_legs");
  }
  const LegId id = next_leg_id_++;
  const bool udp = endpoint.kind == LegEndpoint::Kind::kUdp;
  // With adaptation on, the controller's initial budget seeds the bucket
  // (mirrors AppHost::add_participant); the static leg_rate_bps applies to
  // the non-adaptive path.
  const std::uint64_t rate_bps =
      !udp ? 0
           : cfg.rate_bps.value_or(opts_.adaptation.enabled
                                       ? opts_.adaptation.initial_rate_bps
                                       : opts_.leg_rate_bps);
  auto [it, inserted] = legs_.try_emplace(
      id, rate_bps, cfg.burst_bytes.value_or(opts_.leg_burst_bytes),
      udp ? rate::Transport::kUdp : rate::Transport::kTcp, opts_.adaptation);
  it->second.ep = std::move(endpoint);
  return id;
}

void RelayNode::remove_leg(LegId id) {
  legs_.erase(id);
  for (auto* table : {&pending_nack_, &requested_upstream_}) {
    for (auto& [seq, pending] : *table) pending.waiters.erase(id);
  }
}

const ReportBlock* RelayNode::leg_last_rr(LegId id) const {
  auto it = legs_.find(id);
  if (it == legs_.end() || !it->second.last_rr) return nullptr;
  return &*it->second.last_rr;
}

const rate::OperatingPoint* RelayNode::leg_operating_point(LegId id) const {
  auto it = legs_.find(id);
  return it == legs_.end() ? nullptr : &it->second.rate_ctrl.current();
}

// ----- upstream ingest ------------------------------------------------

void RelayNode::on_upstream_datagram(Bytes datagram) {
  switch (classify_packet(datagram)) {
    case PacketKind::kRtp: {
      if (datagram.size() < RtpPacket::kHeaderSize) {
        ++stats_.decode_errors;
        return;
      }
      // Zero-copy forward requires the canonical fixed header the AH emits
      // (V=2, no padding/extension/CSRC) — anything else is not ours.
      if (datagram[0] != 0x80) {
        ++stats_.decode_errors;
        return;
      }
      const bool marker = (datagram[1] & 0x80) != 0;
      const std::uint8_t pt = datagram[1] & 0x7F;
      const std::uint16_t seq =
          static_cast<std::uint16_t>(datagram[2] << 8 | datagram[3]);
      const std::uint32_t ts = static_cast<std::uint32_t>(datagram[4]) << 24 |
                               static_cast<std::uint32_t>(datagram[5]) << 16 |
                               static_cast<std::uint32_t>(datagram[6]) << 8 |
                               datagram[7];
      const std::uint32_t ssrc = static_cast<std::uint32_t>(datagram[8]) << 24 |
                                 static_cast<std::uint32_t>(datagram[9]) << 16 |
                                 static_cast<std::uint32_t>(datagram[10]) << 8 |
                                 datagram[11];
      const std::size_t payload_len = datagram.size() - RtpPacket::kHeaderSize;
      // Ownership transfer, not a copy: the received datagram becomes the
      // pooled buffer every leg's PacketView (and the cache entry) shares.
      buf::BufRef buf = pool_.acquire(0);
      buf.bytes() = std::move(datagram);
      ingest_media(PacketView::build(marker, pt, seq, ts, ssrc, std::move(buf),
                                     RtpPacket::kHeaderSize, payload_len));
      return;
    }
    case PacketKind::kRtcp:
      if (frozen()) return;  // nothing flows down while orphaned/stalled
      handle_upstream_rtcp(datagram);
      forward_control(datagram);
      return;
    case PacketKind::kBfcp:
      if (frozen()) return;
      forward_control(datagram);
      return;
    case PacketKind::kUnknown:
      ++stats_.decode_errors;
      return;
  }
}

void RelayNode::on_upstream_packet(const PacketView& pkt) { ingest_media(pkt); }

std::size_t RelayNode::on_upstream_batch(std::span<const PacketView> pkts) {
  for (const PacketView& pkt : pkts) ingest_media(pkt);
  return pkts.size();
}

void RelayNode::on_upstream_stream(BytesView data) {
  upstream_deframer_.feed(data);
  while (auto packet = upstream_deframer_.next()) {
    dispatch_upstream(std::move(*packet));
  }
}

void RelayNode::dispatch_upstream(Bytes datagram) {
  on_upstream_datagram(std::move(datagram));
}

void RelayNode::ingest_media(const PacketView& v) {
  if (frozen()) {
    // §(c) graceful degradation: an orphaned (or stalled) node freezes
    // forwarding — late packets from a dead upstream must not leak into the
    // subtree mid-failover, and they must not count as liveness.
    ++stats_.frozen_drops;
    return;
  }
  if (have_upstream_ssrc_ && v.ssrc() != upstream_ssrc_) {
    // A different SSRC is a new upstream epoch (a re-parented link or a
    // restarted source), not a storm of duplicates/decode errors: reset
    // ext-seq tracking, the duplicate filter and the repair state, then
    // learn the new identity below.
    ++stats_.ssrc_epochs;
    begin_upstream_epoch();
  }
  if (!have_upstream_ssrc_) {
    upstream_ssrc_ = v.ssrc();
    have_upstream_ssrc_ = true;
    if (had_prev_epoch_seq_ && v.ssrc() == prev_epoch_ssrc_) {
      // Same stream under a new parent: the 16-bit gap between the last
      // packet of the old epoch and the first of this one is the media
      // lost across the failover blackout. A first packet *behind* the old
      // high-water mark is reordering, not loss.
      const auto gap = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(v.sequence() - prev_epoch_highest_) - 1);
      if (gap < 0x8000) stats_.failover_lost_packets += gap;
    }
    had_prev_epoch_seq_ = false;
  }
  on_upstream_activity();
  if (awaiting_resync_) {
    // First media of the adopted epoch: the §4.4 resync is under way.
    awaiting_resync_ = false;
    resync_duration_us_ = loop_.now() - adopt_at_us_;
  }
  ++stats_.upstream_packets;
  stats_.upstream_bytes += v.wire_size();

  // Header-only bookkeeping packet: the receiver reads header fields and
  // arrival time, never the payload.
  RtpPacket hdr;
  hdr.marker = v.marker();
  hdr.payload_type = v.payload_type();
  hdr.sequence = v.sequence();
  hdr.timestamp = v.timestamp();
  hdr.ssrc = v.ssrc();
  const bool fresh = receiver_.on_packet(hdr, loop_.now());

  cache_.put(v);  // refcount bump: the subtree's repair store shares the buffer

  if (!fresh) {
    // Network duplicate (or probation) — the subtree saw this one already.
    ++stats_.upstream_duplicates;
    return;
  }

  // A repair we requested upstream goes only to the legs that asked for it;
  // relay-detected gaps (all_legs) were never forwarded, so everyone gets
  // those.
  auto wait = requested_upstream_.find(v.sequence());
  if (wait != requested_upstream_.end() && !wait->second.all_legs) {
    ++stats_.repairs_forwarded;
    for (LegId id : wait->second.waiters) {
      auto leg = legs_.find(id);
      if (leg != legs_.end()) forward_to_leg(id, leg->second, v);
    }
    for (LegId id : wait->second.waiters) {
      auto leg = legs_.find(id);
      if (leg != legs_.end()) flush_leg(leg->second);
    }
    requested_upstream_.erase(wait);
    queue_gap_nacks();
    return;
  }
  if (wait != requested_upstream_.end()) {
    ++stats_.repairs_forwarded;
    requested_upstream_.erase(wait);
  }

  for (auto& [id, leg] : legs_) forward_to_leg(id, leg, v);
  for (auto& [id, leg] : legs_) flush_leg(leg);

  // The relay NACKs upstream for its own reception gaps too — a loss on the
  // upstream link would otherwise starve the whole subtree.
  queue_gap_nacks();
}

// ----- per-leg forwarding --------------------------------------------

void RelayNode::forward_to_leg(LegId id, LegState& leg, const PacketView& v) {
  (void)id;
  const SimTime now = loop_.now();
  if (leg.ep.kind == LegEndpoint::Kind::kTcp) {
    // §7 backlog gate, per packet: a slow leaf sheds its own traffic. The
    // viewer's NACK→PLI ladder recovers the gap from the relay's cache.
    if (opts_.leg_backlog_limit != 0 && leg.ep.backlog &&
        leg.ep.backlog() + leg.stream_carry.size() > opts_.leg_backlog_limit) {
      ++leg.drops_backlog;
      ++stats_.leg_drops_backlog;
      return;
    }
    if (v.wire_size() > 0xFFFF) return;  // unframeable; cannot happen for MTU payloads
    ++leg.forwarded;
    ++stats_.forwarded_packets;
    stats_.forwarded_bytes += v.framed_size();
    if (leg.ep.write_gather) {
      // Same gather discipline as AppHost::transmit_view: carry + RFC 4571
      // prefix + RTP header + shared payload in one offer, only the
      // unaccepted suffix is re-staged (and counted as a copy).
      std::array<BytesView, 3> parts;
      std::size_t n = 0;
      if (!leg.stream_carry.empty()) parts[n++] = BytesView(leg.stream_carry);
      parts[n++] = v.framed_header();
      parts[n++] = v.payload();
      const std::span<const BytesView> offer(parts.data(), n);
      std::size_t wrote = leg.ep.write_gather ? leg.ep.write_gather(offer) : 0;
      Bytes carry;
      for (const BytesView& part : offer) {
        const std::size_t taken = std::min(wrote, part.size());
        wrote -= taken;
        if (taken < part.size()) {
          carry.insert(carry.end(),
                       part.begin() + static_cast<std::ptrdiff_t>(taken),
                       part.end());
        }
      }
      stats_.payload_bytes_copied += carry.size();
      leg.stream_carry = std::move(carry);
      return;
    }
    // Staged fallback for gather-unaware endpoints.
    const BytesView fh = v.framed_header();
    const BytesView pl = v.payload();
    stats_.payload_bytes_copied += v.framed_size();
    leg.stream_carry.insert(leg.stream_carry.end(), fh.begin(), fh.end());
    leg.stream_carry.insert(leg.stream_carry.end(), pl.begin(), pl.end());
    if (leg.ep.write_stream) {
      const std::size_t wrote = leg.ep.write_stream(leg.stream_carry);
      leg.stream_carry.erase(
          leg.stream_carry.begin(),
          leg.stream_carry.begin() + static_cast<std::ptrdiff_t>(wrote));
    }
    return;
  }

  // UDP leg: §4.3 token bucket, per packet.
  if (!leg.bucket.unlimited() &&
      leg.bucket.available(now) < static_cast<double>(v.wire_size())) {
    ++leg.drops_rate;
    ++stats_.leg_drops_rate;
    return;
  }
  leg.bucket.consume(v.wire_size(), now);
  ++leg.forwarded;
  ++stats_.forwarded_packets;
  stats_.forwarded_bytes += v.wire_size();
  leg.tx_batch.push_back(v);  // refcount bump; drained by flush_leg()
}

void RelayNode::flush_leg(LegState& leg) {
  if (leg.tx_batch.empty()) return;
  if (leg.ep.send_packet_batch) {
    leg.ep.send_packet_batch(leg.tx_batch);
  } else if (leg.ep.send_packet) {
    for (const PacketView& v : leg.tx_batch) leg.ep.send_packet(v);
  } else if (leg.ep.send_datagram) {
    // View-unaware endpoint: materialise here and count the copies.
    for (const PacketView& v : leg.tx_batch) {
      const Bytes wire = v.serialize();
      stats_.payload_bytes_copied += wire.size();
      leg.ep.send_datagram(wire);
    }
  }
  leg.tx_batch.clear();
}

void RelayNode::forward_control(BytesView packet) {
  ++stats_.control_forwarded;
  for (auto& [id, leg] : legs_) {
    if (leg.ep.kind == LegEndpoint::Kind::kUdp) {
      if (leg.ep.send_datagram) leg.ep.send_datagram(packet);
      continue;
    }
    // TCP leg: frame into the carry (control packets are tiny, and the
    // §7 gate is for media — feedback must keep flowing).
    if (packet.size() > 0xFFFF) continue;
    Bytes& carry = leg.stream_carry;
    carry.push_back(static_cast<std::uint8_t>(packet.size() >> 8));
    carry.push_back(static_cast<std::uint8_t>(packet.size()));
    carry.insert(carry.end(), packet.begin(), packet.end());
    stats_.payload_bytes_copied += packet.size() + 2;
    if (leg.ep.write_stream) {
      const std::size_t wrote = leg.ep.write_stream(carry);
      carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(wrote));
    } else if (leg.ep.write_gather) {
      std::array<BytesView, 1> parts{BytesView(carry)};
      const std::size_t wrote =
          leg.ep.write_gather(std::span<const BytesView>(parts));
      carry.erase(carry.begin(), carry.begin() + static_cast<std::ptrdiff_t>(wrote));
    }
  }
}

// ----- upstream control -----------------------------------------------

void RelayNode::handle_upstream_rtcp(BytesView packet) {
  auto msgs = parse_rtcp_compound(packet);
  if (!msgs.ok()) return;
  for (const RtcpMessage& msg : *msgs) {
    if (std::holds_alternative<SenderReport>(msg)) {
      const auto& sr = std::get<SenderReport>(msg);
      last_sr_mid_ntp_ = static_cast<std::uint32_t>(sr.ntp_timestamp >> 16);
      last_sr_arrival_us_ = loop_.now();
      // An SR proves the upstream is alive even on an idle broadcast.
      on_upstream_activity();
    }
  }
}

// ----- leg uplink ------------------------------------------------------

void RelayNode::on_leg_packet(LegId from, BytesView packet) {
  if (stalled_) return;  // a wedged node reads nothing off its legs
  auto it = legs_.find(from);
  if (it == legs_.end()) return;
  switch (classify_packet(packet)) {
    case PacketKind::kRtcp:
      handle_leg_rtcp(from, it->second, packet);
      return;
    case PacketKind::kRtp:
      // HIP events ride their own RTP payload type; the relay is not the
      // input authority — pass them to the AH unchanged.
      ++stats_.hip_upstream;
      if (send_upstream_) send_upstream_(packet);
      return;
    case PacketKind::kBfcp:
      ++stats_.bfcp_upstream;
      if (send_upstream_) send_upstream_(packet);
      return;
    case PacketKind::kUnknown:
      ++stats_.decode_errors;
      return;
  }
}

void RelayNode::on_leg_stream(LegId from, BytesView data) {
  auto it = legs_.find(from);
  if (it == legs_.end()) return;
  it->second.uplink_deframer.feed(data);
  while (auto packet = it->second.uplink_deframer.next()) {
    on_leg_packet(from, *packet);
  }
}

void RelayNode::handle_leg_rtcp(LegId from, LegState& leg, BytesView packet) {
  auto msgs = parse_rtcp_compound(packet);
  if (!msgs.ok()) return;
  for (const RtcpMessage& msg : *msgs) {
    if (std::holds_alternative<ReceiverReport>(msg)) {
      const auto& rr = std::get<ReceiverReport>(msg);
      ++stats_.rrs_received;
      if (!rr.blocks.empty()) {
        leg.last_rr = rr.blocks.front();
        if (opts_.adaptation.enabled) {
          leg.rate_ctrl.on_receiver_report(leg.last_rr->fraction_lost,
                                           leg.last_rr->jitter, loop_.now());
        }
      }
    } else if (std::holds_alternative<PictureLossIndication>(msg)) {
      ++stats_.plis_received;
      handle_leg_pli();
    } else if (std::holds_alternative<GenericNack>(msg)) {
      ++stats_.nacks_received;
      for (std::uint16_t seq :
           std::get<GenericNack>(msg).requested_sequences()) {
        ++stats_.nack_seqs_received;
        handle_leg_nack_seq(from, leg, seq);
      }
      flush_leg(leg);  // repairs served from the cache go out as one batch
    }
  }
}

void RelayNode::handle_leg_nack_seq(LegId from, LegState& leg,
                                    std::uint16_t seq) {
  // First line of defence: the local retransmission store. A sibling's loss
  // is healed here and the AH never hears about it.
  const PacketView* cached = cache_.get(seq);
  if (cached != nullptr) {
    ++stats_.rtx_served;
    stats_.rtx_bytes += cached->wire_size();
    forward_to_leg(from, leg, *cached);
    return;
  }
  if (orphaned_) {
    // §(c): while orphaned the cache keeps serving, but a miss has nowhere
    // to go — the parent is dead. The adoption PLI will refresh everyone.
    ++stats_.nacks_absorbed;
    return;
  }
  // Second: a request already in flight (or queued) upstream — absorb this
  // leg into its waiter set instead of asking again.
  auto inflight = requested_upstream_.find(seq);
  if (inflight != requested_upstream_.end()) {
    if (!inflight->second.all_legs) inflight->second.waiters.insert(from);
    ++stats_.nacks_absorbed;
    return;
  }
  auto queued = pending_nack_.find(seq);
  if (queued != pending_nack_.end()) {
    if (!queued->second.all_legs) queued->second.waiters.insert(from);
    ++stats_.nacks_absorbed;
    return;
  }
  // Genuinely new: queue it for the next deduplicated upstream NACK.
  pending_nack_[seq].waiters.insert(from);
  arm_nack_flush();
}

void RelayNode::queue_gap_nacks() {
  if (!send_upstream_) return;
  bool queued_any = false;
  for (std::uint16_t seq : receiver_.missing(64)) {
    if (requested_upstream_.count(seq) != 0 || pending_nack_.count(seq) != 0) {
      continue;
    }
    pending_nack_[seq].all_legs = true;
    ++stats_.gap_nacks;
    queued_any = true;
  }
  if (queued_any) arm_nack_flush();
}

void RelayNode::arm_nack_flush() {
  if (nack_flush_armed_ || pending_nack_.empty()) return;
  nack_flush_armed_ = true;
  loop_.after(opts_.nack_flush_us,
              [this, alive = std::weak_ptr<int>(alive_)] {
                if (alive.expired()) return;
                nack_flush_armed_ = false;
                flush_nacks();
              });
}

void RelayNode::collect_pending_nack(std::vector<RtcpMessage>& msgs) {
  if (pending_nack_.empty()) return;
  std::vector<std::uint16_t> seqs;
  seqs.reserve(pending_nack_.size());
  const SimTime now = loop_.now();
  for (auto& [seq, pending] : pending_nack_) {
    seqs.push_back(seq);
    pending.requested_at = now;
    requested_upstream_[seq] = std::move(pending);
  }
  pending_nack_.clear();
  ++stats_.nacks_upstream;
  stats_.nack_seqs_upstream += seqs.size();
  msgs.push_back(GenericNack::for_sequences(ssrc_, upstream_ssrc_, std::move(seqs)));
}

void RelayNode::flush_nacks() {
  if (frozen() || stopped_) return;  // quiesced: no repairs cross an epoch
  if (pending_nack_.empty() || !send_upstream_) return;
  std::vector<RtcpMessage> msgs;
  collect_pending_nack(msgs);
  send_upstream_(serialize_rtcp_compound(msgs));
}

void RelayNode::handle_leg_pli() {
  if (orphaned_) {
    // Absorbed: adopt_upstream() opens the new epoch with its own PLI, and
    // that one refresh serves the whole subtree.
    ++stats_.plis_coalesced;
    return;
  }
  const SimTime now = loop_.now();
  if (pli_sent_ever_ && opts_.pli_coalesce_us != 0 &&
      now < last_pli_up_us_ + opts_.pli_coalesce_us) {
    // Absorbed: the refresh already on its way serves this leg too.
    ++stats_.plis_coalesced;
    return;
  }
  if (opts_.pli_batch_us > 0) {
    // Flash-crowd wave batching (the PLI analogue of nack_flush_us): the
    // first PLI of a wave arms the timer, the rest of the wave folds into
    // it, and one upstream PLI goes out at expiry — so a join flood's PLI
    // storm crosses this node as a single refresh demand.
    if (pli_batch_armed_) {
      ++stats_.plis_batched;
      return;
    }
    pli_batch_armed_ = true;
    loop_.after(opts_.pli_batch_us, [this, alive = std::weak_ptr<int>(alive_)] {
      if (alive.expired()) return;
      flush_pli_batch();
    });
    return;
  }
  send_pli_upstream(now);
}

void RelayNode::flush_pli_batch() {
  if (!pli_batch_armed_) return;  // quiesced by stop()/epoch reset
  pli_batch_armed_ = false;
  if (stopped_ || frozen()) return;
  send_pli_upstream(loop_.now());
}

void RelayNode::send_pli_upstream(SimTime now) {
  pli_sent_ever_ = true;
  last_pli_up_us_ = now;
  ++stats_.plis_upstream;
  // The coming full refresh supersedes outstanding loss recovery.
  receiver_.reset_losses();
  pending_nack_.clear();
  requested_upstream_.clear();
  if (send_upstream_) {
    PictureLossIndication pli;
    pli.sender_ssrc = ssrc_;
    pli.media_ssrc = upstream_ssrc_;
    send_upstream_(pli.serialize());
  }
}

// ----- periodic aggregation -------------------------------------------

void RelayNode::start() {
  if (started_) return;
  started_ = true;
  stopped_ = false;
  loop_.after(opts_.report_interval_us,
              [this, alive = std::weak_ptr<int>(alive_)] {
                if (alive.expired()) return;
                report_tick();
              });
}

void RelayNode::stop() {
  started_ = false;
  if (stopped_) return;  // already quiesced; don't double-count the drop
  stopped_ = true;
  // Quiesce every deferred repair: pending NACK batches, their holdoff
  // windows and the PLI coalesce window die here, and dropping the cache
  // guarantees a stopped node can never answer a NACK with a stale repair.
  pending_nack_.clear();
  requested_upstream_.clear();
  pli_sent_ever_ = false;
  last_pli_up_us_ = 0;
  pli_batch_armed_ = false;  // an in-flight batch timer no-ops on expiry
  drop_cache();
  // The liveness watchdog disarms with the node (any in-flight timer
  // no-ops via the stopped_ check); per-leg gauges withdraw at the next
  // snapshot via the same flag.
  probes_sent_ = 0;
}

void RelayNode::report_tick() {
  if (!started_) return;
  if (stalled_) {
    // Wedged: no adaptation, no reports; keep the interval alive so the
    // node resumes cleanly when the stall clears.
    loop_.after(opts_.report_interval_us,
                [this, alive = std::weak_ptr<int>(alive_)] {
                  if (alive.expired()) return;
                  report_tick();
                });
    return;
  }
  const SimTime now = loop_.now();

  // Expire in-flight upstream requests whose repair never came: the next
  // media arrival re-queues still-missing sequences via queue_gap_nacks(),
  // so a lost NACK (or a lost repair) retries once per holdoff window.
  for (auto it = requested_upstream_.begin(); it != requested_upstream_.end();) {
    if (now >= it->second.requested_at + opts_.nack_holdoff_us) {
      it = requested_upstream_.erase(it);
    } else {
      ++it;
    }
  }

  // Per-leg closed loop: the §7 backlog sample (TCP) or the accumulated RR
  // signal (UDP) retargets that leg's bucket. Quality/fps outputs are
  // meaningless without an encoder and stay unused.
  if (opts_.adaptation.enabled) {
    for (auto& [id, leg] : legs_) {
      if (leg.ep.kind == LegEndpoint::Kind::kTcp && leg.ep.backlog) {
        leg.rate_ctrl.on_backlog_sample(leg.ep.backlog(), now);
      }
      const rate::OperatingPoint& op = leg.rate_ctrl.update(now);
      if (leg.ep.kind == LegEndpoint::Kind::kUdp) {
        leg.bucket.set_rate(op.rate_bps, now);
      }
    }
  }

  // Worst-case RR summary upstream, with any pending NACK riding along in
  // the same compound datagram. An orphaned node has no parent to report
  // to; its legs keep adapting above.
  if (!orphaned_ && send_upstream_ && have_upstream_ssrc_ &&
      receiver_.started()) {
    ReceiverReport rr;
    rr.ssrc = ssrc_;
    rr.blocks.push_back(aggregate_report());
    std::vector<RtcpMessage> msgs;
    msgs.emplace_back(std::move(rr));
    collect_pending_nack(msgs);
    ++stats_.rrs_aggregated;
    send_upstream_(serialize_rtcp_compound(msgs));
  }

  if (started_) {
    loop_.after(opts_.report_interval_us,
                [this, alive = std::weak_ptr<int>(alive_)] {
                  if (alive.expired()) return;
                  report_tick();
                });
  }
}

ReportBlock RelayNode::aggregate_report() {
  // Base: the relay's own reception over the interval.
  ReportBlock agg = receiver_.snapshot(upstream_ssrc_);
  agg.last_sr = last_sr_mid_ntp_;
  agg.delay_since_last_sr =
      last_sr_arrival_us_ == 0
          ? 0
          : static_cast<std::uint32_t>((loop_.now() - last_sr_arrival_us_) *
                                       65536 / 1'000'000);
  // Fold every leg's last report in, worst case per field: the AH sizes its
  // response to the weakest path through this subtree. Legs report on the
  // same forwarded stream (same SSRC/sequence space), so min over extended
  // highest sequence is meaningful.
  for (const auto& [id, leg] : legs_) {
    if (!leg.last_rr) continue;
    const ReportBlock& b = *leg.last_rr;
    agg.fraction_lost = std::max(agg.fraction_lost, b.fraction_lost);
    agg.cumulative_lost = std::max(agg.cumulative_lost, b.cumulative_lost);
    agg.jitter = std::max(agg.jitter, b.jitter);
    if (b.ext_highest_seq != 0) {
      agg.ext_highest_seq = std::min(agg.ext_highest_seq, b.ext_highest_seq);
    }
  }
  return agg;
}

// ----- self-healing ----------------------------------------------------

void RelayNode::drop_cache() {
  rtx_hits_base_ += cache_.hits();
  rtx_misses_base_ += cache_.misses();
  rtx_evictions_base_ += cache_.evictions();
  stats_.cache_dropped += cache_.size();
  cache_ = RetransmissionCache(opts_.retransmission_cache);
}

void RelayNode::begin_upstream_epoch() {
  ++epoch_;
  drop_cache();
  receiver_ = RtpReceiver{};
  upstream_deframer_.reset();
  pending_nack_.clear();
  requested_upstream_.clear();
  pli_sent_ever_ = false;
  last_pli_up_us_ = 0;
  pli_batch_armed_ = false;  // a cross-epoch wave must not demand a refresh
  last_sr_mid_ntp_ = 0;
  last_sr_arrival_us_ = 0;
  have_upstream_ssrc_ = false;
  upstream_ssrc_ = 0;
}

void RelayNode::on_upstream_activity() {
  last_upstream_activity_us_ = loop_.now();
  probes_sent_ = 0;
  arm_watchdog(opts_.upstream_timeout_us);
}

void RelayNode::arm_watchdog(SimTime delay) {
  if (watchdog_armed_ || stopped_ || opts_.upstream_timeout_us == 0) return;
  watchdog_armed_ = true;
  loop_.after(delay, [this, alive = std::weak_ptr<int>(alive_)] {
    if (alive.expired()) return;
    watchdog_armed_ = false;
    watchdog_tick();
  });
}

void RelayNode::watchdog_tick() {
  if (stopped_ || orphaned_ || opts_.upstream_timeout_us == 0) return;
  if (stalled_) {
    // The freeze is local (chaos kRelayStall), not the parent's fault —
    // keep the timer alive without escalating.
    arm_watchdog(opts_.upstream_timeout_us);
    return;
  }
  const SimTime idle = loop_.now() - last_upstream_activity_us_;
  if (idle < opts_.upstream_timeout_us) {
    // Activity arrived since this timer was set: sleep out the remainder.
    probes_sent_ = 0;
    arm_watchdog(opts_.upstream_timeout_us - idle);
    return;
  }
  if (probes_sent_ >= opts_.probe_count) {
    declare_upstream_dead();
    return;
  }
  // Escalate: one liveness probe per interval — the aggregated RR doubles
  // as the keepalive ping (a live parent's SRs or media would answer it).
  ++probes_sent_;
  ++stats_.watchdog_probes;
  if (send_upstream_ && have_upstream_ssrc_ && receiver_.started()) {
    ReceiverReport rr;
    rr.ssrc = ssrc_;
    rr.blocks.push_back(aggregate_report());
    std::vector<RtcpMessage> msgs;
    msgs.emplace_back(std::move(rr));
    send_upstream_(serialize_rtcp_compound(msgs));
  }
  SimTime delay = opts_.probe_interval_us;
  if (opts_.watchdog_jitter > 0.0) {
    // Jitter is drawn only on escalation (the participant-watchdog rule):
    // fault-free runs never touch the Prng and stay bit-identical, while
    // sibling relays under one dead parent spread their declare-dead
    // instants instead of re-parenting in lockstep.
    const auto span = static_cast<std::uint64_t>(
        static_cast<double>(delay) * opts_.watchdog_jitter);
    if (span > 0) delay += static_cast<SimTime>(wd_rng_.below(span));
  }
  arm_watchdog(delay);
}

void RelayNode::declare_upstream_dead() {
  orphaned_ = true;
  ++stats_.upstream_lost;
  detect_latency_us_ = loop_.now() - last_upstream_activity_us_;
  // A dead parent serves no repairs: forget everything queued or in flight
  // upstream. The local cache stays — it keeps answering subtree NACKs
  // throughout the blackout (§c).
  pending_nack_.clear();
  requested_upstream_.clear();
  if (on_upstream_lost_) on_upstream_lost_();
}

void RelayNode::set_stalled(bool stalled) {
  if (stalled_ == stalled) return;
  stalled_ = stalled;
  if (!stalled) {
    // Thawed: restart the upstream grace period — silence accumulated
    // while *we* were wedged says nothing about the parent.
    last_upstream_activity_us_ = loop_.now();
    probes_sent_ = 0;
  }
}

void RelayNode::adopt_upstream() {
  // Remember the dying epoch's high-water mark: if the new parent forwards
  // the same stream (same SSRC), the seq gap across the blackout is the
  // failover's media loss.
  had_prev_epoch_seq_ = receiver_.started();
  prev_epoch_ssrc_ = upstream_ssrc_;
  prev_epoch_highest_ = receiver_.highest_sequence();
  ++stats_.adoptions;
  begin_upstream_epoch();
  orphaned_ = false;
  probes_sent_ = 0;
  last_upstream_activity_us_ = loop_.now();
  adopt_at_us_ = loop_.now();
  awaiting_resync_ = true;
  arm_watchdog(opts_.upstream_timeout_us);
  // §4.4 resync: ask the new parent for a full refresh now. Opening the
  // coalesce window here folds the subtree's own (absorbed) PLIs into this
  // single upstream refresh.
  pli_sent_ever_ = true;
  last_pli_up_us_ = loop_.now();
  ++stats_.plis_upstream;
  if (send_upstream_) {
    PictureLossIndication pli;
    pli.sender_ssrc = ssrc_;
    pli.media_ssrc = 0;  // the new upstream SSRC is unknown until media flows
    send_upstream_(pli.serialize());
  }
}

// ----- telemetry -------------------------------------------------------

void RelayNode::publish_metrics() {
  auto& m = tel_->metrics;
  const std::string& p = opts_.metrics_prefix;
  m.counter(p + "upstream_packets").set(stats_.upstream_packets);
  m.counter(p + "upstream_bytes").set(stats_.upstream_bytes);
  m.counter(p + "upstream_duplicates").set(stats_.upstream_duplicates);
  m.counter(p + "forwarded_packets").set(stats_.forwarded_packets);
  m.counter(p + "forwarded_bytes").set(stats_.forwarded_bytes);
  m.counter(p + "control_forwarded").set(stats_.control_forwarded);
  m.counter(p + "repairs_forwarded").set(stats_.repairs_forwarded);
  m.counter(p + "payload_bytes_copied").set(stats_.payload_bytes_copied);
  m.counter(p + "leg_drops_backlog").set(stats_.leg_drops_backlog);
  m.counter(p + "leg_drops_rate").set(stats_.leg_drops_rate);
  m.counter(p + "nacks_received").set(stats_.nacks_received);
  m.counter(p + "nack_seqs_received").set(stats_.nack_seqs_received);
  m.counter(p + "rtx_served").set(stats_.rtx_served);
  m.counter(p + "rtx_bytes").set(stats_.rtx_bytes);
  m.counter(p + "nacks_absorbed").set(stats_.nacks_absorbed);
  m.counter(p + "nacks_upstream").set(stats_.nacks_upstream);
  m.counter(p + "nack_seqs_upstream").set(stats_.nack_seqs_upstream);
  m.counter(p + "gap_nacks").set(stats_.gap_nacks);
  m.counter(p + "plis_received").set(stats_.plis_received);
  m.counter(p + "plis_coalesced").set(stats_.plis_coalesced);
  m.counter(p + "plis_batched").set(stats_.plis_batched);
  m.counter(p + "plis_upstream").set(stats_.plis_upstream);
  m.counter(p + "rrs_received").set(stats_.rrs_received);
  m.counter(p + "rrs_aggregated").set(stats_.rrs_aggregated);
  m.counter(p + "hip_upstream").set(stats_.hip_upstream);
  m.counter(p + "bfcp_upstream").set(stats_.bfcp_upstream);
  m.counter(p + "decode_errors").set(stats_.decode_errors);
  m.counter(p + "rtx.hits").set(rtx_hits_total());
  m.counter(p + "rtx.misses").set(rtx_misses_total());
  m.counter(p + "rtx.evictions").set(rtx_evictions_total());
  // Self-healing: detection, failover epoch and degradation telemetry.
  const std::string f = p + "failover.";
  m.counter(f + "probes").set(stats_.watchdog_probes);
  m.counter(f + "upstream_lost").set(stats_.upstream_lost);
  m.counter(f + "adoptions").set(stats_.adoptions);
  m.counter(f + "ssrc_epochs").set(stats_.ssrc_epochs);
  m.counter(f + "frozen_drops").set(stats_.frozen_drops);
  m.counter(f + "cache_dropped").set(stats_.cache_dropped);
  m.counter(f + "packets_lost").set(stats_.failover_lost_packets);
  m.gauge(f + "orphaned").set(orphaned_ ? 1 : 0);
  m.gauge(f + "detect_us").set(static_cast<std::int64_t>(detect_latency_us_));
  m.gauge(f + "resync_us").set(static_cast<std::int64_t>(resync_duration_us_));
  m.gauge(p + "legs").set(static_cast<std::int64_t>(legs_.size()));
  for (const auto& [id, leg] : legs_) {
    const std::string lp = p + "leg" + std::to_string(id) + ".";
    // A stopped node withdraws its per-leg gauges (zero, not last-known):
    // stale backlog/rate readings from a quiesced forwarder would steer
    // upstream adaptation on fiction.
    if (leg.ep.kind == LegEndpoint::Kind::kTcp && leg.ep.backlog) {
      m.gauge(lp + "backlog")
          .set(stopped_ ? 0
                        : static_cast<std::int64_t>(leg.ep.backlog() +
                                                    leg.stream_carry.size()));
    }
    if (leg.ep.kind == LegEndpoint::Kind::kUdp && !leg.bucket.unlimited()) {
      m.gauge(lp + "rate_bps")
          .set(stopped_ ? 0
                        : static_cast<std::int64_t>(leg.bucket.rate_bps()));
    }
    m.counter(lp + "forwarded").set(leg.forwarded);
    m.counter(lp + "drops_backlog").set(leg.drops_backlog);
    m.counter(lp + "drops_rate").set(leg.drops_rate);
  }
}

}  // namespace ads::relay
