// Cascaded relay tier (SFU-style scale-out, ROADMAP item 1).
//
// A RelayNode terminates one upstream remoting stream — from the AH or from
// another relay — and re-fans it to N downstream legs *without re-encoding
// or re-serialising*: each arriving packet becomes (or already is) a
// PacketView into a shared refcounted buffer, and forwarding to a leg costs
// one refcount bump plus a `send_batch`/`send_gather` transport call. A
// depth-D tree of degree-K relays therefore serves K^D × viewers-per-leaf
// receivers while the AH encodes exactly once (see docs/RELAY.md and the
// byte-identity golden in tests/relay).
//
// Control plane: downstream legs' RTCP terminates at the relay and is
// aggregated upward —
//   * NACK: served first from a local RetransmissionCache (a sibling's loss
//     never reaches the AH); cache misses are deduplicated, batched for
//     nack_flush_us, and requested upstream once per holdoff window. The
//     repair is forwarded only to the legs that asked.
//   * PLI: at most one forwarded upstream per pli_coalesce_us — one AH full
//     refresh heals the whole subtree.
//   * RR: one worst-case summary per report_interval_us (max loss/jitter,
//     min extended highest sequence over the relay's own reception and
//     every leg's last report), sent upstream as one compound datagram.
// Upstream control traffic (SRs) is forwarded verbatim to every leg; HIP
// and BFCP uplink packets pass through upward unchanged.
//
// Data plane policy is per leg, so a slow leaf degrades its own leg and
// never the tree: the §7 backlog gate for TCP legs, a §4.3 token bucket
// (optionally retargeted by a per-leg ads::rate controller) for UDP legs.
// A relay has no encoder, so the controller's quality/fps outputs are
// ignored; only its rate output actuates the bucket.
//
// Self-healing: the node watches its upstream for media/SR silence on the
// virtual clock (same escalation shape as the participant starvation
// watchdog) — timeout, then probe_count liveness probes, then the upstream
// is declared dead and the upstream-lost callback fires once. While
// orphaned the node freezes forwarding but keeps serving subtree NACKs
// from its local cache; adopt_upstream() re-parents it onto a new upstream
// and resyncs through the §4.4 late-join path (immediate PLI, fresh
// receiver/probation state, dropped retransmission cache, cleared NACK/PLI
// holdoff windows) so no stale repair ever crosses an epoch boundary.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "buf/buf.hpp"
#include "net/event_loop.hpp"
#include "net/rate_limiter.hpp"
#include "rate/rate_controller.hpp"
#include "rtp/framing.hpp"
#include "rtp/packet_classify.hpp"
#include "rtp/packet_view.hpp"
#include "rtp/retransmission_cache.hpp"
#include "rtp/rtp_session.hpp"
#include "telemetry/telemetry.hpp"
#include "util/prng.hpp"

namespace ads::relay {

/// Identifies one downstream leg within its RelayNode (never reused).
using LegId = std::uint16_t;

/// Every knob of one relay node. Validated like AppHostOptions: impossible
/// settings throw, merely nonsensical ones are clamped — see validated().
struct RelayOptions {
  /// Maximum downstream fan-out degree; add_leg() past it throws. Must be
  /// at least 1 (a relay that can never have a leg is a configuration
  /// error, not a topology).
  std::size_t max_legs = 64;
  /// Cadence of the aggregated upstream Receiver Report (and of the per-leg
  /// rate-adaptation interval). Must be > 0.
  SimTime report_interval_us = 500'000;
  /// How long leg NACKs accumulate before one deduplicated upstream NACK is
  /// flushed (0 is clamped to 1 — flush on the next event-loop turn).
  SimTime nack_flush_us = 5'000;
  /// A sequence already requested upstream is not re-requested within this
  /// window; late joiner legs asking for it are absorbed into the pending
  /// repair instead. Clamped up to nack_flush_us.
  SimTime nack_holdoff_us = 100'000;
  /// At most one PLI is forwarded upstream per window; the rest of the
  /// subtree's PLIs are coalesced into that one refresh. 0 forwards every
  /// PLI (no coalescing).
  SimTime pli_coalesce_us = 500'000;
  /// Flash-crowd PLI wave batching (mirrors nack_flush_us): when > 0 and no
  /// coalesce window is open, the first leg PLI arms a timer instead of
  /// going upstream immediately; every PLI landing before expiry joins the
  /// wave, and exactly one upstream PLI goes out when the timer fires
  /// (which also opens the coalesce window). A 10k-viewer join flood thus
  /// costs the AH one refresh demand per relay per wave. 0 forwards the
  /// first PLI of each window immediately.
  SimTime pli_batch_us = 0;
  /// Local retransmission store serving subtree NACKs without an upstream
  /// round trip. Packets, not bytes; clamped to at least 16.
  std::size_t retransmission_cache = 4096;
  /// §7 backlog gate for TCP legs: drop a packet for a leg whose send
  /// backlog exceeds this many bytes (0 disables — the behaviour §7 warns
  /// against).
  std::size_t leg_backlog_limit = 64 * 1024;
  /// §4.3 token bucket seed for UDP legs, bits/s (0 = unlimited). Per-leg
  /// overrides via LegConfig.
  std::uint64_t leg_rate_bps = 0;
  /// Bucket depth for UDP legs; clamped to at least one MTU-ish packet
  /// (1500 bytes) when a rate is set.
  std::size_t leg_burst_bytes = 64 * 1024;
  /// Closed-loop per-leg adaptation (ads::rate). Only the rate output is
  /// actuated — a relay cannot re-encode, so quality/fps are ignored.
  rate::AdaptationOptions adaptation;
  /// Shared observability sink; null = the node owns a private Telemetry.
  telemetry::Telemetry* telemetry = nullptr;
  /// Prefix for this node's metrics (multi-relay sessions give each node a
  /// distinct prefix, e.g. "relay.r3.").
  std::string metrics_prefix = "relay.";
  /// Derives the relay's RTCP reporting SSRC deterministically.
  std::uint64_t seed = 0xBE1A;
  /// Upstream liveness watchdog: media/SR silence beyond this starts the
  /// probe ladder (0 disables detection). Armed by the first upstream
  /// activity and by adopt_upstream(), like the participant watchdog is
  /// armed by join().
  SimTime upstream_timeout_us = 2'000'000;
  /// Interval between liveness probes once the silence threshold is hit
  /// (each probe is one aggregated RR doubling as a keepalive). Clamped
  /// to at least 1.
  SimTime probe_interval_us = 250'000;
  /// Silent probes tolerated before the upstream is declared dead. Clamped
  /// to at least 1.
  int probe_count = 3;
  /// Uniform random jitter fraction added to each probe interval, drawn
  /// from the node's seeded Prng only on escalation — sibling relays spread
  /// their declare-dead instants without perturbing fault-free replay.
  double watchdog_jitter = 0.25;
};

/// Per-leg policy overrides supplied at add_leg() time.
struct LegConfig {
  /// Token-bucket rate for this leg (bits/s); unset = RelayOptions default.
  std::optional<std::uint64_t> rate_bps;
  /// Bucket depth for this leg (bytes); unset = RelayOptions default.
  std::optional<std::size_t> burst_bytes;
};

/// Relay-side transport handle for one downstream leg — the same callback
/// shape as the AH's HostEndpoint, so session wiring builds both from one
/// channel idiom.
struct LegEndpoint {
  /// Transport family of this leg.
  enum class Kind { kUdp, kTcp };
  Kind kind = Kind::kUdp;
  /// UDP: transmit one datagram (control traffic and view-unaware media
  /// fallback). Return false if dropped before the wire.
  std::function<bool(BytesView)> send_datagram;
  /// UDP, zero-copy: transmit one header-plus-view packet.
  std::function<bool(const PacketView&)> send_packet;
  /// UDP, zero-copy: drain one forward turn's packets in a single call
  /// (in order); returns how many the transport accepted.
  std::function<std::size_t(std::span<const PacketView>)> send_packet_batch;
  /// TCP: non-blocking stream write; returns bytes accepted.
  std::function<std::size_t(BytesView)> write_stream;
  /// TCP, zero-copy: gather-write carry + RFC 4571 prefix + header +
  /// shared payload as one offer; returns bytes accepted.
  std::function<std::size_t(std::span<const BytesView>)> write_gather;
  /// TCP: current send-buffer backlog in bytes (the §7 signal).
  std::function<std::size_t()> backlog;
};

/// One relay node: upstream RTP/RTCP termination, zero-copy downstream
/// fan-out, upward feedback aggregation. Single-threaded on the event loop,
/// like everything else in the simulator.
class RelayNode {
 public:
  /// Constructs the node on `loop`. `opts` are validated first; impossible
  /// combinations throw std::invalid_argument.
  RelayNode(EventLoop& loop, RelayOptions opts = {});
  ~RelayNode();

  /// Validate and normalise options: rejects impossible settings (zero
  /// max_legs, zero report interval) with std::invalid_argument and clamps
  /// nonsensical ones (zero nack flush, holdoff below flush, a rate-limited
  /// leg burst below one packet, a zero retransmission cache).
  static RelayOptions validated(RelayOptions opts);

  /// The validated options this node runs with.
  const RelayOptions& options() const { return opts_; }

  // ----- upstream side ------------------------------------------------

  /// Install the upstream feedback path (aggregated RTCP, pass-through HIP
  /// and BFCP). The callee owns framing when the upstream link is a stream.
  void set_upstream(std::function<bool(BytesView)> send) {
    send_upstream_ = std::move(send);
  }

  /// One upstream datagram (UDP upstream link). Takes ownership: an RTP
  /// media packet's bytes are moved into a pooled buffer and become the
  /// shared payload every leg's PacketView points into — no copy.
  void on_upstream_datagram(Bytes datagram);
  /// Zero-copy in-process ingest: the upstream AH/relay hands its own
  /// PacketView over and the buffer is shared across the whole subtree.
  void on_upstream_packet(const PacketView& pkt);
  /// Batch variant of on_upstream_packet; returns packets accepted (all).
  std::size_t on_upstream_batch(std::span<const PacketView> pkts);
  /// TCP upstream link: raw RFC 4571-framed stream bytes.
  void on_upstream_stream(BytesView data);

  // ----- downstream side ----------------------------------------------

  /// Register a downstream leg (a viewer's link or a child relay's
  /// upstream). Throws std::invalid_argument past options().max_legs.
  LegId add_leg(LegEndpoint endpoint, LegConfig cfg = {});
  /// Deregister a leg and reclaim its state.
  void remove_leg(LegId id);
  /// Number of registered legs.
  std::size_t leg_count() const { return legs_.size(); }

  /// Uplink packet from a leg: RTCP terminates here (NACK/PLI/RR
  /// aggregation); RTP (HIP) and BFCP pass through upward verbatim.
  void on_leg_packet(LegId from, BytesView packet);
  /// TCP leg uplink variant: raw RFC 4571-framed stream bytes.
  void on_leg_stream(LegId from, BytesView data);

  /// Begin the periodic aggregation/adaptation interval on the event loop.
  void start();
  /// Stop the periodic interval and quiesce all deferred repair state:
  /// pending NACK batches and their holdoff windows are abandoned, the PLI
  /// coalesce window closes, the liveness watchdog disarms, and the
  /// retransmission cache is dropped — a stopped node never serves a stale
  /// repair. Per-leg backlog/rate gauges are withdrawn (zeroed) at the next
  /// snapshot. start() re-enables everything (with a cold cache).
  void stop();

  // ----- self-healing (failure detection and failover) -----------------

  /// Failure-detection hook: invoked exactly once per failure epoch when
  /// the upstream is declared dead (after the probe ladder drains). The
  /// session uses it to re-parent the orphaned subtree.
  void set_upstream_lost(std::function<void()> cb) {
    on_upstream_lost_ = std::move(cb);
  }
  /// True after the upstream was declared dead and before adopt_upstream().
  bool orphaned() const { return orphaned_; }

  /// Chaos hook (FaultClass::kRelayStall): a stalled node is wedged —
  /// ingest is dropped, nothing is forwarded or reported, leg uplink is
  /// ignored. Unstalling resumes normal operation and restarts the
  /// upstream grace period (the freeze was local, not the parent's fault).
  void set_stalled(bool stalled);
  /// True while frozen by set_stalled(true).
  bool stalled() const { return stalled_; }

  /// Failover resync: call after attaching this node under a new upstream.
  /// Begins a fresh upstream epoch — RTP ext-seq/probation state, the
  /// retransmission cache and all pending NACK/PLI holdoff windows reset —
  /// clears the orphaned state, re-arms the liveness watchdog and requests
  /// a §4.4 full refresh from the new parent with an immediate PLI.
  void adopt_upstream();

  /// Upstream epochs begun so far (SSRC changes plus adoptions).
  std::uint64_t upstream_epoch() const { return epoch_; }

  /// Cache hits across every epoch and fold (monotone; feeds telemetry).
  std::uint64_t rtx_hits_total() const { return rtx_hits_base_ + cache_.hits(); }
  /// Cache misses across every epoch and fold.
  std::uint64_t rtx_misses_total() const {
    return rtx_misses_base_ + cache_.misses();
  }
  /// Cache evictions across every epoch and fold.
  std::uint64_t rtx_evictions_total() const {
    return rtx_evictions_base_ + cache_.evictions();
  }

  /// Detection latency of the most recent declare-dead (silence between the
  /// last upstream activity and the declaration), 0 before the first.
  SimTime last_detect_latency_us() const { return detect_latency_us_; }
  /// Duration of the most recent failover resync (adoption to the first
  /// media of the new epoch), 0 before the first completed resync.
  SimTime last_resync_duration_us() const { return resync_duration_us_; }

  // ----- introspection -------------------------------------------------

  /// Last Receiver Report block a leg sent (nullptr before the first).
  const ReportBlock* leg_last_rr(LegId id) const;
  /// The leg's ads::rate operating point (meaningful when adaptation is
  /// enabled; nullptr for unknown legs).
  const rate::OperatingPoint* leg_operating_point(LegId id) const;
  /// The SSRC this relay reports with (RTCP sender identity).
  std::uint32_t ssrc() const { return ssrc_; }
  /// Upstream media SSRC once learned (0 before the first media packet).
  std::uint32_t upstream_ssrc() const { return upstream_ssrc_; }
  /// Upstream reception bookkeeping (loss/jitter the aggregated RR reports).
  const RtpReceiver& receiver() const { return receiver_; }
  /// The local retransmission store (hit/miss counters feed telemetry).
  const RetransmissionCache& cache() const { return cache_; }

  /// Lifetime totals for everything the node forwards, serves and absorbs.
  struct Stats {
    // Data plane.
    std::uint64_t upstream_packets = 0;   ///< media packets ingested
    std::uint64_t upstream_bytes = 0;     ///< media bytes ingested
    std::uint64_t upstream_duplicates = 0;///< dropped as already-forwarded
    std::uint64_t forwarded_packets = 0;  ///< per-leg media forwards
    std::uint64_t forwarded_bytes = 0;    ///< per-leg media bytes
    std::uint64_t control_forwarded = 0;  ///< SR/BFCP datagrams fanned down
    std::uint64_t repairs_forwarded = 0;  ///< upstream repairs routed to waiters
    std::uint64_t payload_bytes_copied = 0;  ///< staging copies (0 on view legs)
    std::uint64_t leg_drops_backlog = 0;  ///< §7 gate drops across legs
    std::uint64_t leg_drops_rate = 0;     ///< §4.3 bucket drops across legs
    // NACK aggregation.
    std::uint64_t nacks_received = 0;     ///< NACK messages from legs
    std::uint64_t nack_seqs_received = 0; ///< sequences those asked for
    std::uint64_t rtx_served = 0;         ///< repairs served from the local cache
    std::uint64_t rtx_bytes = 0;          ///< bytes of those repairs
    std::uint64_t nacks_absorbed = 0;     ///< seqs deduplicated into a pending
                                          ///< or in-flight upstream request
    std::uint64_t nacks_upstream = 0;     ///< NACK messages sent upstream
    std::uint64_t nack_seqs_upstream = 0; ///< sequences requested upstream
    std::uint64_t gap_nacks = 0;          ///< relay-detected upstream losses queued
    // PLI coalescing / wave batching.
    std::uint64_t plis_received = 0;      ///< PLIs from legs
    std::uint64_t plis_coalesced = 0;     ///< absorbed by the coalesce window
    std::uint64_t plis_batched = 0;       ///< folded into an armed batch wave
    std::uint64_t plis_upstream = 0;      ///< forwarded upstream
    // RR aggregation.
    std::uint64_t rrs_received = 0;       ///< RRs from legs
    std::uint64_t rrs_aggregated = 0;     ///< worst-case summaries sent upstream
    // Pass-through uplink.
    std::uint64_t hip_upstream = 0;       ///< HIP packets relayed upward
    std::uint64_t bfcp_upstream = 0;      ///< BFCP packets relayed upward
    std::uint64_t decode_errors = 0;      ///< unparseable/unsupported ingest
    // Self-healing (failure detection / failover).
    std::uint64_t watchdog_probes = 0;    ///< liveness probes sent upstream
    std::uint64_t upstream_lost = 0;      ///< times the upstream was declared dead
    std::uint64_t adoptions = 0;          ///< failover epochs (adopt_upstream)
    std::uint64_t ssrc_epochs = 0;        ///< epochs begun by an upstream SSRC change
    std::uint64_t frozen_drops = 0;       ///< media dropped while orphaned/stalled
    std::uint64_t cache_dropped = 0;      ///< cached repairs discarded at epoch resets
    std::uint64_t failover_lost_packets = 0;  ///< seq-space gap across failover epochs
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

  /// Seed lifetime counters from a previous incarnation. The session's
  /// cold-restart path calls this right after construction so relay.rN.*
  /// telemetry stays monotone across a crash/restart cycle; the rtx_*
  /// arguments fold the dead incarnation's cache counters the same way.
  void fold_stats(const Stats& prior, std::uint64_t rtx_hits,
                  std::uint64_t rtx_misses, std::uint64_t rtx_evictions);

  /// The node's observability sink (owned or injected).
  telemetry::Telemetry& telemetry() { return *tel_; }

 private:
  struct LegState {
    LegEndpoint ep;
    TokenBucket bucket;
    rate::RateController rate_ctrl;
    std::optional<ReportBlock> last_rr;
    Bytes stream_carry;              ///< unwritten tail of a partial TCP write
    StreamDeframer uplink_deframer;  ///< TCP leg uplink reassembly
    std::vector<PacketView> tx_batch;  ///< one forward turn's packets
    std::uint64_t forwarded = 0;
    std::uint64_t drops_backlog = 0;
    std::uint64_t drops_rate = 0;

    LegState(std::uint64_t rate_bps, std::size_t burst,
             rate::Transport transport, const rate::AdaptationOptions& adapt)
        : bucket(rate_bps, burst), rate_ctrl(transport, adapt) {}
  };

  /// A sequence the subtree is missing: which legs asked (or everyone, for
  /// relay-detected upstream gaps), and when it went (or will go) upstream.
  struct PendingRepair {
    bool all_legs = false;
    std::set<LegId> waiters;
    SimTime requested_at = 0;
  };

  /// Dispatch one upstream packet that arrived as owned bytes.
  void dispatch_upstream(Bytes datagram);
  /// Bookkeeping + cache + fan-out for one ingested media view.
  void ingest_media(const PacketView& v);
  /// Queue one media packet onto a leg, honouring that leg's §7/§4.3 gates.
  void forward_to_leg(LegId id, LegState& leg, const PacketView& v);
  /// Drain a leg's queued packets in one batch transport call.
  void flush_leg(LegState& leg);
  /// Fan one upstream control datagram (SR, BFCP) to every leg verbatim.
  void forward_control(BytesView packet);
  /// Consume upstream RTCP (SR → LSR/DLSR state) before fanning it down.
  void handle_upstream_rtcp(BytesView packet);
  /// Terminate one leg's RTCP: NACK dedup/serve, PLI coalesce, RR record.
  void handle_leg_rtcp(LegId from, LegState& leg, BytesView packet);
  /// Serve one NACKed sequence for a leg (cache, pending merge, or queue).
  void handle_leg_nack_seq(LegId from, LegState& leg, std::uint16_t seq);
  /// Queue relay-detected upstream gaps for the next NACK flush.
  void queue_gap_nacks();
  /// Arm the nack_flush_us timer if pending requests exist and it is idle.
  void arm_nack_flush();
  /// Send one deduplicated upstream NACK for everything pending.
  void flush_nacks();
  /// Append the pending NACK (if any) to `msgs`, moving entries to
  /// in-flight state; used by both the flush timer and the report tick.
  void collect_pending_nack(std::vector<RtcpMessage>& msgs);
  /// Forward one PLI upstream, absorb it into the coalesce window, or fold
  /// it into the armed batch wave (pli_batch_us).
  void handle_leg_pli();
  /// Emit the single upstream PLI of a wave: coalesce-window bookkeeping
  /// plus the loss-recovery reset the coming full refresh supersedes.
  void send_pli_upstream(SimTime now);
  /// pli_batch_us expiry: send the armed wave's one upstream PLI.
  void flush_pli_batch();
  /// The periodic interval: per-leg adaptation + aggregated upstream RR.
  void report_tick();
  /// Worst-case fold of the relay's own reception and every leg's last RR.
  ReportBlock aggregate_report();
  /// Snapshot-time collector publishing Stats under the metrics prefix.
  void publish_metrics();
  /// Reset every per-epoch upstream structure: receiver/probation state,
  /// the retransmission cache, pending NACK/PLI holdoff windows, SR state
  /// and the learned SSRC. Shared by SSRC-change detection, failover
  /// adoption and stop().
  void begin_upstream_epoch();
  /// Drop the cache (counting discarded entries and folding its counters
  /// into the monotone rtx_* bases).
  void drop_cache();
  /// Record upstream liveness (media or SR arrival) and reset the ladder.
  void on_upstream_activity();
  /// Arm the liveness timer unless already armed or detection is off.
  void arm_watchdog(SimTime delay);
  /// One watchdog expiry: sleep out residual activity, probe, or declare.
  void watchdog_tick();
  /// Escalation end: mark the node orphaned and fire the lost callback.
  void declare_upstream_dead();
  /// True while the node must not forward media downstream.
  bool frozen() const { return orphaned_ || stalled_; }

  EventLoop& loop_;
  RelayOptions opts_;
  std::unique_ptr<telemetry::Telemetry> owned_tel_;  ///< null when injected
  telemetry::Telemetry* tel_;
  buf::BufPool pool_;  ///< wraps upstream datagrams into shared buffers
  RetransmissionCache cache_;
  RtpReceiver receiver_;  ///< upstream media reception bookkeeping
  StreamDeframer upstream_deframer_;  ///< TCP upstream reassembly
  std::function<bool(BytesView)> send_upstream_;

  std::map<LegId, LegState> legs_;
  LegId next_leg_id_ = 1;

  std::uint32_t ssrc_;
  std::uint32_t upstream_ssrc_ = 0;
  bool have_upstream_ssrc_ = false;

  // NACK aggregation state: sequences waiting for the next upstream flush,
  // and sequences already requested upstream awaiting their repair.
  std::map<std::uint16_t, PendingRepair> pending_nack_;
  std::map<std::uint16_t, PendingRepair> requested_upstream_;
  bool nack_flush_armed_ = false;

  SimTime last_pli_up_us_ = 0;
  bool pli_sent_ever_ = false;
  bool pli_batch_armed_ = false;  ///< a PLI wave is accumulating

  // LSR/DLSR state from the upstream SR stream.
  std::uint32_t last_sr_mid_ntp_ = 0;
  SimTime last_sr_arrival_us_ = 0;

  // Self-healing state. The watchdog arms on the first upstream activity
  // (and on adoption); stop() disables it until the next start().
  std::function<void()> on_upstream_lost_;
  bool orphaned_ = false;
  bool stalled_ = false;
  bool stopped_ = false;  ///< stop() was called and no start() since
  bool watchdog_armed_ = false;
  SimTime last_upstream_activity_us_ = 0;
  int probes_sent_ = 0;
  std::uint64_t epoch_ = 0;
  SimTime detect_latency_us_ = 0;   ///< last declare-dead silence span
  SimTime resync_duration_us_ = 0;  ///< last adoption-to-first-media span
  SimTime adopt_at_us_ = 0;
  bool awaiting_resync_ = false;
  // High-water mark of the epoch that ended at the last adoption, for the
  // lost-across-failover count (meaningful only when the SSRC survives).
  bool had_prev_epoch_seq_ = false;
  std::uint32_t prev_epoch_ssrc_ = 0;
  std::uint16_t prev_epoch_highest_ = 0;
  Prng wd_rng_;
  // Monotone cache-counter bases accumulated as epochs drop the cache.
  std::uint64_t rtx_hits_base_ = 0;
  std::uint64_t rtx_misses_base_ = 0;
  std::uint64_t rtx_evictions_base_ = 0;

  bool started_ = false;
  Stats stats_;
  /// Pending event-loop callbacks hold a weak reference; destruction
  /// silently cancels them (same idiom as UdpChannel).
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace ads::relay
