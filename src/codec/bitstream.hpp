// LSB-first bit I/O as required by DEFLATE (RFC 1951 §3.1.1): data elements
// are packed starting at the least-significant bit of each byte. Huffman
// codes are packed most-significant-bit first, which callers achieve by
// reversing the code bits before writing (see Huffman code builder).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace ads {

class BitWriter {
 public:
  BitWriter() = default;
  /// Adopt `buf` as the output buffer (cleared, capacity kept) so callers on
  /// a hot path can reuse one allocation across invocations via take().
  explicit BitWriter(Bytes buf) : buf_(std::move(buf)) { buf_.clear(); }

  /// Append the low `count` bits of `bits`, LSB first. count <= 32.
  void write(std::uint32_t bits, int count);

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Append a whole byte (must be byte-aligned).
  void byte(std::uint8_t b);

  std::size_t bit_count() const { return buf_.size() * 8 - (bit_pos_ ? 8 - bit_pos_ : 0); }
  const Bytes& data() const { return buf_; }
  Bytes take() {
    align_to_byte();
    return std::move(buf_);
  }

 private:
  Bytes buf_;
  int bit_pos_ = 0;  ///< bits already used in the last byte (0 = aligned)
};

class BitReader {
 public:
  explicit BitReader(BytesView data) : data_(data) {}

  /// Read `count` bits, LSB first. Returns kTruncated past the end.
  Result<std::uint32_t> read(int count);

  /// Read a single bit.
  Result<std::uint32_t> bit() { return read(1); }

  /// Discard bits up to the next byte boundary.
  void align_to_byte();

  /// Bytes fully or partially consumed so far.
  std::size_t byte_position() const { return byte_pos_ + (bit_pos_ ? 1 : 0); }
  /// View of remaining whole bytes (call align_to_byte() first).
  BytesView remaining_bytes() const { return data_.subspan(byte_pos_); }
  std::size_t bits_remaining() const {
    return (data_.size() - byte_pos_) * 8 - static_cast<std::size_t>(bit_pos_);
  }

 private:
  BytesView data_;
  std::size_t byte_pos_ = 0;
  int bit_pos_ = 0;  ///< bits consumed in the current byte
};

/// Reverse the low `count` bits of `v` (used to emit Huffman codes MSB-first
/// through the LSB-first writer).
constexpr std::uint32_t reverse_bits(std::uint32_t v, int count) {
  std::uint32_t r = 0;
  for (int i = 0; i < count; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace ads
