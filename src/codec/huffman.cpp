#include "codec/huffman.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ads {
namespace {

struct Node {
  std::uint64_t freq;
  int index;  ///< symbol for leaves, node id for internal
  int left = -1;
  int right = -1;
};

/// One Huffman construction pass; returns max depth, fills `lengths`.
int huffman_pass(const std::vector<std::uint64_t>& freqs,
                 std::vector<std::uint8_t>& lengths) {
  const int n = static_cast<int>(freqs.size());
  lengths.assign(static_cast<std::size_t>(n), 0);

  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(2 * n));
  using Entry = std::pair<std::uint64_t, int>;  // (freq, node id); id breaks ties
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < n; ++i) {
    if (freqs[static_cast<std::size_t>(i)] == 0) continue;
    nodes.push_back({freqs[static_cast<std::size_t>(i)], i});
    heap.emplace(nodes.back().freq, static_cast<int>(nodes.size()) - 1);
  }
  if (heap.empty()) return 0;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].index)] = 1;
    return 1;
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back({fa + fb, -1, a, b});
    heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }
  // Depth-first assignment of depths.
  struct Frame {
    int node;
    int depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  int max_depth = 0;
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(id)];
    if (node.left < 0) {
      lengths[static_cast<std::size_t>(node.index)] = static_cast<std::uint8_t>(depth);
      max_depth = std::max(max_depth, depth);
    } else {
      stack.push_back({node.left, depth + 1});
      stack.push_back({node.right, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             int max_bits) {
  std::vector<std::uint64_t> f = freqs;
  std::vector<std::uint8_t> lengths;
  // Flattening the frequency distribution shortens the deepest paths; a few
  // halvings always converge because equal frequencies give a balanced tree.
  for (;;) {
    const int depth = huffman_pass(f, lengths);
    if (depth <= max_bits) break;
    for (auto& v : f) {
      if (v > 0) v = v / 2 + 1;
    }
  }
  return lengths;
}

std::vector<std::uint32_t> canonical_codes(const std::vector<std::uint8_t>& lengths) {
  int max_len = 0;
  for (std::uint8_t l : lengths) max_len = std::max(max_len, static_cast<int>(l));
  std::vector<std::uint32_t> bl_count(static_cast<std::size_t>(max_len) + 1, 0);
  for (std::uint8_t l : lengths) {
    if (l) ++bl_count[l];
  }
  std::vector<std::uint32_t> next_code(static_cast<std::size_t>(max_len) + 1, 0);
  std::uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + bl_count[static_cast<std::size_t>(bits) - 1]) << 1;
    next_code[static_cast<std::size_t>(bits)] = code;
  }
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] == 0) continue;
    codes[i] = reverse_bits(next_code[lengths[i]]++, lengths[i]);
  }
  return codes;
}

ParseStatus HuffmanDecoder::init(const std::vector<std::uint8_t>& lengths) {
  std::fill(std::begin(counts_), std::end(counts_), 0);
  sorted_symbols_.clear();
  // Any early return below must leave the decoder inert: decode() checks
  // initialised() before touching the tables.

  for (std::uint8_t l : lengths) {
    if (l > kMaxBits) {
      std::fill(std::begin(counts_), std::end(counts_), 0);
      return ParseError::kBadValue;
    }
    if (l) ++counts_[l];
  }

  // Over-subscription check (Kraft inequality).
  std::uint32_t left = 1;
  for (int len = 1; len <= kMaxBits; ++len) {
    left <<= 1;
    if (counts_[len] > left) {
      std::fill(std::begin(counts_), std::end(counts_), 0);
      return ParseError::kBadValue;
    }
    left -= counts_[len];
  }

  std::uint16_t offset = 0;
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    offsets_[len] = offset;
    code = (code + counts_[len - 1]) << 1;
    first_code_[len] = code;
    offset = static_cast<std::uint16_t>(offset + counts_[len]);
  }

  sorted_symbols_.resize(offset);
  std::uint16_t fill[kMaxBits + 1];
  std::copy(std::begin(offsets_), std::end(offsets_), fill);
  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    if (lengths[sym]) sorted_symbols_[fill[lengths[sym]]++] = static_cast<std::uint16_t>(sym);
  }
  if (sorted_symbols_.empty()) return ParseError::kBadValue;
  return {};
}

Result<int> HuffmanDecoder::decode(BitReader& in) const {
  if (!initialised()) return ParseError::kBadValue;
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    auto b = in.bit();
    if (!b) return b.error();
    code = (code << 1) | *b;
    if (counts_[len] != 0 && code < first_code_[len] + counts_[len]) {
      if (code >= first_code_[len]) {
        return static_cast<int>(
            sorted_symbols_[offsets_[len] + (code - first_code_[len])]);
      }
    }
  }
  return ParseError::kBadValue;
}

}  // namespace ads
