// Codec registry: maps the RegionUpdate PT field to an ImageCodec instance.
// The AH and participant each hold a registry; §5.2.2 requires them to
// negotiate supported media types during session establishment, which the
// SDP module drives by enumerating a registry's payload types.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "codec/video_codec.hpp"

namespace ads {

class CodecRegistry {
 public:
  /// Registry with all built-in codecs (raw, rle, png, dct@quality-75).
  static CodecRegistry with_defaults();

  void add(std::unique_ptr<ImageCodec> codec);

  /// nullptr when the payload type is unknown.
  const ImageCodec* find(ContentPt pt) const;
  const ImageCodec* find(std::uint8_t pt) const;

  /// Encode `img` with the codec for `pt` into `out` (cleared first),
  /// reusing `scratch`. Returns false (out untouched) for unknown payload
  /// types. This is the scratch-threaded entry the AH encode workers use.
  bool encode_into(ContentPt pt, const Image& img, Bytes& out,
                   EncodeScratch& scratch) const;

  /// As encode_into, honouring per-call `params` (the ads::rate quality
  /// ladder's path into the DCT codec; lossless codecs ignore params).
  bool encode_into(ContentPt pt, const Image& img, Bytes& out,
                   EncodeScratch& scratch, const EncodeParams& params) const;

  std::vector<ContentPt> payload_types() const;

 private:
  std::map<std::uint8_t, std::unique_ptr<ImageCodec>> codecs_;
};

}  // namespace ads
