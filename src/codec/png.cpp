#include "codec/png.hpp"

#include <array>
#include <cstdlib>
#include <cstring>

#include "codec/zlib.hpp"
#include "util/checksum.hpp"
#include "util/simd.hpp"

namespace ads {
namespace {

constexpr std::array<std::uint8_t, 8> kSignature = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A,
                                                    '\n'};

void write_chunk(ByteWriter& out, const char type[4], BytesView payload) {
  out.u32(static_cast<std::uint32_t>(payload.size()));
  const std::size_t crc_start = out.size();
  out.bytes(type, 4);
  out.bytes(payload);
  Crc32 crc;
  crc.update(BytesView(out.view().subspan(crc_start)));
  out.u32(crc.value());
}

std::uint8_t paeth(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  const int p = static_cast<int>(a) + b - c;
  const int pa = std::abs(p - a);
  const int pb = std::abs(p - b);
  const int pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

void unfilter_row(int type, std::uint8_t* row, const std::uint8_t* prior, std::size_t n,
                  std::size_t bpp) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t a = i >= bpp ? row[i - bpp] : 0;
    const std::uint8_t b = prior ? prior[i] : 0;
    const std::uint8_t c = (prior && i >= bpp) ? prior[i - bpp] : 0;
    switch (type) {
      case 0: break;
      case 1: row[i] = static_cast<std::uint8_t>(row[i] + a); break;
      case 2: row[i] = static_cast<std::uint8_t>(row[i] + b); break;
      case 3: row[i] = static_cast<std::uint8_t>(row[i] + (a + b) / 2); break;
      case 4: row[i] = static_cast<std::uint8_t>(row[i] + paeth(a, b, c)); break;
    }
  }
}

}  // namespace

Bytes png_encode(const Image& img, const PngOptions& opts) {
  EncodeScratch scratch;
  Bytes out;
  png_encode_into(img, opts, out, scratch);
  return out;
}

void png_encode_into(const Image& img, const PngOptions& opts, Bytes& dest,
                     EncodeScratch& scratch) {
  const std::size_t width = static_cast<std::size_t>(img.width());
  const std::size_t height = static_cast<std::size_t>(img.height());
  const std::size_t bpp = opts.rgba ? 4 : 3;
  const std::size_t stride = width * bpp;

  // Serialise pixel rows.
  Bytes& raster = scratch.staging;
  raster.resize(height * stride);
  for (std::size_t y = 0; y < height; ++y) {
    const auto row = img.row(static_cast<std::int64_t>(y));
    std::uint8_t* out = &raster[y * stride];
    for (std::size_t x = 0; x < width; ++x) {
      out[x * bpp + 0] = row[x].r;
      out[x * bpp + 1] = row[x].g;
      out[x * bpp + 2] = row[x].b;
      if (opts.rgba) out[x * bpp + 3] = row[x].a;
    }
  }

  // Filter: each scanline is prefixed with its filter type byte.
  Bytes& filtered = scratch.filtered;
  filtered.resize((stride + 1) * height);
  Bytes& trial = scratch.row;
  trial.resize(stride);
  for (std::size_t y = 0; y < height; ++y) {
    const std::uint8_t* row = &raster[y * stride];
    const std::uint8_t* prior = y > 0 ? &raster[(y - 1) * stride] : nullptr;
    std::uint8_t* dst = &filtered[y * (stride + 1)];
    if (!opts.adaptive_filters || stride == 0) {
      dst[0] = 0;
      if (stride) std::memcpy(dst + 1, row, stride);
      continue;
    }
    int best_type = 0;
    std::uint64_t best_score = ~0ull;
    for (int type = 0; type < 5; ++type) {
      simd::png_filter_row(type, row, prior, stride, bpp, trial.data());
      const std::uint64_t score = simd::png_abs_sum(trial.data(), stride);
      if (score < best_score) {
        best_score = score;
        best_type = type;
      }
    }
    dst[0] = static_cast<std::uint8_t>(best_type);
    simd::png_filter_row(best_type, row, prior, stride, bpp, dst + 1);
  }

  ByteWriter out(std::move(dest));
  out.bytes(kSignature.data(), kSignature.size());

  ByteWriter ihdr(13);
  ihdr.u32(static_cast<std::uint32_t>(width));
  ihdr.u32(static_cast<std::uint32_t>(height));
  ihdr.u8(8);                          // bit depth
  ihdr.u8(opts.rgba ? 6 : 2);          // colour type: RGBA or RGB
  ihdr.u8(0);                          // compression: deflate
  ihdr.u8(0);                          // filter method 0
  ihdr.u8(0);                          // no interlace
  write_chunk(out, "IHDR", ihdr.view());

  zlib_compress_into(filtered, opts.deflate, scratch.compressed, scratch.deflate);
  write_chunk(out, "IDAT", scratch.compressed);
  write_chunk(out, "IEND", {});
  dest = out.take();
}

Result<Image> png_decode(BytesView data) {
  ByteReader in(data);
  auto sig = in.bytes(kSignature.size());
  if (!sig) return sig.error();
  if (!std::equal(sig->begin(), sig->end(), kSignature.begin()))
    return ParseError::kBadMagic;

  std::uint32_t width = 0;
  std::uint32_t height = 0;
  int colour_type = -1;
  Bytes idat;
  bool seen_iend = false;

  while (!in.at_end() && !seen_iend) {
    auto len = in.u32();
    if (!len) return len.error();
    auto type_bytes = in.bytes(4);
    if (!type_bytes) return type_bytes.error();
    auto payload = in.bytes(*len);
    if (!payload) return payload.error();
    auto crc_field = in.u32();
    if (!crc_field) return crc_field.error();

    Crc32 crc;
    crc.update(*type_bytes);
    crc.update(*payload);
    if (crc.value() != *crc_field) return ParseError::kBadChecksum;

    const std::string_view type(reinterpret_cast<const char*>(type_bytes->data()), 4);
    if (type == "IHDR") {
      ByteReader h(*payload);
      auto w = h.u32();
      auto ht = h.u32();
      auto depth = h.u8();
      auto ct = h.u8();
      auto comp = h.u8();
      auto filt = h.u8();
      auto inter = h.u8();
      if (!w || !ht || !depth || !ct || !comp || !filt || !inter)
        return ParseError::kTruncated;
      if (*depth != 8 || (*ct != 2 && *ct != 6)) return ParseError::kUnsupported;
      if (*comp != 0 || *filt != 0 || *inter != 0) return ParseError::kUnsupported;
      width = *w;
      height = *ht;
      colour_type = *ct;
      // 1 GiB raster guard against hostile dimensions.
      const std::uint64_t raster_bytes =
          static_cast<std::uint64_t>(width) * height * (*ct == 6 ? 4 : 3);
      if (raster_bytes > (1ull << 30)) return ParseError::kOverflow;
    } else if (type == "IDAT") {
      idat.insert(idat.end(), payload->begin(), payload->end());
    } else if (type == "IEND") {
      seen_iend = true;
    }
    // Ancillary chunks are skipped.
  }
  if (colour_type < 0 || !seen_iend) return ParseError::kTruncated;

  const std::size_t bpp = colour_type == 6 ? 4 : 3;
  const std::size_t stride = static_cast<std::size_t>(width) * bpp;
  const std::size_t expected = (stride + 1) * height;
  auto raw = zlib_decompress(idat, {.max_output = expected});
  if (!raw) return raw.error();
  if (raw->size() != expected) return ParseError::kBadValue;

  Image img(width, height);
  std::uint8_t* prior = nullptr;
  for (std::size_t y = 0; y < height; ++y) {
    std::uint8_t* line = &(*raw)[y * (stride + 1)];
    const int ftype = *line;
    if (ftype > 4) return ParseError::kBadValue;
    std::uint8_t* row = line + 1;
    unfilter_row(ftype, row, prior, stride, bpp);
    for (std::size_t x = 0; x < width; ++x) {
      Pixel p;
      p.r = row[x * bpp + 0];
      p.g = row[x * bpp + 1];
      p.b = row[x * bpp + 2];
      p.a = bpp == 4 ? row[x * bpp + 3] : 255;
      img.set(static_cast<std::int64_t>(x), static_cast<std::int64_t>(y), p);
    }
    prior = row;
  }
  return img;
}

}  // namespace ads
