#include "codec/raw_codec.hpp"

namespace ads {

Bytes raw_encode(const Image& img) {
  Bytes out;
  out.reserve(static_cast<std::size_t>(img.width() * img.height()) * 4 + 8);
  raw_encode_into(img, out);
  return out;
}

void raw_encode_into(const Image& img, Bytes& dest) {
  ByteWriter out(std::move(dest));
  out.u32(static_cast<std::uint32_t>(img.width()));
  out.u32(static_cast<std::uint32_t>(img.height()));
  for (const Pixel& p : img.pixels()) {
    out.u8(p.r);
    out.u8(p.g);
    out.u8(p.b);
    out.u8(p.a);
  }
  dest = out.take();
}

Result<Image> raw_decode(BytesView data) {
  ByteReader in(data);
  auto w = in.u32();
  auto h = in.u32();
  if (!w || !h) return ParseError::kTruncated;
  const std::uint64_t count = static_cast<std::uint64_t>(*w) * *h;
  if (count * 4 > (1ull << 30)) return ParseError::kOverflow;
  if (in.remaining() != count * 4) return ParseError::kBadValue;
  Image img(*w, *h);
  auto px = img.pixels();
  const BytesView body = in.rest();
  for (std::uint64_t i = 0; i < count; ++i) {
    px[i] = Pixel{body[i * 4], body[i * 4 + 1], body[i * 4 + 2], body[i * 4 + 3]};
  }
  return img;
}

}  // namespace ads
