#include "codec/rle_codec.hpp"

namespace ads {

Bytes rle_encode(const Image& img) {
  Bytes out;
  rle_encode_into(img, out);
  return out;
}

void rle_encode_into(const Image& img, Bytes& dest) {
  ByteWriter out(std::move(dest));
  out.u32(static_cast<std::uint32_t>(img.width()));
  out.u32(static_cast<std::uint32_t>(img.height()));
  const auto px = img.pixels();
  std::size_t i = 0;
  while (i < px.size()) {
    std::size_t run = 1;
    while (i + run < px.size() && run < 65535 && px[i + run] == px[i]) ++run;
    out.u16(static_cast<std::uint16_t>(run));
    out.u8(px[i].r);
    out.u8(px[i].g);
    out.u8(px[i].b);
    out.u8(px[i].a);
    i += run;
  }
  dest = out.take();
}

Result<Image> rle_decode(BytesView data) {
  ByteReader in(data);
  auto w = in.u32();
  auto h = in.u32();
  if (!w || !h) return ParseError::kTruncated;
  const std::uint64_t count = static_cast<std::uint64_t>(*w) * *h;
  if (count * 4 > (1ull << 30)) return ParseError::kOverflow;
  Image img(*w, *h);
  auto px = img.pixels();
  std::uint64_t filled = 0;
  while (filled < count) {
    auto run = in.u16();
    if (!run) return run.error();
    auto rgba = in.bytes(4);
    if (!rgba) return rgba.error();
    if (*run == 0 || filled + *run > count) return ParseError::kBadValue;
    const Pixel p{(*rgba)[0], (*rgba)[1], (*rgba)[2], (*rgba)[3]};
    for (std::uint16_t k = 0; k < *run; ++k) px[filled++] = p;
  }
  if (!in.at_end()) return ParseError::kBadValue;
  return img;
}

}  // namespace ads
