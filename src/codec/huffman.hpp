// Canonical Huffman code construction and decoding, shared by the DEFLATE
// encoder/decoder and the DCT codec's entropy stage.
//
// Encoding side: build_code_lengths() produces length-limited code lengths
// from symbol frequencies; canonical_codes() assigns the RFC 1951 §3.2.2
// canonical bit patterns (returned already bit-reversed, ready for the
// LSB-first BitWriter).
//
// Decoding side: HuffmanDecoder consumes a code-length vector and decodes
// symbols from a BitReader via the canonical count/offset method.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/bitstream.hpp"
#include "util/result.hpp"

namespace ads {

/// Compute code lengths (0 = symbol unused) for `freqs`, limited to
/// `max_bits`. Uses Huffman construction with frequency-halving fallback
/// when the natural tree exceeds the limit. If only one symbol has nonzero
/// frequency it is assigned length 1 (DEFLATE requires a decodable code).
std::vector<std::uint8_t> build_code_lengths(const std::vector<std::uint64_t>& freqs,
                                             int max_bits);

/// Canonical code values for `lengths` per RFC 1951, bit-reversed so they
/// can be emitted through the LSB-first BitWriter directly.
std::vector<std::uint32_t> canonical_codes(const std::vector<std::uint8_t>& lengths);

class HuffmanDecoder {
 public:
  HuffmanDecoder() = default;

  /// Build the decoding tables. Fails (kBadValue) on an over-subscribed
  /// code; incomplete codes are accepted (required by DEFLATE's degenerate
  /// single-symbol distance codes).
  ParseStatus init(const std::vector<std::uint8_t>& lengths);

  /// Decode one symbol.
  Result<int> decode(BitReader& in) const;

  bool initialised() const { return !sorted_symbols_.empty(); }

 private:
  static constexpr int kMaxBits = 15;
  // counts_[l]   = number of codes of length l
  // offsets_[l]  = index into sorted_symbols_ of the first code of length l
  // first_code_[l] = canonical value of the first (non-reversed) code of length l
  std::uint16_t counts_[kMaxBits + 1] = {};
  std::uint16_t offsets_[kMaxBits + 1] = {};
  std::uint32_t first_code_[kMaxBits + 1] = {};
  std::vector<std::uint16_t> sorted_symbols_;
};

}  // namespace ads
