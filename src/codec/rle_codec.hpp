// Run-length codec: cheap lossless compression exploiting the draft's
// observation that screen content has "large areas ... that remain
// unchanged" — flat colour runs dominate computer-generated imagery.
// Layout: u32 width | u32 height | repeated (u16 run_length, 4-byte RGBA).
#pragma once

#include "codec/video_codec.hpp"

namespace ads {

Bytes rle_encode(const Image& img);
/// As rle_encode into `out` (cleared first, capacity kept) — the run-length
/// pass needs no working state beyond the output buffer itself.
void rle_encode_into(const Image& img, Bytes& out);
Result<Image> rle_decode(BytesView data);

class RleCodec final : public ImageCodec {
 public:
  ContentPt payload_type() const override { return ContentPt::kRle; }
  std::string_view name() const override { return "rle"; }
  bool lossless() const override { return true; }
  Bytes encode(const Image& img) const override { return rle_encode(img); }
  void encode_into(const Image& img, Bytes& out, EncodeScratch&) const override {
    rle_encode_into(img, out);
  }
  Result<Image> decode(BytesView data) const override { return rle_decode(data); }
};

}  // namespace ads
