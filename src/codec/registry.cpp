#include "codec/registry.hpp"

#include "codec/dct_codec.hpp"
#include "codec/png.hpp"
#include "codec/raw_codec.hpp"
#include "codec/rle_codec.hpp"

namespace ads {

CodecRegistry CodecRegistry::with_defaults() {
  CodecRegistry r;
  r.add(std::make_unique<RawCodec>());
  r.add(std::make_unique<RleCodec>());
  r.add(std::make_unique<PngCodec>());
  r.add(std::make_unique<DctCodec>());
  return r;
}

void CodecRegistry::add(std::unique_ptr<ImageCodec> codec) {
  const auto pt = static_cast<std::uint8_t>(codec->payload_type());
  codecs_[pt] = std::move(codec);
}

const ImageCodec* CodecRegistry::find(ContentPt pt) const {
  return find(static_cast<std::uint8_t>(pt));
}

const ImageCodec* CodecRegistry::find(std::uint8_t pt) const {
  auto it = codecs_.find(pt);
  return it == codecs_.end() ? nullptr : it->second.get();
}

bool CodecRegistry::encode_into(ContentPt pt, const Image& img, Bytes& out,
                                EncodeScratch& scratch) const {
  const ImageCodec* codec = find(pt);
  if (codec == nullptr) return false;
  codec->encode_into(img, out, scratch);
  return true;
}

bool CodecRegistry::encode_into(ContentPt pt, const Image& img, Bytes& out,
                                EncodeScratch& scratch,
                                const EncodeParams& params) const {
  const ImageCodec* codec = find(pt);
  if (codec == nullptr) return false;
  codec->encode_into(img, out, scratch, params);
  return true;
}

std::vector<ContentPt> CodecRegistry::payload_types() const {
  std::vector<ContentPt> out;
  out.reserve(codecs_.size());
  for (const auto& [pt, codec] : codecs_) out.push_back(static_cast<ContentPt>(pt));
  return out;
}

}  // namespace ads
