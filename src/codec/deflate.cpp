#include "codec/deflate.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

#include "codec/bitstream.hpp"
#include "codec/huffman.hpp"

namespace ads {

namespace deflate_tables {

int length_code(int length) {
  assert(length >= 3 && length <= 258);
  // Linear scan over 29 entries is branch-predictable and not on the hot
  // path (called once per token after search).
  for (int i = kNumLengthCodes - 1; i >= 0; --i) {
    if (length >= kLengthBase[static_cast<std::size_t>(i)]) {
      // Code 28 (base 258) carries no extra bits; lengths 227..257 belong
      // to code 27 even though 258 >= 227.
      if (i == 28 && length != 258) continue;
      return i;
    }
  }
  return 0;
}

int dist_code(int dist) {
  assert(dist >= 1 && dist <= 32768);
  for (int i = kNumDistCodes - 1; i >= 0; --i) {
    if (dist >= kDistBase[static_cast<std::size_t>(i)]) return i;
  }
  return 0;
}

}  // namespace deflate_tables

namespace {

using namespace deflate_tables;

constexpr int kWindowSize = 32768;
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kHashBits = 15;
constexpr int kHashSize = 1 << kHashBits;
constexpr int kEndOfBlock = 256;
constexpr int kNumLitLen = 286;  // literal/length alphabet size

/// One LZ77 token: a literal byte (dist == 0) or a (length, dist) match.
struct Token {
  std::uint16_t length_or_literal;
  std::uint16_t dist;
};

std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes into kHashBits.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          static_cast<std::uint32_t>(p[1]) << 8 |
                          static_cast<std::uint32_t>(p[2]) << 16;
  return (v * 0x9E3779B1u) >> (32 - kHashBits);
}

struct SearchParams {
  int max_chain;
  int nice_length;  ///< stop searching once a match this long is found
  bool lazy;
};

SearchParams params_for_level(int level) {
  switch (level) {
    case 1: return {4, 16, false};
    case 2: return {8, 32, false};
    case 3: return {16, 64, false};
    case 4: return {32, 64, true};
    case 5: return {64, 128, true};
    case 6: return {128, 192, true};
    case 7: return {256, 258, true};
    case 8: return {1024, 258, true};
    default: return {4096, 258, true};  // 9+
  }
}

int match_length(const std::uint8_t* a, const std::uint8_t* b, int limit) {
  int n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

/// Hash-chain LZ77 tokeniser. The chain tables and token list are borrowed
/// from the caller's scratch so repeated invocations reuse their capacity.
class Lz77 {
 public:
  Lz77(BytesView input, SearchParams params, std::vector<int>& head,
       std::vector<int>& prev)
      : in_(input), params_(params), head_(head), prev_(prev) {
    head_.assign(kHashSize, -1);
    prev_.assign(input.size(), -1);
  }

  void tokenize(std::vector<Token>& tokens) {
    tokens.clear();
    tokens.reserve(in_.size() / 3 + 16);
    const std::size_t n = in_.size();
    std::size_t i = 0;
    int pending_literal = -1;  // deferred byte during lazy evaluation
    while (i < n) {
      int best_len = 0;
      int best_dist = 0;
      find_match(i, best_len, best_dist);

      if (params_.lazy && best_len >= kMinMatch && best_len < params_.nice_length &&
          i + 1 < n) {
        // Peek at i+1; if strictly better there, emit in_[i] as a literal.
        int next_len = 0;
        int next_dist = 0;
        insert(i);
        find_match(i + 1, next_len, next_dist);
        if (next_len > best_len) {
          tokens.push_back({in_[i], 0});
          ++i;
          // The match at i (now i_old+1) will be re-found next iteration;
          // avoid reinserting i twice.
          pending_literal = -1;
          continue;
        }
        // Match at i wins; we already inserted i, so skip the first insert
        // in the emit path below.
        emit_match(tokens, i, best_len, best_dist, /*first_inserted=*/true);
        i += static_cast<std::size_t>(best_len);
        continue;
      }

      if (best_len >= kMinMatch) {
        emit_match(tokens, i, best_len, best_dist, false);
        i += static_cast<std::size_t>(best_len);
      } else {
        insert(i);
        tokens.push_back({in_[i], 0});
        ++i;
      }
    }
    (void)pending_literal;
  }

 private:
  void find_match(std::size_t pos, int& best_len, int& best_dist) const {
    best_len = 0;
    best_dist = 0;
    const std::size_t n = in_.size();
    if (pos + kMinMatch > n) return;
    const int limit = static_cast<int>(std::min<std::size_t>(kMaxMatch, n - pos));
    int candidate = head_[hash3(&in_[pos])];
    int chain = params_.max_chain;
    while (candidate >= 0 && chain-- > 0) {
      const std::size_t cpos = static_cast<std::size_t>(candidate);
      if (pos - cpos > kWindowSize) break;
      const int len = match_length(&in_[cpos], &in_[pos], limit);
      if (len > best_len) {
        best_len = len;
        best_dist = static_cast<int>(pos - cpos);
        if (len >= params_.nice_length) break;
      }
      candidate = prev_[cpos];
    }
  }

  void insert(std::size_t pos) {
    if (pos + kMinMatch > in_.size()) return;
    const std::uint32_t h = hash3(&in_[pos]);
    prev_[pos] = head_[h];
    head_[h] = static_cast<int>(pos);
  }

  void emit_match(std::vector<Token>& tokens, std::size_t pos, int len, int dist,
                  bool first_inserted) {
    tokens.push_back(
        {static_cast<std::uint16_t>(len), static_cast<std::uint16_t>(dist)});
    const std::size_t start = first_inserted ? pos + 1 : pos;
    for (std::size_t p = start; p < pos + static_cast<std::size_t>(len); ++p) insert(p);
  }

  BytesView in_;
  SearchParams params_;
  std::vector<int>& head_;
  std::vector<int>& prev_;
};

/// Fixed literal/length code lengths (RFC 1951 §3.2.6).
std::vector<std::uint8_t> fixed_litlen_lengths() {
  std::vector<std::uint8_t> l(288);
  for (int i = 0; i <= 143; ++i) l[static_cast<std::size_t>(i)] = 8;
  for (int i = 144; i <= 255; ++i) l[static_cast<std::size_t>(i)] = 9;
  for (int i = 256; i <= 279; ++i) l[static_cast<std::size_t>(i)] = 7;
  for (int i = 280; i <= 287; ++i) l[static_cast<std::size_t>(i)] = 8;
  return l;
}

std::vector<std::uint8_t> fixed_dist_lengths() {
  return std::vector<std::uint8_t>(30, 5);
}

struct CodeSet {
  std::vector<std::uint8_t> litlen_lengths;
  std::vector<std::uint32_t> litlen_codes;
  std::vector<std::uint8_t> dist_lengths;
  std::vector<std::uint32_t> dist_codes;
};

void count_frequencies(const std::vector<Token>& tokens,
                       std::vector<std::uint64_t>& lit_freq,
                       std::vector<std::uint64_t>& dist_freq) {
  lit_freq.assign(kNumLitLen, 0);
  dist_freq.assign(kNumDistCodes, 0);
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      ++lit_freq[t.length_or_literal];
    } else {
      ++lit_freq[static_cast<std::size_t>(257 + length_code(t.length_or_literal))];
      ++dist_freq[static_cast<std::size_t>(dist_code(t.dist))];
    }
  }
  ++lit_freq[kEndOfBlock];
}

/// Cost in bits of coding `tokens` with the given code lengths (excluding
/// any block header).
std::uint64_t body_cost_bits(const std::vector<Token>& tokens,
                             const std::vector<std::uint8_t>& litlen,
                             const std::vector<std::uint8_t>& dist) {
  std::uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      bits += litlen[t.length_or_literal];
    } else {
      const int lc = length_code(t.length_or_literal);
      const int dc = dist_code(t.dist);
      bits += litlen[static_cast<std::size_t>(257 + lc)] +
              kLengthExtra[static_cast<std::size_t>(lc)] +
              dist[static_cast<std::size_t>(dc)] +
              kDistExtra[static_cast<std::size_t>(dc)];
    }
  }
  bits += litlen[kEndOfBlock];
  return bits;
}

void write_tokens(BitWriter& out, const std::vector<Token>& tokens, const CodeSet& cs) {
  for (const Token& t : tokens) {
    if (t.dist == 0) {
      out.write(cs.litlen_codes[t.length_or_literal],
                cs.litlen_lengths[t.length_or_literal]);
    } else {
      const int lc = length_code(t.length_or_literal);
      const std::size_t sym = static_cast<std::size_t>(257 + lc);
      out.write(cs.litlen_codes[sym], cs.litlen_lengths[sym]);
      const int le = kLengthExtra[static_cast<std::size_t>(lc)];
      if (le) {
        out.write(static_cast<std::uint32_t>(t.length_or_literal -
                                             kLengthBase[static_cast<std::size_t>(lc)]),
                  le);
      }
      const int dc = dist_code(t.dist);
      out.write(cs.dist_codes[static_cast<std::size_t>(dc)],
                cs.dist_lengths[static_cast<std::size_t>(dc)]);
      const int de = kDistExtra[static_cast<std::size_t>(dc)];
      if (de) {
        out.write(
            static_cast<std::uint32_t>(t.dist - kDistBase[static_cast<std::size_t>(dc)]),
            de);
      }
    }
  }
  out.write(cs.litlen_codes[kEndOfBlock], cs.litlen_lengths[kEndOfBlock]);
}

/// Run-length encode the concatenated litlen+dist code lengths into
/// code-length-code symbols (with 16/17/18 repeats), per §3.2.7.
struct ClcSymbol {
  std::uint8_t symbol;
  std::uint8_t extra;       ///< repeat payload for 16/17/18
};

std::vector<ClcSymbol> rle_code_lengths(const std::vector<std::uint8_t>& lengths) {
  std::vector<ClcSymbol> out;
  std::size_t i = 0;
  while (i < lengths.size()) {
    const std::uint8_t v = lengths[i];
    std::size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == v) ++run;
    if (v == 0) {
      std::size_t left = run;
      while (left >= 11) {
        const std::size_t take = std::min<std::size_t>(left, 138);
        out.push_back({18, static_cast<std::uint8_t>(take - 11)});
        left -= take;
      }
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 10);
        out.push_back({17, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      for (std::size_t k = 0; k < left; ++k) out.push_back({0, 0});
    } else {
      out.push_back({v, 0});
      std::size_t left = run - 1;
      while (left >= 3) {
        const std::size_t take = std::min<std::size_t>(left, 6);
        out.push_back({16, static_cast<std::uint8_t>(take - 3)});
        left -= take;
      }
      for (std::size_t k = 0; k < left; ++k) out.push_back({v, 0});
    }
    i += run;
  }
  return out;
}

void write_stored(BitWriter& out, BytesView input, bool final_block) {
  // Stored blocks are limited to 65535 bytes each.
  std::size_t pos = 0;
  do {
    const std::size_t chunk = std::min<std::size_t>(input.size() - pos, 65535);
    const bool last = final_block && pos + chunk == input.size();
    out.write(last ? 1 : 0, 1);
    out.write(0, 2);  // BTYPE=00
    out.align_to_byte();
    const std::uint16_t len = static_cast<std::uint16_t>(chunk);
    out.byte(static_cast<std::uint8_t>(len));
    out.byte(static_cast<std::uint8_t>(len >> 8));
    out.byte(static_cast<std::uint8_t>(~len));
    out.byte(static_cast<std::uint8_t>(~len >> 8));
    for (std::size_t k = 0; k < chunk; ++k) out.byte(input[pos + k]);
    pos += chunk;
  } while (pos < input.size());
}

struct DynamicHeader {
  std::vector<ClcSymbol> rle;
  std::vector<std::uint8_t> clc_lengths;   // 19 entries
  std::vector<std::uint32_t> clc_codes;
  int hlit;
  int hdist;
  int hclen;
  std::uint64_t cost_bits;
};

DynamicHeader build_dynamic_header(const std::vector<std::uint8_t>& litlen,
                                   const std::vector<std::uint8_t>& dist) {
  DynamicHeader h;
  // HLIT: number of litlen codes - 257 (at least 257 codes transmitted).
  int nlit = kNumLitLen;
  while (nlit > 257 && litlen[static_cast<std::size_t>(nlit - 1)] == 0) --nlit;
  int ndist = kNumDistCodes;
  while (ndist > 1 && dist[static_cast<std::size_t>(ndist - 1)] == 0) --ndist;
  h.hlit = nlit - 257;
  h.hdist = ndist - 1;

  std::vector<std::uint8_t> all(litlen.begin(), litlen.begin() + nlit);
  all.insert(all.end(), dist.begin(), dist.begin() + ndist);
  h.rle = rle_code_lengths(all);

  std::vector<std::uint64_t> clc_freq(19, 0);
  for (const ClcSymbol& s : h.rle) ++clc_freq[s.symbol];
  h.clc_lengths = build_code_lengths(clc_freq, 7);
  h.clc_codes = canonical_codes(h.clc_lengths);

  int nclc = 19;
  while (nclc > 4 && h.clc_lengths[kClcOrder[static_cast<std::size_t>(nclc - 1)]] == 0)
    --nclc;
  h.hclen = nclc - 4;

  h.cost_bits = 5 + 5 + 4 + static_cast<std::uint64_t>(nclc) * 3;
  for (const ClcSymbol& s : h.rle) {
    h.cost_bits += h.clc_lengths[s.symbol];
    if (s.symbol == 16) h.cost_bits += 2;
    if (s.symbol == 17) h.cost_bits += 3;
    if (s.symbol == 18) h.cost_bits += 7;
  }
  return h;
}

void write_dynamic_header(BitWriter& out, const DynamicHeader& h) {
  out.write(static_cast<std::uint32_t>(h.hlit), 5);
  out.write(static_cast<std::uint32_t>(h.hdist), 5);
  out.write(static_cast<std::uint32_t>(h.hclen), 4);
  for (int i = 0; i < h.hclen + 4; ++i) {
    out.write(h.clc_lengths[kClcOrder[static_cast<std::size_t>(i)]], 3);
  }
  for (const ClcSymbol& s : h.rle) {
    out.write(h.clc_codes[s.symbol], h.clc_lengths[s.symbol]);
    if (s.symbol == 16) out.write(s.extra, 2);
    if (s.symbol == 17) out.write(s.extra, 3);
    if (s.symbol == 18) out.write(s.extra, 7);
  }
}

/// The fixed-Huffman code set is constant; build it once.
const CodeSet& fixed_codes() {
  static const CodeSet cs = [] {
    CodeSet fixed;
    fixed.litlen_lengths = fixed_litlen_lengths();
    fixed.litlen_codes = canonical_codes(fixed.litlen_lengths);
    fixed.dist_lengths = fixed_dist_lengths();
    fixed.dist_codes = canonical_codes(fixed.dist_lengths);
    return fixed;
  }();
  return cs;
}

}  // namespace

struct DeflateScratch::Impl {
  std::vector<int> head;
  std::vector<int> prev;
  std::vector<Token> tokens;
  std::vector<std::uint64_t> lit_freq;
  std::vector<std::uint64_t> dist_freq;
};

DeflateScratch::DeflateScratch() : impl(std::make_unique<Impl>()) {}
DeflateScratch::~DeflateScratch() = default;
DeflateScratch::DeflateScratch(DeflateScratch&&) noexcept = default;
DeflateScratch& DeflateScratch::operator=(DeflateScratch&&) noexcept = default;

int deflate_clamp_level(int level) { return std::clamp(level, 0, 9); }

Bytes deflate_compress(BytesView input, const DeflateOptions& opts) {
  DeflateScratch scratch;
  Bytes out;
  deflate_compress_into(input, opts, out, scratch);
  return out;
}

void deflate_compress_into(BytesView input, const DeflateOptions& opts, Bytes& out,
                           DeflateScratch& scratch) {
  const int level = deflate_clamp_level(opts.level);
  BitWriter bits(std::move(out));

  if (level <= 0 || opts.block == DeflateOptions::Block::kStored) {
    if (input.empty()) {
      // A zero-length stored block is still a valid final block.
      bits.write(1, 1);
      bits.write(0, 2);
      bits.align_to_byte();
      bits.byte(0);
      bits.byte(0);
      bits.byte(0xFF);
      bits.byte(0xFF);
      out = bits.take();
      return;
    }
    write_stored(bits, input, true);
    out = bits.take();
    return;
  }

  const SearchParams params = params_for_level(level);
  std::vector<Token>& tokens = scratch.impl->tokens;
  Lz77(input, params, scratch.impl->head, scratch.impl->prev).tokenize(tokens);

  // Candidate 1: fixed Huffman.
  const CodeSet& fixed = fixed_codes();
  const std::uint64_t fixed_bits =
      3 + body_cost_bits(tokens, fixed.litlen_lengths, fixed.dist_lengths);

  // Candidate 2: dynamic Huffman.
  std::vector<std::uint64_t>& lit_freq = scratch.impl->lit_freq;
  std::vector<std::uint64_t>& dist_freq = scratch.impl->dist_freq;
  count_frequencies(tokens, lit_freq, dist_freq);
  CodeSet dyn;
  dyn.litlen_lengths = build_code_lengths(lit_freq, 15);
  dyn.dist_lengths = build_code_lengths(dist_freq, 15);
  // DEFLATE requires at least one distance code length slot even if unused.
  if (std::all_of(dyn.dist_lengths.begin(), dyn.dist_lengths.end(),
                  [](std::uint8_t l) { return l == 0; })) {
    dyn.dist_lengths[0] = 1;
  }
  dyn.litlen_codes = canonical_codes(dyn.litlen_lengths);
  dyn.dist_codes = canonical_codes(dyn.dist_lengths);
  const DynamicHeader header = build_dynamic_header(dyn.litlen_lengths, dyn.dist_lengths);
  const std::uint64_t dyn_bits =
      3 + header.cost_bits +
      body_cost_bits(tokens, dyn.litlen_lengths, dyn.dist_lengths);

  const std::uint64_t stored_bits = (input.size() + 5 * (input.size() / 65535 + 1)) * 8;

  auto choice = opts.block;
  if (choice == DeflateOptions::Block::kAuto) {
    if (stored_bits < fixed_bits && stored_bits < dyn_bits) {
      choice = DeflateOptions::Block::kStored;
    } else if (fixed_bits <= dyn_bits) {
      choice = DeflateOptions::Block::kFixed;
    } else {
      choice = DeflateOptions::Block::kDynamic;
    }
  }

  switch (choice) {
    case DeflateOptions::Block::kStored:
      write_stored(bits, input, true);
      break;
    case DeflateOptions::Block::kFixed:
      bits.write(1, 1);  // BFINAL
      bits.write(1, 2);  // BTYPE=01
      write_tokens(bits, tokens, fixed);
      break;
    case DeflateOptions::Block::kDynamic:
    case DeflateOptions::Block::kAuto:
      bits.write(1, 1);
      bits.write(2, 2);  // BTYPE=10
      write_dynamic_header(bits, header);
      write_tokens(bits, tokens, dyn);
      break;
  }
  out = bits.take();
}

}  // namespace ads
