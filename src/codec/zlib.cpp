#include "codec/zlib.hpp"

#include "util/checksum.hpp"

namespace ads {

Bytes zlib_compress(BytesView input, const DeflateOptions& opts) {
  DeflateScratch scratch;
  Bytes out;
  zlib_compress_into(input, opts, out, scratch);
  return out;
}

void zlib_compress_into(BytesView input, const DeflateOptions& opts, Bytes& out,
                        DeflateScratch& scratch) {
  deflate_compress_into(input, opts, scratch.stream, scratch);
  ByteWriter w(std::move(out));
  // CMF: CM=8 (deflate), CINFO=7 (32K window). FLG chosen so that
  // (CMF*256 + FLG) % 31 == 0 with FDICT=0, FLEVEL=0.
  const std::uint8_t cmf = 0x78;
  std::uint8_t flg = 0;
  const std::uint16_t check = static_cast<std::uint16_t>(cmf) << 8;
  flg = static_cast<std::uint8_t>(31 - (check % 31)) % 31;
  w.u8(cmf);
  w.u8(flg);
  w.bytes(scratch.stream);
  w.u32(adler32(input));
  out = w.take();
}

Result<Bytes> zlib_decompress(BytesView input, const InflateLimits& limits) {
  ByteReader in(input);
  auto cmf = in.u8();
  auto flg = in.u8();
  if (!cmf || !flg) return ParseError::kTruncated;
  if ((*cmf & 0x0F) != 8) return ParseError::kUnsupported;       // CM must be deflate
  if ((static_cast<unsigned>(*cmf) * 256 + *flg) % 31 != 0) return ParseError::kBadMagic;
  if (*flg & 0x20) return ParseError::kUnsupported;              // FDICT not supported
  if (in.remaining() < 4) return ParseError::kTruncated;

  const BytesView body = input.subspan(2, input.size() - 6);
  auto out = inflate(body, limits);
  if (!out) return out.error();

  ByteReader tail(input.subspan(input.size() - 4));
  auto expected = tail.u32();
  if (!expected) return expected.error();
  if (adler32(*out) != *expected) return ParseError::kBadChecksum;
  return out;
}

}  // namespace ads
