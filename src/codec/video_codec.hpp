// Content codec abstraction behind RegionUpdate's 7-bit PT field.
//
// Draft §5.2.2: "The 7 bit PT field carries the actual payload type of the
// content which can be PNG, JPEG, Theora, or any other media type which has
// an RTP payload specification. All AH and participant software
// implementations MUST support PNG images."
//
// Each codec turns an Image into self-describing bytes (dimensions are
// carried inside the payload, matching the draft's note that RegionUpdate
// width/height "is not transmitted explicitly by this protocol") and back.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "image/image.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ads {

/// Dynamic RTP payload type numbers assigned to content codecs in this
/// implementation's SDP (range 96-127).
enum class ContentPt : std::uint8_t {
  kRaw = 96,   ///< uncompressed RGBA, baseline for benchmarks
  kRle = 97,   ///< run-length encoding, cheap lossless
  kPng = 98,   ///< PNG (mandatory-to-implement per the draft)
  kDct = 102,  ///< lossy 8x8 DCT codec (the "JPEG-like" alternative)
};

class ImageCodec {
 public:
  virtual ~ImageCodec() = default;

  virtual ContentPt payload_type() const = 0;
  virtual std::string_view name() const = 0;
  virtual bool lossless() const = 0;

  /// Serialise `img` (dimensions included in the payload).
  virtual Bytes encode(const Image& img) const = 0;

  /// Parse a payload previously produced by encode() (or, for PNG, any
  /// conformant 8-bit RGB/RGBA PNG stream).
  virtual Result<Image> decode(BytesView data) const = 0;
};

}  // namespace ads
