// Content codec abstraction behind RegionUpdate's 7-bit PT field.
//
// Draft §5.2.2: "The 7 bit PT field carries the actual payload type of the
// content which can be PNG, JPEG, Theora, or any other media type which has
// an RTP payload specification. All AH and participant software
// implementations MUST support PNG images."
//
// Each codec turns an Image into self-describing bytes (dimensions are
// carried inside the payload, matching the draft's note that RegionUpdate
// width/height "is not transmitted explicitly by this protocol") and back.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "codec/deflate.hpp"
#include "image/image.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ads {

/// Reusable per-thread working buffers for the encode hot path. One scratch
/// per encoding thread (never shared concurrently): after warm-up, encoding
/// a band reuses these arenas instead of allocating, which is what lets the
/// AH's parallel band pipeline run allocation-free in steady state.
struct EncodeScratch {
  DeflateScratch deflate;
  Bytes staging;     ///< raw raster rows (PNG) / coefficient stream (DCT)
  Bytes filtered;    ///< PNG filtered scanlines
  Bytes row;         ///< PNG per-row filter trial buffer
  Bytes compressed;  ///< zlib/deflate output staging
  std::vector<double> planes[3];  ///< DCT channel planes
};

/// Dynamic RTP payload type numbers assigned to content codecs in this
/// implementation's SDP (range 96-127).
enum class ContentPt : std::uint8_t {
  kRaw = 96,   ///< uncompressed RGBA, baseline for benchmarks
  kRle = 97,   ///< run-length encoding, cheap lossless
  kPng = 98,   ///< PNG (mandatory-to-implement per the draft)
  kDct = 102,  ///< lossy 8x8 DCT codec (the "JPEG-like" alternative)
};

/// Per-call encode parameters. Lossless codecs ignore them; the DCT codec
/// maps `dct_quality` onto its quantisation tables, which is how the
/// ads::rate quality ladder steers one shared codec instance to different
/// operating points per participant.
struct EncodeParams {
  /// 1..100 selects an explicit DCT quality; 0 keeps the codec's default.
  int dct_quality = 0;

  friend bool operator==(const EncodeParams&, const EncodeParams&) = default;
};

/// Interface every content codec implements: payload-type identity plus
/// encode/decode between Image and self-describing bytes.
class ImageCodec {
 public:
  virtual ~ImageCodec() = default;

  /// RTP payload type this codec serialises as.
  virtual ContentPt payload_type() const = 0;
  /// Short human-readable codec name ("png", "dct", ...).
  virtual std::string_view name() const = 0;
  /// True when decode(encode(img)) reproduces img bit-exactly.
  virtual bool lossless() const = 0;

  /// Serialise `img` (dimensions included in the payload).
  virtual Bytes encode(const Image& img) const = 0;

  /// Serialise `img` into `out` (cleared first, capacity kept), reusing
  /// `scratch` for working state. Output is byte-identical to encode().
  /// Codecs without a scratch-aware path fall back to encode().
  virtual void encode_into(const Image& img, Bytes& out, EncodeScratch& scratch) const {
    (void)scratch;
    out = encode(img);
  }

  /// As encode_into, honouring per-call `params`. The default ignores the
  /// parameters (correct for every lossless codec); parameterisable codecs
  /// override this.
  virtual void encode_into(const Image& img, Bytes& out, EncodeScratch& scratch,
                           const EncodeParams& params) const {
    (void)params;
    encode_into(img, out, scratch);
  }

  /// Parse a payload previously produced by encode() (or, for PNG, any
  /// conformant 8-bit RGB/RGBA PNG stream).
  virtual Result<Image> decode(BytesView data) const = 0;
};

}  // namespace ads
