// PNG encoder/decoder (subset of RFC 2083 sufficient for screen remoting):
// 8-bit RGB and RGBA, filters 0-4 with per-row minimum-sum-of-absolute-
// differences selection, single IDAT, no interlacing. Built on our own
// zlib/DEFLATE implementation.
#pragma once

#include "codec/deflate.hpp"
#include "codec/video_codec.hpp"

namespace ads {

struct PngOptions {
  DeflateOptions deflate;
  bool rgba = true;  ///< false = strip alpha, write colour type 2 (RGB)
  /// Disable the adaptive filter pass (ablation for bench E9); all rows use
  /// filter 0 (None).
  bool adaptive_filters = true;
};

Bytes png_encode(const Image& img, const PngOptions& opts = {});
/// As png_encode, but writes into `out` (cleared first, capacity kept) and
/// reuses `scratch` for the raster/filter/deflate working buffers. Output
/// bytes are identical to png_encode.
void png_encode_into(const Image& img, const PngOptions& opts, Bytes& out,
                     EncodeScratch& scratch);
Result<Image> png_decode(BytesView data);

class PngCodec final : public ImageCodec {
 public:
  explicit PngCodec(PngOptions opts = {}) : opts_(opts) {}

  ContentPt payload_type() const override { return ContentPt::kPng; }
  std::string_view name() const override { return "png"; }
  bool lossless() const override { return true; }
  Bytes encode(const Image& img) const override { return png_encode(img, opts_); }
  void encode_into(const Image& img, Bytes& out, EncodeScratch& scratch) const override {
    png_encode_into(img, opts_, out, scratch);
  }
  Result<Image> decode(BytesView data) const override { return png_decode(data); }

 private:
  PngOptions opts_;
};

}  // namespace ads
