// DEFLATE compressor (RFC 1951), implemented from scratch.
//
// Pipeline: LZ77 tokenisation with hash-chain match search (optionally
// lazy), then per-stream Huffman coding. The encoder emits whichever of
// {stored, fixed-Huffman, dynamic-Huffman} blocks is smallest for the data.
// Shared tables (length/distance code bases) live in this header so the
// inflater uses the identical definitions.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "util/bytes.hpp"

namespace ads {

struct DeflateOptions {
  /// 0 = stored only; 1 = greedy match, fixed-block preferred; 2-9 = hash
  /// chain search depth grows, lazy matching from level 4. Out-of-range
  /// values are clamped to [0, 9].
  int level = 6;
  /// Force block type for ablation benchmarks (E9); kAuto picks cheapest.
  enum class Block { kAuto, kStored, kFixed, kDynamic } block = Block::kAuto;
};

/// `level` folded into the supported range: negatives behave as 0 (stored
/// only), anything above 9 as 9.
int deflate_clamp_level(int level);

/// Reusable compressor state (hash chains, token list, frequency tables,
/// staging buffers). One scratch per thread: reusing it across calls makes
/// the steady-state encode path allocation-free for same-or-smaller inputs.
struct DeflateScratch {
  DeflateScratch();
  ~DeflateScratch();
  DeflateScratch(DeflateScratch&&) noexcept;
  DeflateScratch& operator=(DeflateScratch&&) noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl;
  /// Staging for wrapper formats (zlib stream body); lives here so zlib/png
  /// can reuse it without seeing Impl.
  Bytes stream;
};

/// Compress `input` into a raw DEFLATE stream (no zlib wrapper).
Bytes deflate_compress(BytesView input, const DeflateOptions& opts = {});

/// As deflate_compress, but writes into `out` (cleared first, capacity kept)
/// and reuses `scratch` instead of allocating working state. Output bytes are
/// identical to deflate_compress for the same input and options.
void deflate_compress_into(BytesView input, const DeflateOptions& opts, Bytes& out,
                           DeflateScratch& scratch);

namespace deflate_tables {

// RFC 1951 §3.2.5. Length codes 257..285: base length and extra bits.
inline constexpr int kNumLengthCodes = 29;
inline constexpr std::array<std::uint16_t, kNumLengthCodes> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
inline constexpr std::array<std::uint8_t, kNumLengthCodes> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance codes 0..29: base distance and extra bits.
inline constexpr int kNumDistCodes = 30;
inline constexpr std::array<std::uint16_t, kNumDistCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
inline constexpr std::array<std::uint8_t, kNumDistCodes> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length-code lengths are transmitted (§3.2.7).
inline constexpr std::array<std::uint8_t, 19> kClcOrder = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};

/// Length value (3..258) -> length code index (0..28).
int length_code(int length);
/// Distance value (1..32768) -> distance code index (0..29).
int dist_code(int dist);

}  // namespace deflate_tables

}  // namespace ads
