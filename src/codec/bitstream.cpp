#include "codec/bitstream.hpp"

#include <cassert>

namespace ads {

void BitWriter::write(std::uint32_t bits, int count) {
  assert(count >= 0 && count <= 32);
  while (count > 0) {
    if (bit_pos_ == 0) buf_.push_back(0);
    const int room = 8 - bit_pos_;
    const int take = count < room ? count : room;
    buf_.back() |= static_cast<std::uint8_t>((bits & ((1u << take) - 1)) << bit_pos_);
    bits >>= take;
    count -= take;
    bit_pos_ = (bit_pos_ + take) & 7;
  }
}

void BitWriter::align_to_byte() { bit_pos_ = 0; }

void BitWriter::byte(std::uint8_t b) {
  assert(bit_pos_ == 0);
  buf_.push_back(b);
}

Result<std::uint32_t> BitReader::read(int count) {
  assert(count >= 0 && count <= 32);
  std::uint32_t out = 0;
  int got = 0;
  while (got < count) {
    if (byte_pos_ >= data_.size()) return ParseError::kTruncated;
    const int avail = 8 - bit_pos_;
    const int take = (count - got) < avail ? (count - got) : avail;
    const std::uint32_t chunk = (data_[byte_pos_] >> bit_pos_) & ((1u << take) - 1);
    out |= chunk << got;
    got += take;
    bit_pos_ += take;
    if (bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }
  return out;
}

void BitReader::align_to_byte() {
  if (bit_pos_ != 0) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
}

}  // namespace ads
