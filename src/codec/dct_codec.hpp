// Lossy DCT codec — the "JPEG-like" alternative the draft names for
// photographic content (§4.2). JPEG-style pipeline: RGB→YCbCr, 8×8 DCT-II
// per channel, quality-scaled quantisation with the standard JPEG example
// tables, zig-zag ordering, DC delta coding, then our DEFLATE as the entropy
// stage (instead of JPEG's arithmetic/Huffman coder — the rate/distortion
// behaviour relevant to experiment E1 is preserved).
// Layout: u32 width | u32 height | u8 quality | zlib(coefficient stream).
#pragma once

#include "codec/video_codec.hpp"

namespace ads {

struct DctOptions {
  int quality = 75;  ///< 1 (worst) .. 100 (near-lossless)
};

Bytes dct_encode(const Image& img, const DctOptions& opts = {});
/// As dct_encode, but writes into `out` (cleared first, capacity kept) and
/// reuses `scratch` for the channel planes, coefficient stream, and entropy
/// stage. Output bytes are identical to dct_encode.
void dct_encode_into(const Image& img, const DctOptions& opts, Bytes& out,
                     EncodeScratch& scratch);
Result<Image> dct_decode(BytesView data);

class DctCodec final : public ImageCodec {
 public:
  explicit DctCodec(DctOptions opts = {}) : opts_(opts) {}

  ContentPt payload_type() const override { return ContentPt::kDct; }
  std::string_view name() const override { return "dct"; }
  bool lossless() const override { return false; }
  Bytes encode(const Image& img) const override { return dct_encode(img, opts_); }
  void encode_into(const Image& img, Bytes& out, EncodeScratch& scratch) const override {
    dct_encode_into(img, opts_, out, scratch);
  }
  /// Quality-parameterised entry: params.dct_quality (when non-zero)
  /// overrides the construction-time quality — the ads::rate ladder's hook.
  void encode_into(const Image& img, Bytes& out, EncodeScratch& scratch,
                   const EncodeParams& params) const override {
    DctOptions opts = opts_;
    if (params.dct_quality > 0) opts.quality = params.dct_quality;
    dct_encode_into(img, opts, out, scratch);
  }
  Result<Image> decode(BytesView data) const override { return dct_decode(data); }

 private:
  DctOptions opts_;
};

}  // namespace ads
