// DEFLATE decompressor (RFC 1951). Tolerant of any conformant stream, not
// just our own encoder's output; all failures are reported as ParseError
// (untrusted network data must never crash the participant).
#pragma once

#include <cstddef>

#include "util/bytes.hpp"

namespace ads {

struct InflateLimits {
  /// Refuse to expand beyond this many bytes (zip-bomb guard for data
  /// arriving from the network). 0 means unlimited.
  std::size_t max_output = 0;
};

/// Decompress a raw DEFLATE stream.
Result<Bytes> inflate(BytesView input, const InflateLimits& limits = {});

}  // namespace ads
