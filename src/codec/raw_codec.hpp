// Uncompressed RGBA codec: the bandwidth baseline for the E1 benchmark and
// the simplest possible RegionUpdate payload.
// Layout: u32 width | u32 height | width*height*4 bytes RGBA.
#pragma once

#include "codec/video_codec.hpp"

namespace ads {

Bytes raw_encode(const Image& img);
/// As raw_encode into `out` (cleared first, capacity kept).
void raw_encode_into(const Image& img, Bytes& out);
Result<Image> raw_decode(BytesView data);

class RawCodec final : public ImageCodec {
 public:
  ContentPt payload_type() const override { return ContentPt::kRaw; }
  std::string_view name() const override { return "raw"; }
  bool lossless() const override { return true; }
  Bytes encode(const Image& img) const override { return raw_encode(img); }
  void encode_into(const Image& img, Bytes& out, EncodeScratch&) const override {
    raw_encode_into(img, out);
  }
  Result<Image> decode(BytesView data) const override { return raw_decode(data); }
};

}  // namespace ads
