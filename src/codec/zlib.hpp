// zlib stream wrapper (RFC 1950): 2-byte CMF/FLG header around a DEFLATE
// body, followed by the Adler-32 of the uncompressed data. This is the
// container PNG's IDAT chunks require.
#pragma once

#include "codec/deflate.hpp"
#include "codec/inflate.hpp"
#include "util/bytes.hpp"

namespace ads {

/// Compress into a zlib stream.
Bytes zlib_compress(BytesView input, const DeflateOptions& opts = {});

/// As zlib_compress, but writes into `out` (cleared first, capacity kept)
/// and reuses `scratch`. Output bytes are identical to zlib_compress.
void zlib_compress_into(BytesView input, const DeflateOptions& opts, Bytes& out,
                        DeflateScratch& scratch);

/// Decompress a zlib stream, verifying header and Adler-32.
Result<Bytes> zlib_decompress(BytesView input, const InflateLimits& limits = {});

}  // namespace ads
