#include "codec/inflate.hpp"

#include <vector>

#include "codec/bitstream.hpp"
#include "codec/deflate.hpp"
#include "codec/huffman.hpp"

namespace ads {
namespace {

using namespace deflate_tables;

constexpr int kEndOfBlock = 256;

ParseStatus check_limit(const Bytes& out, std::size_t extra, const InflateLimits& limits) {
  if (limits.max_output != 0 && out.size() + extra > limits.max_output) {
    return ParseError::kOverflow;
  }
  return {};
}

ParseStatus inflate_block_body(BitReader& in, Bytes& out, const HuffmanDecoder& litlen,
                               const HuffmanDecoder& dist, const InflateLimits& limits) {
  for (;;) {
    auto sym = litlen.decode(in);
    if (!sym) return sym.error();
    if (*sym < 256) {
      if (auto s = check_limit(out, 1, limits); !s.ok()) return s;
      out.push_back(static_cast<std::uint8_t>(*sym));
      continue;
    }
    if (*sym == kEndOfBlock) return {};
    const int lc = *sym - 257;
    if (lc >= kNumLengthCodes) return ParseError::kBadValue;
    auto lextra = in.read(kLengthExtra[static_cast<std::size_t>(lc)]);
    if (!lextra) return lextra.error();
    const std::size_t length = kLengthBase[static_cast<std::size_t>(lc)] + *lextra;

    auto dsym = dist.decode(in);
    if (!dsym) return dsym.error();
    if (*dsym >= kNumDistCodes) return ParseError::kBadValue;
    auto dextra = in.read(kDistExtra[static_cast<std::size_t>(*dsym)]);
    if (!dextra) return dextra.error();
    const std::size_t distance = kDistBase[static_cast<std::size_t>(*dsym)] + *dextra;

    if (distance > out.size()) return ParseError::kBadValue;
    if (auto s = check_limit(out, length, limits); !s.ok()) return s;
    // Byte-by-byte copy is mandatory: distance < length means the match
    // overlaps its own output (RLE-style runs).
    std::size_t from = out.size() - distance;
    for (std::size_t k = 0; k < length; ++k) out.push_back(out[from + k]);
  }
}

ParseStatus read_dynamic_tables(BitReader& in, HuffmanDecoder& litlen,
                                HuffmanDecoder& dist) {
  auto hlit = in.read(5);
  auto hdist = in.read(5);
  auto hclen = in.read(4);
  if (!hlit || !hdist || !hclen) return ParseError::kTruncated;
  const int nlit = static_cast<int>(*hlit) + 257;
  const int ndist = static_cast<int>(*hdist) + 1;
  const int nclc = static_cast<int>(*hclen) + 4;
  if (nlit > 286 || ndist > 30) return ParseError::kBadValue;

  std::vector<std::uint8_t> clc_lengths(19, 0);
  for (int i = 0; i < nclc; ++i) {
    auto v = in.read(3);
    if (!v) return v.error();
    clc_lengths[kClcOrder[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(*v);
  }
  HuffmanDecoder clc;
  if (auto s = clc.init(clc_lengths); !s.ok()) return s;

  std::vector<std::uint8_t> lengths;
  lengths.reserve(static_cast<std::size_t>(nlit + ndist));
  while (static_cast<int>(lengths.size()) < nlit + ndist) {
    auto sym = clc.decode(in);
    if (!sym) return sym.error();
    if (*sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(*sym));
    } else if (*sym == 16) {
      if (lengths.empty()) return ParseError::kBadValue;
      auto rep = in.read(2);
      if (!rep) return rep.error();
      const std::uint8_t prev = lengths.back();
      for (std::uint32_t k = 0; k < *rep + 3; ++k) lengths.push_back(prev);
    } else if (*sym == 17) {
      auto rep = in.read(3);
      if (!rep) return rep.error();
      for (std::uint32_t k = 0; k < *rep + 3; ++k) lengths.push_back(0);
    } else {  // 18
      auto rep = in.read(7);
      if (!rep) return rep.error();
      for (std::uint32_t k = 0; k < *rep + 11; ++k) lengths.push_back(0);
    }
  }
  if (static_cast<int>(lengths.size()) != nlit + ndist) return ParseError::kBadValue;

  std::vector<std::uint8_t> lit_lengths(lengths.begin(), lengths.begin() + nlit);
  std::vector<std::uint8_t> dist_lengths(lengths.begin() + nlit, lengths.end());
  if (auto s = litlen.init(lit_lengths); !s.ok()) return s;
  // A block with no matches can legally transmit a degenerate distance code
  // (a single zero length); treat an uninitialisable distance table as
  // "no distance codes" and fail only if a match actually needs one.
  if (auto s = dist.init(dist_lengths); !s.ok()) {
    // leave `dist` uninitialised; decode() on it will fail
  }
  return {};
}

}  // namespace

Result<Bytes> inflate(BytesView input, const InflateLimits& limits) {
  BitReader in(input);
  Bytes out;

  for (;;) {
    auto bfinal = in.bit();
    if (!bfinal) return bfinal.error();
    auto btype = in.read(2);
    if (!btype) return btype.error();

    if (*btype == 0) {  // stored
      in.align_to_byte();
      auto len_lo = in.read(8);
      auto len_hi = in.read(8);
      auto nlen_lo = in.read(8);
      auto nlen_hi = in.read(8);
      if (!len_lo || !len_hi || !nlen_lo || !nlen_hi) return ParseError::kTruncated;
      const std::uint16_t len = static_cast<std::uint16_t>(*len_lo | (*len_hi << 8));
      const std::uint16_t nlen = static_cast<std::uint16_t>(*nlen_lo | (*nlen_hi << 8));
      if (static_cast<std::uint16_t>(~len) != nlen) return ParseError::kBadValue;
      if (auto s = check_limit(out, len, limits); !s.ok()) return s.error();
      for (int k = 0; k < len; ++k) {
        auto b = in.read(8);
        if (!b) return b.error();
        out.push_back(static_cast<std::uint8_t>(*b));
      }
    } else if (*btype == 1) {  // fixed Huffman
      std::vector<std::uint8_t> lit(288);
      for (int i = 0; i <= 143; ++i) lit[static_cast<std::size_t>(i)] = 8;
      for (int i = 144; i <= 255; ++i) lit[static_cast<std::size_t>(i)] = 9;
      for (int i = 256; i <= 279; ++i) lit[static_cast<std::size_t>(i)] = 7;
      for (int i = 280; i <= 287; ++i) lit[static_cast<std::size_t>(i)] = 8;
      HuffmanDecoder litlen;
      HuffmanDecoder dist;
      if (auto s = litlen.init(lit); !s.ok()) return s.error();
      if (auto s = dist.init(std::vector<std::uint8_t>(30, 5)); !s.ok()) return s.error();
      if (auto s = inflate_block_body(in, out, litlen, dist, limits); !s.ok())
        return s.error();
    } else if (*btype == 2) {  // dynamic Huffman
      HuffmanDecoder litlen;
      HuffmanDecoder dist;
      if (auto s = read_dynamic_tables(in, litlen, dist); !s.ok()) return s.error();
      if (auto s = inflate_block_body(in, out, litlen, dist, limits); !s.ok())
        return s.error();
    } else {
      return ParseError::kBadValue;
    }

    if (*bfinal) break;
  }
  return out;
}

}  // namespace ads
