#include "codec/dct_codec.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "codec/zlib.hpp"
#include "util/simd.hpp"

namespace ads {
namespace {

// Standard JPEG (Annex K) example quantisation tables.
constexpr std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

/// IJG-style quality scaling of a quant table.
std::array<int, 64> scale_table(const std::array<int, 64>& base, int quality) {
  quality = std::clamp(quality, 1, 100);
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] = std::clamp(
        (base[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return out;
}

struct DctBasis {
  // cos((2x+1) u pi / 16) * c(u) precomputed, plus flat row-major and
  // transposed copies for the simd kernel (which broadcasts inputs and walks
  // the transpose so per-output addition order matches the scalar loops).
  double t[8][8];
  double flat[64];
  double flat_t[64];
  DctBasis() {
    for (int u = 0; u < 8; ++u) {
      const double cu = u == 0 ? std::sqrt(0.5) : 1.0;
      for (int x = 0; x < 8; ++x) {
        t[u][x] = 0.5 * cu * std::cos((2 * x + 1) * u * M_PI / 16.0);
        flat[u * 8 + x] = t[u][x];
        flat_t[x * 8 + u] = t[u][x];
      }
    }
  }
};

const DctBasis& basis() {
  static const DctBasis b;
  return b;
}

void fdct8x8(const double in[64], double out[64]) {
  const auto& b = basis();
  simd::fdct8x8(in, out, b.flat, b.flat_t);
}

void idct8x8(const double in[64], double out[64]) {
  const auto& b = basis();
  double tmp[64];
  for (int v = 0; v < 8; ++v) {
    for (int x = 0; x < 8; ++x) {
      double s = 0;
      for (int u = 0; u < 8; ++u) s += in[v * 8 + u] * b.t[u][x];
      tmp[v * 8 + x] = s;
    }
  }
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double s = 0;
      for (int v = 0; v < 8; ++v) s += tmp[v * 8 + x] * b.t[v][y];
      out[y * 8 + x] = s;
    }
  }
}

std::uint8_t clamp_u8(double v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0L, 255L));
}

void rgb_to_ycbcr(const Pixel& p, double& y, double& cb, double& cr) {
  y = 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
  cb = 128.0 - 0.168736 * p.r - 0.331264 * p.g + 0.5 * p.b;
  cr = 128.0 + 0.5 * p.r - 0.418688 * p.g - 0.081312 * p.b;
}

Pixel ycbcr_to_rgb(double y, double cb, double cr) {
  Pixel p;
  p.r = clamp_u8(y + 1.402 * (cr - 128.0));
  p.g = clamp_u8(y - 0.344136 * (cb - 128.0) - 0.714136 * (cr - 128.0));
  p.b = clamp_u8(y + 1.772 * (cb - 128.0));
  p.a = 255;
  return p;
}

/// Append an int16 (little-endian; internal to this codec) to `out`.
void push_i16(Bytes& out, int v) {
  const auto u = static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  out.push_back(static_cast<std::uint8_t>(u));
  out.push_back(static_cast<std::uint8_t>(u >> 8));
}

int read_i16(BytesView data, std::size_t index) {
  const std::uint16_t u = static_cast<std::uint16_t>(
      data[index * 2] | static_cast<std::uint16_t>(data[index * 2 + 1]) << 8);
  return static_cast<std::int16_t>(u);
}

}  // namespace

Bytes dct_encode(const Image& img, const DctOptions& opts) {
  EncodeScratch scratch;
  Bytes out;
  dct_encode_into(img, opts, out, scratch);
  return out;
}

void dct_encode_into(const Image& img, const DctOptions& opts, Bytes& dest,
                     EncodeScratch& scratch) {
  const std::int64_t w = img.width();
  const std::int64_t h = img.height();
  const std::int64_t bw = (w + 7) / 8;
  const std::int64_t bh = (h + 7) / 8;

  const auto luma_q = scale_table(kLumaQuant, opts.quality);
  const auto chroma_q = scale_table(kChromaQuant, opts.quality);

  // Channel planes, edge-replicated to block multiples.
  const std::int64_t pw = bw * 8;
  const std::int64_t ph = bh * 8;
  std::vector<double>(&planes)[3] = scratch.planes;
  for (auto& pl : planes) pl.resize(static_cast<std::size_t>(pw * ph));
  for (std::int64_t y = 0; y < ph; ++y) {
    const std::int64_t sy = std::min(y, h > 0 ? h - 1 : 0);
    for (std::int64_t x = 0; x < pw; ++x) {
      const std::int64_t sx = std::min(x, w > 0 ? w - 1 : 0);
      double yy = 0;
      double cb = 0;
      double cr = 0;
      if (w > 0 && h > 0) rgb_to_ycbcr(img.at(sx, sy), yy, cb, cr);
      const std::size_t i = static_cast<std::size_t>(y * pw + x);
      planes[0][i] = yy - 128.0;
      planes[1][i] = cb - 128.0;
      planes[2][i] = cr - 128.0;
    }
  }

  Bytes& coeffs = scratch.staging;
  coeffs.clear();
  coeffs.reserve(static_cast<std::size_t>(bw * bh) * 3 * 32);
  for (int ch = 0; ch < 3; ++ch) {
    const auto& q = ch == 0 ? luma_q : chroma_q;
    int prev_dc = 0;
    for (std::int64_t by = 0; by < bh; ++by) {
      for (std::int64_t bx = 0; bx < bw; ++bx) {
        double block[64];
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            block[yy * 8 + xx] = planes[ch][static_cast<std::size_t>(
                (by * 8 + yy) * pw + bx * 8 + xx)];
          }
        }
        double freq[64];
        fdct8x8(block, freq);
        int quant[64];
        simd::dct_quantise(freq, q.data(), kZigzag.data(), quant);
        // DC delta within the channel improves the entropy stage.
        const int dc = quant[0];
        quant[0] = dc - prev_dc;
        prev_dc = dc;
        for (int i = 0; i < 64; ++i) push_i16(coeffs, quant[i]);
      }
    }
  }

  zlib_compress_into(coeffs, {.level = 6}, scratch.compressed, scratch.deflate);
  ByteWriter out(std::move(dest));
  out.u32(static_cast<std::uint32_t>(w));
  out.u32(static_cast<std::uint32_t>(h));
  out.u8(static_cast<std::uint8_t>(std::clamp(opts.quality, 1, 100)));
  out.bytes(scratch.compressed);
  dest = out.take();
}

Result<Image> dct_decode(BytesView data) {
  ByteReader in(data);
  auto w32 = in.u32();
  auto h32 = in.u32();
  auto quality = in.u8();
  if (!w32 || !h32 || !quality) return ParseError::kTruncated;
  const std::int64_t w = *w32;
  const std::int64_t h = *h32;
  if (static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h) > (1ull << 28))
    return ParseError::kOverflow;
  const std::int64_t bw = (w + 7) / 8;
  const std::int64_t bh = (h + 7) / 8;
  const std::size_t expected =
      static_cast<std::size_t>(bw * bh) * 3 * 64 * 2;  // i16 per coefficient

  auto coeffs = zlib_decompress(in.rest(), {.max_output = expected});
  if (!coeffs) return coeffs.error();
  if (coeffs->size() != expected) return ParseError::kBadValue;

  const auto luma_q = scale_table(kLumaQuant, *quality);
  const auto chroma_q = scale_table(kChromaQuant, *quality);

  const std::int64_t pw = bw * 8;
  const std::int64_t ph = bh * 8;
  std::vector<double> planes[3];
  for (auto& pl : planes) pl.resize(static_cast<std::size_t>(pw * ph));

  std::size_t ci = 0;
  for (int ch = 0; ch < 3; ++ch) {
    const auto& q = ch == 0 ? luma_q : chroma_q;
    int prev_dc = 0;
    for (std::int64_t by = 0; by < bh; ++by) {
      for (std::int64_t bx = 0; bx < bw; ++bx) {
        double freq[64] = {};
        for (int i = 0; i < 64; ++i) {
          int v = read_i16(*coeffs, ci++);
          if (i == 0) {
            v += prev_dc;
            prev_dc = v;
          }
          freq[kZigzag[static_cast<std::size_t>(i)]] =
              static_cast<double>(v) *
              q[static_cast<std::size_t>(kZigzag[static_cast<std::size_t>(i)])];
        }
        double block[64];
        idct8x8(freq, block);
        for (int yy = 0; yy < 8; ++yy) {
          for (int xx = 0; xx < 8; ++xx) {
            planes[ch][static_cast<std::size_t>((by * 8 + yy) * pw + bx * 8 + xx)] =
                block[yy * 8 + xx] + 128.0;
          }
        }
      }
    }
  }

  Image img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y * pw + x);
      img.set(x, y, ycbcr_to_rgb(planes[0][i], planes[1][i], planes[2][i]));
    }
  }
  return img;
}

}  // namespace ads
