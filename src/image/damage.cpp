#include "image/damage.hpp"

#include "util/simd.hpp"

namespace ads {

std::uint64_t hash_rect(const Image& img, const Rect& r) {
  constexpr std::uint64_t kOffset = 0xCBF29CE484222325ull;
  constexpr std::uint64_t kPrime = 0x100000001B3ull;
  const Rect c = intersect(r, img.bounds());
  // Lane phase restarts at each row (i & 3 within the row), so the kernel
  // always consumes aligned groups of four from the row start.
  std::uint64_t lanes[4] = {kOffset ^ 1, kOffset ^ 2, kOffset ^ 3, kOffset ^ 4};
  std::uint64_t pixels = 0;
  for (std::int64_t y = c.top; y < c.bottom(); ++y) {
    auto row = img.row(y).subspan(static_cast<std::size_t>(c.left),
                                  static_cast<std::size_t>(c.width));
    simd::fnv4_absorb(lanes, reinterpret_cast<const std::uint8_t*>(row.data()),
                      row.size());
    pixels += row.size();
  }
  std::uint64_t h = kOffset;
  for (const std::uint64_t lane : lanes) h = (h ^ lane) * kPrime;
  return (h ^ pixels) * kPrime;
}

std::vector<Rect> diff_rects(const Image& before, const Image& after,
                             std::int64_t tile_size) {
  if (before.width() != after.width() || before.height() != after.height()) {
    const Rect full = bounding_union(before.bounds(), after.bounds());
    return full.empty() ? std::vector<Rect>{} : std::vector<Rect>{full};
  }
  const std::int64_t cols = (after.width() + tile_size - 1) / tile_size;
  const std::int64_t rows = (after.height() + tile_size - 1) / tile_size;
  Region region;
  for (std::int64_t ty = 0; ty < rows; ++ty) {
    std::int64_t run_start = -1;
    for (std::int64_t tx = 0; tx <= cols; ++tx) {
      bool dirty = false;
      if (tx < cols) {
        const Rect tile = intersect(
            Rect{tx * tile_size, ty * tile_size, tile_size, tile_size}, after.bounds());
        dirty = hash_rect(before, tile) != hash_rect(after, tile);
      }
      if (dirty && run_start < 0) run_start = tx;
      if (!dirty && run_start >= 0) {
        const Rect band{run_start * tile_size, ty * tile_size,
                        (tx - run_start) * tile_size, tile_size};
        region.add(intersect(band, after.bounds()));
        run_start = -1;
      }
    }
  }
  region.simplify();
  return region.rects();
}

std::vector<Rect> DamageTracker::update(const Image& frame) {
  const std::int64_t cols = (frame.width() + tile_ - 1) / tile_;
  const std::int64_t rows = (frame.height() + tile_ - 1) / tile_;

  // Resize (or first frame) fast path: everything is damage by definition,
  // so skip the per-tile compare/merge entirely — just (re)build the hash
  // grid for the next tick and report the whole frame. assign() reuses the
  // existing allocation whenever the new grid is no larger.
  const bool fresh = hashes_.empty() || width_ != frame.width() ||
                     height_ != frame.height();
  cols_ = cols;
  rows_ = rows;
  width_ = frame.width();
  height_ = frame.height();
  if (fresh) {
    hashes_.assign(static_cast<std::size_t>(cols * rows), 0);
    for (std::int64_t ty = 0; ty < rows; ++ty) {
      for (std::int64_t tx = 0; tx < cols; ++tx) {
        hashes_[static_cast<std::size_t>(ty * cols + tx)] =
            hash_rect(frame, Rect{tx * tile_, ty * tile_, tile_, tile_});
      }
    }
    return frame.empty() ? std::vector<Rect>{} : std::vector<Rect>{frame.bounds()};
  }

  // Steady state: rehash each tile, compare against (and overwrite) the
  // stored hash in place, and merge horizontal runs of dirty tiles as we
  // go; Region::simplify then stitches vertically aligned bands. When
  // nothing changed, this path performs no heap allocation at all.
  Region region;
  bool any_dirty = false;
  for (std::int64_t ty = 0; ty < rows; ++ty) {
    std::int64_t run_start = -1;
    for (std::int64_t tx = 0; tx <= cols; ++tx) {
      bool dirty = false;
      if (tx < cols) {
        const std::uint64_t h =
            hash_rect(frame, Rect{tx * tile_, ty * tile_, tile_, tile_});
        std::uint64_t& stored = hashes_[static_cast<std::size_t>(ty * cols + tx)];
        dirty = h != stored;
        stored = h;
      }
      if (dirty && run_start < 0) run_start = tx;
      if (!dirty && run_start >= 0) {
        any_dirty = true;
        Rect r{run_start * tile_, ty * tile_, (tx - run_start) * tile_, tile_};
        region.add(intersect(r, frame.bounds()));
        run_start = -1;
      }
    }
  }
  if (!any_dirty) return {};
  region.simplify();
  return region.rects();
}

void DamageTracker::reset() { hashes_.clear(); }

}  // namespace ads
