// Image scaling — the draft's §4.2 optional enhancement: "participant-side
// scaling can be used to optimize transmission of data to participants with
// a small screen." Participants scale received window content locally;
// nothing changes on the wire.
#pragma once

#include "image/image.hpp"

namespace ads {

enum class ScaleFilter {
  kNearest,   ///< fast, blocky
  kBilinear,  ///< smooth, the default for screen content
};

/// Resample `src` to `width` x `height`. Degenerate targets (<=0) return an
/// empty image; identity dimensions return a copy.
Image scale_image(const Image& src, std::int64_t width, std::int64_t height,
                  ScaleFilter filter = ScaleFilter::kBilinear);

}  // namespace ads
