// Damage detection: the AH-side substitute for an OS damage/mirror-driver
// interface. The framebuffer is divided into fixed-size tiles; each tile is
// hashed every capture tick and tiles whose hash changed are merged into
// dirty rectangles, which become RegionUpdate messages.
#pragma once

#include <cstdint>
#include <vector>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ads {

/// 64-bit hash of a pixel rectangle: four interleaved FNV-1a lanes (pixel i
/// updates lane i&3 within its row) folded together with the pixel count.
/// The stripe makes the multiply chains independent so the kernel
/// vectorises; only hash *equality* is meaningful to callers.
std::uint64_t hash_rect(const Image& img, const Rect& r);

/// Stateless tile diff of two equally-sized images: the areas where they
/// differ, merged into disjoint rectangles at `tile_size` granularity.
/// Differently-sized images report the union bound as fully damaged.
std::vector<Rect> diff_rects(const Image& before, const Image& after,
                             std::int64_t tile_size = 32);

class DamageTracker {
 public:
  /// `tile_size` is the detection granularity in pixels (power of two not
  /// required). Smaller tiles find tighter damage bounds at higher hash cost.
  explicit DamageTracker(std::int64_t tile_size = 32) : tile_(tile_size) {}

  std::int64_t tile_size() const { return tile_; }

  /// Compare `frame` against the previously observed frame and return the
  /// changed area as a set of disjoint rectangles (merged per tile row and
  /// simplified). The first call reports the whole frame as damaged.
  /// Updates the stored tile hashes.
  std::vector<Rect> update(const Image& frame);

  /// Forget all state; the next update() reports full damage. Used when the
  /// AH must produce a full refresh (PLI) regardless of actual changes.
  void reset();

 private:
  std::int64_t tile_;
  std::int64_t cols_ = 0;
  std::int64_t rows_ = 0;
  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  std::vector<std::uint64_t> hashes_;
};

}  // namespace ads
