// RGBA8 raster image. This is the single pixel representation used across
// capture, codecs, and the participant-side screen reconstruction; codecs
// convert to/from their wire formats at the edges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "image/geometry.hpp"

namespace ads {

/// One pixel, 8 bits per channel.
struct Pixel {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;

  friend bool operator==(const Pixel&, const Pixel&) = default;
};

constexpr Pixel kBlack{0, 0, 0, 255};
constexpr Pixel kWhite{255, 255, 255, 255};

class Image {
 public:
  Image() = default;
  Image(std::int64_t width, std::int64_t height, Pixel fill = kBlack);

  std::int64_t width() const { return width_; }
  std::int64_t height() const { return height_; }
  Rect bounds() const { return {0, 0, width_, height_}; }
  bool empty() const { return width_ == 0 || height_ == 0; }

  Pixel at(std::int64_t x, std::int64_t y) const { return pixels_[index(x, y)]; }
  void set(std::int64_t x, std::int64_t y, Pixel p) { pixels_[index(x, y)] = p; }

  /// Row-major pixel storage (size = width * height).
  std::span<const Pixel> pixels() const { return pixels_; }
  std::span<Pixel> pixels() { return pixels_; }
  std::span<const Pixel> row(std::int64_t y) const {
    return std::span<const Pixel>(pixels_).subspan(static_cast<std::size_t>(y * width_),
                                                   static_cast<std::size_t>(width_));
  }

  void fill(Pixel p);
  void fill_rect(const Rect& r, Pixel p);

  /// Copy `src_rect` from `src` to position `dst` in this image. Both source
  /// and destination are clipped to their image bounds.
  void blit(const Image& src, const Rect& src_rect, Point dst);

  /// In-place copy of `src_rect` to `dst` within this image, handling
  /// overlap correctly — the participant-side MoveRectangle primitive
  /// (draft §5.2.3: "Source and destination rectangles may overlap").
  void move_rect(const Rect& src_rect, Point dst);

  /// Extract a sub-image (clipped to bounds).
  Image crop(const Rect& r) const;

  /// As crop, but reuses `out`'s pixel storage when the capacity fits — the
  /// per-band staging path of the encode pipeline calls this once per band.
  void crop_into(const Rect& r, Image& out) const;

  friend bool operator==(const Image&, const Image&) = default;

 private:
  std::size_t index(std::int64_t x, std::int64_t y) const {
    return static_cast<std::size_t>(y * width_ + x);
  }

  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  std::vector<Pixel> pixels_;
};

}  // namespace ads
