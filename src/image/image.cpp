#include "image/image.hpp"

#include <cassert>
#include <cstring>

namespace ads {

Image::Image(std::int64_t width, std::int64_t height, Pixel fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width * height), fill) {
  assert(width >= 0 && height >= 0);
}

void Image::fill(Pixel p) { std::fill(pixels_.begin(), pixels_.end(), p); }

void Image::fill_rect(const Rect& r, Pixel p) {
  const Rect c = intersect(r, bounds());
  for (std::int64_t y = c.top; y < c.bottom(); ++y) {
    Pixel* row_ptr = &pixels_[index(c.left, y)];
    std::fill(row_ptr, row_ptr + c.width, p);
  }
}

void Image::blit(const Image& src, const Rect& src_rect, Point dst) {
  Rect s = intersect(src_rect, src.bounds());
  // Clip against destination bounds, shifting the source window to match.
  Rect d{dst.x, dst.y, s.width, s.height};
  const Rect dc = intersect(d, bounds());
  if (dc.empty()) return;
  s.left += dc.left - d.left;
  s.top += dc.top - d.top;
  for (std::int64_t y = 0; y < dc.height; ++y) {
    const Pixel* from = &src.pixels_[src.index(s.left, s.top + y)];
    Pixel* to = &pixels_[index(dc.left, dc.top + y)];
    std::memcpy(to, from, static_cast<std::size_t>(dc.width) * sizeof(Pixel));
  }
}

void Image::move_rect(const Rect& src_rect, Point dst) {
  Rect s = intersect(src_rect, bounds());
  Rect d{dst.x, dst.y, s.width, s.height};
  const Rect dc = intersect(d, bounds());
  if (dc.empty()) return;
  s.left += dc.left - d.left;
  s.top += dc.top - d.top;
  const std::int64_t h = dc.height;
  const std::int64_t w = dc.width;
  // memmove handles horizontal overlap within a row; vertical overlap is
  // handled by choosing the copy direction.
  if (dc.top <= s.top) {
    for (std::int64_t y = 0; y < h; ++y) {
      std::memmove(&pixels_[index(dc.left, dc.top + y)], &pixels_[index(s.left, s.top + y)],
                   static_cast<std::size_t>(w) * sizeof(Pixel));
    }
  } else {
    for (std::int64_t y = h - 1; y >= 0; --y) {
      std::memmove(&pixels_[index(dc.left, dc.top + y)], &pixels_[index(s.left, s.top + y)],
                   static_cast<std::size_t>(w) * sizeof(Pixel));
    }
  }
}

Image Image::crop(const Rect& r) const {
  Image out;
  crop_into(r, out);
  return out;
}

void Image::crop_into(const Rect& r, Image& out) const {
  const Rect c = intersect(r, bounds());
  out.width_ = c.width;
  out.height_ = c.height;
  out.pixels_.resize(static_cast<std::size_t>(c.width * c.height));
  for (std::int64_t y = 0; y < c.height; ++y) {
    const Pixel* from = &pixels_[index(c.left, c.top + y)];
    std::memcpy(&out.pixels_[static_cast<std::size_t>(y * c.width)], from,
                static_cast<std::size_t>(c.width) * sizeof(Pixel));
  }
}

}  // namespace ads
