#include "image/scroll_detect.hpp"

#include <unordered_map>
#include <vector>

namespace ads {
namespace {

std::uint64_t hash_row(const Image& img, std::int64_t y, std::int64_t left,
                       std::int64_t width) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto row = img.row(y).subspan(static_cast<std::size_t>(left),
                                static_cast<std::size_t>(width));
  for (const Pixel& p : row) {
    const std::uint32_t v = static_cast<std::uint32_t>(p.r) << 24 |
                            static_cast<std::uint32_t>(p.g) << 16 |
                            static_cast<std::uint32_t>(p.b) << 8 | p.a;
    h = (h ^ v) * 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::optional<ScrollMatch> detect_scroll(const Image& before, const Image& after,
                                         const Rect& area,
                                         const ScrollDetectorOptions& opts) {
  const Rect c = intersect(intersect(area, before.bounds()), after.bounds());
  if (c.height < opts.min_rows || c.width <= 0) return std::nullopt;

  // Map old-frame row hash -> list of y positions.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> old_rows;
  old_rows.reserve(static_cast<std::size_t>(c.height));
  for (std::int64_t y = c.top; y < c.bottom(); ++y) {
    old_rows[hash_row(before, y, c.left, c.width)].push_back(y);
  }

  // Vote for displacements. A row identical in both frames votes for 0 as
  // well as other candidates; the dy==0 votes are discarded at the end.
  std::unordered_map<std::int64_t, std::int64_t> votes;
  for (std::int64_t y = c.top; y < c.bottom(); ++y) {
    const std::uint64_t h = hash_row(after, y, c.left, c.width);
    auto it = old_rows.find(h);
    if (it == old_rows.end()) continue;
    for (std::int64_t old_y : it->second) {
      const std::int64_t dy = y - old_y;
      if (dy != 0 && std::abs(dy) <= opts.max_displacement) ++votes[dy];
    }
  }
  if (votes.empty()) return std::nullopt;

  std::int64_t best_dy = 0;
  std::int64_t best_votes = 0;
  for (auto [dy, n] : votes) {
    if (n > best_votes || (n == best_votes && std::abs(dy) < std::abs(best_dy))) {
      best_dy = dy;
      best_votes = n;
    }
  }

  // The movable band is the part of the area that stays inside it after
  // displacement.
  const std::int64_t movable = c.height - std::abs(best_dy);
  if (movable <= 0) return std::nullopt;
  const double confidence = static_cast<double>(best_votes) / static_cast<double>(movable);
  if (confidence < opts.min_confidence) return std::nullopt;

  Rect source = c;
  if (best_dy > 0) {
    source.height = movable;  // rows [top, top+movable) move down
  } else {
    source.top = c.top - best_dy;  // rows [top-dy, bottom) move up
    source.height = movable;
  }
  return ScrollMatch{best_dy, source, confidence};
}

}  // namespace ads
