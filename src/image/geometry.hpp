// Pixel geometry. The draft's coordinate system (§4.1): origin (0,0) at the
// upper-left corner, absolute pixel coordinates, unsigned 32-bit left / top /
// width / height fields on the wire. Internally we use signed 64-bit maths so
// intermediate offsets (e.g. participant layout shifts, Figure 4) cannot
// overflow, and clamp at the wire boundary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ads {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned rectangle; `left/top` inclusive, extent `width x height`.
/// Empty (width or height == 0) rectangles are valid and contain nothing.
struct Rect {
  std::int64_t left = 0;
  std::int64_t top = 0;
  std::int64_t width = 0;
  std::int64_t height = 0;

  std::int64_t right() const { return left + width; }    ///< exclusive
  std::int64_t bottom() const { return top + height; }   ///< exclusive
  std::int64_t area() const { return width * height; }
  bool empty() const { return width <= 0 || height <= 0; }

  bool contains(Point p) const {
    return p.x >= left && p.x < right() && p.y >= top && p.y < bottom();
  }
  bool contains(const Rect& other) const {
    return other.empty() ||
           (other.left >= left && other.top >= top && other.right() <= right() &&
            other.bottom() <= bottom());
  }

  Rect translated(std::int64_t dx, std::int64_t dy) const {
    return {left + dx, top + dy, width, height};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Intersection; empty Rect when disjoint.
Rect intersect(const Rect& a, const Rect& b);

/// Smallest rectangle containing both (empty inputs are ignored).
Rect bounding_union(const Rect& a, const Rect& b);

bool overlaps(const Rect& a, const Rect& b);

/// `a` minus `b`, expressed as up to four disjoint rectangles.
std::vector<Rect> subtract(const Rect& a, const Rect& b);

/// A set of disjoint rectangles with union/subtract operations. Used for
/// damage accumulation and for computing the visible portion of a window
/// under the windows stacked above it.
class Region {
 public:
  Region() = default;
  explicit Region(const Rect& r) {
    if (!r.empty()) rects_.push_back(r);
  }

  void add(const Rect& r);         ///< union (keeps rectangles disjoint)
  void subtract_rect(const Rect& r);
  void clear() { rects_.clear(); }

  bool empty() const { return rects_.empty(); }
  std::int64_t area() const;
  Rect bounds() const;
  bool contains(Point p) const;

  const std::vector<Rect>& rects() const { return rects_; }

  /// Greedy merge of adjacent rectangles to reduce fragment count.
  void simplify();

 private:
  std::vector<Rect> rects_;
};

std::string to_string(const Rect& r);

}  // namespace ads
