#include "image/scale.hpp"

#include <algorithm>
#include <cmath>

namespace ads {
namespace {

Image scale_nearest(const Image& src, std::int64_t width, std::int64_t height) {
  Image out(width, height);
  for (std::int64_t y = 0; y < height; ++y) {
    const std::int64_t sy = y * src.height() / height;
    for (std::int64_t x = 0; x < width; ++x) {
      const std::int64_t sx = x * src.width() / width;
      out.set(x, y, src.at(sx, sy));
    }
  }
  return out;
}

std::uint8_t lerp_channel(std::uint8_t a, std::uint8_t b, double t) {
  return static_cast<std::uint8_t>(
      std::lround(static_cast<double>(a) * (1.0 - t) + static_cast<double>(b) * t));
}

Pixel lerp_pixel(const Pixel& a, const Pixel& b, double t) {
  return Pixel{lerp_channel(a.r, b.r, t), lerp_channel(a.g, b.g, t),
               lerp_channel(a.b, b.b, t), lerp_channel(a.a, b.a, t)};
}

Image scale_bilinear(const Image& src, std::int64_t width, std::int64_t height) {
  Image out(width, height);
  const double sx_ratio =
      width > 1 ? static_cast<double>(src.width() - 1) / static_cast<double>(width - 1)
                : 0.0;
  const double sy_ratio =
      height > 1
          ? static_cast<double>(src.height() - 1) / static_cast<double>(height - 1)
          : 0.0;
  for (std::int64_t y = 0; y < height; ++y) {
    const double fy = static_cast<double>(y) * sy_ratio;
    const std::int64_t y0 = static_cast<std::int64_t>(fy);
    const std::int64_t y1 = std::min(y0 + 1, src.height() - 1);
    const double ty = fy - static_cast<double>(y0);
    for (std::int64_t x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) * sx_ratio;
      const std::int64_t x0 = static_cast<std::int64_t>(fx);
      const std::int64_t x1 = std::min(x0 + 1, src.width() - 1);
      const double tx = fx - static_cast<double>(x0);
      const Pixel top = lerp_pixel(src.at(x0, y0), src.at(x1, y0), tx);
      const Pixel bottom = lerp_pixel(src.at(x0, y1), src.at(x1, y1), tx);
      out.set(x, y, lerp_pixel(top, bottom, ty));
    }
  }
  return out;
}

}  // namespace

Image scale_image(const Image& src, std::int64_t width, std::int64_t height,
                  ScaleFilter filter) {
  if (width <= 0 || height <= 0 || src.empty()) return Image{};
  if (width == src.width() && height == src.height()) return src;
  switch (filter) {
    case ScaleFilter::kNearest: return scale_nearest(src, width, height);
    case ScaleFilter::kBilinear: return scale_bilinear(src, width, height);
  }
  return scale_nearest(src, width, height);
}

}  // namespace ads
