// Vertical-scroll detection. The draft's MoveRectangle message (§5.2.3) is
// "efficient for some drawing operations like scrolls"; to emit it the AH
// must *recognise* a scroll from two successive frames. We hash each row of
// the candidate rectangle in both frames and search for the dominant
// vertical displacement; if enough rows moved coherently, the scroll is
// reported so the sender can ship a MoveRectangle plus a small delta update
// instead of re-encoding the whole area (benchmark E2).
#pragma once

#include <cstdint>
#include <optional>

#include "image/geometry.hpp"
#include "image/image.hpp"

namespace ads {

struct ScrollMatch {
  /// Vertical displacement in pixels: positive = content moved down
  /// (i.e. the user scrolled up), negative = content moved up.
  std::int64_t dy = 0;
  /// Source rectangle in the *previous* frame whose pixels reappear
  /// displaced by `dy` in the current frame.
  Rect source;
  /// Fraction of candidate rows that matched the dominant displacement.
  double confidence = 0.0;
};

struct ScrollDetectorOptions {
  std::int64_t max_displacement = 128;  ///< search window (pixels, both signs)
  double min_confidence = 0.6;          ///< reject weaker matches
  std::int64_t min_rows = 16;           ///< don't bother for tiny areas
};

/// Detect a vertical scroll of `area` between `before` and `after`.
/// Returns nullopt when no displacement meets the confidence threshold
/// (including the trivial dy == 0 case, which is "nothing moved").
std::optional<ScrollMatch> detect_scroll(const Image& before, const Image& after,
                                         const Rect& area,
                                         const ScrollDetectorOptions& opts = {});

}  // namespace ads
