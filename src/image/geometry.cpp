#include "image/geometry.hpp"

#include <sstream>

namespace ads {

Rect intersect(const Rect& a, const Rect& b) {
  const std::int64_t l = std::max(a.left, b.left);
  const std::int64_t t = std::max(a.top, b.top);
  const std::int64_t r = std::min(a.right(), b.right());
  const std::int64_t bo = std::min(a.bottom(), b.bottom());
  if (r <= l || bo <= t) return {};
  return {l, t, r - l, bo - t};
}

Rect bounding_union(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const std::int64_t l = std::min(a.left, b.left);
  const std::int64_t t = std::min(a.top, b.top);
  const std::int64_t r = std::max(a.right(), b.right());
  const std::int64_t bo = std::max(a.bottom(), b.bottom());
  return {l, t, r - l, bo - t};
}

bool overlaps(const Rect& a, const Rect& b) { return !intersect(a, b).empty(); }

std::vector<Rect> subtract(const Rect& a, const Rect& b) {
  std::vector<Rect> out;
  const Rect inter = intersect(a, b);
  if (inter.empty()) {
    if (!a.empty()) out.push_back(a);
    return out;
  }
  // Bands above and below the intersection span a's full width; the left and
  // right slivers span only the intersection's vertical extent.
  if (inter.top > a.top) out.push_back({a.left, a.top, a.width, inter.top - a.top});
  if (inter.bottom() < a.bottom())
    out.push_back({a.left, inter.bottom(), a.width, a.bottom() - inter.bottom()});
  if (inter.left > a.left)
    out.push_back({a.left, inter.top, inter.left - a.left, inter.height});
  if (inter.right() < a.right())
    out.push_back({inter.right(), inter.top, a.right() - inter.right(), inter.height});
  return out;
}

void Region::add(const Rect& r) {
  if (r.empty()) return;
  // Keep the region disjoint: insert the parts of `r` not already covered.
  std::vector<Rect> pending{r};
  for (const Rect& existing : rects_) {
    std::vector<Rect> next;
    for (const Rect& p : pending) {
      auto parts = subtract(p, existing);
      next.insert(next.end(), parts.begin(), parts.end());
    }
    pending = std::move(next);
    if (pending.empty()) return;
  }
  rects_.insert(rects_.end(), pending.begin(), pending.end());
}

void Region::subtract_rect(const Rect& r) {
  if (r.empty() || rects_.empty()) return;
  std::vector<Rect> next;
  next.reserve(rects_.size());
  for (const Rect& existing : rects_) {
    auto parts = subtract(existing, r);
    next.insert(next.end(), parts.begin(), parts.end());
  }
  rects_ = std::move(next);
}

std::int64_t Region::area() const {
  std::int64_t total = 0;
  for (const Rect& r : rects_) total += r.area();
  return total;
}

Rect Region::bounds() const {
  Rect b;
  for (const Rect& r : rects_) b = bounding_union(b, r);
  return b;
}

bool Region::contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.contains(p)) return true;
  }
  return false;
}

void Region::simplify() {
  // Repeatedly merge pairs that together form an exact rectangle (same row
  // band and adjacent horizontally, or same column band and adjacent
  // vertically). O(n^2) per pass; regions here are small (tens of rects).
  bool merged = true;
  while (merged) {
    merged = false;
    for (std::size_t i = 0; i < rects_.size() && !merged; ++i) {
      for (std::size_t j = i + 1; j < rects_.size() && !merged; ++j) {
        Rect& a = rects_[i];
        Rect& b = rects_[j];
        const bool same_row = a.top == b.top && a.height == b.height;
        const bool same_col = a.left == b.left && a.width == b.width;
        if (same_row && (a.right() == b.left || b.right() == a.left)) {
          a = bounding_union(a, b);
          rects_.erase(rects_.begin() + static_cast<std::ptrdiff_t>(j));
          merged = true;
        } else if (same_col && (a.bottom() == b.top || b.bottom() == a.top)) {
          a = bounding_union(a, b);
          rects_.erase(rects_.begin() + static_cast<std::ptrdiff_t>(j));
          merged = true;
        }
      }
    }
  }
}

std::string to_string(const Rect& r) {
  std::ostringstream os;
  os << "[" << r.left << "," << r.top << " " << r.width << "x" << r.height << "]";
  return os.str();
}

}  // namespace ads
