// Image fidelity metrics used by the codec benchmarks (E1): PSNR over RGB
// channels, plus exact-match helpers for lossless codecs.
#pragma once

#include <limits>

#include "image/image.hpp"

namespace ads {

/// Mean squared error over the R, G, B channels (alpha ignored).
/// Images must have identical dimensions.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB; +inf for identical images.
double psnr(const Image& a, const Image& b);

/// Count of pixels whose RGB differs.
std::int64_t diff_pixel_count(const Image& a, const Image& b);

}  // namespace ads
