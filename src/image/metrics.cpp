#include "image/metrics.hpp"

#include <cassert>
#include <cmath>

namespace ads {

double mse(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  double sum = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double dr = static_cast<double>(pa[i].r) - pb[i].r;
    const double dg = static_cast<double>(pa[i].g) - pb[i].g;
    const double db = static_cast<double>(pa[i].b) - pb[i].b;
    sum += dr * dr + dg * dg + db * db;
  }
  const double n = static_cast<double>(pa.size()) * 3.0;
  return n > 0 ? sum / n : 0.0;
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

std::int64_t diff_pixel_count(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  std::int64_t n = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].r != pb[i].r || pa[i].g != pb[i].g || pa[i].b != pb[i].b) ++n;
  }
  return n;
}

}  // namespace ads
