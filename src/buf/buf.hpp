// Reference-counted, pool-recycled payload buffers for the zero-copy
// datapath (ROADMAP item 2, DPDK-style mbuf pooling).
//
// A PayloadBuf is filled once — by the cohort packetise stage serialising a
// band's fragment stream — and then shared read-only by every PacketView
// that points into it: one buffer feeds N cohort members' packets plus their
// retransmission-cache entries. The last BufRef to drop returns the buffer
// (allocation intact) to its pool's free list.
//
// Threading contract: buffers and pool are confined to the event-loop/tick
// thread, so the refcount is a plain integer, not an atomic. The parallel
// encoder hands its results over *before* packetise touches a pool.
//
// Ownership rules (see docs/DATAPATH.md):
//   * BufRef is the only handle; copying it bumps the refcount.
//   * The fill stage must finish before the first PacketView is built; after
//     that the contents are immutable by convention.
//   * A pool may be destroyed while buffers are still referenced (e.g. a
//     session tearing down with packets in a retransmission cache): such
//     buffers detach and self-delete on their last release.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.hpp"

namespace ads::buf {

class BufPool;

/// Pool-owned byte buffer plus its (single-threaded) refcount. Users never
/// touch this directly — BufRef mediates every access.
struct PayloadBuf {
  /// The payload bytes. Capacity survives recycling.
  Bytes data;
  /// Outstanding BufRef handles.
  std::uint32_t refs = 0;
  /// Shared cell pointing at the owning pool; the pool's destructor nulls
  /// the cell, detaching still-referenced buffers.
  std::shared_ptr<BufPool*> pool;
};

/// Counting-semantics view of pool activity, published into telemetry by the
/// owning component (datapath.pool.* in the AppHost).
struct BufPoolStats {
  std::uint64_t acquires = 0;     ///< total acquire() calls
  std::uint64_t pool_hits = 0;    ///< acquires served from the free list
  std::uint64_t allocations = 0;  ///< acquires that built a new buffer
  std::uint64_t recycles = 0;     ///< releases that returned to the free list
  std::uint64_t frees = 0;        ///< releases that deleted (list full/detached)
  std::uint64_t outstanding = 0;  ///< buffers currently checked out
};

/// RAII handle to a PayloadBuf. Copyable (shares the buffer), movable.
class BufRef {
 public:
  BufRef() = default;
  /// Shares `o`'s buffer (refcount + 1).
  BufRef(const BufRef& o) : b_(o.b_) {
    if (b_) ++b_->refs;
  }
  /// Steals `o`'s reference.
  BufRef(BufRef&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  /// Copy-assign: releases the current buffer, shares `o`'s.
  BufRef& operator=(const BufRef& o) {
    if (this != &o) {
      release();
      b_ = o.b_;
      if (b_) ++b_->refs;
    }
    return *this;
  }
  /// Move-assign: releases the current buffer, steals `o`'s.
  BufRef& operator=(BufRef&& o) noexcept {
    if (this != &o) {
      release();
      b_ = o.b_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~BufRef() { release(); }

  /// True when a buffer is attached.
  explicit operator bool() const { return b_ != nullptr; }

  /// Mutable bytes for the fill stage. Must not be resized once PacketViews
  /// hold spans into the buffer.
  Bytes& bytes() { return b_->data; }
  /// Read-only view of the whole buffer (empty for an empty handle).
  BytesView view() const { return b_ ? BytesView(b_->data) : BytesView(); }
  /// Read-only view of `[offset, offset + len)`.
  BytesView slice(std::size_t offset, std::size_t len) const {
    return view().subspan(offset, len);
  }
  /// Current refcount (0 for an empty handle); exposed for tests/telemetry.
  std::uint32_t refcount() const { return b_ ? b_->refs : 0; }

  /// Drop this handle's reference; on the last drop the buffer recycles to
  /// its pool (or deletes itself if the pool is gone / list is full).
  void release();

 private:
  friend class BufPool;
  explicit BufRef(PayloadBuf* b) : b_(b) {}

  PayloadBuf* b_ = nullptr;
};

/// Free-list allocator for PayloadBufs. Not thread-safe by design (see file
/// comment); one pool per AppHost.
class BufPool {
 public:
  /// `max_free`: free-list cap — releases beyond it delete the buffer.
  explicit BufPool(std::size_t max_free = 64);
  ~BufPool();

  BufPool(const BufPool&) = delete;
  BufPool& operator=(const BufPool&) = delete;

  /// Check out a buffer with at least `reserve` bytes of capacity, cleared.
  BufRef acquire(std::size_t reserve);

  /// Activity counters (mutated by acquire/release on the owning thread).
  const BufPoolStats& stats() const { return stats_; }
  /// Buffers currently parked on the free list.
  std::size_t free_count() const { return free_.size(); }

 private:
  friend class BufRef;
  /// Return `b` to the free list (or delete it when the list is at cap).
  void recycle(PayloadBuf* b);

  std::size_t max_free_;
  std::vector<std::unique_ptr<PayloadBuf>> free_;
  std::shared_ptr<BufPool*> self_;
  BufPoolStats stats_;
};

}  // namespace ads::buf
