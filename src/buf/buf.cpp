#include "buf/buf.hpp"

namespace ads::buf {

void BufRef::release() {
  if (!b_) return;
  PayloadBuf* b = b_;
  b_ = nullptr;
  if (--b->refs > 0) return;
  BufPool* pool = b->pool ? *b->pool : nullptr;
  if (pool) {
    pool->recycle(b);
  } else {
    delete b;
  }
}

BufPool::BufPool(std::size_t max_free)
    : max_free_(max_free), self_(std::make_shared<BufPool*>(this)) {}

BufPool::~BufPool() {
  // Detach buffers still referenced elsewhere (e.g. retransmission caches
  // outliving the pool): their last BufRef will self-delete them.
  *self_ = nullptr;
}

BufRef BufPool::acquire(std::size_t reserve) {
  ++stats_.acquires;
  ++stats_.outstanding;
  PayloadBuf* b = nullptr;
  if (!free_.empty()) {
    ++stats_.pool_hits;
    b = free_.back().release();
    free_.pop_back();
  } else {
    ++stats_.allocations;
    b = new PayloadBuf;
    b->pool = self_;
  }
  b->data.clear();
  b->data.reserve(reserve);
  b->refs = 1;
  return BufRef(b);
}

void BufPool::recycle(PayloadBuf* b) {
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (free_.size() < max_free_) {
    ++stats_.recycles;
    free_.emplace_back(b);
  } else {
    ++stats_.frees;
    delete b;
  }
}

}  // namespace ads::buf
