// Token-bucket rate limiter. Draft §4.3: "The AH controls the transmission
// rate for participants using UDP, because UDP itself does not provide flow
// and congestion control." The AH holds one bucket per UDP participant (or
// multicast group) and skips a frame when the bucket cannot cover it,
// letting damage accumulate exactly like the §7 TCP backlog policy.
#pragma once

#include <algorithm>
#include <cstdint>

#include "net/event_loop.hpp"

namespace ads {

/// Per-participant token bucket: `consume()` spends bytes, `available()`
/// refills lazily from the virtual clock. The frame-level gate never tears
/// a message mid-send — consume() may drive the balance negative and the
/// next available() check absorbs the deficit.
class TokenBucket {
 public:
  /// `rate_bps` refill rate; `burst_bytes` bucket capacity (also the
  /// initial fill). rate_bps == 0 means unlimited.
  TokenBucket(std::uint64_t rate_bps, std::uint64_t burst_bytes)
      : rate_bps_(rate_bps),
        burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)) {}

  /// True when no rate is configured (every consume succeeds).
  bool unlimited() const { return rate_bps_ == 0; }

  /// The configured refill rate in bits/s (0 = unlimited).
  std::uint64_t rate_bps() const { return rate_bps_; }

  /// Re-target the refill rate mid-session (the ads::rate controller's
  /// actuator). Tokens accrued under the old rate are settled up to `now`
  /// first, so a rate change never retroactively re-prices elapsed time.
  /// Moving from unlimited to limited starts from a full bucket.
  void set_rate(std::uint64_t rate_bps, SimTime now) {
    if (rate_bps == rate_bps_) return;
    refill(now);
    if (unlimited()) tokens_ = burst_;  // was unlimited: start full
    rate_bps_ = rate_bps;
    last_ = now;
  }

  /// Tokens (bytes) available at `now`.
  double available(SimTime now) {
    refill(now);
    return tokens_;
  }

  /// Unconditionally spend `bytes` (may drive the bucket negative; the
  /// frame-level gate in available() keeps long-run rate at the target
  /// while never tearing a message mid-send).
  void consume(std::size_t bytes, SimTime now) {
    if (unlimited()) return;
    refill(now);
    tokens_ -= static_cast<double>(bytes);
  }

  /// Convenience: spend only if fully covered.
  bool try_consume(std::size_t bytes, SimTime now) {
    if (unlimited()) return true;
    refill(now);
    if (tokens_ < static_cast<double>(bytes)) return false;
    tokens_ -= static_cast<double>(bytes);
    return true;
  }

 private:
  void refill(SimTime now) {
    if (now > last_) {
      tokens_ = std::min(
          burst_, tokens_ + static_cast<double>(now - last_) *
                                static_cast<double>(rate_bps_) / 8.0 / 1e6);
      last_ = now;
    }
  }

  std::uint64_t rate_bps_;
  double burst_;
  double tokens_;
  SimTime last_ = 0;
};

}  // namespace ads
