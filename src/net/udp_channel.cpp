#include "net/udp_channel.hpp"

#include <algorithm>

namespace ads {

UdpChannel::UdpChannel(EventLoop& loop, UdpChannelOptions opts)
    : loop_(loop), opts_(opts), rng_(opts.seed) {
  if (opts_.telemetry != nullptr) {
    queue_delay_us_ = &opts_.telemetry->metrics.histogram(
        "net.udp.queue_delay_us",
        {0, 1'000, 5'000, 10'000, 20'000, 50'000, 100'000, 250'000, 1'000'000});
  }
}

void UdpChannel::set_loss(double loss) {
  opts_.loss = loss;
  // Derive the episode seed with a splitmix64-style mix so consecutive
  // episodes of the same channel don't share correlated streams.
  ++loss_episode_;
  rng_ = Prng(opts_.seed + 0x9E3779B97F4A7C15ull * loss_episode_);
}

bool UdpChannel::admit(std::size_t size, SimTime& depart) {
  ++stats_.sent;

  depart = loop_.now();
  if (opts_.bandwidth_bps > 0) {
    // Bytes already queued ahead of this datagram.
    const SimTime backlog_us =
        link_free_at_ > loop_.now() ? link_free_at_ - loop_.now() : 0;
    const std::uint64_t backlog_bytes = backlog_us * opts_.bandwidth_bps / 8 / 1000000;
    if (backlog_bytes + size > opts_.queue_bytes) {
      ++stats_.queue_dropped;
      return false;
    }
    const SimTime serialize_us = size * 8ull * 1000000ull / opts_.bandwidth_bps;
    const SimTime start = std::max(link_free_at_, loop_.now());
    link_free_at_ = start + serialize_us;
    depart = link_free_at_;
  }
  if (queue_delay_us_ != nullptr) queue_delay_us_->observe(depart - loop_.now());
  return true;
}

bool UdpChannel::send(BytesView datagram) {
  SimTime depart = 0;
  if (!admit(datagram.size(), depart)) return false;

  if (rng_.chance(opts_.loss)) {
    ++stats_.lost;
    return true;  // loss is silent; the queue accepted it
  }

  Bytes copy(datagram.begin(), datagram.end());
  schedule_delivery(std::move(copy), depart);

  if (rng_.chance(opts_.duplicate)) {
    ++stats_.duplicated;
    Bytes dup(datagram.begin(), datagram.end());
    schedule_delivery(std::move(dup), depart);
  }
  return true;
}

bool UdpChannel::send_packet(const PacketView& pkt) {
  SimTime depart = 0;
  if (!admit(pkt.wire_size(), depart)) return false;

  if (rng_.chance(opts_.loss)) {
    ++stats_.lost;
    return true;  // lost before materialisation: zero copies
  }

  schedule_delivery(pkt.serialize(), depart);

  if (rng_.chance(opts_.duplicate)) {
    ++stats_.duplicated;
    schedule_delivery(pkt.serialize(), depart);
  }
  return true;
}

std::size_t UdpChannel::send_batch(std::span<const PacketView> pkts) {
  std::size_t accepted = 0;
  for (const PacketView& pkt : pkts) {
    if (send_packet(pkt)) ++accepted;
  }
  return accepted;
}

void UdpChannel::schedule_delivery(Bytes datagram, SimTime depart) {
  const SimTime jitter = opts_.jitter_us ? rng_.below(opts_.jitter_us) : 0;
  const SimTime arrive = depart + opts_.delay_us + jitter;
  loop_.at(arrive, [this, alive = std::weak_ptr<int>(alive_),
                    d = std::move(datagram)]() mutable {
    if (alive.expired()) return;  // channel torn down while in flight
    ++stats_.delivered;
    stats_.bytes_delivered += d.size();
    if (receiver_) receiver_(std::move(d));
  });
}

}  // namespace ads
