// Unidirectional TCP-like byte stream: reliable, in-order, rate-limited,
// with a finite send buffer. The buffer occupancy is the observable the
// draft's §7 implementation note is about: "monitor the state of their TCP
// transmission buffers (through mechanisms such as the select() command)
// and only send the most recent screen data when there is no backlog."
// `backlog_bytes()` is that select()-style signal.
//
// Loss and retransmission are below the abstraction: a fluid model drains
// the buffer at the configured bandwidth and delivers each accepted write
// intact after it fully serialises plus the propagation delay.
//
// Fault hooks (driven by chaos::FaultSchedule): set_bandwidth() collapses
// or restores the link rate; set_stalled() closes the send window (zero
// bytes accepted, in-flight data still drains — a zero-window peer);
// drop() is a hard connection drop — in-flight data is lost, every later
// write is refused, and only a fresh channel (reconnect) recovers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>

#include "net/event_loop.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"

namespace ads {

/// Link characteristics of one simulated TCP stream.
struct TcpChannelOptions {
  std::uint64_t bandwidth_bps = 10'000'000;
  SimTime delay_us = 20000;            ///< one-way propagation delay
  std::size_t send_buffer_bytes = 64 * 1024;
  /// Optional session-wide telemetry sink. When set, every send() pushes
  /// the pre-write backlog into the shared `net.tcp.backlog_bytes`
  /// histogram — the distribution the §7 skip policy reacts to — and
  /// maintains the shared `net.tcp.backlog` gauge (this channel's
  /// contribution is withdrawn on teardown/drop, so evicted or reconnected
  /// participants never pin stale backlog into snapshots).
  telemetry::Telemetry* telemetry = nullptr;
};

/// One reliable, in-order, finite-send-buffer byte stream.
class TcpChannel {
 public:
  using Receiver = std::function<void(Bytes)>;

  /// Construct the channel on the session's event loop.
  TcpChannel(EventLoop& loop, TcpChannelOptions opts);
  ~TcpChannel();

  /// Install (or replace) the delivery callback.
  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Write bytes to the stream. Accepts up to the free send-buffer space
  /// and returns how many bytes were taken (a partial write, exactly like a
  /// non-blocking socket). Never blocks. Accepts nothing while stalled or
  /// after drop().
  std::size_t send(BytesView data);

  /// Gather-write: offer the concatenation of `parts` as one send() without
  /// the caller having to build that concatenation. Acceptance, segmentation
  /// and stats are byte-for-byte identical to send() on the joined bytes;
  /// only the accepted prefix is copied (once, into the wire segment). The
  /// accepted prefix may end mid-part — the caller re-offers the remainder
  /// later, exactly as with a partial send().
  std::size_t send_gather(std::span<const BytesView> parts);

  /// Bytes accepted but not yet serialised onto the wire — the §7 backlog
  /// signal. Zero means a write of at least one byte would succeed
  /// immediately (unless the channel is stalled or down).
  std::size_t backlog_bytes() const;

  /// Send-buffer bytes a write could take right now.
  std::size_t free_space() const { return opts_.send_buffer_bytes - backlog_bytes(); }

  /// Current link rate.
  std::uint64_t bandwidth_bps() const { return opts_.bandwidth_bps; }
  /// Change the link rate mid-run (fault injection). Applies to subsequent
  /// sends; segments already serialising keep their delivery times.
  void set_bandwidth(std::uint64_t bps) { opts_.bandwidth_bps = bps; }

  /// Close (true) or reopen (false) the send window: while stalled, send()
  /// accepts zero bytes. Data already accepted keeps draining.
  void set_stalled(bool stalled) { stalled_ = stalled; }
  /// True while the send window is closed.
  bool stalled() const { return stalled_; }

  /// Hard connection drop: in-flight segments are lost, the backlog gauge
  /// contribution is withdrawn, and every later send() is refused. There is
  /// no undo — reconnection means a fresh channel.
  void drop();
  /// True once drop() has been called.
  bool down() const { return down_; }

  /// Lifetime byte totals, by fate.
  struct Stats {
    std::uint64_t bytes_offered = 0;
    std::uint64_t bytes_accepted = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t partial_writes = 0;  ///< sends that could not take all bytes
    std::uint64_t bytes_lost_on_drop = 0;  ///< in flight when drop() hit
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    Bytes data;
    SimTime fully_serialised_at;
  };

  /// Publish the current backlog into the shared gauge as a delta against
  /// what this channel last published.
  void publish_backlog_gauge();

  EventLoop& loop_;
  TcpChannelOptions opts_;
  Receiver receiver_;
  SimTime link_free_at_ = 0;
  std::deque<Segment> in_flight_;  ///< serialised order, for backlog math
  bool stalled_ = false;
  bool down_ = false;
  std::uint64_t epoch_ = 0;  ///< bumped by drop(): cancels scheduled deliveries
  telemetry::Histogram* backlog_hist_ = nullptr;
  telemetry::Gauge* backlog_gauge_ = nullptr;
  std::int64_t backlog_published_ = 0;  ///< this channel's share of the gauge
  Stats stats_;
  /// Deliveries already scheduled on the loop hold a weak reference to this
  /// token, so destroying the channel mid-flight (eviction, reconnect)
  /// silently cancels them.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace ads
