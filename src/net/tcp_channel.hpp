// Unidirectional TCP-like byte stream: reliable, in-order, rate-limited,
// with a finite send buffer. The buffer occupancy is the observable the
// draft's §7 implementation note is about: "monitor the state of their TCP
// transmission buffers (through mechanisms such as the select() command)
// and only send the most recent screen data when there is no backlog."
// `backlog_bytes()` is that select()-style signal.
//
// Loss and retransmission are below the abstraction: a fluid model drains
// the buffer at the configured bandwidth and delivers each accepted write
// intact after it fully serialises plus the propagation delay.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/event_loop.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"

namespace ads {

struct TcpChannelOptions {
  std::uint64_t bandwidth_bps = 10'000'000;
  SimTime delay_us = 20000;            ///< one-way propagation delay
  std::size_t send_buffer_bytes = 64 * 1024;
  /// Optional session-wide telemetry sink. When set, every send() pushes
  /// the pre-write backlog into the shared `net.tcp.backlog_bytes`
  /// histogram — the distribution the §7 skip policy reacts to.
  telemetry::Telemetry* telemetry = nullptr;
};

class TcpChannel {
 public:
  using Receiver = std::function<void(Bytes)>;

  TcpChannel(EventLoop& loop, TcpChannelOptions opts);

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Write bytes to the stream. Accepts up to the free send-buffer space
  /// and returns how many bytes were taken (a partial write, exactly like a
  /// non-blocking socket). Never blocks.
  std::size_t send(BytesView data);

  /// Bytes accepted but not yet serialised onto the wire — the §7 backlog
  /// signal. Zero means a write of at least one byte would succeed
  /// immediately.
  std::size_t backlog_bytes() const;

  std::size_t free_space() const { return opts_.send_buffer_bytes - backlog_bytes(); }

  struct Stats {
    std::uint64_t bytes_offered = 0;
    std::uint64_t bytes_accepted = 0;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t partial_writes = 0;  ///< sends that could not take all bytes
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    Bytes data;
    SimTime fully_serialised_at;
  };

  EventLoop& loop_;
  TcpChannelOptions opts_;
  Receiver receiver_;
  SimTime link_free_at_ = 0;
  std::deque<Segment> in_flight_;  ///< serialised order, for backlog math
  telemetry::Histogram* backlog_hist_ = nullptr;
  Stats stats_;
};

}  // namespace ads
