// Deterministic discrete-event simulation core. All network channels,
// application hosts and participants share one EventLoop; time is virtual
// microseconds, so every test and benchmark is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ads {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime sim_ms(std::uint64_t ms) { return ms * 1000; }
constexpr SimTime sim_sec(std::uint64_t s) { return s * 1000000; }

/// The discrete-event scheduler: a priority queue of timed callbacks with
/// deterministic FIFO tie-breaking.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `when` (clamped to now).
  void at(SimTime when, Callback fn);

  /// Schedule `fn` after `delay` microseconds.
  void after(SimTime delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Run events until the queue is empty or `deadline` is passed; the clock
  /// ends at `deadline` (or the last event if the queue empties first and
  /// advance_to_deadline is true).
  void run_until(SimTime deadline);

  /// Run until no events remain.
  void run();

  /// Execute a single event; returns false if the queue is empty.
  bool step();

  /// Number of events still queued.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t id;  ///< insertion order breaks ties deterministically
    Callback fn;
  };
  struct Later {
    /// Min-heap order: earliest time first, insertion order breaking ties.
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_id_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ads
