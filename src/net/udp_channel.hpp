// Unidirectional UDP-like datagram channel: unreliable, unordered, rate-
// limited. Models the path an AH→participant remoting stream (or the
// reverse HIP stream) takes when the session uses UDP (§4.3): datagrams can
// be lost, duplicated and reordered (via jitter), and a finite interface
// queue tail-drops when the sender exceeds the link rate — which is why the
// AH "controls the transmission rate for participants using UDP".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "net/event_loop.hpp"
#include "rtp/packet_view.hpp"
#include "telemetry/telemetry.hpp"
#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace ads {

/// Link characteristics of one simulated UDP path.
struct UdpChannelOptions {
  double loss = 0.0;               ///< independent datagram loss probability
  double duplicate = 0.0;          ///< duplication probability
  SimTime delay_us = 20000;        ///< one-way propagation delay
  SimTime jitter_us = 0;           ///< uniform extra delay (causes reordering)
  std::uint64_t bandwidth_bps = 0; ///< 0 = unlimited
  std::size_t queue_bytes = 256 * 1024;  ///< interface queue capacity
  std::uint64_t seed = 1;          ///< drives loss/jitter draws
  /// Optional session-wide telemetry sink. When set, the channel pushes the
  /// per-datagram interface-queue delay into the shared
  /// `net.udp.queue_delay_us` histogram (the §7 "backlog" signal for UDP).
  telemetry::Telemetry* telemetry = nullptr;
};

/// One unreliable, rate-limited, finite-queue datagram path.
class UdpChannel {
 public:
  using Receiver = std::function<void(Bytes)>;

  /// Construct the channel on the session's event loop.
  UdpChannel(EventLoop& loop, UdpChannelOptions opts);

  /// Install (or replace) the delivery callback.
  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Enqueue one datagram. Returns false if the interface queue tail-dropped
  /// it (the datagram is gone; UDP gives no signal beyond this return).
  bool send(BytesView datagram);

  /// Enqueue one header-plus-view packet. Identical admission, loss and
  /// timing behaviour to send() on the serialised bytes, but the datagram is
  /// only materialised (header + shared payload gathered into one buffer)
  /// when it is actually scheduled for delivery — a tail-dropped or lost
  /// packet costs zero payload copies.
  bool send_packet(const PacketView& pkt);

  /// Drain a per-tick TX batch in one call. Packets are admitted in order
  /// and every one is attempted — a tail drop does not stop the batch,
  /// matching back-to-back send_packet() calls exactly. Returns how many
  /// the interface queue accepted.
  std::size_t send_batch(std::span<const PacketView> pkts);

  /// Current random-loss probability.
  double loss() const { return opts_.loss; }
  /// Current link rate (0 = unlimited).
  std::uint64_t bandwidth_bps() const { return opts_.bandwidth_bps; }

  /// Change the link rate mid-run (fault injection: bandwidth collapse and
  /// recovery). Applies to subsequent sends; datagrams already queued keep
  /// their departure times.
  void set_bandwidth(std::uint64_t bps) { opts_.bandwidth_bps = bps; }

  /// Adjust the loss probability mid-run, beginning a new deterministic
  /// loss *episode*.
  ///
  /// Seeding contract: the channel's PRNG is re-seeded from
  /// (opts.seed, episode index) on every call, so the loss/jitter/duplicate
  /// draws of episode N are a pure function of the configured seed and N —
  /// independent of how many datagrams earlier episodes happened to carry.
  /// Episode 0 is the construction-time stream; the first set_loss() call
  /// starts episode 1, the second episode 2, and so on. Staged multi-phase
  /// tests and benchmarks therefore reproduce bit-identically even when an
  /// earlier phase's traffic volume changes.
  void set_loss(double loss);

  /// Lifetime datagram totals, by fate.
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;          ///< random loss
    std::uint64_t queue_dropped = 0; ///< tail drops
    std::uint64_t duplicated = 0;
    std::uint64_t bytes_delivered = 0;
  };
  /// Lifetime counters (see Stats).
  const Stats& stats() const { return stats_; }
  /// Zero the stats — multi-phase benchmarks measure each loss episode
  /// separately. Does not touch the PRNG or the link state.
  void reset_stats() { stats_ = {}; }

 private:
  /// Run the shared admission path (sent counter, bandwidth backlog, queue
  /// tail-drop, queue-delay telemetry) for a datagram of `size` bytes.
  /// Returns false on tail drop; otherwise `depart` is the serialisation
  /// completion time.
  bool admit(std::size_t size, SimTime& depart);

  void schedule_delivery(Bytes datagram, SimTime depart);

  EventLoop& loop_;
  UdpChannelOptions opts_;
  Prng rng_;
  Receiver receiver_;
  SimTime link_free_at_ = 0;  ///< when the serialiser finishes current queue
  std::uint64_t loss_episode_ = 0;  ///< set_loss() calls so far
  telemetry::Histogram* queue_delay_us_ = nullptr;
  Stats stats_;
  /// Deliveries already scheduled on the loop hold a weak reference to this
  /// token, so tearing the channel down mid-flight (participant eviction,
  /// reconnect) silently cancels them instead of dereferencing a dead
  /// channel.
  std::shared_ptr<int> alive_ = std::make_shared<int>(0);
};

}  // namespace ads
