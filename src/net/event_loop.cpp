#include "net/event_loop.hpp"

namespace ads {

void EventLoop::at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_id_++, std::move(fn)});
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback must be moved out before
  // pop, so copy the small fields and move via const_cast-free re-push
  // pattern: take a copy of the top wrapper.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) step();
  if (now_ < deadline) now_ = deadline;
}

}  // namespace ads
