// Multicast fan-out model (draft §4.2/§4.3: the AH can serve "several
// multicast addresses in the same sharing session", each multicast session
// potentially at a different transmission rate).
//
// The AH sends each datagram once per group; the group replicates it onto
// per-member channels, so members experience independent loss, delay and
// jitter — exactly the property that makes multicast NACK handling (and
// NACK-storm avoidance) interesting.
#pragma once

#include <memory>
#include <vector>

#include "net/udp_channel.hpp"

namespace ads {

/// One send fanned out over per-member channels with independent loss.
class MulticastGroup {
 public:
  /// Construct an empty group on the session's event loop.
  explicit MulticastGroup(EventLoop& loop) : loop_(loop) {}

  /// Add a member with its own last-hop characteristics; returns the
  /// member's channel (attach the receiver to it).
  UdpChannel& add_member(UdpChannelOptions opts) {
    members_.push_back(std::make_unique<UdpChannel>(loop_, opts));
    return *members_.back();
  }

  /// Replicate one datagram to every member. Returns true if at least one
  /// member's queue accepted it.
  bool send(BytesView datagram) {
    ++datagrams_sent_;
    bool any = false;
    for (auto& member : members_) any |= member->send(datagram);
    return any;
  }

  /// Replicate one header-plus-view packet to every member. Admission and
  /// loss behaviour match send() on the serialised bytes; each member
  /// channel materialises only the datagrams it actually delivers.
  bool send_packet(const PacketView& pkt) {
    ++datagrams_sent_;
    bool any = false;
    for (auto& member : members_) any |= member->send_packet(pkt);
    return any;
  }

  /// Drain a TX batch to the whole group, in order. Returns how many
  /// packets at least one member's queue accepted.
  std::size_t send_batch(std::span<const PacketView> pkts) {
    std::size_t accepted = 0;
    for (const PacketView& pkt : pkts) {
      if (send_packet(pkt)) ++accepted;
    }
    return accepted;
  }

  /// Number of member channels.
  std::size_t member_count() const { return members_.size(); }
  /// Datagrams the AH has sent to the group (once each, pre-replication).
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }

  /// The i-th member's last-hop channel (creation order).
  UdpChannel& member(std::size_t i) { return *members_[i]; }

 private:
  EventLoop& loop_;
  std::vector<std::unique_ptr<UdpChannel>> members_;
  std::uint64_t datagrams_sent_ = 0;
};

}  // namespace ads
