#include "net/tcp_channel.hpp"

#include <algorithm>

namespace ads {

TcpChannel::TcpChannel(EventLoop& loop, TcpChannelOptions opts)
    : loop_(loop), opts_(opts) {
  if (opts_.telemetry != nullptr) {
    backlog_hist_ = &opts_.telemetry->metrics.histogram(
        "net.tcp.backlog_bytes",
        {0, 1024, 4096, 16384, 65536, 262144, 1048576});
    backlog_gauge_ = &opts_.telemetry->metrics.gauge("net.tcp.backlog");
  }
}

TcpChannel::~TcpChannel() {
  // Withdraw this channel's share of the shared backlog gauge so snapshots
  // taken after teardown don't carry a dead link's bytes.
  if (backlog_gauge_ != nullptr && backlog_published_ != 0) {
    backlog_gauge_->add(-backlog_published_);
  }
}

std::size_t TcpChannel::backlog_bytes() const {
  if (down_) return 0;
  // Sum of the not-yet-serialised suffix: a segment contributes while the
  // link has not finished clocking it out.
  const SimTime now = loop_.now();
  std::size_t backlog = 0;
  for (const Segment& s : in_flight_) {
    if (s.fully_serialised_at > now) {
      // Portion still unsent: proportional to remaining serialisation time.
      const SimTime remaining = s.fully_serialised_at - now;
      const std::uint64_t remaining_bytes =
          std::min<std::uint64_t>(s.data.size(),
                                  remaining * opts_.bandwidth_bps / 8 / 1000000 + 1);
      backlog += remaining_bytes;
    }
  }
  return std::min(backlog, opts_.send_buffer_bytes);
}

void TcpChannel::publish_backlog_gauge() {
  if (backlog_gauge_ == nullptr) return;
  const std::int64_t current = static_cast<std::int64_t>(backlog_bytes());
  backlog_gauge_->add(current - backlog_published_);
  backlog_published_ = current;
}

void TcpChannel::drop() {
  if (down_) return;
  down_ = true;
  ++epoch_;  // scheduled deliveries check this and retire
  // Everything accepted but not yet delivered dies with the connection —
  // the unsent backlog and segments already propagating down the wire.
  stats_.bytes_lost_on_drop += stats_.bytes_accepted - stats_.bytes_delivered;
  in_flight_.clear();
  link_free_at_ = 0;
  publish_backlog_gauge();  // backlog_bytes() is 0 now: clears our share
}

std::size_t TcpChannel::send(BytesView data) {
  const BytesView parts[] = {data};
  return send_gather(parts);
}

std::size_t TcpChannel::send_gather(std::span<const BytesView> parts) {
  std::size_t total = 0;
  for (const BytesView& p : parts) total += p.size();

  stats_.bytes_offered += total;
  if (down_) return 0;
  if (backlog_hist_ != nullptr) backlog_hist_->observe(backlog_bytes());
  if (stalled_) {
    // Zero-window peer: nothing accepted, wire keeps draining.
    if (total != 0) ++stats_.partial_writes;
    publish_backlog_gauge();
    return 0;
  }

  // Garbage-collect segments that have fully serialised.
  const SimTime now = loop_.now();
  while (!in_flight_.empty() && in_flight_.front().fully_serialised_at <= now) {
    in_flight_.pop_front();
  }

  const std::size_t space = free_space();
  const std::size_t take = std::min(space, total);
  if (take < total) ++stats_.partial_writes;
  if (take == 0) {
    publish_backlog_gauge();
    return 0;
  }

  const SimTime serialize_us = take * 8ull * 1000000ull / opts_.bandwidth_bps;
  const SimTime start = std::max(link_free_at_, now);
  link_free_at_ = start + serialize_us;

  Segment seg;
  seg.data.reserve(take);
  std::size_t remaining = take;
  for (const BytesView& p : parts) {
    if (remaining == 0) break;
    const std::size_t n = std::min(remaining, p.size());
    seg.data.insert(seg.data.end(), p.begin(), p.begin() + static_cast<std::ptrdiff_t>(n));
    remaining -= n;
  }
  seg.fully_serialised_at = link_free_at_;
  const SimTime arrive = link_free_at_ + opts_.delay_us;
  in_flight_.push_back(seg);

  stats_.bytes_accepted += take;
  loop_.at(arrive, [this, alive = std::weak_ptr<int>(alive_), epoch = epoch_,
                    d = std::move(seg.data)]() mutable {
    if (alive.expired()) return;   // channel destroyed while in flight
    if (epoch != epoch_) return;   // connection dropped: data lost
    stats_.bytes_delivered += d.size();
    if (receiver_) receiver_(std::move(d));
  });
  publish_backlog_gauge();
  return take;
}

}  // namespace ads
