// Deterministic PRNG (xoshiro256** seeded via splitmix64).
//
// Every stochastic element of the system — packet loss, reordering jitter,
// workload content, RTP initial sequence/timestamp randomisation — draws
// from an explicitly seeded Prng so that tests and benchmarks are
// bit-reproducible. std::mt19937 is avoided only because its 5 KB state is
// wasteful for the many small per-channel generators the simulator creates.
#pragma once

#include <cstdint>

namespace ads {

class Prng {
 public:
  explicit Prng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into 4 non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) { return bound ? next_u64() % bound : 0; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace ads
