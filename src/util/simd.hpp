// Runtime-dispatched SIMD kernels for the measured hot loops: Adler-32 and
// CRC-32 absorption (util/checksum), tile hashing (image/damage), PNG filter
// selection/apply (codec/png), the forward DCT + quantise (codec/dct) and
// the box-downscale row average (transcode's FrameScaler).
//
// Contract: every dispatched kernel is bit-identical to its `_scalar`
// reference on all inputs — vector paths keep each output element's
// operation sequence equal to the scalar one (integer kernels are exact by
// construction; the FP kernels use explicit mul/add intrinsics in scalar
// order and never fuse, so IEEE-754 determinism carries the identity).
// The `_scalar` variants stay exported as the golden reference for the
// differential tests and the E13 microbenches.
//
// Dispatch policy: the implementation level is chosen once per process from
// CPUID (AVX2 > SSE4.2+PCLMUL > scalar), clamped by the `ADS_SIMD` CMake
// toggle (OFF compiles the scalar paths only) and by an optional `ADS_SIMD`
// environment variable ("scalar" | "sse42" | "avx2") for A/B debugging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ads::simd {

/// Implementation tiers in ascending capability order. kSse42 implies
/// PCLMULQDQ (paired on every x86-64 CPU that has SSE4.2).
enum class Level { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// The tier selected for this process (CPUID ∧ build toggle ∧ env override).
/// Stable for the lifetime of the process.
Level active_level();

/// Human-readable tier name ("scalar", "sse42", "avx2") for logs and benches.
std::string_view level_name(Level level);

/// True when the build compiled the vector paths (CMake `ADS_SIMD=ON`).
bool compiled_with_simd();

/// Absorb `n` bytes into running Adler-32 sums (RFC 1950 semantics: NMAX
/// chunking with mod-65521 reductions). `s1`/`s2` are updated in place.
void adler32_absorb(std::uint32_t& s1, std::uint32_t& s2, const std::uint8_t* data,
                    std::size_t n);
/// Scalar reference for adler32_absorb (the pre-SIMD implementation).
void adler32_absorb_scalar(std::uint32_t& s1, std::uint32_t& s2,
                           const std::uint8_t* data, std::size_t n);

/// Absorb `n` bytes into a raw reflected CRC-32 register (poly 0xEDB88320).
/// Callers keep the init/final xor convention; this is the inner loop only.
std::uint32_t crc32_absorb(std::uint32_t crc, const std::uint8_t* data, std::size_t n);
/// Scalar (bytewise table) reference for crc32_absorb.
std::uint32_t crc32_absorb_scalar(std::uint32_t crc, const std::uint8_t* data,
                                  std::size_t n);

/// Absorb `n_pixels` packed RGBA pixels (memory order r,g,b,a) into four
/// interleaved FNV-1a lanes: pixel i updates lanes[i & 3] with the
/// big-endian u32 word. The 4-lane stripe is the tile-hash spec; it exists
/// so the multiply chains are independent and vectorise 4-wide.
void fnv4_absorb(std::uint64_t lanes[4], const std::uint8_t* rgba,
                 std::size_t n_pixels);
/// Scalar reference for fnv4_absorb.
void fnv4_absorb_scalar(std::uint64_t lanes[4], const std::uint8_t* rgba,
                        std::size_t n_pixels);

/// Apply PNG scanline filter `type` (0..4) to `row` (length `n`, pixel
/// stride `bpp`) given the previous scanline `prior` (null on row 0),
/// writing `n` filtered bytes to `out`.
void png_filter_row(int type, const std::uint8_t* row, const std::uint8_t* prior,
                    std::size_t n, std::size_t bpp, std::uint8_t* out);
/// Scalar reference for png_filter_row.
void png_filter_row_scalar(int type, const std::uint8_t* row,
                           const std::uint8_t* prior, std::size_t n, std::size_t bpp,
                           std::uint8_t* out);

/// Sum of |signed interpretation| over `n` bytes — the PNG filter heuristic.
std::uint64_t png_abs_sum(const std::uint8_t* data, std::size_t n);
/// Scalar reference for png_abs_sum.
std::uint64_t png_abs_sum_scalar(const std::uint8_t* data, std::size_t n);

/// 8×8 forward DCT. `basis` is the separable cos basis t[u][x] row-major;
/// `basis_t` its transpose t[x][u] (the vector path broadcasts inputs and
/// walks the transpose so per-output addition order matches scalar).
void fdct8x8(const double in[64], double out[64], const double basis[64],
             const double basis_t[64]);
/// Scalar reference for fdct8x8.
void fdct8x8_scalar(const double in[64], double out[64], const double basis[64],
                    const double basis_t[64]);

/// Zigzag + quantise an fdct output block: out[i] =
/// clamp(lround(freq[zigzag[i]] / q[zigzag[i]]), -32768, 32767).
void dct_quantise(const double freq[64], const int q[64], const int zigzag[64],
                  int out[64]);
/// Scalar reference for dct_quantise.
void dct_quantise_scalar(const double freq[64], const int q[64],
                         const int zigzag[64], int out[64]);

/// Box-average one 2×-downscale output row from two source rows of packed
/// RGBA pixels (the transcode scaler's inner loop). Per channel:
///   out[j] = (r0[2j] + r0[x1] + r1[2j] + r1[x1] + 2) >> 2,
/// where x1 = min(2j + 1, src_w_px - 1) replicates the right edge on odd
/// widths. Writes (src_w_px + 1) / 2 output pixels; for the odd bottom edge
/// callers pass r1 == r0. `src_w_px` must be >= 1.
void box_halve_row(const std::uint8_t* r0, const std::uint8_t* r1,
                   std::size_t src_w_px, std::uint8_t* out);
/// Scalar reference for box_halve_row.
void box_halve_row_scalar(const std::uint8_t* r0, const std::uint8_t* r1,
                          std::size_t src_w_px, std::uint8_t* out);
/// Test hook: run box_halve_row's tier-`level` implementation (clamped to
/// active_level()), so the golden byte-identity suite can exercise every
/// compiled tier in one process regardless of the dispatch pick.
void box_halve_row_at(Level level, const std::uint8_t* r0, const std::uint8_t* r1,
                      std::size_t src_w_px, std::uint8_t* out);

}  // namespace ads::simd
