// Big-endian (network byte order) wire I/O.
//
// ByteWriter appends to an internally owned buffer; ByteReader is a
// non-owning cursor over a span. All protocol integers in the draft are
// carried in network byte order, so these are the only serialisation
// primitives the message codecs use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace ads {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends big-endian integers and raw bytes to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopt `buf` as the output buffer (cleared, capacity kept) so callers on
  /// a hot path can reuse one allocation across invocations via take().
  explicit ByteWriter(Bytes buf) : buf_(std::move(buf)) { buf_.clear(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u24(std::uint32_t v);  ///< low 24 bits, big-endian
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

  void bytes(BytesView data);
  void bytes(const void* data, std::size_t len);
  void str(std::string_view s);  ///< raw UTF-8, no length prefix, no padding

  /// Overwrite a previously written big-endian u32 at byte offset `at`.
  /// Used for chunk lengths/CRCs that are known only after the payload.
  void patch_u32(std::size_t at, std::uint32_t v);

  std::size_t size() const { return buf_.size(); }
  BytesView view() const { return buf_; }
  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential big-endian reader over a non-owned buffer.
/// Every accessor returns a Result and never reads past the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u24();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int32_t> i32();

  /// View of the next `len` bytes; advances the cursor.
  Result<BytesView> bytes(std::size_t len);
  /// All remaining bytes; advances the cursor to the end.
  BytesView rest();

  ParseStatus skip(std::size_t len);
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Hex dump ("de ad be ef") of a buffer, for diagnostics and golden tests.
std::string hex_dump(BytesView data);

}  // namespace ads
