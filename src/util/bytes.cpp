#include "util/bytes.hpp"

#include <cassert>
#include <cstring>

namespace ads {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u24(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::bytes(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void ByteWriter::bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void ByteWriter::str(std::string_view s) { bytes(s.data(), s.size()); }

void ByteWriter::patch_u32(std::size_t at, std::uint32_t v) {
  assert(at + 4 <= buf_.size());
  buf_[at] = static_cast<std::uint8_t>(v >> 24);
  buf_[at + 1] = static_cast<std::uint8_t>(v >> 16);
  buf_[at + 2] = static_cast<std::uint8_t>(v >> 8);
  buf_[at + 3] = static_cast<std::uint8_t>(v);
}

Result<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return ParseError::kTruncated;
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return ParseError::kTruncated;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u24() {
  if (remaining() < 3) return ParseError::kTruncated;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]);
  pos_ += 3;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return ParseError::kTruncated;
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) << 24 |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  auto hi = u32();
  if (!hi) return hi.error();
  auto lo = u32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

Result<std::int32_t> ByteReader::i32() {
  auto v = u32();
  if (!v) return v.error();
  return static_cast<std::int32_t>(*v);
}

Result<BytesView> ByteReader::bytes(std::size_t len) {
  if (remaining() < len) return ParseError::kTruncated;
  BytesView out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

BytesView ByteReader::rest() {
  BytesView out = data_.subspan(pos_);
  pos_ = data_.size();
  return out;
}

ParseStatus ByteReader::skip(std::size_t len) {
  if (remaining() < len) return ParseError::kTruncated;
  pos_ += len;
  return {};
}

std::string hex_dump(BytesView data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  return out;
}

}  // namespace ads
