// Result<T, E>: a minimal expected-like type used for all parsing of
// untrusted wire data. Parsers never throw on malformed input; they return
// an error value instead (C++20 lacks std::expected).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ads {

/// Error category for wire-format parsing failures.
enum class ParseError {
  kTruncated,        ///< buffer ended before a complete field
  kBadMagic,         ///< signature / reserved value mismatch
  kBadValue,         ///< field value outside its legal range
  kBadChecksum,      ///< CRC/Adler mismatch
  kUnsupported,      ///< legal but not implemented (e.g. unknown codec PT)
  kOverflow,         ///< arithmetic on header fields would overflow
  kBadState,         ///< message illegal in the current protocol state
};

/// Human-readable name for a ParseError (for logs and test failure output).
constexpr const char* to_string(ParseError e) {
  switch (e) {
    case ParseError::kTruncated: return "truncated";
    case ParseError::kBadMagic: return "bad-magic";
    case ParseError::kBadValue: return "bad-value";
    case ParseError::kBadChecksum: return "bad-checksum";
    case ParseError::kUnsupported: return "unsupported";
    case ParseError::kOverflow: return "overflow";
    case ParseError::kBadState: return "bad-state";
  }
  return "unknown";
}

/// Value-or-error. `Result<T>` holds either a T or a ParseError.
/// Use `ok()` / `error()` / `value()`; `value()` on an error asserts.
template <typename T, typename E = ParseError>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(E error) : data_(error) {}             // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  E error() const {
    assert(!ok());
    return std::get<E>(data_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

 private:
  std::variant<T, E> data_;
};

/// Result for operations that produce no value.
template <typename E = ParseError>
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(E error) : error_(error), failed_(true) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  E error() const {
    assert(failed_);
    return error_;
  }

 private:
  E error_{};
  bool failed_ = false;
};

using ParseStatus = Status<ParseError>;

}  // namespace ads
