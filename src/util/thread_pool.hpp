// Fixed-size worker thread pool for CPU-bound fan-out (band encoding).
//
// Tasks receive the index of the worker executing them (0..size-1), which
// lets callers maintain per-worker scratch arenas without locking: a worker
// only ever touches its own slot. wait_idle() is the drain barrier — after
// it returns, every previously submitted task has finished and its writes
// are visible to the caller (the mutex hand-off provides the ordering).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ads {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs on some worker as `task(worker_index)`.
  void submit(std::function<void(std::size_t)> task);

  /// Block until the queue is empty and no worker is running a task.
  void wait_idle();

 private:
  void worker_main(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< task enqueued or shutdown
  std::condition_variable idle_cv_;  ///< a task finished
  std::deque<std::function<void(std::size_t)>> queue_;
  std::size_t active_ = 0;  ///< tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ads
