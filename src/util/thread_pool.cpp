#include "util/thread_pool.hpp"

#include <algorithm>

namespace ads {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void(std::size_t)> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_main(std::size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stop_ set and queue drained: exit. (Outstanding tasks finish first so
      // the destructor never abandons submitted work.)
      return;
    }
    std::function<void(std::size_t)> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task(index);
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace ads
