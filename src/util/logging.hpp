// Minimal leveled logger. Disabled (kWarn) by default so tests and benches
// stay quiet; examples raise the level to narrate protocol activity.
#pragma once

#include <sstream>
#include <string>

namespace ads {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Streaming log statement: ADS_LOG(kInfo) << "sent " << n << " bytes";
#define ADS_LOG(level)                                      \
  if (::ads::LogLevel::level < ::ads::log_level()) {        \
  } else                                                    \
    ::ads::detail::LogLine(::ads::LogLevel::level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ads
