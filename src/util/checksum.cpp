#include "util/checksum.hpp"

#include <array>

namespace ads {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[n] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

// Largest run of bytes Adler-32 can absorb before the 32-bit sums must be
// reduced modulo 65521 (the standard zlib NMAX constant).
constexpr std::size_t kAdlerNmax = 5552;
constexpr std::uint32_t kAdlerMod = 65521;

}  // namespace

void Crc32::update(std::uint8_t byte) { crc_ = kCrcTable[(crc_ ^ byte) & 0xFF] ^ (crc_ >> 8); }

void Crc32::update(BytesView data) {
  for (std::uint8_t b : data) update(b);
}

std::uint32_t crc32(BytesView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

void Adler32::update(BytesView data) {
  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t chunk = std::min(kAdlerNmax, data.size() - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      s1_ += data[i + j];
      s2_ += s1_;
    }
    s1_ %= kAdlerMod;
    s2_ %= kAdlerMod;
    i += chunk;
  }
}

std::uint32_t adler32(BytesView data) {
  Adler32 a;
  a.update(data);
  return a.value();
}

}  // namespace ads
