#include "util/checksum.hpp"

#include "util/simd.hpp"

namespace ads {

void Crc32::update(std::uint8_t byte) { crc_ = simd::crc32_absorb_scalar(crc_, &byte, 1); }

void Crc32::update(BytesView data) {
  crc_ = simd::crc32_absorb(crc_, data.data(), data.size());
}

std::uint32_t crc32(BytesView data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

void Adler32::update(BytesView data) {
  simd::adler32_absorb(s1_, s2_, data.data(), data.size());
}

std::uint32_t adler32(BytesView data) {
  Adler32 a;
  a.update(data);
  return a.value();
}

}  // namespace ads
