// CRC-32 (ISO 3309, as used by PNG chunks) and Adler-32 (RFC 1950, as used
// by the zlib wrapper). Both are implemented from scratch; the CRC table is
// built at compile time.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace ads {

/// Incremental CRC-32. PNG convention: start(), update()..., value().
class Crc32 {
 public:
  void update(BytesView data);
  void update(std::uint8_t byte);
  /// Finalised CRC (includes the ones-complement step).
  std::uint32_t value() const { return crc_ ^ 0xFFFFFFFFu; }
  void reset() { crc_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(BytesView data);

/// Incremental Adler-32 (initial value 1, per RFC 1950).
class Adler32 {
 public:
  void update(BytesView data);
  std::uint32_t value() const { return (s2_ << 16) | s1_; }
  void reset() {
    s1_ = 1;
    s2_ = 0;
  }

 private:
  std::uint32_t s1_ = 1;
  std::uint32_t s2_ = 0;
};

/// One-shot Adler-32 of a buffer.
std::uint32_t adler32(BytesView data);

}  // namespace ads
