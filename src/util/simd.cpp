#include "util/simd.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(ADS_SIMD_ENABLED) && defined(__x86_64__)
#define ADS_SIMD_X86 1
#include <immintrin.h>
#else
#define ADS_SIMD_X86 0
#endif

namespace ads::simd {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

constexpr std::size_t kAdlerNmax = 5552;
constexpr std::uint32_t kAdlerMod = 65521;

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[n] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

std::uint8_t paeth_byte(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
  const int p = static_cast<int>(a) + b - c;
  const int pa = std::abs(p - a);
  const int pb = std::abs(p - b);
  const int pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return a;
  if (pb <= pc) return b;
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scalar references. These are the pre-SIMD implementations, byte for byte;
// the dispatched entry points must match them exactly on every input.
// ---------------------------------------------------------------------------

void adler32_absorb_scalar(std::uint32_t& s1, std::uint32_t& s2,
                           const std::uint8_t* data, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    const std::size_t chunk = std::min(kAdlerNmax, n - i);
    for (std::size_t j = 0; j < chunk; ++j) {
      s1 += data[i + j];
      s2 += s1;
    }
    s1 %= kAdlerMod;
    s2 %= kAdlerMod;
    i += chunk;
  }
}

std::uint32_t crc32_absorb_scalar(std::uint32_t crc, const std::uint8_t* data,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    crc = kCrcTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  return crc;
}

void fnv4_absorb_scalar(std::uint64_t lanes[4], const std::uint8_t* rgba,
                        std::size_t n_pixels) {
  for (std::size_t i = 0; i < n_pixels; ++i) {
    const std::uint8_t* q = rgba + i * 4;
    const std::uint32_t v = static_cast<std::uint32_t>(q[0]) << 24 |
                            static_cast<std::uint32_t>(q[1]) << 16 |
                            static_cast<std::uint32_t>(q[2]) << 8 | q[3];
    lanes[i & 3] = (lanes[i & 3] ^ v) * kFnvPrime;
  }
}

namespace {

// Scalar filter over the index range [begin, end) with whole-row semantics
// (a/c reach back across `begin`); shared by the reference path and the
// vector path's head/tail handling.
void png_filter_range(int type, const std::uint8_t* row, const std::uint8_t* prior,
                      std::size_t begin, std::size_t end, std::size_t bpp,
                      std::uint8_t* out) {
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint8_t x = row[i];
    const std::uint8_t a = i >= bpp ? row[i - bpp] : 0;
    const std::uint8_t b = prior ? prior[i] : 0;
    const std::uint8_t c = (prior && i >= bpp) ? prior[i - bpp] : 0;
    std::uint8_t v = 0;
    switch (type) {
      case 0: v = x; break;
      case 1: v = static_cast<std::uint8_t>(x - a); break;
      case 2: v = static_cast<std::uint8_t>(x - b); break;
      case 3: v = static_cast<std::uint8_t>(x - (a + b) / 2); break;
      case 4: v = static_cast<std::uint8_t>(x - paeth_byte(a, b, c)); break;
    }
    out[i] = v;
  }
}

}  // namespace

void png_filter_row_scalar(int type, const std::uint8_t* row,
                           const std::uint8_t* prior, std::size_t n, std::size_t bpp,
                           std::uint8_t* out) {
  png_filter_range(type, row, prior, 0, n, bpp, out);
}

std::uint64_t png_abs_sum_scalar(const std::uint8_t* data, std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::int8_t>(data[i]);
    s += static_cast<std::uint64_t>(v < 0 ? -v : v);
  }
  return s;
}

void fdct8x8_scalar(const double in[64], double out[64], const double basis[64],
                    const double basis_t[64]) {
  (void)basis_t;
  double tmp[64];
  for (int y = 0; y < 8; ++y) {
    for (int u = 0; u < 8; ++u) {
      double s = 0;
      for (int x = 0; x < 8; ++x) s += in[y * 8 + x] * basis[u * 8 + x];
      tmp[y * 8 + u] = s;
    }
  }
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double s = 0;
      for (int y = 0; y < 8; ++y) s += tmp[y * 8 + u] * basis[v * 8 + y];
      out[v * 8 + u] = s;
    }
  }
}

void dct_quantise_scalar(const double freq[64], const int q[64],
                         const int zigzag[64], int out[64]) {
  for (int i = 0; i < 64; ++i) {
    const int z = zigzag[i];
    const double v = freq[z] / q[z];
    out[i] = std::clamp(static_cast<int>(std::lround(v)), -32768, 32767);
  }
}

namespace {

// Scalar box-halve over output pixels [begin, end); shared by the reference
// path and the vector paths' odd-width tails so every tier computes edge
// pixels through the same expression.
void box_halve_range(const std::uint8_t* r0, const std::uint8_t* r1,
                     std::size_t src_w_px, std::size_t begin, std::size_t end,
                     std::uint8_t* out) {
  for (std::size_t j = begin; j < end; ++j) {
    const std::size_t x0 = 2 * j;
    const std::size_t x1 = std::min(2 * j + 1, src_w_px - 1);
    const std::uint8_t* a = r0 + x0 * 4;
    const std::uint8_t* b = r0 + x1 * 4;
    const std::uint8_t* c = r1 + x0 * 4;
    const std::uint8_t* d = r1 + x1 * 4;
    for (int ch = 0; ch < 4; ++ch) {
      const std::uint32_t s = static_cast<std::uint32_t>(a[ch]) + b[ch] + c[ch] +
                              d[ch] + 2u;
      out[j * 4 + ch] = static_cast<std::uint8_t>(s >> 2);
    }
  }
}

}  // namespace

void box_halve_row_scalar(const std::uint8_t* r0, const std::uint8_t* r1,
                          std::size_t src_w_px, std::uint8_t* out) {
  box_halve_range(r0, r1, src_w_px, 0, (src_w_px + 1) / 2, out);
}

// ---------------------------------------------------------------------------
// Vector implementations.
// ---------------------------------------------------------------------------

#if ADS_SIMD_X86

#define ADS_TARGET_AVX2 __attribute__((target("avx2")))
#define ADS_TARGET_CLMUL __attribute__((target("pclmul,sse4.1")))

namespace {

ADS_TARGET_AVX2
void adler32_absorb_avx2(std::uint32_t& s1r, std::uint32_t& s2r,
                         const std::uint8_t* data, std::size_t n) {
  std::uint32_t s1 = s1r;
  std::uint32_t s2 = s2r;
  const __m256i zero = _mm256_setzero_si256();
  // Byte j of a 32-byte block contributes (32 - j)·d_j to s2 within the
  // block, plus 32·s1_before_block handled via the vs1s accumulator.
  const __m256i weights = _mm256_setr_epi8(
      32, 31, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14,
      13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1);
  const __m256i ones16 = _mm256_set1_epi16(1);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t chunk = std::min(kAdlerNmax, n - i);
    const std::size_t blocks = chunk / 32;
    std::size_t j = 0;
    if (blocks > 0) {
      // NMAX chunking guarantees the true (unreduced) sums fit in 32 bits,
      // and every vector lane's partial is a subset of the true sum, so
      // 32-bit lane arithmetic never wraps.
      __m256i vs1 = _mm256_set_epi32(0, 0, 0, 0, 0, 0, 0, static_cast<int>(s1));
      __m256i vs2 = _mm256_set_epi32(0, 0, 0, 0, 0, 0, 0, static_cast<int>(s2));
      __m256i vs1s = zero;
      for (std::size_t b = 0; b < blocks; ++b) {
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i + b * 32));
        vs1s = _mm256_add_epi32(vs1s, vs1);
        vs1 = _mm256_add_epi32(vs1, _mm256_sad_epu8(d, zero));
        const __m256i w = _mm256_maddubs_epi16(d, weights);
        vs2 = _mm256_add_epi32(vs2, _mm256_madd_epi16(w, ones16));
      }
      vs2 = _mm256_add_epi32(vs2, _mm256_slli_epi32(vs1s, 5));
      alignas(32) std::uint32_t l1[8];
      alignas(32) std::uint32_t l2[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(l1), vs1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(l2), vs2);
      s1 = 0;
      s2 = 0;
      for (int k = 0; k < 8; ++k) {
        s1 += l1[k];
        s2 += l2[k];
      }
      j = blocks * 32;
    }
    for (; j < chunk; ++j) {
      s1 += data[i + j];
      s2 += s1;
    }
    s1 %= kAdlerMod;
    s2 %= kAdlerMod;
    i += chunk;
  }
  s1r = s1;
  s2r = s2;
}

// Fold a 128-bit CRC state forward over `K`'s stride: the probe-validated
// reflected-domain identity creg(x ++ 0^N) == creg(fold(x, K_N)).
ADS_TARGET_CLMUL
inline __m128i crc_fold(__m128i x, __m128i k) {
  return _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                       _mm_clmulepi64_si128(x, k, 0x11));
}

ADS_TARGET_CLMUL
std::uint32_t crc32_absorb_clmul(std::uint32_t crc, const std::uint8_t* data,
                                 std::size_t n) {
  if (n < 80) return crc32_absorb_scalar(crc, data, n);
  // Reflected CRC-32 fold constants (x^{N·8±32} mod P for strides 64/16 B).
  const __m128i k64 = _mm_set_epi64x(0x1c6e41596ll, 0x154442bd4ll);
  const __m128i k16 = _mm_set_epi64x(0x0ccaa009ell, 0x1751997d0ll);
  // The running register xors into the first 4 message bytes (init-injection
  // identity of the reflected bytewise CRC).
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
  data += 64;
  n -= 64;
  while (n >= 64) {
    x1 = _mm_xor_si128(crc_fold(x1, k64),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)));
    x2 = _mm_xor_si128(crc_fold(x2, k64),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)));
    x3 = _mm_xor_si128(crc_fold(x3, k64),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)));
    x4 = _mm_xor_si128(crc_fold(x4, k64),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)));
    data += 64;
    n -= 64;
  }
  x2 = _mm_xor_si128(x2, crc_fold(x1, k16));
  x3 = _mm_xor_si128(x3, crc_fold(x2, k16));
  x4 = _mm_xor_si128(x4, crc_fold(x3, k16));
  __m128i x = x4;
  while (n >= 16) {
    x = _mm_xor_si128(crc_fold(x, k16),
                      _mm_loadu_si128(reinterpret_cast<const __m128i*>(data)));
    data += 16;
    n -= 16;
  }
  // Finish by streaming the 16 folded state bytes (then the tail) through
  // the bytewise table — sidesteps the Barrett-reduction constants entirely.
  alignas(16) std::uint8_t state[16];
  _mm_store_si128(reinterpret_cast<__m128i*>(state), x);
  crc = crc32_absorb_scalar(0, state, 16);
  return crc32_absorb_scalar(crc, data, n);
}

// 4-lane 64-bit multiply by the FNV prime (AVX2 has no mullo_epi64):
// a·p = lo(a)·lo(p) + ((lo(a)·hi(p) + hi(a)·lo(p)) << 32)  (mod 2^64).
ADS_TARGET_AVX2
inline __m256i fnv_mul64(__m256i a) {
  const __m256i prime_lo = _mm256_set1_epi64x(0x1B3);
  const __m256i prime_hi = _mm256_set1_epi64x(0x100);
  const __m256i t1 = _mm256_mul_epu32(a, prime_lo);
  const __m256i t2 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), prime_lo);
  const __m256i t3 = _mm256_mul_epu32(a, prime_hi);
  return _mm256_add_epi64(t1, _mm256_slli_epi64(_mm256_add_epi64(t2, t3), 32));
}

ADS_TARGET_AVX2
void fnv4_absorb_avx2(std::uint64_t lanes[4], const std::uint8_t* rgba,
                      std::size_t n_pixels) {
  const std::size_t n4 = n_pixels & ~std::size_t{3};
  if (n4 > 0) {
    __m256i l = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
    // Byte-swap each 32-bit word: memory order r,g,b,a → r<<24|g<<16|b<<8|a.
    const __m128i bswap =
        _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
    for (std::size_t i = 0; i < n4; i += 4) {
      __m128i px =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rgba + i * 4));
      px = _mm_shuffle_epi8(px, bswap);
      l = _mm256_xor_si256(l, _mm256_cvtepu32_epi64(px));
      l = fnv_mul64(l);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), l);
  }
  if (n4 < n_pixels)
    fnv4_absorb_scalar(lanes, rgba + n4 * 4, n_pixels - n4);
}

// Widen 32 unsigned bytes to two 16-lane u16 vectors (in-lane unpack; the
// matching packus in png_pack16 restores the original byte order).
ADS_TARGET_AVX2
inline void png_widen(__m256i v, __m256i& lo, __m256i& hi) {
  const __m256i zero = _mm256_setzero_si256();
  lo = _mm256_unpacklo_epi8(v, zero);
  hi = _mm256_unpackhi_epi8(v, zero);
}

ADS_TARGET_AVX2
inline __m256i png_pack16(__m256i lo, __m256i hi) {
  return _mm256_packus_epi16(lo, hi);
}

// Paeth predictor over 16-bit lanes holding widened bytes: |b-c|, |a-c| and
// |a+b-2c| are the classic pa/pb/pc; the nested blends mirror the scalar
// tie-break order (a, then b, then c).
ADS_TARGET_AVX2
inline __m256i png_paeth16(__m256i a, __m256i b, __m256i c) {
  const __m256i pa = _mm256_abs_epi16(_mm256_sub_epi16(b, c));
  const __m256i pb = _mm256_abs_epi16(_mm256_sub_epi16(a, c));
  const __m256i pc = _mm256_abs_epi16(
      _mm256_sub_epi16(_mm256_add_epi16(a, b), _mm256_add_epi16(c, c)));
  const __m256i a_gt_b = _mm256_cmpgt_epi16(pa, pb);
  const __m256i a_gt_c = _mm256_cmpgt_epi16(pa, pc);
  const __m256i b_gt_c = _mm256_cmpgt_epi16(pb, pc);
  const __m256i take_a = _mm256_andnot_si256(_mm256_or_si256(a_gt_b, a_gt_c),
                                             _mm256_set1_epi8(-1));
  const __m256i bc = _mm256_blendv_epi8(b, c, b_gt_c);
  return _mm256_blendv_epi8(bc, a, take_a);
}

ADS_TARGET_AVX2
void png_filter_row_avx2(int type, const std::uint8_t* row,
                         const std::uint8_t* prior, std::size_t n, std::size_t bpp,
                         std::uint8_t* out) {
  if (type == 0 || (type == 2 && !prior)) {
    std::memcpy(out, row, n);
    return;
  }
  // Head bytes where a/c are zero follow the scalar path; the vector loop
  // covers i ∈ [bpp, n) (or [0, n) for type 2) in 32-byte strides.
  const std::size_t start = type == 2 ? 0 : bpp;
  png_filter_range(type, row, prior, 0, std::min(start, n), bpp, out);
  std::size_t i = start;
  const __m256i zero = _mm256_setzero_si256();
  while (i + 32 <= n) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    __m256i v;
    switch (type) {
      case 1: {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i - bpp));
        v = _mm256_sub_epi8(x, a);
        break;
      }
      case 2: {
        const __m256i b =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prior + i));
        v = _mm256_sub_epi8(x, b);
        break;
      }
      case 3: {
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i - bpp));
        const __m256i b =
            prior ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prior + i))
                  : zero;
        __m256i alo;
        __m256i ahi;
        __m256i blo;
        __m256i bhi;
        png_widen(a, alo, ahi);
        png_widen(b, blo, bhi);
        const __m256i mlo = _mm256_srli_epi16(_mm256_add_epi16(alo, blo), 1);
        const __m256i mhi = _mm256_srli_epi16(_mm256_add_epi16(ahi, bhi), 1);
        v = _mm256_sub_epi8(x, png_pack16(mlo, mhi));
        break;
      }
      default: {  // type 4: Paeth predictor in 16-bit lanes
        const __m256i a =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i - bpp));
        const __m256i b =
            prior ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prior + i))
                  : zero;
        const __m256i c =
            prior
                ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prior + i - bpp))
                : zero;
        const __m256i pred_lo =
            png_paeth16(_mm256_unpacklo_epi8(a, zero), _mm256_unpacklo_epi8(b, zero),
                        _mm256_unpacklo_epi8(c, zero));
        const __m256i pred_hi =
            png_paeth16(_mm256_unpackhi_epi8(a, zero), _mm256_unpackhi_epi8(b, zero),
                        _mm256_unpackhi_epi8(c, zero));
        v = _mm256_sub_epi8(x, png_pack16(pred_lo, pred_hi));
        break;
      }
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    i += 32;
  }
  if (i < n) png_filter_range(type, row, prior, i, n, bpp, out);
}

ADS_TARGET_AVX2
std::uint64_t png_abs_sum_avx2(const std::uint8_t* data, std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(_mm256_abs_epi8(d), zero));
  }
  alignas(32) std::uint64_t l[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(l), acc);
  return l[0] + l[1] + l[2] + l[3] + png_abs_sum_scalar(data + i, n - i);
}

ADS_TARGET_AVX2
void fdct8x8_avx2(const double in[64], double out[64], const double basis[64],
                  const double basis_t[64]) {
  // Lanes are the four outputs u (or u+4); each lane accumulates mul/add in
  // the same x (then y) order as the scalar loop, and the avx2-only target
  // cannot fuse the separate mul and add, so results are bit-identical.
  double tmp[64];
  for (int y = 0; y < 8; ++y) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int x = 0; x < 8; ++x) {
      const __m256d s = _mm256_set1_pd(in[y * 8 + x]);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(s, _mm256_loadu_pd(basis_t + x * 8)));
      acc1 =
          _mm256_add_pd(acc1, _mm256_mul_pd(s, _mm256_loadu_pd(basis_t + x * 8 + 4)));
    }
    _mm256_storeu_pd(tmp + y * 8, acc0);
    _mm256_storeu_pd(tmp + y * 8 + 4, acc1);
  }
  for (int v = 0; v < 8; ++v) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int y = 0; y < 8; ++y) {
      const __m256d s = _mm256_set1_pd(basis[v * 8 + y]);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(s, _mm256_loadu_pd(tmp + y * 8)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(s, _mm256_loadu_pd(tmp + y * 8 + 4)));
    }
    _mm256_storeu_pd(out + v * 8, acc0);
    _mm256_storeu_pd(out + v * 8 + 4, acc1);
  }
}

// SSE2 (x86-64 baseline) box halve: 2 output pixels per iteration. The
// sums fit u16 (max 4·255 + 2), the +2 / >>2 rounding matches the scalar
// expression lane for lane, and odd-width tails fall through to the shared
// scalar range so edge replication is identical.
void box_halve_row_sse(const std::uint8_t* r0, const std::uint8_t* r1,
                       std::size_t src_w_px, std::uint8_t* out) {
  const std::size_t out_w = (src_w_px + 1) / 2;
  const __m128i zero = _mm_setzero_si128();
  const __m128i two = _mm_set1_epi16(2);
  std::size_t j = 0;
  for (; 2 * j + 4 <= src_w_px; j += 2) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + 2 * j * 4));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + 2 * j * 4));
    // Row sums widened to u16: lo = source px0,px1; hi = px2,px3.
    const __m128i lo =
        _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(b, zero));
    const __m128i hi =
        _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(b, zero));
    // Horizontal pair add folds px1 onto px0 (px3 onto px2) per channel.
    const __m128i s0 = _mm_add_epi16(lo, _mm_srli_si128(lo, 8));
    const __m128i s1 = _mm_add_epi16(hi, _mm_srli_si128(hi, 8));
    __m128i s = _mm_unpacklo_epi64(s0, s1);
    s = _mm_srli_epi16(_mm_add_epi16(s, two), 2);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + j * 4),
                     _mm_packus_epi16(s, s));
  }
  box_halve_range(r0, r1, src_w_px, j, out_w, out);
}

ADS_TARGET_AVX2
void box_halve_row_avx2(const std::uint8_t* r0, const std::uint8_t* r1,
                        std::size_t src_w_px, std::uint8_t* out) {
  const std::size_t out_w = (src_w_px + 1) / 2;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i two = _mm256_set1_epi16(2);
  std::size_t j = 0;
  for (; 2 * j + 8 <= src_w_px; j += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + 2 * j * 4));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + 2 * j * 4));
    // Same shape as the SSE kernel, applied per 128-bit lane: lane 0 holds
    // source px0..3 → output px0,px1; lane 1 px4..7 → output px2,px3.
    const __m256i lo = _mm256_add_epi16(_mm256_unpacklo_epi8(a, zero),
                                        _mm256_unpacklo_epi8(b, zero));
    const __m256i hi = _mm256_add_epi16(_mm256_unpackhi_epi8(a, zero),
                                        _mm256_unpackhi_epi8(b, zero));
    const __m256i s0 = _mm256_add_epi16(lo, _mm256_srli_si256(lo, 8));
    const __m256i s1 = _mm256_add_epi16(hi, _mm256_srli_si256(hi, 8));
    __m256i s = _mm256_unpacklo_epi64(s0, s1);
    s = _mm256_srli_epi16(_mm256_add_epi16(s, two), 2);
    const __m256i packed = _mm256_packus_epi16(s, s);
    // Gather each lane's low quadword (output px0,px1 | px2,px3) into the
    // low 128 bits and store 4 output pixels at once.
    const __m256i gathered = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j * 4),
                     _mm256_castsi256_si128(gathered));
  }
  box_halve_range(r0, r1, src_w_px, j, out_w, out);
}

ADS_TARGET_AVX2
void dct_quantise_avx2(const double freq[64], const int q[64], const int zigzag[64],
                       int out[64]) {
  // Elementwise IEEE divisions in natural order (order is irrelevant for
  // per-element results); the zigzag gather + lround stay scalar.
  alignas(32) double t[64];
  for (int j = 0; j < 64; j += 4) {
    const __m256d fq = _mm256_loadu_pd(freq + j);
    const __m256d dq =
        _mm256_cvtepi32_pd(_mm_loadu_si128(reinterpret_cast<const __m128i*>(q + j)));
    _mm256_store_pd(t + j, _mm256_div_pd(fq, dq));
  }
  for (int i = 0; i < 64; ++i) {
    out[i] =
        std::clamp(static_cast<int>(std::lround(t[zigzag[i]])), -32768, 32767);
  }
}

}  // namespace

#endif  // ADS_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

namespace {

Level detect_level() {
#if ADS_SIMD_X86
  Level detected = Level::kScalar;
  if (__builtin_cpu_supports("avx2"))
    detected = Level::kAvx2;
  else if (__builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("pclmul"))
    detected = Level::kSse42;
  if (const char* env = std::getenv("ADS_SIMD")) {
    const std::string_view want(env);
    Level cap = detected;
    if (want == "scalar" || want == "off")
      cap = Level::kScalar;
    else if (want == "sse42")
      cap = Level::kSse42;
    else if (want == "avx2")
      cap = Level::kAvx2;
    if (static_cast<int>(cap) < static_cast<int>(detected)) detected = cap;
  }
  return detected;
#else
  return Level::kScalar;
#endif
}

/// Function-pointer table bound once, on first use, from the active level.
struct Kernels {
  void (*adler)(std::uint32_t&, std::uint32_t&, const std::uint8_t*, std::size_t) =
      &adler32_absorb_scalar;
  std::uint32_t (*crc)(std::uint32_t, const std::uint8_t*, std::size_t) =
      &crc32_absorb_scalar;
  void (*fnv4)(std::uint64_t[4], const std::uint8_t*, std::size_t) =
      &fnv4_absorb_scalar;
  void (*filter)(int, const std::uint8_t*, const std::uint8_t*, std::size_t,
                 std::size_t, std::uint8_t*) = &png_filter_row_scalar;
  std::uint64_t (*abs_sum)(const std::uint8_t*, std::size_t) = &png_abs_sum_scalar;
  void (*fdct)(const double[64], double[64], const double[64], const double[64]) =
      &fdct8x8_scalar;
  void (*quantise)(const double[64], const int[64], const int[64], int[64]) =
      &dct_quantise_scalar;
  void (*halve)(const std::uint8_t*, const std::uint8_t*, std::size_t,
                std::uint8_t*) = &box_halve_row_scalar;

  Kernels() {
#if ADS_SIMD_X86
    const Level l = active_level();
    if (l >= Level::kSse42) {
      crc = &crc32_absorb_clmul;
      halve = &box_halve_row_sse;
    }
    if (l >= Level::kAvx2) {
      adler = &adler32_absorb_avx2;
      fnv4 = &fnv4_absorb_avx2;
      filter = &png_filter_row_avx2;
      abs_sum = &png_abs_sum_avx2;
      fdct = &fdct8x8_avx2;
      quantise = &dct_quantise_avx2;
      halve = &box_halve_row_avx2;
    }
#endif
  }
};

const Kernels& kernels() {
  static const Kernels k;
  return k;
}

}  // namespace

Level active_level() {
  static const Level l = detect_level();
  return l;
}

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kSse42: return "sse42";
    case Level::kAvx2: return "avx2";
    case Level::kScalar: break;
  }
  return "scalar";
}

bool compiled_with_simd() { return ADS_SIMD_X86 != 0; }

void adler32_absorb(std::uint32_t& s1, std::uint32_t& s2, const std::uint8_t* data,
                    std::size_t n) {
  kernels().adler(s1, s2, data, n);
}

std::uint32_t crc32_absorb(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t n) {
  return kernels().crc(crc, data, n);
}

void fnv4_absorb(std::uint64_t lanes[4], const std::uint8_t* rgba,
                 std::size_t n_pixels) {
  kernels().fnv4(lanes, rgba, n_pixels);
}

void png_filter_row(int type, const std::uint8_t* row, const std::uint8_t* prior,
                    std::size_t n, std::size_t bpp, std::uint8_t* out) {
  kernels().filter(type, row, prior, n, bpp, out);
}

std::uint64_t png_abs_sum(const std::uint8_t* data, std::size_t n) {
  return kernels().abs_sum(data, n);
}

void fdct8x8(const double in[64], double out[64], const double basis[64],
             const double basis_t[64]) {
  kernels().fdct(in, out, basis, basis_t);
}

void dct_quantise(const double freq[64], const int q[64], const int zigzag[64],
                  int out[64]) {
  kernels().quantise(freq, q, zigzag, out);
}

void box_halve_row(const std::uint8_t* r0, const std::uint8_t* r1,
                   std::size_t src_w_px, std::uint8_t* out) {
  kernels().halve(r0, r1, src_w_px, out);
}

void box_halve_row_at(Level level, const std::uint8_t* r0, const std::uint8_t* r1,
                      std::size_t src_w_px, std::uint8_t* out) {
  if (static_cast<int>(level) > static_cast<int>(active_level()))
    level = active_level();
#if ADS_SIMD_X86
  switch (level) {
    case Level::kAvx2: box_halve_row_avx2(r0, r1, src_w_px, out); return;
    case Level::kSse42: box_halve_row_sse(r0, r1, src_w_px, out); return;
    case Level::kScalar: break;
  }
#else
  (void)level;
#endif
  box_halve_row_scalar(r0, r1, src_w_px, out);
}

}  // namespace ads::simd
