// E15 — recovery latency per fault class under the ads::chaos harness.
//
// One participant streams a terminal workload while a single scripted fault
// episode hits its link (blackout, Gilbert–Elliott burst, bandwidth
// collapse, TCP stall, or a hard drop + reconnect). From the instant the
// fault clears, the replica is polled once per capture tick; recovery
// latency is the time until the first pixel-exact match with the AH frame.
// Counters expose the repair mechanics behind each class: NACKs, PLIs,
// watchdog refreshes, escalations, retransmissions.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace ads;
using chaos::FaultSchedule;

constexpr SimTime kTick = sim_ms(100);
constexpr SimTime kFaultStart = sim_sec(1);
constexpr SimTime kRecoveryTimeout = sim_sec(12);

struct RecoveryResult {
  SimTime recovery_us = 0;  ///< fault-clear -> first pixel-exact replica
  bool converged = false;
  Participant::Stats participant;
  std::uint64_t retransmissions = 0;
};

/// Poll the replica against the AH frame every tick from `from_us` until it
/// matches; report the latency relative to `from_us`.
RecoveryResult run_case(const char* fault_class, std::uint64_t seed) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = kTick;
  SharingSession session(host_opts);
  AppHost& host = session.host();
  const WindowId term = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(term, std::make_unique<TerminalApp>(256, 192, 5));

  const bool tcp = std::string(fault_class) == "stall" ||
                   std::string(fault_class) == "drop";
  ParticipantOptions popts;
  popts.starvation_timeout_us = sim_ms(800);
  SharingSession::Connection* conn = nullptr;
  if (tcp) {
    TcpLinkConfig link;
    link.down.bandwidth_bps = 20'000'000;
    link.down.send_buffer_bytes = 256 * 1024;
    conn = &session.add_tcp_participant(popts, link);
  } else {
    UdpLinkConfig link;
    link.down.delay_us = 2000;
    link.down.bandwidth_bps = 50'000'000;
    link.up.delay_us = 2000;
    conn = &session.add_udp_participant(popts, link);
    conn->participant->join();
  }

  FaultSchedule faults(session.loop(), seed, &session.telemetry());
  const std::string cls = fault_class;
  SimTime clear_at = 0;
  if (cls == "blackout") {
    faults.blackout(*conn->down_udp, kFaultStart, sim_ms(900));
    clear_at = faults.all_clear_at();
  } else if (cls == "burst") {
    faults.burst_loss(*conn->down_udp, kFaultStart, sim_ms(1500));
    clear_at = faults.all_clear_at();
  } else if (cls == "collapse") {
    faults.bandwidth_collapse(*conn->down_udp, kFaultStart, sim_ms(1500),
                              /*collapsed=*/300'000, /*restore=*/50'000'000);
    clear_at = faults.all_clear_at();
  } else if (cls == "stall") {
    faults.stall(*conn->down_tcp, kFaultStart, sim_ms(1500));
    clear_at = faults.all_clear_at();
  } else {  // drop: cleared out of band by the session-level reconnect
    faults.drop(*conn->down_tcp, kFaultStart);
    clear_at = kFaultStart + sim_ms(500);
    session.loop().at(clear_at, [&session, conn] {
      session.drop_tcp(*conn);  // take the uplink down with it
      TcpLinkConfig fresh;
      fresh.down.bandwidth_bps = 20'000'000;
      fresh.down.send_buffer_bytes = 256 * 1024;
      session.reconnect_tcp(*conn, fresh);
    });
  }

  // Recovery probe: once per tick (just after the tick's updates land),
  // record the first pixel-exact match after the fault cleared.
  RecoveryResult out;
  for (SimTime t = clear_at + kTick; t <= clear_at + kRecoveryTimeout; t += kTick) {
    const SimTime probe = ((t / kTick) * kTick) + kTick / 2;
    session.loop().at(probe, [&, probe] {
      if (out.converged) return;
      const Image& truth = host.capturer().last_frame();
      const Image replica = conn->participant->screen().crop(
          {0, 0, truth.width(), truth.height()});
      if (diff_pixel_count(truth, replica) == 0) {
        out.converged = true;
        out.recovery_us = probe - clear_at;
      }
    });
  }

  host.start();
  session.loop().run_until(clear_at + kRecoveryTimeout + kTick);
  host.stop();
  session.run_for(sim_sec(1));

  out.participant = conn->participant->stats();
  out.retransmissions = host.stats().retransmissions_sent;
  bench::json_report("chaos").set_metrics_json(
      telemetry::to_json(session.telemetry().snapshot()));
  return out;
}

void run_bench(benchmark::State& state, const char* fault_class) {
  const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
  RecoveryResult r;
  for (auto _ : state) r = run_case(fault_class, seed);
  state.counters["recovery_ms"] =
      r.converged ? static_cast<double>(r.recovery_us) / 1000.0 : -1.0;
  state.counters["converged"] = r.converged ? 1 : 0;
  state.counters["nacks"] = static_cast<double>(r.participant.nacks_sent);
  state.counters["plis"] = static_cast<double>(r.participant.plis_sent);
  state.counters["starvation_plis"] =
      static_cast<double>(r.participant.starvation_plis);
  state.counters["nack_escalations"] =
      static_cast<double>(r.participant.nack_escalations);
  state.counters["retransmissions"] = static_cast<double>(r.retransmissions);
  bench::record_counters("chaos",
                         std::string("E15/recovery/") + fault_class + "/" +
                             std::to_string(state.range(0)),
                         state.counters);
}

void blackout(benchmark::State& state) { run_bench(state, "blackout"); }
void burst(benchmark::State& state) { run_bench(state, "burst"); }
void collapse(benchmark::State& state) { run_bench(state, "collapse"); }
void stall(benchmark::State& state) { run_bench(state, "stall"); }
void drop(benchmark::State& state) { run_bench(state, "drop"); }

BENCHMARK(blackout)->Name("E15/recovery/blackout")->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(burst)->Name("E15/recovery/burst")->Arg(7)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(collapse)->Name("E15/recovery/collapse")->Arg(7)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(stall)->Name("E15/recovery/stall")->Arg(7)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(drop)->Name("E15/recovery/drop")->Arg(7)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
