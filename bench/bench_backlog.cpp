// E3 — §7 TCP backlog policy.
//
// Claim under test: "Application hosts shouldn't blindly send every screen
// update ... they should monitor the state of their TCP transmission
// buffers ... and only send the most recent screen data when there is no
// backlog. This will prevent screen latency for rapidly-changing images."
//
// A rapidly-changing video window streams to one TCP participant across a
// bandwidth sweep. Policy "naive" sends every frame; policy "backlog"
// skips a participant's frame while its send buffer holds > 4 KB. The
// measured output is the participant-side frame age (now - RTP capture
// timestamp): median and p95, plus frames skipped.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

struct AgeStats {
  double median_ms = 0;
  double p95_ms = 0;
  double max_ms = 0;
  std::uint64_t skipped = 0;
  std::uint64_t delivered = 0;
};

AgeStats run_pipeline(std::uint64_t bandwidth_bps, std::size_t backlog_limit) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.codec = ContentPt::kPng;
  host_opts.tcp_backlog_limit = backlog_limit;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));

  TcpLinkConfig link;
  link.down.bandwidth_bps = bandwidth_bps;
  link.down.delay_us = 30'000;
  link.down.send_buffer_bytes = 512 * 1024;
  auto& conn = session.add_tcp_participant({}, link);

  host.start();
  session.run_for(sim_sec(10));
  host.stop();
  session.run_for(sim_sec(2));

  std::vector<double> ages_ms;
  for (const auto& d : conn.participant->drain_deliveries()) {
    const SimTime captured_us = host.remoting_timestamp_to_us(d.rtp_timestamp);
    if (d.arrived_us >= captured_us) {
      ages_ms.push_back(static_cast<double>(d.arrived_us - captured_us) / 1000.0);
    }
  }
  AgeStats out;
  out.delivered = ages_ms.size();
  out.skipped = host.stats().frames_skipped_backlog;
  out.median_ms = percentile(ages_ms, 0.5);
  out.p95_ms = percentile(ages_ms, 0.95);
  out.max_ms = percentile(ages_ms, 1.0);
  return out;
}

void run_bench(benchmark::State& state, std::size_t backlog_limit) {
  const std::uint64_t bw = static_cast<std::uint64_t>(state.range(0)) * 1'000'000ull;
  AgeStats stats;
  for (auto _ : state) stats = run_pipeline(bw, backlog_limit);
  state.counters["age_median_ms"] = stats.median_ms;
  state.counters["age_p95_ms"] = stats.p95_ms;
  state.counters["age_max_ms"] = stats.max_ms;
  state.counters["frames_skipped"] = static_cast<double>(stats.skipped);
  state.counters["updates_delivered"] = static_cast<double>(stats.delivered);
  record_counters("backlog",
                  std::string("E3/backlog/") +
                      (backlog_limit == 0 ? "naive_send_all"
                                          : "skip_when_backlogged") +
                      "/" + std::to_string(state.range(0)) + "mbps",
                  state.counters);
}

void naive(benchmark::State& state) { run_bench(state, 0); }
void backlog_aware(benchmark::State& state) { run_bench(state, 4096); }

// Bandwidth sweep in Mbit/s. The video stream needs roughly 4-6 Mbit/s as
// PNG, so 1-4 Mbit/s is the congested regime where §7 matters.
BENCHMARK(naive)
    ->Name("E3/backlog/naive_send_all")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(backlog_aware)
    ->Name("E3/backlog/skip_when_backlogged")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
