// E11 — §4.3 UDP rate control ablation.
//
// "The AH controls the transmission rate for participants using UDP,
// because UDP itself does not provide flow and congestion control."
//
// A video window streams over a 2 Mbit/s UDP path with a 32 KB interface
// queue. The AH's token-bucket target sweeps from far-below to far-above
// the link rate; a 0-target row is the uncontrolled baseline. Counters:
// offered rate, queue drops (what uncontrolled sending costs), recovery
// traffic (PLIs), and the participant-side median update age (staleness).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

struct RunStats {
  double offered_bps = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t frames_skipped = 0;
  std::uint64_t plis = 0;
  double median_age_ms = 0;
};

RunStats run_pipeline(std::uint64_t rate_bps) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.udp_rate_bps = rate_bps;
  host_opts.udp_burst_bytes = 16 * 1024;
  SharingSession session(host_opts);
  AppHost& host = session.host();
  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.bandwidth_bps = 2'000'000;
  link.down.queue_bytes = 32 * 1024;
  link.up.delay_us = 10'000;
  auto& conn = session.add_udp_participant({}, link);
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(8));

  RunStats out;
  out.offered_bps = static_cast<double>(host.stats().bytes_sent) * 8.0 / 8.0;
  out.queue_dropped = conn.down_udp->stats().queue_dropped;
  out.frames_skipped = host.stats().frames_skipped_rate;
  out.plis = conn.participant->stats().plis_sent;

  std::vector<double> ages_ms;
  for (const auto& d : conn.participant->drain_deliveries()) {
    const SimTime captured_us = host.remoting_timestamp_to_us(d.rtp_timestamp);
    if (d.arrived_us >= captured_us) {
      ages_ms.push_back(static_cast<double>(d.arrived_us - captured_us) / 1000.0);
    }
  }
  out.median_age_ms = ads::bench::percentile(ages_ms, 0.5);
  return out;
}

void rate_control(benchmark::State& state) {
  const std::uint64_t rate_bps =
      static_cast<std::uint64_t>(state.range(0)) * 100'000ull;
  RunStats stats;
  for (auto _ : state) stats = run_pipeline(rate_bps);
  state.counters["target_kbps"] = static_cast<double>(rate_bps) / 1000.0;
  state.counters["offered_kbps"] = stats.offered_bps / 1000.0;
  state.counters["queue_dropped"] = static_cast<double>(stats.queue_dropped);
  state.counters["frames_skipped"] = static_cast<double>(stats.frames_skipped);
  state.counters["plis"] = static_cast<double>(stats.plis);
  state.counters["update_age_median_ms"] = stats.median_age_ms;
  ads::bench::record_counters(
      "ratecontrol",
      "E11/udp_rate_control/" + std::to_string(state.range(0) * 100) + "kbps",
      state.counters);
}

// Arg = target rate in 100 kbit/s units; 0 = uncontrolled baseline.
BENCHMARK(rate_control)
    ->Name("E11/udp_rate_control")
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// ---------------------------------------------------------------------------
// E16 — static vs adaptive rate control under changing links.
//
// The E11 sweep shows a well-chosen static token bucket beats uncontrolled
// sending — but any static choice is only right for one link. E16 ablates
// the ads::rate closed loop against static targets across three link
// profiles: a permanent step-down, a collapse-and-restore, and a
// Gilbert–Elliott burst-loss episode. Counters: stall time (longest gap in
// the participant's delivery stream — what a viewer perceives as a frozen
// screen), median update age, queue drops, adaptation events, and final
// replica PSNR.

struct E16Stats {
  double stall_ms = 0;        ///< max inter-delivery gap (incl. run tail)
  double median_age_ms = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t decreases = 0;
  std::uint64_t increases = 0;
  double psnr_db = 0;
};

constexpr SimTime kE16Horizon = sim_sec(12);

E16Stats run_e16(int profile, std::uint64_t static_rate_bps, bool adaptive) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = sim_ms(100);
  if (adaptive) {
    host_opts.adaptation.enabled = true;
    host_opts.adaptation.min_rate_bps = 200'000;
    host_opts.adaptation.max_rate_bps = 8'000'000;
    host_opts.adaptation.initial_rate_bps = 4'000'000;
    host_opts.adaptation.additive_increase_bps = 500'000;
    // Converge fast: halve on congestion (classic AIMD) and let the tighter
    // RR cadence below deliver the signal twice a second.
    host_opts.adaptation.multiplicative_decrease = 0.5;
    host_opts.adaptation.decrease_holdoff_us = sim_ms(400);
  } else {
    host_opts.udp_rate_bps = static_rate_bps;
    host_opts.udp_burst_bytes = 16 * 1024;
  }
  SharingSession session(host_opts);
  AppHost& host = session.host();
  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.bandwidth_bps = 8'000'000;
  // Shallow interface queue: tail-drop loss surfaces inside one RR interval
  // instead of hiding behind seconds of bufferbloat.
  link.down.queue_bytes = 32 * 1024;
  link.up.delay_us = 10'000;
  ParticipantOptions part_opts;
  part_opts.rr_interval_us = sim_ms(500);  // same feedback cadence for all rows
  auto& conn = session.add_udp_participant(part_opts, link);
  conn.participant->join();

  chaos::FaultSchedule faults(session.loop(), 16, &session.telemetry());
  switch (profile) {
    case 0:  // permanent step-down to 1 Mbit/s at t = 2 s
      faults.bandwidth_collapse(*conn.down_udp, sim_sec(2),
                                kE16Horizon - sim_sec(2), 1'000'000, 1'000'000);
      break;
    case 1:  // collapse to 400 kbit/s for 3 s, then full restore
      faults.bandwidth_collapse(*conn.down_udp, sim_sec(2), sim_sec(3),
                                400'000, 8'000'000);
      break;
    case 2:  // Gilbert–Elliott burst-loss episode
      faults.burst_loss(*conn.down_udp, sim_sec(2), sim_sec(3), {});
      break;
  }

  host.start();
  session.loop().run_until(kE16Horizon);
  host.stop();
  session.run_for(sim_ms(500));

  E16Stats out;
  out.queue_dropped = conn.down_udp->stats().queue_dropped;
  const auto snap = session.telemetry().snapshot();
  out.decreases = snap.counter("rate.decreases");
  out.increases = snap.counter("rate.increases");

  std::vector<double> ages_ms;
  SimTime prev_arrival = 0;
  double max_gap_us = 0;
  for (const auto& d : conn.participant->drain_deliveries()) {
    const SimTime captured_us = host.remoting_timestamp_to_us(d.rtp_timestamp);
    if (d.arrived_us >= captured_us) {
      ages_ms.push_back(static_cast<double>(d.arrived_us - captured_us) / 1000.0);
    }
    max_gap_us = std::max(
        max_gap_us, static_cast<double>(d.arrived_us - prev_arrival));
    prev_arrival = d.arrived_us;
  }
  // The tail counts: a stream that dies mid-run stalls until the horizon.
  // (Arrivals can land past the horizon during the drain window — no tail
  // gap in that case.)
  if (prev_arrival < kE16Horizon) {
    max_gap_us =
        std::max(max_gap_us, static_cast<double>(kE16Horizon - prev_arrival));
  }
  out.stall_ms = max_gap_us / 1000.0;
  out.median_age_ms = ads::bench::percentile(ages_ms, 0.5);

  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  out.psnr_db = psnr(truth, replica);
  return out;
}

void rate_adaptation(benchmark::State& state) {
  const int profile = static_cast<int>(state.range(0));
  const std::uint64_t static_rate_bps =
      static_cast<std::uint64_t>(state.range(1)) * 100'000ull;
  const bool adaptive = state.range(1) == 0;
  E16Stats stats;
  for (auto _ : state) stats = run_e16(profile, static_rate_bps, adaptive);
  state.counters["adaptive"] = adaptive ? 1.0 : 0.0;
  state.counters["static_kbps"] = static_cast<double>(static_rate_bps) / 1000.0;
  state.counters["stall_ms"] = stats.stall_ms;
  state.counters["update_age_median_ms"] = stats.median_age_ms;
  state.counters["queue_dropped"] = static_cast<double>(stats.queue_dropped);
  state.counters["rate_decreases"] = static_cast<double>(stats.decreases);
  state.counters["rate_increases"] = static_cast<double>(stats.increases);
  state.counters["psnr_db"] = stats.psnr_db;
  static const char* kProfiles[] = {"stepdown", "collapse", "burstloss"};
  const std::string mode =
      adaptive ? "adaptive"
               : "static_" + std::to_string(static_rate_bps / 1000) + "kbps";
  ads::bench::record_counters(
      "ratecontrol",
      std::string("E16/") + kProfiles[profile] + "/" + mode, state.counters);
}

// Args = {link profile, static rate in 100 kbit/s units (0 = adaptive)}.
// Static rates bracket the step-down/collapse floors: 1, 4, and 8 Mbit/s.
BENCHMARK(rate_adaptation)
    ->Name("E16/static_vs_adaptive")
    ->Args({0, 0})
    ->Args({0, 10})
    ->Args({0, 40})
    ->Args({0, 80})
    ->Args({1, 0})
    ->Args({1, 10})
    ->Args({1, 40})
    ->Args({1, 80})
    ->Args({2, 0})
    ->Args({2, 10})
    ->Args({2, 40})
    ->Args({2, 80})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
