// E11 — §4.3 UDP rate control ablation.
//
// "The AH controls the transmission rate for participants using UDP,
// because UDP itself does not provide flow and congestion control."
//
// A video window streams over a 2 Mbit/s UDP path with a 32 KB interface
// queue. The AH's token-bucket target sweeps from far-below to far-above
// the link rate; a 0-target row is the uncontrolled baseline. Counters:
// offered rate, queue drops (what uncontrolled sending costs), recovery
// traffic (PLIs), and the participant-side median update age (staleness).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

struct RunStats {
  double offered_bps = 0;
  std::uint64_t queue_dropped = 0;
  std::uint64_t frames_skipped = 0;
  std::uint64_t plis = 0;
  double median_age_ms = 0;
};

RunStats run_pipeline(std::uint64_t rate_bps) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.udp_rate_bps = rate_bps;
  host_opts.udp_burst_bytes = 16 * 1024;
  SharingSession session(host_opts);
  AppHost& host = session.host();
  const WindowId movie = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(movie, std::make_unique<VideoApp>(256, 192, 7));

  UdpLinkConfig link;
  link.down.delay_us = 10'000;
  link.down.bandwidth_bps = 2'000'000;
  link.down.queue_bytes = 32 * 1024;
  link.up.delay_us = 10'000;
  auto& conn = session.add_udp_participant({}, link);
  conn.participant->join();
  host.start();
  session.run_for(sim_sec(8));

  RunStats out;
  out.offered_bps = static_cast<double>(host.stats().bytes_sent) * 8.0 / 8.0;
  out.queue_dropped = conn.down_udp->stats().queue_dropped;
  out.frames_skipped = host.stats().frames_skipped_rate;
  out.plis = conn.participant->stats().plis_sent;

  std::vector<double> ages_ms;
  for (const auto& d : conn.participant->drain_deliveries()) {
    const SimTime captured_us = host.remoting_timestamp_to_us(d.rtp_timestamp);
    if (d.arrived_us >= captured_us) {
      ages_ms.push_back(static_cast<double>(d.arrived_us - captured_us) / 1000.0);
    }
  }
  out.median_age_ms = ads::bench::percentile(ages_ms, 0.5);
  return out;
}

void rate_control(benchmark::State& state) {
  const std::uint64_t rate_bps =
      static_cast<std::uint64_t>(state.range(0)) * 100'000ull;
  RunStats stats;
  for (auto _ : state) stats = run_pipeline(rate_bps);
  state.counters["target_kbps"] = static_cast<double>(rate_bps) / 1000.0;
  state.counters["offered_kbps"] = stats.offered_bps / 1000.0;
  state.counters["queue_dropped"] = static_cast<double>(stats.queue_dropped);
  state.counters["frames_skipped"] = static_cast<double>(stats.frames_skipped);
  state.counters["plis"] = static_cast<double>(stats.plis);
  state.counters["update_age_median_ms"] = stats.median_age_ms;
  ads::bench::record_counters(
      "ratecontrol",
      "E11/udp_rate_control/" + std::to_string(state.range(0) * 100) + "kbps",
      state.counters);
}

// Arg = target rate in 100 kbit/s units; 0 = uncontrolled baseline.
BENCHMARK(rate_control)
    ->Name("E11/udp_rate_control")
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(15)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
