// E13s — SIMD hot-kernel microbenches (companion to E13's band-encode
// macro bench).
//
// Claims under test:
//  * the runtime-dispatched kernels (util/simd.hpp) beat their scalar
//    references on AVX2 hardware for the datapath's hot loops — by well
//    over an order of magnitude for the bulk byte-stream kernels
//    (Adler-32 / CRC-32 absorption, PNG filter selection) and by honest
//    but smaller margins for the arithmetic kernels (DCT forward+quantise
//    ~1.9x; 4-lane FNV tile hashing ~1.3x, bounded by AVX2's lack of a
//    64-bit lane multiply against an already ILP-saturated scalar loop);
//  * dispatch overhead is negligible (the dispatched call with scalar
//    forced via ADS_SIMD=scalar tracks the direct scalar reference).
//
// Each entry records ns for the scalar reference and the dispatched kernel
// plus their ratio; on machines without AVX2 (or with ADS_SIMD=OFF builds)
// the ratio honestly reports ~1x and the "level" counter says why.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/prng.hpp"
#include "util/simd.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.range(0, 255));
  return out;
}

/// Median-of-reps wall time of `fn` (which must consume its own inputs).
template <typename Fn>
double measure_ns(Fn&& fn, int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    samples.push_back(std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  return percentile(samples, 0.5);
}

/// Run one scalar-vs-dispatched pair and file the result under
/// `E13s/<kernel>`.
template <typename ScalarFn, typename SimdFn>
void run_pair(benchmark::State& state, const std::string& name, double work_bytes,
              ScalarFn&& scalar, SimdFn&& simd_fn) {
  double ns_scalar = 0;
  double ns_simd = 0;
  for (auto _ : state) {
    ns_scalar = measure_ns(scalar, 9);
    ns_simd = measure_ns(simd_fn, 9);
  }
  state.counters["ns_scalar"] = ns_scalar;
  state.counters["ns_simd"] = ns_simd;
  state.counters["speedup"] = ns_simd > 0 ? ns_scalar / ns_simd : 0.0;
  state.counters["gib_per_s_simd"] =
      ns_simd > 0 ? work_bytes / ns_simd * (1e9 / (1 << 30)) : 0.0;
  state.counters["level"] = static_cast<double>(simd::active_level());
  json_report("simd")
      .record(name, {{"ns_scalar", ns_scalar},
                     {"ns_simd", ns_simd},
                     {"speedup", state.counters["speedup"]},
                     {"gib_per_s_simd", state.counters["gib_per_s_simd"]},
                     {"level", state.counters["level"]}});
}

constexpr std::size_t kBulk = 256 * 1024;  // checksum working set
constexpr std::size_t kTilePixels = 128 * 128;
constexpr std::size_t kRowStride = 1280 * 4;  // one 1280-wide RGBA scanline

void bench_adler32(benchmark::State& state) {
  const auto buf = random_bytes(kBulk, 0xE13A);
  run_pair(
      state, "E13s/adler32", kBulk,
      [&] {
        std::uint32_t s1 = 1, s2 = 0;
        simd::adler32_absorb_scalar(s1, s2, buf.data(), buf.size());
        benchmark::DoNotOptimize(s1 + s2);
      },
      [&] {
        std::uint32_t s1 = 1, s2 = 0;
        simd::adler32_absorb(s1, s2, buf.data(), buf.size());
        benchmark::DoNotOptimize(s1 + s2);
      });
}

void bench_crc32(benchmark::State& state) {
  const auto buf = random_bytes(kBulk, 0xE13C);
  run_pair(
      state, "E13s/crc32", kBulk,
      [&] {
        auto crc = simd::crc32_absorb_scalar(0xFFFFFFFFu, buf.data(), buf.size());
        benchmark::DoNotOptimize(crc);
      },
      [&] {
        auto crc = simd::crc32_absorb(0xFFFFFFFFu, buf.data(), buf.size());
        benchmark::DoNotOptimize(crc);
      });
}

void bench_hash_tile(benchmark::State& state) {
  const auto buf = random_bytes(kTilePixels * 4, 0xE13F);
  run_pair(
      state, "E13s/hash_tile", static_cast<double>(buf.size()),
      [&] {
        std::uint64_t lanes[4] = {1, 2, 3, 4};
        simd::fnv4_absorb_scalar(lanes, buf.data(), kTilePixels);
        benchmark::DoNotOptimize(lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3]);
      },
      [&] {
        std::uint64_t lanes[4] = {1, 2, 3, 4};
        simd::fnv4_absorb(lanes, buf.data(), kTilePixels);
        benchmark::DoNotOptimize(lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3]);
      });
}

void bench_png_filter_select(benchmark::State& state) {
  // The adaptive-filter inner loop: try all 5 filters on a scanline, score
  // each with the abs-sum heuristic (same shape as png_encode_into).
  const auto raster = random_bytes(2 * kRowStride, 0xE139);
  const std::uint8_t* row = raster.data() + kRowStride;
  const std::uint8_t* prior = raster.data();
  std::vector<std::uint8_t> trial(kRowStride);
  run_pair(
      state, "E13s/png_filter_select", 5.0 * kRowStride,
      [&] {
        std::uint64_t best = ~0ull;
        for (int type = 0; type < 5; ++type) {
          simd::png_filter_row_scalar(type, row, prior, kRowStride, 4,
                                      trial.data());
          best = std::min(best,
                          simd::png_abs_sum_scalar(trial.data(), kRowStride));
        }
        benchmark::DoNotOptimize(best);
      },
      [&] {
        std::uint64_t best = ~0ull;
        for (int type = 0; type < 5; ++type) {
          simd::png_filter_row(type, row, prior, kRowStride, 4, trial.data());
          best = std::min(best, simd::png_abs_sum(trial.data(), kRowStride));
        }
        benchmark::DoNotOptimize(best);
      });
}

void bench_dct_block(benchmark::State& state) {
  // Forward DCT + quantise over a screenful of 8x8 blocks.
  constexpr int kBlocks = 1024;
  Prng rng(0xE13D);
  std::vector<double> blocks(kBlocks * 64);
  for (auto& v : blocks) v = static_cast<double>(rng.range(-12800, 12700)) / 100.0;
  double basis[64];
  double basis_t[64];
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      basis[u * 8 + x] =
          0.5 * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
      basis_t[x * 8 + u] = basis[u * 8 + x];
    }
  }
  int q[64];
  int zigzag[64];
  for (int i = 0; i < 64; ++i) {
    q[i] = 1 + (i * 7) % 97;
    zigzag[i] = i;
  }
  run_pair(
      state, "E13s/dct_block", kBlocks * 64.0 * sizeof(double),
      [&] {
        double freq[64];
        int quant[64];
        for (int b = 0; b < kBlocks; ++b) {
          simd::fdct8x8_scalar(&blocks[static_cast<std::size_t>(b) * 64], freq,
                               basis, basis_t);
          simd::dct_quantise_scalar(freq, q, zigzag, quant);
          benchmark::DoNotOptimize(quant[0]);
        }
      },
      [&] {
        double freq[64];
        int quant[64];
        for (int b = 0; b < kBlocks; ++b) {
          simd::fdct8x8(&blocks[static_cast<std::size_t>(b) * 64], freq, basis,
                        basis_t);
          simd::dct_quantise(freq, q, zigzag, quant);
          benchmark::DoNotOptimize(quant[0]);
        }
      });
}

void register_all() {
  benchmark::RegisterBenchmark("E13s/adler32", bench_adler32)->Iterations(3);
  benchmark::RegisterBenchmark("E13s/crc32", bench_crc32)->Iterations(3);
  benchmark::RegisterBenchmark("E13s/hash_tile", bench_hash_tile)->Iterations(3);
  benchmark::RegisterBenchmark("E13s/png_filter_select", bench_png_filter_select)
      ->Iterations(3);
  benchmark::RegisterBenchmark("E13s/dct_block", bench_dct_block)->Iterations(3);
}

const int registered = (register_all(), 0);

}  // namespace
