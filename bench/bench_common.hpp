// Shared helpers for the benchmark suite: canonical workload frames and
// small statistics utilities. Every bench uses fixed seeds so results are
// reproducible run to run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capture/apps.hpp"
#include "image/image.hpp"

namespace ads::bench {

/// Accumulates named counter sets and writes them as `BENCH_<bench>.json` in
/// the working directory when the process exits, so every bench binary emits
/// machine-readable results with one schema:
///   {"bench": "<bench>", "entries": [{"name": ..., "counters": {...}}]}
/// Entries are deduplicated by name (last record wins — benchmarks may rerun
/// a case for timing stability) and serialised in sorted order so diffs
/// between runs are meaningful.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}
  ~JsonReport() { write(); }

  void record(const std::string& entry, std::map<std::string, double> counters) {
    entries_[entry] = std::move(counters);
  }

  /// Attach a telemetry snapshot (ads::telemetry::to_json output, or any
  /// pre-serialised JSON value) to the report; it lands verbatim as a final
  /// "metrics" member, so one BENCH_*.json carries both the bench's own
  /// counters and the session-wide metrics behind them.
  void set_metrics_json(std::string json) { metrics_json_ = std::move(json); }

 private:
  void write() const {
    std::ofstream out("BENCH_" + bench_ + ".json");
    if (!out) return;
    out << "{\"bench\": \"" << bench_ << "\", \"entries\": [";
    bool first_entry = true;
    for (const auto& [name, counters] : entries_) {
      if (!first_entry) out << ", ";
      first_entry = false;
      out << "{\"name\": \"" << name << "\", \"counters\": {";
      bool first_counter = true;
      for (const auto& [key, value] : counters) {
        if (!first_counter) out << ", ";
        first_counter = false;
        // JSON has no inf/nan literals; clamp to 0 (matches the "0 =
        // lossless" PSNR convention used by the codec bench).
        out << "\"" << key << "\": " << (std::isfinite(value) ? value : 0.0);
      }
      out << "}}";
    }
    out << "]";
    if (!metrics_json_.empty()) out << ", \"metrics\": " << metrics_json_;
    out << "}\n";
  }

  std::string bench_;
  std::map<std::string, std::map<std::string, double>> entries_;
  std::string metrics_json_;
};

/// The process-wide report for this bench binary. First call fixes the name.
inline JsonReport& json_report(const std::string& bench) {
  static JsonReport report(bench);
  return report;
}

/// Mirror a bench case's google-benchmark user counters into the report
/// under `entry`. Works with benchmark::UserCounters (whose Counter values
/// convert to double) without this header depending on benchmark.h.
template <typename CounterMap>
void record_counters(const std::string& bench, const std::string& entry,
                     const CounterMap& counters) {
  std::map<std::string, double> out;
  for (const auto& [key, value] : counters) {
    out[key] = static_cast<double>(value);
  }
  json_report(bench).record(entry, std::move(out));
}

/// A frame of the named workload after `warmup_ticks` ticks.
inline Image workload_frame(std::string_view name, std::int64_t w, std::int64_t h,
                            int warmup_ticks = 12, std::uint64_t seed = 99) {
  auto app = make_app(name, w, h, seed);
  for (int t = 0; t < warmup_ticks; ++t) app->tick(static_cast<std::uint64_t>(t));
  return app->content();
}

/// Consecutive frames (before/after pairs) of a workload.
inline std::vector<Image> workload_frames(std::string_view name, std::int64_t w,
                                          std::int64_t h, int count,
                                          std::uint64_t seed = 99) {
  auto app = make_app(name, w, h, seed);
  std::vector<Image> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    app->tick(static_cast<std::uint64_t>(t));
    frames.push_back(app->content());
  }
  return frames;
}

inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ads::bench
