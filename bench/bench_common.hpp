// Shared helpers for the benchmark suite: canonical workload frames and
// small statistics utilities. Every bench uses fixed seeds so results are
// reproducible run to run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "capture/apps.hpp"
#include "image/image.hpp"

namespace ads::bench {

/// A frame of the named workload after `warmup_ticks` ticks.
inline Image workload_frame(std::string_view name, std::int64_t w, std::int64_t h,
                            int warmup_ticks = 12, std::uint64_t seed = 99) {
  auto app = make_app(name, w, h, seed);
  for (int t = 0; t < warmup_ticks; ++t) app->tick(static_cast<std::uint64_t>(t));
  return app->content();
}

/// Consecutive frames (before/after pairs) of a workload.
inline std::vector<Image> workload_frames(std::string_view name, std::int64_t w,
                                          std::int64_t h, int count,
                                          std::uint64_t seed = 99) {
  auto app = make_app(name, w, h, seed);
  std::vector<Image> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) {
    app->tick(static_cast<std::uint64_t>(t));
    frames.push_back(app->content());
  }
  return frames;
}

inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ads::bench
