// E2 — MoveRectangle scroll savings (draft §5.2.3).
//
// Claim under test: "MoveRectangle instructs the participant to move a
// region from one place to another, which is efficient for some drawing
// operations like scrolls."
//
// A document window scrolls by {4..64} pixels per tick. We run the full AH
// pipeline twice — MoveRectangle enabled vs disabled — and compare the
// bytes the AH puts on the wire for the same content. The benchmark also
// reports how many MoveRectangle messages were emitted.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

struct RunStats {
  std::uint64_t bytes = 0;
  std::uint64_t move_rects = 0;
  std::uint64_t region_updates = 0;
  std::int64_t final_diff = -1;
};

RunStats run_pipeline(std::int64_t scroll_px, bool use_move_rectangle) {
  AppHostOptions host_opts;
  host_opts.screen_width = 480;
  host_opts.screen_height = 360;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.use_move_rectangle = use_move_rectangle;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId doc = host.wm().create({40, 20, 360, 300}, 1);
  host.capturer().attach(
      doc, std::make_unique<DocumentApp>(360, 300, /*seed=*/3, scroll_px));

  TcpLinkConfig link;
  link.down.bandwidth_bps = 100'000'000;
  link.down.send_buffer_bytes = 8 * 1024 * 1024;
  auto& conn = session.add_tcp_participant({}, link);

  host.start();
  session.run_for(sim_sec(5));
  host.stop();
  session.run_for(sim_sec(1));

  RunStats out;
  out.bytes = host.stats().bytes_sent;
  out.move_rects = host.stats().move_rectangles_sent;
  out.region_updates = host.stats().region_updates_sent;
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  out.final_diff = diff_pixel_count(truth, replica);
  return out;
}

void run_bench(benchmark::State& state, bool use_move_rectangle) {
  const std::int64_t scroll_px = state.range(0);
  RunStats stats;
  for (auto _ : state) stats = run_pipeline(scroll_px, use_move_rectangle);
  state.counters["wire_bytes"] = static_cast<double>(stats.bytes);
  state.counters["move_rects"] = static_cast<double>(stats.move_rects);
  state.counters["region_updates"] = static_cast<double>(stats.region_updates);
  state.counters["converged"] = stats.final_diff == 0 ? 1 : 0;
  bench::record_counters("moverect",
                         std::string("E2/scroll/") +
                             (use_move_rectangle ? "move_rectangle" : "reencode") +
                             "/" + std::to_string(scroll_px),
                         state.counters);
}

void with_mr(benchmark::State& state) { run_bench(state, true); }
void without_mr(benchmark::State& state) { run_bench(state, false); }

BENCHMARK(with_mr)
    ->Name("E2/scroll/move_rectangle")
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(without_mr)
    ->Name("E2/scroll/reencode")
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
