// E4 — UDP loss repair via Generic NACK retransmissions (draft §5.3.2 and
// the SDP "retransmissions" parameter, §9.3.1).
//
// A terminal workload streams over UDP at loss rates 0-20%. With
// retransmissions=yes the participant NACKs missing packets and the AH
// resends from its cache; with retransmissions=no the only repair is the
// PLI full refresh. Counters: residual divergence while lossy, PLIs,
// retransmissions, and total AH bytes (repair overhead).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace ads;

struct RepairStats {
  std::uint64_t nacks = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t plis = 0;
  std::uint64_t bytes = 0;
  std::int64_t residual_diff = 0;  ///< divergence measured during loss
  std::int64_t final_diff = 0;     ///< after the link heals
};

RepairStats run_pipeline(double loss, bool retransmissions) {
  AppHostOptions host_opts;
  host_opts.screen_width = 320;
  host_opts.screen_height = 240;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.retransmissions = retransmissions;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  const WindowId term = host.wm().create({16, 16, 256, 192}, 1);
  host.capturer().attach(term, std::make_unique<TerminalApp>(256, 192, 5));

  UdpLinkConfig link;
  link.down.delay_us = 30'000;
  link.down.loss = loss;
  link.down.bandwidth_bps = 50'000'000;
  link.down.seed = 1234;
  link.up.delay_us = 30'000;
  ParticipantOptions popts;
  popts.send_nacks = retransmissions;
  auto& conn = session.add_udp_participant(popts, link);
  conn.participant->join();

  host.start();
  session.run_for(sim_sec(8));

  RepairStats out;
  {
    const Image& truth = host.capturer().last_frame();
    const Image replica =
        conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
    out.residual_diff = diff_pixel_count(truth, replica);
  }

  conn.down_udp->set_loss(0.0);
  session.run_for(sim_sec(2));
  host.stop();
  session.run_for(sim_sec(1));

  out.nacks = conn.participant->stats().nacks_sent;
  out.retransmissions = host.stats().retransmissions_sent;
  out.plis = conn.participant->stats().plis_sent;
  out.bytes = host.stats().bytes_sent;
  const Image& truth = host.capturer().last_frame();
  const Image replica =
      conn.participant->screen().crop({0, 0, truth.width(), truth.height()});
  out.final_diff = diff_pixel_count(truth, replica);
  // Embed the full cross-layer metrics snapshot of the last case run, so
  // BENCH_nack.json carries the session internals behind the counters.
  bench::json_report("nack").set_metrics_json(
      telemetry::to_json(session.telemetry().snapshot()));
  return out;
}

void run_bench(benchmark::State& state, bool retransmissions) {
  const double loss = static_cast<double>(state.range(0)) / 100.0;
  RepairStats stats;
  for (auto _ : state) stats = run_pipeline(loss, retransmissions);
  state.counters["nacks"] = static_cast<double>(stats.nacks);
  state.counters["retransmissions"] = static_cast<double>(stats.retransmissions);
  state.counters["plis"] = static_cast<double>(stats.plis);
  state.counters["ah_bytes"] = static_cast<double>(stats.bytes);
  state.counters["residual_diff_px"] = static_cast<double>(stats.residual_diff);
  state.counters["converged_after_heal"] = stats.final_diff == 0 ? 1 : 0;
  bench::record_counters("nack",
                         std::string("E4/loss/retransmissions_") +
                             (retransmissions ? "yes" : "no") + "/" +
                             std::to_string(state.range(0)),
                         state.counters);
}

void with_retransmissions(benchmark::State& state) { run_bench(state, true); }
void without_retransmissions(benchmark::State& state) { run_bench(state, false); }

BENCHMARK(with_retransmissions)
    ->Name("E4/loss/retransmissions_yes")
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(without_retransmissions)
    ->Name("E4/loss/retransmissions_no")
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
