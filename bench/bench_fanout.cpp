// E6 — multi-participant fan-out (draft §4.2).
//
// "The AH can share an application to TCP participants, UDP participants,
// and several multicast addresses in the same sharing session."
//
// One AH serves 1..32 participants (alternating TCP/UDP). Measured: real
// CPU time per simulated second of session (the benchmark's wall time),
// aggregate AH bytes, and per-participant convergence. This exposes the
// encode-once/send-many structure: bytes grow linearly with participants
// while encode work stays constant.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

void fanout(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));

  std::uint64_t bytes = 0;
  std::uint64_t updates = 0;
  int converged = 0;
  for (auto _ : state) {
    AppHostOptions host_opts;
    host_opts.screen_width = 320;
    host_opts.screen_height = 240;
    host_opts.frame_interval_us = sim_ms(100);
    SharingSession session(host_opts);
    AppHost& host = session.host();
    const WindowId term = host.wm().create({8, 8, 288, 208}, 1);
    host.capturer().attach(term, std::make_unique<TerminalApp>(288, 208, 5));

    for (int i = 0; i < participants; ++i) {
      if (i % 2 == 0) {
        TcpLinkConfig link;
        link.down.bandwidth_bps = 50'000'000;
        link.down.send_buffer_bytes = 2 * 1024 * 1024;
        session.add_tcp_participant({}, link);
      } else {
        UdpLinkConfig link;
        link.down.bandwidth_bps = 50'000'000;
        link.down.delay_us = 10'000;
        auto& conn = session.add_udp_participant({}, link);
        conn.participant->join();
      }
    }

    host.start();
    session.run_for(sim_sec(5));
    host.stop();
    session.run_for(sim_sec(1));

    bytes = host.stats().bytes_sent;
    updates = host.stats().region_updates_sent;
    converged = 0;
    const Image& truth = host.capturer().last_frame();
    for (const auto& conn : session.connections()) {
      const Image replica =
          conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
      if (diff_pixel_count(truth, replica) == 0) ++converged;
    }
  }

  state.counters["ah_bytes_total"] = static_cast<double>(bytes);
  state.counters["ah_bytes_per_participant"] =
      static_cast<double>(bytes) / static_cast<double>(participants);
  state.counters["region_updates"] = static_cast<double>(updates);
  state.counters["participants_converged"] = converged;
  state.counters["participants"] = participants;
  bench::record_counters("fanout",
                         "E6/fanout/mixed_transports/" +
                             std::to_string(participants),
                         state.counters);
}

BENCHMARK(fanout)
    ->Name("E6/fanout/mixed_transports")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
