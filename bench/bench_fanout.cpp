// E6 — multi-participant fan-out (draft §4.2).
//
// "The AH can share an application to TCP participants, UDP participants,
// and several multicast addresses in the same sharing session."
//
// One AH serves 1..32 participants (alternating TCP/UDP). Measured: real
// CPU time per simulated second of session (the benchmark's wall time),
// aggregate AH bytes, and per-participant convergence. This exposes the
// encode-once/send-many structure: bytes grow linearly with participants
// while encode work stays constant.
#include <benchmark/benchmark.h>

#include <chrono>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

void fanout(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));

  std::uint64_t bytes = 0;
  std::uint64_t updates = 0;
  int converged = 0;
  for (auto _ : state) {
    AppHostOptions host_opts;
    host_opts.screen_width = 320;
    host_opts.screen_height = 240;
    host_opts.frame_interval_us = sim_ms(100);
    SharingSession session(host_opts);
    AppHost& host = session.host();
    const WindowId term = host.wm().create({8, 8, 288, 208}, 1);
    host.capturer().attach(term, std::make_unique<TerminalApp>(288, 208, 5));

    for (int i = 0; i < participants; ++i) {
      if (i % 2 == 0) {
        TcpLinkConfig link;
        link.down.bandwidth_bps = 50'000'000;
        link.down.send_buffer_bytes = 2 * 1024 * 1024;
        session.add_tcp_participant({}, link);
      } else {
        UdpLinkConfig link;
        link.down.bandwidth_bps = 50'000'000;
        link.down.delay_us = 10'000;
        auto& conn = session.add_udp_participant({}, link);
        conn.participant->join();
      }
    }

    host.start();
    session.run_for(sim_sec(5));
    host.stop();
    session.run_for(sim_sec(1));

    bytes = host.stats().bytes_sent;
    updates = host.stats().region_updates_sent;
    converged = 0;
    const Image& truth = host.capturer().last_frame();
    for (const auto& conn : session.connections()) {
      const Image replica =
          conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
      if (diff_pixel_count(truth, replica) == 0) ++converged;
    }
  }

  state.counters["ah_bytes_total"] = static_cast<double>(bytes);
  state.counters["ah_bytes_per_participant"] =
      static_cast<double>(bytes) / static_cast<double>(participants);
  state.counters["region_updates"] = static_cast<double>(updates);
  state.counters["participants_converged"] = converged;
  state.counters["participants"] = participants;
  bench::record_counters("fanout",
                         "E6/fanout/mixed_transports/" +
                             std::to_string(participants),
                         state.counters);
}

BENCHMARK(fanout)
    ->Name("E6/fanout/mixed_transports")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// E17 — shared-encode broadcast fan-out.
//
// One AH, N UDP endpoints, full-frame damage every tick (VideoApp): the
// encode stage dominates, so this isolates what the cohort fan-out buys.
// Grid: participants x {per-participant, shared} x {uniform operating
// point, 4-rung spread}. Encoding is serial (encode_threads = 0) so the
// per-tick wall time reads as encode CPU, and the encoded-region cache is
// off so the per-participant arm pays its true per-endpoint encode cost
// rather than hiding it behind content-hash hits.
//
// The 4-rung spread drives the real closed loop: adaptation is enabled and
// groups k = 1..3 receive lossy receiver reports for 3k warmup ticks, so
// their AIMD budgets land on different quality rungs and the cohorts
// split. Everything runs on the virtual clock with fixed seeds, so every
// grid point is reproducible.
void broadcast(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  const bool shared = state.range(1) != 0;
  const bool spread = state.range(2) != 0;
  constexpr int kMeasuredTicks = 8;
  const int warmup_ticks = spread ? 12 : 2;

  AppHost::Stats before;
  AppHost::Stats after;
  double measured_ms = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    EventLoop loop;
    AppHostOptions opts;
    opts.screen_width = 320;
    opts.screen_height = 240;
    opts.region_band_rows = 64;  // full-frame damage -> 4 bands per tick
    opts.frame_interval_us = sim_ms(100);
    opts.shared_fanout = shared;
    opts.encode_threads = 0;
    opts.encoded_cache_bytes = 0;
    if (spread) {
      opts.codec = ContentPt::kDct;
      opts.adaptation.enabled = true;
      opts.adaptation.decrease_holdoff_us = sim_ms(100);
    }
    AppHost host(loop, opts);
    const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
    host.capturer().attach(w, std::make_unique<VideoApp>(320, 240, 5));

    std::uint64_t datagrams = 0;
    std::vector<ParticipantId> ids;
    for (int i = 0; i < participants; ++i) {
      HostEndpoint ep;
      ep.kind = HostEndpoint::Kind::kUdp;
      ep.send_datagram = [&datagrams](BytesView) {
        ++datagrams;
        return true;
      };
      // View-aware endpoints: the zero-copy batch path is what ships, so the
      // bench measures it (the send_datagram fallback stays for reference).
      ep.send_packet = [&datagrams](const PacketView&) {
        ++datagrams;
        return true;
      };
      ep.send_packet_batch = [&datagrams](std::span<const PacketView> batch) {
        datagrams += batch.size();
        return batch.size();
      };
      ids.push_back(host.add_participant(std::move(ep)));
      PictureLossIndication pli;  // UDP joiners request their first frame
      host.on_uplink_packet(ids.back(), pli.serialize());
    }

    for (int t = 0; t < warmup_ticks; ++t) {
      if (spread) {
        for (int i = 0; i < participants; ++i) {
          const int rung_group = i % 4;
          if (rung_group > 0 && t < 3 * rung_group) {
            ReceiverReport rr;
            ReportBlock block;
            block.fraction_lost = 40;  // above the decrease threshold
            rr.blocks.push_back(block);
            host.on_uplink_packet(ids[static_cast<std::size_t>(i)],
                                  rr.serialize());
          }
        }
      }
      host.tick();
      loop.run_until(loop.now() + opts.frame_interval_us);
    }

    before = host.stats();
    const auto start = std::chrono::steady_clock::now();
    state.ResumeTiming();
    for (int t = 0; t < kMeasuredTicks; ++t) {
      host.tick();
      loop.run_until(loop.now() + opts.frame_interval_us);
    }
    state.PauseTiming();
    measured_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    after = host.stats();
    state.ResumeTiming();
  }

  const double ticks = kMeasuredTicks;
  const auto delta = [&](std::uint64_t AppHost::Stats::*m) {
    return static_cast<double>(after.*m - before.*m);
  };
  state.counters["participants"] = participants;
  state.counters["per_tick_ms"] = measured_ms / ticks;
  state.counters["cohorts_per_tick"] = delta(&AppHost::Stats::fanout_cohorts) / ticks;
  state.counters["encodes_unique_per_tick"] =
      delta(&AppHost::Stats::fanout_encodes_unique) / ticks;
  state.counters["encodes_shared_per_tick"] =
      delta(&AppHost::Stats::fanout_encodes_shared) / ticks;
  state.counters["region_updates_per_tick"] =
      delta(&AppHost::Stats::region_updates_sent) / ticks;
  state.counters["bands_per_frame"] = 4;
  // Zero-copy datapath: payload bytes physically staged per tick (the shared
  // path serialises each cohort band once; the per-participant path restages
  // per endpoint) and packet assembly throughput over the measured window.
  state.counters["bytes_copied_per_tick"] =
      delta(&AppHost::Stats::payload_bytes_copied) / ticks;
  state.counters["packets_built_per_tick"] =
      delta(&AppHost::Stats::packets_built) / ticks;
  state.counters["packets_built_per_second"] =
      measured_ms > 0.0
          ? delta(&AppHost::Stats::packets_built) / (measured_ms / 1000.0)
          : 0.0;
  state.counters["band_streams_built_per_tick"] =
      delta(&AppHost::Stats::band_streams_built) / ticks;
  bench::record_counters(
      "fanout",
      std::string("E17/broadcast/") + (shared ? "shared" : "per_participant") +
          (spread ? "/rung_spread/" : "/uniform/") + std::to_string(participants),
      state.counters);
}

BENCHMARK(broadcast)
    ->Name("E17/broadcast")
    ->ArgsProduct({{1, 4, 16, 64, 256, 512}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
