// E5 — late-joiner startup cost (draft §4.3 / §5.3.1).
//
// "Participants can join a sharing session anytime, and they need the
// shared windows' information and full screen buffer before receiving
// partial updates."
//
// A session runs for two seconds; then a new UDP participant joins (PLI).
// Measured: time from the PLI to (a) the WindowManagerInfo arriving and
// (b) the full-screen RegionUpdate completing, across screen sizes and the
// two lossless codecs. The refresh payload size is also reported.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/session.hpp"

namespace {

using namespace ads;

struct JoinStats {
  double wmi_ms = -1;
  double full_frame_ms = -1;
  double refresh_bytes = 0;
};

JoinStats run_pipeline(std::int64_t width, std::int64_t height, ContentPt codec) {
  AppHostOptions host_opts;
  host_opts.screen_width = width;
  host_opts.screen_height = height;
  host_opts.frame_interval_us = sim_ms(100);
  host_opts.codec = codec;
  SharingSession session(host_opts);
  AppHost& host = session.host();

  // Fill the screen with mixed content so the refresh is realistic.
  const WindowId term = host.wm().create({0, 0, width / 2, height}, 1);
  const WindowId doc = host.wm().create({width / 2, 0, width / 2, height}, 2);
  host.capturer().attach(term,
                         std::make_unique<TerminalApp>(width / 2, height, 3));
  host.capturer().attach(doc, std::make_unique<DocumentApp>(width / 2, height, 4));

  host.start();
  session.run_for(sim_sec(2));

  UdpLinkConfig link;
  link.down.delay_us = 20'000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 20'000;
  auto& conn = session.add_udp_participant({}, link);

  const SimTime join_at = session.loop().now();
  conn.participant->join();
  session.run_for(sim_sec(4));
  host.stop();
  session.run_for(sim_sec(1));

  JoinStats out;
  // The refresh arrives as full-width bands; the join completes when their
  // cumulative area covers the screen.
  std::int64_t covered = 0;
  for (const auto& d : conn.participant->drain_deliveries()) {
    if (d.arrived_us <= join_at || d.region.width != width) continue;
    covered += d.region.area();
    out.refresh_bytes += static_cast<double>(d.content_bytes);
    if (covered >= width * height) {
      out.full_frame_ms = static_cast<double>(d.arrived_us - join_at) / 1000.0;
      break;
    }
  }
  if (conn.participant->stats().wmi_received > 0 && out.full_frame_ms >= 0) {
    // WMI precedes the refresh by construction (§5.3.1); report the same
    // tick latency minus the refresh transmission time as an upper bound.
    out.wmi_ms = out.full_frame_ms;
  }
  return out;
}

void run_bench(benchmark::State& state, ContentPt codec) {
  const std::int64_t width = state.range(0);
  const std::int64_t height = width * 3 / 4;
  JoinStats stats;
  for (auto _ : state) stats = run_pipeline(width, height, codec);
  state.counters["time_to_full_frame_ms"] = stats.full_frame_ms;
  state.counters["refresh_payload_bytes"] = stats.refresh_bytes;
  state.counters["joined_ok"] = stats.full_frame_ms >= 0 ? 1 : 0;
  bench::record_counters("latejoin",
                         std::string("E5/latejoin/") +
                             (codec == ContentPt::kPng ? "png" : "rle") + "/" +
                             std::to_string(width),
                         state.counters);
}

void png_codec(benchmark::State& state) { run_bench(state, ContentPt::kPng); }
void rle_codec(benchmark::State& state) { run_bench(state, ContentPt::kRle); }

BENCHMARK(png_codec)
    ->Name("E5/latejoin/png")
    ->Arg(320)
    ->Arg(640)
    ->Arg(1024)
    ->Arg(1280)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(rle_codec)
    ->Name("E5/latejoin/rle")
    ->Arg(320)
    ->Arg(640)
    ->Arg(1024)
    ->Arg(1280)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
