// E22 — cascaded relay tier scale-out (ads::relay).
//
// One AH feeds a relay tree (every interior node fans out to `degree`
// children, `depth` relay levels, a constant 4 viewers per leaf relay); the
// comparison arm serves the same total viewer count directly from the AH.
// Everything is wired with in-process callbacks on the virtual clock, so
// the grid is deterministic and the two timing windows are clean:
//
//   ah_ms_per_tick    — host.tick() alone (AH-side CPU; the relay arm's AH
//                       serves exactly one participant at every grid point)
//   tier_ms_per_tick  — replaying the AH's staged views into the tree (the
//                       whole cascade's forwarding cost, relay arm only)
//
// The headline claim: AH encode work and AH payload staging stay *flat* in
// the relay arm while served viewers grow multiplicatively with degree and
// depth, and the relays themselves never copy a payload byte. Mid-run every
// viewer sends a PLI and a NACK for the newest sequence, so the report also
// carries the tier's feedback-dedup ratios (subtree PLIs collapse to one
// upstream refresh; NACKs are served from relay caches and never reach the
// AH).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "capture/apps.hpp"
#include "core/app_host.hpp"
#include "relay/relay.hpp"
#include "rtp/rtcp.hpp"

namespace {

using namespace ads;

constexpr int kViewersPerLeaf = 4;
constexpr int kWarmupTicks = 4;
constexpr int kMeasuredTicks = 16;
constexpr int kFeedbackTick = 8;  // measured tick where every viewer NACKs/PLIs

/// A counting viewer: either a relay leg (owner set) or a direct AH
/// participant (owner null, addressed by participant id).
struct Viewer {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint16_t last_seq = 0;
  relay::RelayNode* owner = nullptr;
  relay::LegId leg = 0;
  ParticipantId id = 0;
};

struct RelayTree {
  std::vector<std::unique_ptr<relay::RelayNode>> nodes;
  std::vector<std::unique_ptr<Viewer>> viewers;
  relay::RelayNode* root = nullptr;
};

relay::LegEndpoint viewer_endpoint(Viewer* v) {
  relay::LegEndpoint ep;
  ep.kind = relay::LegEndpoint::Kind::kUdp;
  ep.send_packet = [v](const PacketView& pkt) {
    ++v->packets;
    v->bytes += pkt.wire_size();
    v->last_seq = pkt.sequence();
    return true;
  };
  ep.send_packet_batch = [v](std::span<const PacketView> pkts) {
    for (const PacketView& pkt : pkts) {
      ++v->packets;
      v->bytes += pkt.wire_size();
      v->last_seq = pkt.sequence();
    }
    return pkts.size();
  };
  ep.send_datagram = [v](BytesView d) {
    v->bytes += d.size();
    return true;
  };
  return ep;
}

/// Builds the subtree rooted at `level` and returns its relay.
relay::RelayNode* build_node(EventLoop& loop, RelayTree& tree, int level,
                             int depth, int degree) {
  relay::RelayOptions opts;
  opts.report_interval_us = sim_ms(200);
  opts.seed = 0xBE1A + tree.nodes.size();  // distinct RTCP identity per node
  tree.nodes.push_back(std::make_unique<relay::RelayNode>(loop, opts));
  relay::RelayNode* node = tree.nodes.back().get();
  if (level < depth) {
    for (int c = 0; c < degree; ++c) {
      relay::RelayNode* child = build_node(loop, tree, level + 1, depth, degree);
      relay::LegEndpoint ep;
      ep.kind = relay::LegEndpoint::Kind::kUdp;
      ep.send_packet = [child](const PacketView& v) {
        child->on_upstream_packet(v);
        return true;
      };
      ep.send_packet_batch = [child](std::span<const PacketView> pkts) {
        return child->on_upstream_batch(pkts);
      };
      ep.send_datagram = [child](BytesView d) {
        child->on_upstream_datagram(Bytes(d.begin(), d.end()));
        return true;
      };
      const relay::LegId leg = node->add_leg(std::move(ep));
      child->set_upstream([node, leg](BytesView p) {
        node->on_leg_packet(leg, p);
        return true;
      });
    }
  } else {
    for (int i = 0; i < kViewersPerLeaf; ++i) {
      tree.viewers.push_back(std::make_unique<Viewer>());
      Viewer* v = tree.viewers.back().get();
      v->owner = node;
      v->leg = node->add_leg(viewer_endpoint(v));
    }
  }
  node->start();
  return node;
}

int pow_int(int base, int exp) {
  int r = 1;
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}

void relay_scaleout(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  const bool relay_arm = state.range(2) != 0;
  const int total_viewers = kViewersPerLeaf * pow_int(degree, depth - 1);

  double ah_ms = 0.0;
  double tier_ms = 0.0;
  AppHost::Stats before;
  AppHost::Stats after;
  std::uint64_t relays = 0;
  std::uint64_t relay_bytes_copied = 0;
  std::uint64_t relay_forwarded = 0;
  std::uint64_t rtx_served = 0;
  std::uint64_t nack_seqs_received = 0;
  std::uint64_t nack_seqs_at_ah = 0;
  std::uint64_t plis_injected = 0;
  std::uint64_t plis_at_ah = 0;
  std::uint64_t viewer_packets = 0;

  for (auto _ : state) {
    state.PauseTiming();
    EventLoop loop;
    AppHostOptions opts;
    opts.screen_width = 320;
    opts.screen_height = 240;
    opts.region_band_rows = 64;
    opts.frame_interval_us = sim_ms(100);
    opts.sr_interval_us = sim_ms(500);
    AppHost host(loop, opts);
    const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
    host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

    // The AH's staged output for the relay arm: views are refcount bumps, so
    // buffering a tick's batch before replaying it into the tree costs no
    // payload copies and lets us time the AH and the tier separately.
    std::vector<PacketView> staged_views;
    std::vector<Bytes> staged_ctrl;
    RelayTree tree;
    std::vector<std::unique_ptr<Viewer>> direct_viewers;
    if (relay_arm) {
      tree.root = build_node(loop, tree, 1, depth, degree);
      HostEndpoint ep;
      ep.kind = HostEndpoint::Kind::kUdp;
      ep.send_packet = [&staged_views](const PacketView& v) {
        staged_views.push_back(v);
        return true;
      };
      ep.send_packet_batch = [&staged_views](std::span<const PacketView> pkts) {
        staged_views.insert(staged_views.end(), pkts.begin(), pkts.end());
        return pkts.size();
      };
      ep.send_datagram = [&staged_ctrl](BytesView d) {
        staged_ctrl.emplace_back(d.begin(), d.end());
        return true;
      };
      const ParticipantId root_id = host.add_participant(std::move(ep));
      tree.root->set_upstream([&host, root_id](BytesView p) {
        host.on_uplink_packet(root_id, p);
        return true;
      });
    } else {
      for (int i = 0; i < total_viewers; ++i) {
        direct_viewers.push_back(std::make_unique<Viewer>());
        Viewer* v = direct_viewers.back().get();
        relay::LegEndpoint leg_ep = viewer_endpoint(v);
        HostEndpoint ep;
        ep.kind = HostEndpoint::Kind::kUdp;
        ep.send_packet = std::move(leg_ep.send_packet);
        ep.send_packet_batch = std::move(leg_ep.send_packet_batch);
        ep.send_datagram = std::move(leg_ep.send_datagram);
        v->id = host.add_participant(std::move(ep));
      }
    }

    const auto& viewers = relay_arm ? tree.viewers : direct_viewers;
    auto inject_plis = [&] {
      PictureLossIndication pli;
      pli.sender_ssrc = 0x1EAF;
      for (const auto& v : viewers) {
        if (v->owner) {
          pli.media_ssrc = v->owner->upstream_ssrc();
          v->owner->on_leg_packet(v->leg, pli.serialize());
        } else {
          host.on_uplink_packet(v->id, pli.serialize());
        }
      }
    };
    auto run_tick = [&](bool measured) {
      const auto t0 = std::chrono::steady_clock::now();
      host.tick();
      const auto t1 = std::chrono::steady_clock::now();
      if (relay_arm) {
        tree.root->on_upstream_batch(staged_views);
        staged_views.clear();
        for (Bytes& d : staged_ctrl) tree.root->on_upstream_datagram(std::move(d));
        staged_ctrl.clear();
      }
      const auto t2 = std::chrono::steady_clock::now();
      if (measured) {
        ah_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        tier_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      }
      loop.run_until(loop.now() + opts.frame_interval_us);
    };

    inject_plis();  // every viewer late-joins; the tree collapses the storm
    for (int t = 0; t < kWarmupTicks; ++t) run_tick(false);

    before = host.stats();
    ah_ms = tier_ms = 0.0;
    state.ResumeTiming();
    for (int t = 0; t < kMeasuredTicks; ++t) {
      if (t == kFeedbackTick) {
        // Feedback burst: a PLI from every viewer, and (relay arm) a NACK
        // for the newest sequence — served from the leaf relay's cache.
        plis_injected = viewers.size();
        inject_plis();
        if (relay_arm) {
          for (const auto& v : tree.viewers) {
            const GenericNack nack = GenericNack::for_sequences(
                0x1EAF, v->owner->upstream_ssrc(), {v->last_seq});
            v->owner->on_leg_packet(v->leg, nack.serialize());
          }
        }
      }
      run_tick(true);
    }
    state.PauseTiming();
    after = host.stats();

    relays = tree.nodes.size();
    relay_bytes_copied = relay_forwarded = rtx_served = 0;
    nack_seqs_received = nack_seqs_at_ah = 0;
    for (const auto& node : tree.nodes) {
      const auto& s = node->stats();
      relay_bytes_copied += s.payload_bytes_copied;
      relay_forwarded += s.forwarded_packets;
      rtx_served += s.rtx_served;
      nack_seqs_received += s.nack_seqs_received;
    }
    if (relay_arm) nack_seqs_at_ah = tree.root->stats().nack_seqs_upstream;
    plis_at_ah = after.plis_received - before.plis_received;
    viewer_packets = 0;
    for (const auto& v : viewers) viewer_packets += v->packets;
    state.ResumeTiming();
  }

  const double ticks = kMeasuredTicks;
  const auto delta = [&](std::uint64_t AppHost::Stats::*m) {
    return static_cast<double>(after.*m - before.*m);
  };
  state.counters["viewers_served"] = total_viewers;
  state.counters["relays"] = static_cast<double>(relays);
  state.counters["ah_ms_per_tick"] = ah_ms / ticks;
  state.counters["tier_ms_per_tick"] = tier_ms / ticks;
  state.counters["ah_encodes_unique_per_tick"] =
      delta(&AppHost::Stats::fanout_encodes_unique) / ticks;
  state.counters["ah_bytes_copied_per_tick"] =
      delta(&AppHost::Stats::payload_bytes_copied) / ticks;
  state.counters["ah_packets_built_per_tick"] =
      delta(&AppHost::Stats::packets_built) / ticks;
  state.counters["ah_bytes_sent_per_tick"] = delta(&AppHost::Stats::bytes_sent) / ticks;
  state.counters["relay_payload_bytes_copied"] =
      static_cast<double>(relay_bytes_copied);
  state.counters["relay_forwarded_packets"] = static_cast<double>(relay_forwarded);
  state.counters["viewer_packets_total"] = static_cast<double>(viewer_packets);
  state.counters["plis_injected"] = static_cast<double>(plis_injected);
  state.counters["plis_at_ah"] = static_cast<double>(plis_at_ah);
  state.counters["pli_dedup_ratio"] =
      plis_at_ah ? static_cast<double>(plis_injected) /
                       static_cast<double>(plis_at_ah)
                 : 0.0;
  state.counters["nack_seqs_received"] = static_cast<double>(nack_seqs_received);
  state.counters["nack_seqs_at_ah"] = static_cast<double>(nack_seqs_at_ah);
  state.counters["rtx_served"] = static_cast<double>(rtx_served);
  state.counters["nack_dedup_ratio"] =
      nack_seqs_received
          ? static_cast<double>(nack_seqs_received) /
                static_cast<double>(nack_seqs_at_ah ? nack_seqs_at_ah : 1)
          : 0.0;
  bench::record_counters(
      "relay",
      std::string("E22/relay/") + (relay_arm ? "tree" : "direct") + "/deg" +
          std::to_string(degree) + "/depth" + std::to_string(depth),
      state.counters);
}

}  // namespace

BENCHMARK(relay_scaleout)
    ->Name("E22/relay")
    ->ArgsProduct({{1, 2, 3}, {1, 2, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
