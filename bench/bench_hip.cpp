// E10 — HIP event path throughput and the §4.1 legitimacy gate.
//
// Part 1: raw serialise→parse round-trip rate per message type (the cost of
// the wire format itself).
// Part 2: the AH-side validation pipeline — parse, floor-control gate,
// coordinate legitimacy check — on event mixes with varying fractions of
// out-of-window clicks, measuring events/second and rejection accounting.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "bfcp/floor_control.hpp"
#include "hip/messages.hpp"
#include "util/prng.hpp"
#include "wm/window_manager.hpp"

namespace {

using namespace ads;

void roundtrip(benchmark::State& state, const std::string& name,
               const HipMessage& msg) {
  const Bytes wire = serialize_hip(msg);
  for (auto _ : state) {
    Bytes encoded = serialize_hip(msg);
    auto parsed = parse_hip(encoded);
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  bench::record_counters("hip", "E10/roundtrip/" + name, state.counters);
}

void validation_pipeline(benchmark::State& state) {
  const int outside_pct = static_cast<int>(state.range(0));

  WindowManager wm;
  wm.create({100, 100, 400, 300}, 1);
  wm.create({600, 200, 200, 200}, 1);
  FloorControlServer floor;
  BfcpMessage request;
  request.primitive = BfcpPrimitive::kFloorRequest;
  request.conference_id = 1;
  request.user_id = 7;
  floor.on_message(request, 0);

  // Pre-build a deterministic event stream.
  Prng rng(4242);
  std::vector<Bytes> events;
  for (int i = 0; i < 4096; ++i) {
    const bool outside = static_cast<int>(rng.below(100)) < outside_pct;
    std::uint32_t x;
    std::uint32_t y;
    if (outside) {
      x = static_cast<std::uint32_t>(rng.below(90));
      y = static_cast<std::uint32_t>(rng.below(90));
    } else {
      x = static_cast<std::uint32_t>(120 + rng.below(350));
      y = static_cast<std::uint32_t>(120 + rng.below(250));
    }
    events.push_back(serialize_hip(MouseMoved{1, x, y}));
  }

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    auto msg = parse_hip(events[i % events.size()]);
    ++i;
    if (!msg.ok()) continue;
    std::uint32_t left = 0;
    std::uint32_t top = 0;
    const bool is_mouse = hip_coordinates(*msg, left, top);
    bool ok = is_mouse ? floor.may_send_mouse(7) : floor.may_send_keyboard(7);
    if (ok && is_mouse) {
      ok = wm.point_in_shared_window(
          {static_cast<std::int64_t>(left), static_cast<std::int64_t>(top)});
    }
    if (ok) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  state.counters["accept_pct"] =
      100.0 * static_cast<double>(accepted) / static_cast<double>(accepted + rejected);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  bench::record_counters("hip",
                         "E10/validation/outside_pct/" +
                             std::to_string(outside_pct),
                         state.counters);
}

void register_roundtrips() {
  const std::pair<const char*, HipMessage> cases[] = {
      {"mouse_pressed", MousePressed{1, MouseButton::kLeft, 100, 200}},
      {"mouse_released", MouseReleased{1, MouseButton::kLeft, 100, 200}},
      {"mouse_moved", MouseMoved{1, 100, 200}},
      {"mouse_wheel", MouseWheelMoved{1, 100, 200, -240}},
      {"key_pressed", KeyPressed{1, vk::kF1}},
      {"key_released", KeyReleased{1, vk::kF1}},
      {"key_typed", KeyTyped{1, "the quick brown fox"}},
  };
  for (const auto& [name, msg] : cases) {
    benchmark::RegisterBenchmark(
        (std::string("E10/roundtrip/") + name).c_str(),
        [name = std::string(name), msg = msg](benchmark::State& s) {
          roundtrip(s, name, msg);
        });
  }
}

const int registered = (register_roundtrips(), 0);

BENCHMARK(validation_pipeline)
    ->Name("E10/validation/outside_pct")
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Arg(90)
    ->Unit(benchmark::kNanosecond);

}  // namespace
