// E8 — AH capture pipeline rate: damage detection cost and end-to-end
// frame preparation throughput.
//
// Part 1 sweeps the damage-tile size (8..64 px) on each workload and times
// one DamageTracker update — the per-frame fixed cost of finding what
// changed.
// Part 2 times a full AH tick (app paint → composite → damage → encode →
// fragment) per workload, giving the maximum capture rate the AH sustains.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "capture/screen_capturer.hpp"
#include "codec/registry.hpp"
#include "remoting/region_update.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

void damage_detection(benchmark::State& state, const std::string& workload) {
  const std::int64_t tile = state.range(0);
  auto frames = workload_frames(workload, 640, 480, 24);
  DamageTracker tracker(tile);
  std::size_t i = 0;
  std::int64_t last_damage_area = 0;
  for (auto _ : state) {
    auto damage = tracker.update(frames[i % frames.size()]);
    last_damage_area = 0;
    for (const auto& r : damage) last_damage_area += r.area();
    benchmark::DoNotOptimize(damage);
    ++i;
  }
  state.counters["damage_px"] = static_cast<double>(last_damage_area);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 640 * 480 *
                          4);
  record_counters("pipeline",
                  "E8/damage/" + workload + "/tile:" + std::to_string(tile),
                  state.counters);
}

void full_tick(benchmark::State& state, const std::string& workload) {
  WindowManager wm;
  const WindowId w = wm.create({16, 16, 480, 360}, 1);
  ScreenCapturer cap(wm, 640, 480, /*tile=*/32);
  cap.attach(w, make_app(workload, 480, 360, 9));
  const auto registry = CodecRegistry::with_defaults();
  const ImageCodec* codec = registry.find(ContentPt::kPng);

  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const CaptureResult result = cap.capture();
    for (const Rect& r : result.damage) {
      RegionUpdate msg;
      msg.content_pt = static_cast<std::uint8_t>(ContentPt::kPng);
      msg.left = static_cast<std::uint32_t>(r.left);
      msg.top = static_cast<std::uint32_t>(r.top);
      msg.content = codec->encode(result.frame->crop(r));
      auto frags = fragment_region_update(msg, 1200);
      bytes += msg.content.size();
      packets += frags.size();
      benchmark::DoNotOptimize(frags);
    }
  }
  state.counters["bytes_per_frame"] =
      static_cast<double>(bytes) / static_cast<double>(state.iterations());
  state.counters["packets_per_frame"] =
      static_cast<double>(packets) / static_cast<double>(state.iterations());
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  // fps is rate-typed (meaningful only in benchmark's own output), so
  // record the per-frame costs explicitly rather than copying counters.
  json_report("pipeline")
      .record("E8/full_tick/" + workload,
              {{"bytes_per_frame", state.counters["bytes_per_frame"]},
               {"packets_per_frame", state.counters["packets_per_frame"]}});
}

void register_all() {
  for (const char* workload : {"terminal", "slideshow", "document", "video", "paint"}) {
    benchmark::RegisterBenchmark(
        (std::string("E8/damage/") + workload).c_str(),
        [workload = std::string(workload)](benchmark::State& s) {
          damage_detection(s, workload);
        })
        ->Arg(8)
        ->Arg(16)
        ->Arg(32)
        ->Arg(64)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("E8/full_tick/") + workload).c_str(),
        [workload = std::string(workload)](benchmark::State& s) {
          full_tick(s, workload);
        })
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
