// E13 — the parallel band-encode stage (worker pool + encoded-region cache).
//
// Claims under test:
//  * splitting a frame's damage into 128-row bands and encoding them on a
//    worker pool scales encode throughput with core count while producing
//    byte-identical wire output (the golden test asserts the identity; this
//    bench measures the speedup, honestly reporting whatever the machine's
//    core count allows);
//  * the encoded-region cache turns a PLI full refresh of unchanged content
//    into memory copies instead of codec runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "core/parallel_encoder.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

constexpr std::int64_t kW = 1280;
constexpr std::int64_t kH = 1024;
constexpr std::int64_t kBandRows = 128;

const Image& frame_for(const std::string& workload) {
  static std::map<std::string, Image> cache;
  auto it = cache.find(workload);
  if (it == cache.end()) {
    it = cache.emplace(workload, workload_frame(workload, kW, kH)).first;
  }
  return it->second;
}

std::vector<Rect> bands_for(const Image& frame) {
  std::vector<Rect> bands;
  for (std::int64_t top = 0; top < frame.height(); top += kBandRows) {
    bands.push_back(
        Rect{0, top, frame.width(), std::min(kBandRows, frame.height() - top)});
  }
  return bands;
}

double measure_encode_ns(ParallelEncoder& enc, const Image& frame,
                         const std::vector<Rect>& bands, int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    auto payloads = enc.encode_regions(frame, bands, ContentPt::kPng);
    benchmark::DoNotOptimize(payloads);
  }
  return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                  start)
             .count() /
         reps;
}

/// Serial (threads=0, cache off) cost of one full-frame encode, measured
/// once per workload — the baseline every thread count is compared against.
double serial_ns(const std::string& workload) {
  static std::map<std::string, double> cache;
  auto it = cache.find(workload);
  if (it == cache.end()) {
    const Image& frame = frame_for(workload);
    const auto bands = bands_for(frame);
    const auto registry = CodecRegistry::with_defaults();
    ParallelEncoder enc(registry, {.threads = 0, .cache_bytes = 0});
    measure_encode_ns(enc, frame, bands, 1);  // warm the scratch arenas
    it = cache.emplace(workload, measure_encode_ns(enc, frame, bands, 3)).first;
  }
  return it->second;
}

void run_threads(benchmark::State& state, const std::string& name,
                 const std::string& workload, std::size_t threads) {
  const Image& frame = frame_for(workload);
  const auto bands = bands_for(frame);
  const auto registry = CodecRegistry::with_defaults();
  ParallelEncoder enc(registry, {.threads = threads, .cache_bytes = 0});

  double total_ns = 0;
  std::int64_t iters = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto payloads = enc.encode_regions(frame, bands, ContentPt::kPng);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    ++iters;
    benchmark::DoNotOptimize(payloads);
  }

  const double ns_per_frame = total_ns / static_cast<double>(iters);
  state.counters["bands"] = static_cast<double>(bands.size());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["ns_per_band"] = ns_per_frame / static_cast<double>(bands.size());
  state.counters["speedup_vs_serial"] = serial_ns(workload) / ns_per_frame;
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  json_report("parallel_encode")
      .record(name, {{"bands", state.counters["bands"]},
                     {"threads", state.counters["threads"]},
                     {"ns_per_band", state.counters["ns_per_band"]},
                     {"speedup_vs_serial", state.counters["speedup_vs_serial"]},
                     {"hw_threads", state.counters["hw_threads"]}});
}

// The PLI-refresh scenario the cache exists for: a participant joins (or
// reports loss) and the AH must resend the whole — unchanged — screen. With
// the cache every band is a lookup; without it every band re-runs PNG.
void run_cache(benchmark::State& state, const std::string& name,
               std::size_t cache_bytes) {
  const Image& frame = frame_for("slideshow");
  const auto bands = bands_for(frame);
  const auto registry = CodecRegistry::with_defaults();
  ParallelEncoder enc(registry, {.threads = 0, .cache_bytes = cache_bytes});
  auto cold = enc.encode_regions(frame, bands, ContentPt::kPng);  // populate
  benchmark::DoNotOptimize(cold);

  for (auto _ : state) {
    auto refresh = enc.encode_regions(frame, bands, ContentPt::kPng);
    benchmark::DoNotOptimize(refresh);
  }

  const auto& stats = enc.stats();
  const double lookups = static_cast<double>(stats.cache_hits + stats.cache_misses);
  state.counters["hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
  state.counters["cache_bytes"] = static_cast<double>(enc.cache().bytes());
  json_report("parallel_encode")
      .record(name, {{"hit_rate", state.counters["hit_rate"]},
                     {"cache_bytes", state.counters["cache_bytes"]}});
}

void register_all() {
  static const char* workloads[] = {"terminal", "slideshow", "video"};
  static const std::size_t thread_counts[] = {0, 1, 2, 4, 8};
  for (const char* workload : workloads) {
    for (const std::size_t threads : thread_counts) {
      const std::string name = std::string("E13/") + workload + "/threads:" +
                               std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [name, workload = std::string(workload), threads](benchmark::State& s) {
            run_threads(s, name, workload, threads);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const std::size_t cache_bytes : {std::size_t{0}, std::size_t{16} << 20}) {
    const std::string name = std::string("E13b/pli_refresh/cache:") +
                             (cache_bytes ? "on" : "off");
    benchmark::RegisterBenchmark(name.c_str(),
                                 [name, cache_bytes](benchmark::State& s) {
                                   run_cache(s, name, cache_bytes);
                                 })
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
