// E20 — device-class diversity: per-cohort output geometry
// (docs/TRANSCODE.md).
//
// A webpage workload (tiled incremental loads) streams to a mixed audience.
// Two arms, same viewer count:
//
//   * fullres — geometry-blind baseline: every viewer receives the host's
//               native resolution, whatever it can actually display.
//   * classes — viewers split across device classes (full, half rung,
//               quarter rung, half-rung viewport crop); each class forms
//               its own (geometry × rung) cohort and is encoded once from
//               the FrameScaler's per-tick cache.
//
// Measured per arm: bytes per viewer per device class, scaled-replica
// fidelity per class (PSNR against the box-filtered truth; 0 = lossless,
// the codec-bench convention), and the AH's encode/scale work. The
// headline acceptance: a quarter-rung viewer costs ≤ ~30% of a full-res
// viewer's bytes at identical per-class fidelity.
//
// The E20/cohort case is the CI determinism gate: five viewers across
// three rungs admitted in one tick must form exactly three cohorts, 7
// unique band encodes (4 full + 2 half + 1 quarter at 64-row bands on
// 320×240) and two scaled frames — one encode per (geometry × rung) cohort
// per tick, with no duplicate scaler work.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "rtp/rtcp.hpp"
#include "transcode/transcode.hpp"

namespace {

using namespace ads;

struct ClassSpec {
  const char* name;
  transcode::OutputGeometry geom;
};

struct WorkloadSpec {
  const char* name;
  std::int64_t width;
  std::int64_t height;
};

// Two content classes with opposite downscale economics: the webpage's
// typeset text compresses superbly at native resolution but box-averages
// into high-entropy grey, so the quarter rung keeps ~half the bytes; the
// photographic video class barely compresses at any rung, so bytes track
// pixel count and the quarter rung pays ~1/16.
constexpr WorkloadSpec kWorkloads[] = {
    {"webpage", 640, 480},
    {"video", 320, 240},
};

std::vector<ClassSpec> device_classes(const WorkloadSpec& wl) {
  return {
      {"full", {}},
      {"half", {1, {}, false}},
      {"quarter", {2, {}, false}},
      {"viewport",
       {1, {wl.width / 4, wl.height / 4, wl.width / 2, wl.height / 2}, false}},
  };
}

struct ArmStats {
  double bytes_per_viewer[4] = {0, 0, 0, 0};  ///< indexed like kClasses
  double psnr[4] = {-1, -1, -1, -1};          ///< 0 = lossless
  double diff_px[4] = {0, 0, 0, 0};
  double bytes_total = 0;
  double cohorts = 0;
  double encodes_unique = 0;
  double frames_scaled = 0;
  double scaler_cache_hits = 0;
};

ArmStats run_arm(const WorkloadSpec& wl, int per_class, bool classes_on) {
  const std::vector<ClassSpec> classes = device_classes(wl);
  AppHostOptions opts;
  opts.screen_width = wl.width;
  opts.screen_height = wl.height;
  opts.frame_interval_us = sim_ms(100);
  SharingSession session(opts);
  AppHost& host = session.host();

  const WindowId w = host.wm().create({0, 0, wl.width, wl.height}, 1);
  host.capturer().attach(w, make_app(wl.name, wl.width, wl.height, 7));

  UdpLinkConfig link;
  link.down.delay_us = 2000;
  link.down.bandwidth_bps = 100'000'000;
  link.up.delay_us = 2000;
  std::vector<SharingSession::Connection*> viewers;
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    for (int i = 0; i < per_class; ++i) {
      auto& conn = session.add_udp_participant({}, link);
      if (classes_on) {
        host.set_participant_geometry(conn.id, classes[cls].geom);
      }
      viewers.push_back(&conn);
    }
  }

  host.start();
  for (auto* v : viewers) v->participant->join();
  session.run_for(sim_sec(4));  // tiles load, a navigation or two lands
  host.stop();
  session.run_for(sim_sec(1));

  ArmStats out;
  const AppHost::Stats& s = host.stats();
  const double full_viewers =
      classes_on ? per_class : static_cast<double>(viewers.size());
  out.bytes_per_viewer[0] = static_cast<double>(s.bytes_sent_full) / full_viewers;
  if (classes_on) {
    out.bytes_per_viewer[1] = static_cast<double>(s.bytes_sent_half) / per_class;
    out.bytes_per_viewer[2] =
        static_cast<double>(s.bytes_sent_quarter) / per_class;
    out.bytes_per_viewer[3] =
        static_cast<double>(s.bytes_sent_viewport) / per_class;
  }
  out.bytes_total = static_cast<double>(s.bytes_sent);
  out.cohorts = static_cast<double>(s.fanout_cohorts);
  out.encodes_unique = static_cast<double>(s.fanout_encodes_unique);
  out.frames_scaled = static_cast<double>(host.scaler().stats().frames_scaled);
  out.scaler_cache_hits =
      static_cast<double>(host.scaler().stats().cache_hits);

  // Per-class fidelity against the geometry-transformed truth (the codec is
  // lossless, so any divergence is a transcode-path bug, not noise).
  const Image& truth = host.capturer().last_frame();
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    const transcode::OutputGeometry geom =
        classes_on ? classes[cls].geom : transcode::OutputGeometry{};
    const Image want = transcode::scale_frame(truth, geom);
    const Image got =
        viewers[cls * static_cast<std::size_t>(per_class)]
            ->participant->screen()
            .crop(want.bounds());
    const double db = psnr(want, got);
    out.psnr[cls] = std::isfinite(db) ? db : 0.0;  // 0 = lossless
    out.diff_px[cls] = static_cast<double>(diff_pixel_count(want, got));
  }
  return out;
}

void run_bench(benchmark::State& state, bool classes_on) {
  const WorkloadSpec& wl = kWorkloads[static_cast<std::size_t>(state.range(0))];
  const int per_class = static_cast<int>(state.range(1));
  const std::vector<ClassSpec> classes = device_classes(wl);
  ArmStats stats;
  for (auto _ : state) stats = run_arm(wl, per_class, classes_on);
  state.counters["per_class"] = per_class;
  for (std::size_t cls = 0; cls < classes.size(); ++cls) {
    const std::string n = classes[cls].name;
    state.counters["bytes_per_viewer_" + n] = stats.bytes_per_viewer[cls];
    state.counters["psnr_" + n] = stats.psnr[cls];
    state.counters["diff_px_" + n] = stats.diff_px[cls];
  }
  state.counters["bytes_total"] = stats.bytes_total;
  state.counters["cohorts"] = stats.cohorts;
  state.counters["encodes_unique"] = stats.encodes_unique;
  state.counters["frames_scaled"] = stats.frames_scaled;
  state.counters["scaler_cache_hits"] = stats.scaler_cache_hits;
  bench::record_counters("transcode",
                         std::string("E20/geometry/") + wl.name + "/" +
                             (classes_on ? "classes" : "fullres") + "/" +
                             std::to_string(per_class),
                         state.counters);
}

void fullres(benchmark::State& state) { run_bench(state, false); }
void classes(benchmark::State& state) { run_bench(state, true); }

BENCHMARK(fullres)
    ->Name("E20/geometry/fullres")
    ->ArgsProduct({{0, 1}, {2, 4}})  // {workload index} × {viewers per class}
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(classes)
    ->Name("E20/geometry/classes")
    ->ArgsProduct({{0, 1}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The deterministic cohort-encode gate (mirrors the
// TranscodeFlow.OneEncodePerGeometryRungCohortPerTick regression test, but
// exported as bench counters so the ASan CI smoke can assert it): five
// same-codec viewers across identity/half/quarter admitted in one tick.
void cohort(benchmark::State& state) {
  double cohorts = 0, unique = 0, shared = 0, scaled = 0;
  for (auto _ : state) {
    EventLoop loop;
    AppHostOptions opts;
    opts.screen_width = 320;
    opts.screen_height = 240;
    opts.region_band_rows = 64;
    AppHost host(loop, opts);
    const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
    host.capturer().attach(
        w, std::make_unique<SlideshowApp>(320, 240, 3, 1'000'000));
    std::vector<ParticipantId> ids;
    for (int i = 0; i < 5; ++i) {
      HostEndpoint ep;
      ep.kind = HostEndpoint::Kind::kUdp;
      ep.send_datagram = [](BytesView) { return true; };
      ids.push_back(host.add_participant(std::move(ep)));
    }
    host.set_participant_geometry(ids[2], {1, {}, false});
    host.set_participant_geometry(ids[3], {2, {}, false});
    host.set_participant_geometry(ids[4], {2, {}, false});
    const PictureLossIndication pli;
    for (ParticipantId id : ids) host.on_uplink_packet(id, pli.serialize());
    host.tick();
    host.tick();  // static tick: must add nothing
    cohorts = static_cast<double>(host.stats().fanout_cohorts);
    unique = static_cast<double>(host.stats().fanout_encodes_unique);
    shared = static_cast<double>(host.stats().fanout_encodes_shared);
    scaled = static_cast<double>(host.scaler().stats().frames_scaled);
  }
  state.counters["cohorts"] = cohorts;
  state.counters["encodes_unique"] = unique;
  state.counters["encodes_shared"] = shared;
  state.counters["frames_scaled"] = scaled;
  bench::record_counters("transcode", "E20/cohort", state.counters);
}

BENCHMARK(cohort)
    ->Name("E20/cohort")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
