// E14 — telemetry overhead.
//
// Claims under test:
//  * a hot-path counter increment (relaxed fetch_add) costs single-digit
//    nanoseconds, cheap enough for per-packet and per-band call sites;
//  * a ScopedSpan over a disabled TraceRing costs one branch — the reason
//    spans can live permanently in the AppHost tick pipeline;
//  * histogram observe() stays O(log buckets) with no locks;
//  * snapshot() is the only expensive operation, which is why collectors
//    defer all struct→registry copying to snapshot time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

telemetry::Telemetry& shared_telemetry() {
  static telemetry::Telemetry tel;
  return tel;
}

/// Batched one-shot measurement for the JSON report: the per-op cost of ops
/// in the single-digit-ns range, amortising the clock reads over `batch`
/// calls (per-iteration clocking would swamp a 2 ns fetch_add).
template <typename Fn>
double measured_ns_per_op(Fn&& op, int batch = 1 << 20) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < batch; ++i) op();
  const double total_ns = std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  return total_ns / static_cast<double>(batch);
}

void BM_CounterAdd(benchmark::State& state) {
  telemetry::Counter& c = shared_telemetry().metrics.counter("bench.hot_counter");
  for (auto _ : state) c.add();
  benchmark::DoNotOptimize(c.value());
  const double ns = measured_ns_per_op([&c] { c.add(); });
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/counter_add", {{"ns_per_op", ns}});
}

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram& h = shared_telemetry().metrics.histogram(
      "bench.hot_histogram", {10, 100, 1'000, 10'000, 100'000, 1'000'000});
  std::uint64_t v = 0;
  for (auto _ : state) h.observe(v++ % 2'000'000);
  benchmark::DoNotOptimize(h.count());
  const double ns = measured_ns_per_op([&h, &v] { h.observe(v++ % 2'000'000); });
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/histogram_observe", {{"ns_per_op", ns}});
}

void BM_SpanDisabled(benchmark::State& state) {
  telemetry::TraceRing ring;  // never enabled: the permanent-instrumentation case
  for (auto _ : state) {
    telemetry::ScopedSpan span(ring, "bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
  const double ns = measured_ns_per_op([&ring] {
    telemetry::ScopedSpan span(ring, "bench.disabled");
    benchmark::DoNotOptimize(&span);
  });
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/span_disabled", {{"ns_per_op", ns}});
}

void BM_SpanEnabled(benchmark::State& state) {
  telemetry::TraceRing ring;
  std::uint64_t clock = 0;
  ring.enable(1024, [&clock] { return ++clock; });
  for (auto _ : state) {
    telemetry::ScopedSpan span(ring, "bench.enabled");
    benchmark::DoNotOptimize(&span);
  }
  const double ns = measured_ns_per_op([&ring] {
    telemetry::ScopedSpan span(ring, "bench.enabled");
    benchmark::DoNotOptimize(&span);
  });
  benchmark::DoNotOptimize(ring.total_recorded());
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/span_enabled", {{"ns_per_op", ns}});
}

void BM_RegistryLookup(benchmark::State& state) {
  telemetry::MetricsRegistry& reg = shared_telemetry().metrics;
  for (int i = 0; i < 64; ++i) {
    reg.counter("bench.filler." + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(&reg.counter("bench.filler.32"));
  }
  const double ns = measured_ns_per_op(
      [&reg] { benchmark::DoNotOptimize(&reg.counter("bench.filler.32")); },
      1 << 16);
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/registry_lookup", {{"ns_per_op", ns}});
}

void BM_Snapshot(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (int i = 0; i < 64; ++i) {
    tel.metrics.counter("bench.c." + std::to_string(i)).add(i);
    tel.metrics.histogram("bench.h." + std::to_string(i), {10, 100, 1000})
        .observe(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    telemetry::Snapshot snap = tel.metrics.snapshot();
    benchmark::DoNotOptimize(snap);
  }
  const double ns = measured_ns_per_op(
      [&tel] {
        telemetry::Snapshot snap = tel.metrics.snapshot();
        benchmark::DoNotOptimize(snap);
      },
      1 << 10);
  state.counters["ns_per_op"] = ns;
  json_report("telemetry").record("E14/snapshot_64_metrics", {{"ns_per_op", ns}});
}

/// Drives a short instrumented session so the embedded metrics snapshot in
/// BENCH_telemetry.json shows real cross-layer content, then records the
/// per-op costs measured above. Runs last (registration order).
void BM_ReportSnapshot(benchmark::State& state) {
  telemetry::Telemetry& tel = shared_telemetry();
  for (auto _ : state) {
    tel.metrics.counter("bench.report_runs").add();
    benchmark::DoNotOptimize(&tel);
  }
  telemetry::Snapshot snap = tel.snapshot();
  state.counters["counters_in_snapshot"] = static_cast<double>(snap.counters.size());
  json_report("telemetry")
      .record("E14/snapshot_size",
              {{"counters", static_cast<double>(snap.counters.size())},
               {"histograms", static_cast<double>(snap.histograms.size())}});
  json_report("telemetry").set_metrics_json(telemetry::to_json(snap));
}

}  // namespace

BENCHMARK(BM_CounterAdd);
BENCHMARK(BM_HistogramObserve);
BENCHMARK(BM_SpanDisabled);
BENCHMARK(BM_SpanEnabled);
BENCHMARK(BM_RegistryLookup);
BENCHMARK(BM_Snapshot);
BENCHMARK(BM_ReportSnapshot);
