// E9 — compression substrate ablations.
//
// The design decisions DESIGN.md calls out for the from-scratch codec
// stack, measured on a corpus of screen tiles (PNG-filtered scanlines of
// each workload):
//   * DEFLATE level sweep (LZ77 search depth / lazy matching)
//   * forced block type: stored vs fixed vs dynamic Huffman
//   * PNG adaptive filtering on vs off
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "codec/deflate.hpp"
#include "codec/inflate.hpp"
#include "codec/png.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

/// Corpus: raw RGBA bytes of a mixed screen (terminal + document + video).
Bytes corpus() {
  static const Bytes data = [] {
    Bytes out;
    for (const char* workload : {"terminal", "document", "video"}) {
      const Image frame = workload_frame(workload, 256, 192);
      for (const Pixel& p : frame.pixels()) {
        out.push_back(p.r);
        out.push_back(p.g);
        out.push_back(p.b);
        out.push_back(p.a);
      }
    }
    return out;
  }();
  return data;
}

void deflate_levels(benchmark::State& state) {
  const int level = static_cast<int>(state.range(0));
  const Bytes input = corpus();
  Bytes compressed;
  for (auto _ : state) {
    compressed = deflate_compress(input, {.level = level});
    benchmark::DoNotOptimize(compressed);
  }
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(compressed.size());
  state.counters["bytes"] = static_cast<double>(compressed.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
  record_counters("deflate", "E9/deflate/level/" + std::to_string(level),
                  state.counters);
}

void deflate_block_types(benchmark::State& state) {
  const auto block = static_cast<DeflateOptions::Block>(state.range(0));
  const Bytes input = corpus();
  Bytes compressed;
  for (auto _ : state) {
    compressed = deflate_compress(input, {.level = 6, .block = block});
    benchmark::DoNotOptimize(compressed);
  }
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(compressed.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
  record_counters("deflate",
                  "E9/deflate/block_type/" + std::to_string(state.range(0)),
                  state.counters);
}

void inflate_speed(benchmark::State& state) {
  const Bytes input = corpus();
  const Bytes compressed = deflate_compress(input, {.level = 6});
  for (auto _ : state) {
    auto out = inflate(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}

void png_filters(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  const Image frame = workload_frame("document", 512, 384);
  Bytes encoded;
  for (auto _ : state) {
    encoded = png_encode(frame, PngOptions{.deflate = {.level = 6},
                                           .rgba = true,
                                           .adaptive_filters = adaptive});
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["bytes"] = static_cast<double>(encoded.size());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512 * 384 *
                          4);
  record_counters("deflate",
                  std::string("E9/png/adaptive_filters/") +
                      (adaptive ? "on" : "off"),
                  state.counters);
}

BENCHMARK(deflate_levels)
    ->Name("E9/deflate/level")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(deflate_block_types)
    ->Name("E9/deflate/block_type")  // 1=stored, 2=fixed, 3=dynamic
    ->Arg(static_cast<int>(DeflateOptions::Block::kStored))
    ->Arg(static_cast<int>(DeflateOptions::Block::kFixed))
    ->Arg(static_cast<int>(DeflateOptions::Block::kDynamic))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(inflate_speed)->Name("E9/inflate")->Unit(benchmark::kMillisecond);
BENCHMARK(png_filters)
    ->Name("E9/png/adaptive_filters")  // 0=off, 1=on
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
