// E23 — self-healing relay trees: subtree blackout and resync cost.
//
// A depth-3 cascade (AH → r1 → r2 → r3 → leaf viewer) streams a terminal
// workload next to a direct AH viewer that serves as the oracle. At a
// scripted instant the middle relay crashes cold and stays down: r3's
// liveness watchdog must detect the silence, escalate through its probe
// ladder, hand the orphaned subtree to the session's failover ladder
// (re-parent under r1) and resync through the §4.4 late-join path. The
// virtual clock makes every window exact:
//
//   blackout_ms — crash instant -> first media packet at the leaf viewer
//   detect_ms   — upstream silence span when the watchdog declared death
//   resync_ms   — adoption -> first post-epoch keyframe packet forwarded
//   identity_ms — crash instant -> leaf replica pixel-identical to the
//                 direct viewer's (and to the AH truth frame)
//
// The acceptance claim mirrored in CI: the blackout is bounded by the
// watchdog budget (timeout + probes) plus one full-refresh interval, and
// after the failover the leaf's decoded stream is byte-identical to the
// direct viewer's with zero decode errors — no stale repair crossed the
// epoch.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_common.hpp"
#include "capture/apps.hpp"
#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace ads;
using chaos::FaultSchedule;

constexpr SimTime kTick = sim_ms(100);
constexpr SimTime kCrashAt = sim_sec(2);
constexpr SimTime kSettleWindow = sim_sec(5);

struct FailoverResult {
  SimTime blackout_us = 0;   ///< media gap at the leaf across the failover
  SimTime identity_us = 0;   ///< crash -> leaf pixel-identical to direct
  SimTime detect_us = 0;
  SimTime resync_us = 0;
  bool media_resumed = false;
  bool converged = false;
  std::uint64_t leaf_direct_diff_px = 0;  ///< final leaf-vs-direct pixel diff
  Participant::Stats leaf;
  std::uint64_t failover_lost_packets = 0;
  std::uint64_t cache_dropped = 0;
  std::uint64_t frozen_drops = 0;
  std::uint64_t failovers = 0;
};

FailoverResult run_case(std::uint64_t seed) {
  AppHostOptions hopts;
  hopts.screen_width = 320;
  hopts.screen_height = 240;
  hopts.frame_interval_us = kTick;
  SharingSession session(hopts);
  AppHost& host = session.host();
  const WindowId w = host.wm().create({0, 0, 320, 240}, 1);
  host.capturer().attach(w, std::make_unique<TerminalApp>(320, 240, 5));

  relay::RelayOptions ropts;
  ropts.report_interval_us = sim_ms(200);
  ropts.nack_flush_us = sim_ms(5);
  ropts.nack_holdoff_us = sim_ms(300);
  ropts.upstream_timeout_us = sim_ms(500);
  ropts.probe_interval_us = sim_ms(100);
  ropts.probe_count = 2;
  ropts.seed = 0xE23 ^ seed;
  auto& r1 = session.add_relay(ropts);
  auto& r2 = session.add_relay_child(r1, ropts);
  auto& r3 = session.add_relay_child(r2, ropts);

  ParticipantOptions popts;
  popts.screen_width = 320;
  popts.screen_height = 240;
  auto& leaf = session.add_relay_viewer(r3, popts);
  auto& direct = session.add_udp_participant(popts);
  direct.participant->join();
  PictureLossIndication pli;
  host.on_uplink_packet(r1.upstream_id, pli.serialize());

  // The scripted fault: r2 dies cold at kCrashAt and never restarts — the
  // subtree's only way back is the failover ladder.
  FaultSchedule faults(session.loop(), seed, &session.telemetry());
  faults.relay_crash(kCrashAt, sim_ms(1),
                     [&session, &r2] { session.crash_relay(r2); });

  // Blackout probe: from the crash instant, poll the leaf's packet counter
  // every 10ms and record the first arrival after the silence.
  FailoverResult out;
  std::uint64_t packets_at_crash = 0;
  session.loop().at(kCrashAt, [&] {
    packets_at_crash = leaf.participant->stats().rtp_packets;
  });
  for (SimTime t = kCrashAt + sim_ms(10); t <= kCrashAt + kSettleWindow;
       t += sim_ms(10)) {
    session.loop().at(t, [&, t] {
      if (out.media_resumed) return;
      if (leaf.participant->stats().rtp_packets > packets_at_crash) {
        out.media_resumed = true;
        out.blackout_us = t - kCrashAt;
      }
    });
  }
  // Identity probe: once per tick, late enough in the tick (90 of 100ms)
  // that the frame has crossed every 20ms relay hop; the leaf replica must
  // match both the direct viewer and the AH truth frame.
  for (SimTime t = kCrashAt + kTick; t <= kCrashAt + kSettleWindow; t += kTick) {
    const SimTime probe = ((t / kTick) * kTick) + kTick - sim_ms(10);
    session.loop().at(probe, [&, probe] {
      if (out.converged) return;
      const Image& truth = host.capturer().last_frame();
      const Rect view{0, 0, truth.width(), truth.height()};
      const Image leaf_img = leaf.participant->screen().crop(view);
      const Image direct_img = direct.participant->screen().crop(view);
      if (diff_pixel_count(truth, leaf_img) == 0 &&
          diff_pixel_count(leaf_img, direct_img) == 0) {
        out.converged = true;
        out.identity_us = probe - kCrashAt;
      }
    });
  }

  host.start();
  session.loop().run_until(kCrashAt + kSettleWindow + kTick);
  host.stop();
  // Drain in flight but stay inside the watchdog grace period, or the
  // stopped AH would trigger a second (spurious) round of failovers.
  session.run_for(sim_ms(300));

  const Image& truth = host.capturer().last_frame();
  const Rect view{0, 0, truth.width(), truth.height()};
  out.leaf_direct_diff_px = static_cast<std::uint64_t>(
      diff_pixel_count(leaf.participant->screen().crop(view),
                       direct.participant->screen().crop(view)));
  out.detect_us = r3.node->last_detect_latency_us();
  out.resync_us = r3.node->last_resync_duration_us();
  out.leaf = leaf.participant->stats();
  const relay::RelayNode::Stats& rs = r3.node->stats();
  out.failover_lost_packets = rs.failover_lost_packets;
  out.cache_dropped = rs.cache_dropped;
  out.frozen_drops = rs.frozen_drops;
  out.failovers = session.relay_failovers();
  bench::json_report("relay_failover")
      .set_metrics_json(telemetry::to_json(session.telemetry().snapshot()));
  return out;
}

void relay_failover(benchmark::State& state) {
  const std::uint64_t seed = static_cast<std::uint64_t>(state.range(0));
  FailoverResult r;
  for (auto _ : state) r = run_case(seed);

  state.counters["blackout_ms"] =
      r.media_resumed ? static_cast<double>(r.blackout_us) / 1000.0 : -1.0;
  state.counters["identity_ms"] =
      r.converged ? static_cast<double>(r.identity_us) / 1000.0 : -1.0;
  state.counters["detect_ms"] = static_cast<double>(r.detect_us) / 1000.0;
  state.counters["resync_ms"] = static_cast<double>(r.resync_us) / 1000.0;
  state.counters["converged"] = r.converged ? 1 : 0;
  state.counters["leaf_direct_diff_px"] =
      static_cast<double>(r.leaf_direct_diff_px);
  state.counters["leaf_decode_errors"] = static_cast<double>(r.leaf.decode_errors);
  state.counters["leaf_rtp_packets"] = static_cast<double>(r.leaf.rtp_packets);
  state.counters["failovers"] = static_cast<double>(r.failovers);
  state.counters["failover_lost_packets"] =
      static_cast<double>(r.failover_lost_packets);
  state.counters["cache_dropped"] = static_cast<double>(r.cache_dropped);
  state.counters["frozen_drops"] = static_cast<double>(r.frozen_drops);
  bench::record_counters("relay_failover",
                         "E23/failover/seed" + std::to_string(seed),
                         state.counters);
}

}  // namespace

BENCHMARK(relay_failover)
    ->Name("E23/relay_failover")
    ->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
