// E19 — flash-crowd late-join: checkpoint snapshot service vs naive
// per-joiner refresh (docs/LATEJOIN.md).
//
// A warm session goes static, then a join flood (chaos::kJoinFlood
// scripting, fixed seed) lands a cohort of N joiners inside one refresh
// window. Both arms measure join-to-first-frame latency per joiner and the
// AH's encode work across the wave:
//
//   * naive    — snapshots off; every joiner's PLI triggers its own
//                full-screen encode, so bands encoded grow linearly in N.
//   * snapshot — the first PLI opens the window, the cohort shares one
//                checkpoint bundle, and bands encoded stay flat in N.
//
// The content is static after warm-up, so post-warm-up encodes are refresh
// encodes only and the flat-vs-linear signal is exact, not a timing
// heuristic. The CI smoke asserts ≤1 cohort encode per join wave on the
// snapshot arm and the linear blow-up on the naive arm.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chaos/fault_schedule.hpp"
#include "core/session.hpp"
#include "telemetry/export.hpp"

namespace {

using namespace ads;

constexpr std::int64_t kWidth = 640;
constexpr std::int64_t kHeight = 480;

struct FloodStats {
  double joined = 0;             ///< joiners that reached a full frame
  double join_ms_mean = -1;      ///< PLI → full-frame latency, cohort mean
  double join_ms_max = -1;
  double bands_encoded_wave = 0; ///< unique encodes across the wave
  double bands_requested_wave = 0;  ///< per-joiner encoder consultations
  double bundles_built = 0;
  double windows_opened = 0;
  double encodes_saved = 0;
  double shared = 0;
  double fallback = 0;
};

FloodStats run_flood(int cohort, bool snapshot_on) {
  AppHostOptions opts;
  opts.screen_width = kWidth;
  opts.screen_height = kHeight;
  opts.frame_interval_us = sim_ms(100);
  // The naive arm is the true pre-cohort baseline: per-participant fan-out,
  // where every joiner's refresh is encoded and packetised on its own. The
  // snapshot arm layers the checkpoint service on the shared cohort path.
  opts.shared_fanout = snapshot_on;
  opts.snapshot.enabled = snapshot_on;
  opts.snapshot.refresh_interval_us = sim_ms(300);
  SharingSession session(opts);
  AppHost& host = session.host();

  // Static after the first paint: every post-warm-up encode is a refresh.
  const WindowId w = host.wm().create({0, 0, kWidth, kHeight}, 1);
  host.capturer().attach(
      w, std::make_unique<SlideshowApp>(kWidth, kHeight, 3, 1'000'000));
  host.start();
  session.run_for(sim_sec(1));

  UdpLinkConfig link;
  link.down.delay_us = 20'000;
  link.down.bandwidth_bps = 50'000'000;
  link.up.delay_us = 20'000;
  ParticipantOptions popts;
  popts.starvation_timeout_us = 0;  // the wave is scripted; no organic re-PLIs
  std::vector<SharingSession::Connection*> crowd;
  for (int i = 0; i < cohort; ++i) {
    crowd.push_back(&session.add_udp_participant(popts, link));
  }

  const telemetry::Snapshot before = session.telemetry().snapshot();

  // The flood: the whole cohort joins across a 150ms window — inside one
  // 300ms refresh window on the snapshot arm.
  std::vector<SimTime> join_at(static_cast<std::size_t>(cohort), 0);
  chaos::FaultSchedule faults(session.loop(), /*seed=*/17);
  faults.join_flood(session.loop().now(), sim_ms(150),
                    static_cast<std::size_t>(cohort), [&](std::size_t i) {
                      join_at[i] = session.loop().now();
                      crowd[i]->participant->join();
                    });
  session.run_for(sim_sec(4));
  host.stop();
  session.run_for(sim_sec(1));

  FloodStats out;
  const telemetry::Snapshot after = session.telemetry().snapshot();
  // The EncodedRegionCache already dedupes the actual codec runs, so the
  // flat-vs-linear signal is the per-joiner encoder *requests*: the naive
  // arm consults the encoder (cache included) for every joiner's bands,
  // while the snapshot arm serves the cohort from the bundle and never
  // issues them at all.
  out.bands_encoded_wave =
      static_cast<double>(after.counter("encoder.bands_encoded") -
                          before.counter("encoder.bands_encoded"));
  out.bands_requested_wave =
      static_cast<double>(after.counter("encoder.bands_requested") -
                          before.counter("encoder.bands_requested"));
  const auto& sn = host.snapshot_service().stats();
  out.bundles_built = static_cast<double>(sn.bundles_built);
  out.windows_opened = static_cast<double>(sn.windows_opened);
  out.encodes_saved = static_cast<double>(sn.encodes_saved);
  out.shared = static_cast<double>(host.stats().join_shared_refreshes);
  out.fallback = static_cast<double>(host.stats().join_fallback_refreshes);

  // Join-to-first-frame: the refresh arrives as full-width bands; a join
  // completes when their cumulative area covers the screen.
  double sum_ms = 0;
  for (std::size_t i = 0; i < crowd.size(); ++i) {
    std::int64_t covered = 0;
    for (const auto& d : crowd[i]->participant->drain_deliveries()) {
      if (d.arrived_us <= join_at[i] || d.region.width != kWidth) continue;
      covered += d.region.area();
      if (covered >= kWidth * kHeight) {
        const double ms =
            static_cast<double>(d.arrived_us - join_at[i]) / 1000.0;
        sum_ms += ms;
        out.join_ms_max = std::max(out.join_ms_max, ms);
        out.joined += 1;
        break;
      }
    }
  }
  if (out.joined > 0) out.join_ms_mean = sum_ms / out.joined;
  return out;
}

void run_bench(benchmark::State& state, bool snapshot_on) {
  const int cohort = static_cast<int>(state.range(0));
  FloodStats stats;
  for (auto _ : state) stats = run_flood(cohort, snapshot_on);
  state.counters["cohort"] = cohort;
  state.counters["joined"] = stats.joined;
  state.counters["join_ms_mean"] = stats.join_ms_mean;
  state.counters["join_ms_max"] = stats.join_ms_max;
  state.counters["bands_encoded_wave"] = stats.bands_encoded_wave;
  state.counters["bands_requested_wave"] = stats.bands_requested_wave;
  state.counters["bundles_built"] = stats.bundles_built;
  state.counters["windows_opened"] = stats.windows_opened;
  state.counters["encodes_saved"] = stats.encodes_saved;
  state.counters["shared_refreshes"] = stats.shared;
  state.counters["fallback_refreshes"] = stats.fallback;
  bench::record_counters("latejoin_flood",
                         std::string("E19/flood/") +
                             (snapshot_on ? "snapshot" : "naive") + "/" +
                             std::to_string(cohort),
                         state.counters);
}

void naive(benchmark::State& state) { run_bench(state, false); }
void snapshot(benchmark::State& state) { run_bench(state, true); }

BENCHMARK(naive)
    ->Name("E19/flood/naive")
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(snapshot)
    ->Name("E19/flood/snapshot")
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
