// E12 — multicast vs unicast fan-out (draft §4.2/§4.3).
//
// The same terminal session is delivered to N receivers two ways:
//   * unicast — one UDP stream per participant (the E6 configuration);
//   * multicast — one AH stream replicated by the network.
// Counter `ah_sent_bytes` shows the AH-side transmission cost: constant for
// multicast, linear in N for unicast. Convergence is verified in both.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/session.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;

AppHostOptions small_host() {
  AppHostOptions opts;
  opts.screen_width = 320;
  opts.screen_height = 240;
  opts.frame_interval_us = sim_ms(100);
  return opts;
}

UdpChannelOptions member_link(std::uint64_t seed) {
  UdpChannelOptions opts;
  opts.delay_us = 10'000;
  opts.bandwidth_bps = 50'000'000;
  opts.seed = seed;
  return opts;
}

void unicast(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  std::uint64_t ah_bytes = 0;
  int converged = 0;
  for (auto _ : state) {
    SharingSession session(small_host());
    AppHost& host = session.host();
    const WindowId w = host.wm().create({8, 8, 240, 180}, 1);
    host.capturer().attach(w, std::make_unique<TerminalApp>(240, 180, 5));
    for (int i = 0; i < members; ++i) {
      UdpLinkConfig link;
      link.down = member_link(200 + static_cast<std::uint64_t>(i));
      auto& conn = session.add_udp_participant({}, link);
      conn.participant->join();
    }
    host.start();
    session.run_for(sim_sec(4));
    host.stop();
    session.run_for(sim_sec(1));
    ah_bytes = host.stats().bytes_sent;
    converged = 0;
    const Image& truth = host.capturer().last_frame();
    for (const auto& conn : session.connections()) {
      const Image replica =
          conn->participant->screen().crop({0, 0, truth.width(), truth.height()});
      if (diff_pixel_count(truth, replica) == 0) ++converged;
    }
  }
  state.counters["ah_sent_bytes"] = static_cast<double>(ah_bytes);
  state.counters["converged"] = converged;
  bench::record_counters("multicast",
                         "E12/fanout/unicast/" + std::to_string(members),
                         state.counters);
}

void multicast(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  std::uint64_t ah_bytes = 0;
  int converged = 0;
  for (auto _ : state) {
    SharingSession session(small_host());
    AppHost& host = session.host();
    const WindowId w = host.wm().create({8, 8, 240, 180}, 1);
    host.capturer().attach(w, std::make_unique<TerminalApp>(240, 180, 5));
    auto& mc = session.add_multicast_session();
    for (int i = 0; i < members; ++i) {
      session.add_multicast_member(mc, {},
                                   member_link(300 + static_cast<std::uint64_t>(i)));
    }
    mc.members.front()->participant->join();
    host.start();
    session.run_for(sim_sec(4));
    host.stop();
    session.run_for(sim_sec(1));
    ah_bytes = host.stats().bytes_sent;
    converged = 0;
    const Image& truth = host.capturer().last_frame();
    for (const auto& m : mc.members) {
      const Image replica =
          m->participant->screen().crop({0, 0, truth.width(), truth.height()});
      if (diff_pixel_count(truth, replica) == 0) ++converged;
    }
  }
  state.counters["ah_sent_bytes"] = static_cast<double>(ah_bytes);
  state.counters["converged"] = converged;
  bench::record_counters("multicast",
                         "E12/fanout/multicast/" + std::to_string(members),
                         state.counters);
}

BENCHMARK(unicast)
    ->Name("E12/fanout/unicast")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(multicast)
    ->Name("E12/fanout/multicast")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
