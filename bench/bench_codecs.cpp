// E1 — codec choice per content class (draft §4.2).
//
// Claim under test: "PNG is an open image format which uses a lossless
// compression algorithm and more suitable for computer generated images.
// JPEG is lossy, but more suitable for photographic images."
//
// Rows: {terminal, slideshow, document, paint = computer-generated} and
// {video = photographic} frames, each encoded with raw / rle / png / dct.
// Counters: encoded bytes per frame, compression ratio, and PSNR (inf for
// lossless codecs, reported as 0 here).
#include <benchmark/benchmark.h>

#include <cmath>
#include <map>
#include <string>
#include "bench_common.hpp"
#include "codec/dct_codec.hpp"
#include "codec/registry.hpp"
#include "image/metrics.hpp"

namespace {

using namespace ads;
using namespace ads::bench;

constexpr std::int64_t kW = 320;
constexpr std::int64_t kH = 240;

const Image& frame_for(const std::string& workload) {
  static std::map<std::string, Image> cache;
  auto it = cache.find(workload);
  if (it == cache.end()) {
    it = cache.emplace(workload, workload_frame(workload, kW, kH)).first;
  }
  return it->second;
}

void run_codec(benchmark::State& state, const std::string& name,
               const std::string& workload, ContentPt pt) {
  const auto registry = CodecRegistry::with_defaults();
  const ImageCodec* codec = registry.find(pt);
  const Image& frame = frame_for(workload);

  Bytes encoded;
  for (auto _ : state) {
    encoded = codec->encode(frame);
    auto decoded = codec->decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }

  auto decoded = codec->decode(encoded);
  const double raw_bytes = static_cast<double>(kW * kH * 4);
  state.counters["bytes"] = static_cast<double>(encoded.size());
  state.counters["ratio"] = raw_bytes / static_cast<double>(encoded.size());
  const double quality = psnr(frame, *decoded);
  state.counters["psnr_db"] = std::isinf(quality) ? 0.0 : quality;  // 0 = lossless
  state.counters["lossless"] = codec->lossless() ? 1 : 0;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kW * kH * 4);
  json_report("codecs").record(name, {{"bytes", state.counters["bytes"]},
                                      {"ratio", state.counters["ratio"]},
                                      {"psnr_db", state.counters["psnr_db"]},
                                      {"lossless", state.counters["lossless"]}});
}

void register_all() {
  static const char* workloads[] = {"terminal", "slideshow", "document", "paint",
                                    "video"};
  static const std::pair<const char*, ContentPt> codecs[] = {
      {"raw", ContentPt::kRaw},
      {"rle", ContentPt::kRle},
      {"png", ContentPt::kPng},
      {"dct", ContentPt::kDct},
  };
  for (const char* workload : workloads) {
    for (const auto& [cname, pt] : codecs) {
      const std::string name = std::string("E1/") + workload + "/" + cname;
      benchmark::RegisterBenchmark(
          name.c_str(), [name, workload = std::string(workload), pt](
                            benchmark::State& s) { run_codec(s, name, workload, pt); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

const int registered = (register_all(), 0);

// E1b — the DCT codec's rate-distortion curve on photographic content: the
// quality knob a deployment would use to fit the §4.3 rate budget.
void dct_rd_curve(benchmark::State& state) {
  const int quality = static_cast<int>(state.range(0));
  const Image& frame = frame_for("video");
  const DctCodec codec({.quality = quality});
  Bytes encoded;
  for (auto _ : state) {
    encoded = codec.encode(frame);
    benchmark::DoNotOptimize(encoded);
  }
  auto decoded = codec.decode(encoded);
  state.counters["bytes"] = static_cast<double>(encoded.size());
  state.counters["psnr_db"] = psnr(frame, *decoded);
  state.counters["kbps_at_10fps"] =
      static_cast<double>(encoded.size()) * 8 * 10 / 1000.0;
  json_report("codecs").record(
      "E1b/dct_rate_distortion/" + std::to_string(quality),
      {{"bytes", state.counters["bytes"]},
       {"psnr_db", state.counters["psnr_db"]},
       {"kbps_at_10fps", state.counters["kbps_at_10fps"]}});
}

BENCHMARK(dct_rd_curve)
    ->Name("E1b/dct_rate_distortion")
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

}  // namespace
