// E7 — RegionUpdate fragmentation across the MTU sweep (draft §5.2.2,
// Table 2).
//
// Content sizes from 1 KB to 4 MB are fragmented at MTUs 576 / 1200 / 1500 /
// 9000 and reassembled. Measured: fragment+reassembly throughput, packet
// count, and header overhead percentage (the cost of the repeated common
// remoting/HIP header on every continuation packet).
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "remoting/region_update.hpp"
#include "util/prng.hpp"

namespace {

using namespace ads;

RegionUpdate make_message(std::size_t content_size) {
  RegionUpdate msg;
  msg.window_id = 1;
  msg.content_pt = 98;
  msg.left = 100;
  msg.top = 100;
  msg.content.resize(content_size);
  Prng rng(content_size);
  for (auto& b : msg.content) b = static_cast<std::uint8_t>(rng.next_u32());
  return msg;
}

void fragmentation(benchmark::State& state) {
  const std::size_t content_size = static_cast<std::size_t>(state.range(0)) * 1024;
  const std::size_t mtu = static_cast<std::size_t>(state.range(1));
  const RegionUpdate msg = make_message(content_size);

  std::size_t packets = 0;
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    auto frags = fragment_region_update(msg, mtu);
    packets = frags.size();
    wire_bytes = 0;
    RegionUpdateReassembler reasm;
    for (const auto& f : frags) {
      wire_bytes += f.payload.size() + 12;  // + RTP header per packet
      auto result = reasm.feed(f.payload, f.marker);
      benchmark::DoNotOptimize(result);
    }
  }

  state.counters["packets"] = static_cast<double>(packets);
  state.counters["overhead_pct"] =
      100.0 * (static_cast<double>(wire_bytes) - static_cast<double>(content_size)) /
      static_cast<double>(content_size);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(content_size));
  bench::record_counters("fragmentation",
                         "E7/fragmentation/" + std::to_string(state.range(0)) +
                             "kb/mtu:" + std::to_string(mtu),
                         state.counters);
}

BENCHMARK(fragmentation)
    ->Name("E7/fragmentation")
    ->ArgsProduct({{1, 16, 64, 256, 1024, 4096}, {576, 1200, 1500, 9000}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
