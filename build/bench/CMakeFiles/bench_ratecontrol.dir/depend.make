# Empty dependencies file for bench_ratecontrol.
# This may be replaced when dependencies are built.
