file(REMOVE_RECURSE
  "CMakeFiles/bench_ratecontrol.dir/bench_ratecontrol.cpp.o"
  "CMakeFiles/bench_ratecontrol.dir/bench_ratecontrol.cpp.o.d"
  "bench_ratecontrol"
  "bench_ratecontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratecontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
