# Empty dependencies file for bench_nack.
# This may be replaced when dependencies are built.
