file(REMOVE_RECURSE
  "CMakeFiles/bench_nack.dir/bench_nack.cpp.o"
  "CMakeFiles/bench_nack.dir/bench_nack.cpp.o.d"
  "bench_nack"
  "bench_nack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
