# Empty compiler generated dependencies file for bench_backlog.
# This may be replaced when dependencies are built.
