file(REMOVE_RECURSE
  "CMakeFiles/bench_backlog.dir/bench_backlog.cpp.o"
  "CMakeFiles/bench_backlog.dir/bench_backlog.cpp.o.d"
  "bench_backlog"
  "bench_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
