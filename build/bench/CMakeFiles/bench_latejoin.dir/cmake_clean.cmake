file(REMOVE_RECURSE
  "CMakeFiles/bench_latejoin.dir/bench_latejoin.cpp.o"
  "CMakeFiles/bench_latejoin.dir/bench_latejoin.cpp.o.d"
  "bench_latejoin"
  "bench_latejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
