# Empty compiler generated dependencies file for bench_latejoin.
# This may be replaced when dependencies are built.
