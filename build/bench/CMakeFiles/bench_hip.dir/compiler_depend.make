# Empty compiler generated dependencies file for bench_hip.
# This may be replaced when dependencies are built.
