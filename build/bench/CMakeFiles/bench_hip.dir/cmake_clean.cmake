file(REMOVE_RECURSE
  "CMakeFiles/bench_hip.dir/bench_hip.cpp.o"
  "CMakeFiles/bench_hip.dir/bench_hip.cpp.o.d"
  "bench_hip"
  "bench_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
