file(REMOVE_RECURSE
  "CMakeFiles/bench_deflate.dir/bench_deflate.cpp.o"
  "CMakeFiles/bench_deflate.dir/bench_deflate.cpp.o.d"
  "bench_deflate"
  "bench_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
