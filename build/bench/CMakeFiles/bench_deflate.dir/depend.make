# Empty dependencies file for bench_deflate.
# This may be replaced when dependencies are built.
