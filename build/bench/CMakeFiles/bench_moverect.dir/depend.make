# Empty dependencies file for bench_moverect.
# This may be replaced when dependencies are built.
