file(REMOVE_RECURSE
  "CMakeFiles/bench_moverect.dir/bench_moverect.cpp.o"
  "CMakeFiles/bench_moverect.dir/bench_moverect.cpp.o.d"
  "bench_moverect"
  "bench_moverect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_moverect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
