# Empty compiler generated dependencies file for lossy_remote_desktop.
# This may be replaced when dependencies are built.
