file(REMOVE_RECURSE
  "CMakeFiles/lossy_remote_desktop.dir/lossy_remote_desktop.cpp.o"
  "CMakeFiles/lossy_remote_desktop.dir/lossy_remote_desktop.cpp.o.d"
  "lossy_remote_desktop"
  "lossy_remote_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_remote_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
