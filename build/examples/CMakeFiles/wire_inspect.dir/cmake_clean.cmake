file(REMOVE_RECURSE
  "CMakeFiles/wire_inspect.dir/wire_inspect.cpp.o"
  "CMakeFiles/wire_inspect.dir/wire_inspect.cpp.o.d"
  "wire_inspect"
  "wire_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
