# Empty compiler generated dependencies file for wire_inspect.
# This may be replaced when dependencies are built.
