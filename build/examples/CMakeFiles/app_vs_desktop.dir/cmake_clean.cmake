file(REMOVE_RECURSE
  "CMakeFiles/app_vs_desktop.dir/app_vs_desktop.cpp.o"
  "CMakeFiles/app_vs_desktop.dir/app_vs_desktop.cpp.o.d"
  "app_vs_desktop"
  "app_vs_desktop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_vs_desktop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
