# Empty dependencies file for app_vs_desktop.
# This may be replaced when dependencies are built.
