# Empty dependencies file for layout_remap.
# This may be replaced when dependencies are built.
