file(REMOVE_RECURSE
  "CMakeFiles/layout_remap.dir/layout_remap.cpp.o"
  "CMakeFiles/layout_remap.dir/layout_remap.cpp.o.d"
  "layout_remap"
  "layout_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
