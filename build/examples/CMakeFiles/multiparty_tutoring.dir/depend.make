# Empty dependencies file for multiparty_tutoring.
# This may be replaced when dependencies are built.
