file(REMOVE_RECURSE
  "CMakeFiles/multiparty_tutoring.dir/multiparty_tutoring.cpp.o"
  "CMakeFiles/multiparty_tutoring.dir/multiparty_tutoring.cpp.o.d"
  "multiparty_tutoring"
  "multiparty_tutoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiparty_tutoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
