# Empty compiler generated dependencies file for ads_net.
# This may be replaced when dependencies are built.
