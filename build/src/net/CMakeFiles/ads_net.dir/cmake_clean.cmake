file(REMOVE_RECURSE
  "CMakeFiles/ads_net.dir/event_loop.cpp.o"
  "CMakeFiles/ads_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/ads_net.dir/tcp_channel.cpp.o"
  "CMakeFiles/ads_net.dir/tcp_channel.cpp.o.d"
  "CMakeFiles/ads_net.dir/udp_channel.cpp.o"
  "CMakeFiles/ads_net.dir/udp_channel.cpp.o.d"
  "libads_net.a"
  "libads_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
