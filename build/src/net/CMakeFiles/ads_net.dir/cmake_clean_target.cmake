file(REMOVE_RECURSE
  "libads_net.a"
)
