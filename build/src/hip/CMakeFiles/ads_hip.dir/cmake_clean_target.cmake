file(REMOVE_RECURSE
  "libads_hip.a"
)
