# Empty compiler generated dependencies file for ads_hip.
# This may be replaced when dependencies are built.
