file(REMOVE_RECURSE
  "CMakeFiles/ads_hip.dir/keycodes.cpp.o"
  "CMakeFiles/ads_hip.dir/keycodes.cpp.o.d"
  "CMakeFiles/ads_hip.dir/messages.cpp.o"
  "CMakeFiles/ads_hip.dir/messages.cpp.o.d"
  "CMakeFiles/ads_hip.dir/utf8.cpp.o"
  "CMakeFiles/ads_hip.dir/utf8.cpp.o.d"
  "libads_hip.a"
  "libads_hip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_hip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
