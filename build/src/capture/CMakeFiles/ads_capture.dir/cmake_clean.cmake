file(REMOVE_RECURSE
  "CMakeFiles/ads_capture.dir/apps.cpp.o"
  "CMakeFiles/ads_capture.dir/apps.cpp.o.d"
  "CMakeFiles/ads_capture.dir/screen_capturer.cpp.o"
  "CMakeFiles/ads_capture.dir/screen_capturer.cpp.o.d"
  "libads_capture.a"
  "libads_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
