file(REMOVE_RECURSE
  "libads_capture.a"
)
