# Empty compiler generated dependencies file for ads_capture.
# This may be replaced when dependencies are built.
