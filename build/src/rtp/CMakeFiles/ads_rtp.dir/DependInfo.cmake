
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/framing.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/framing.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/framing.cpp.o.d"
  "/root/repo/src/rtp/reorder_buffer.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/reorder_buffer.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/reorder_buffer.cpp.o.d"
  "/root/repo/src/rtp/retransmission_cache.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/retransmission_cache.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/retransmission_cache.cpp.o.d"
  "/root/repo/src/rtp/rtcp.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/rtcp.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/rtcp.cpp.o.d"
  "/root/repo/src/rtp/rtp_packet.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/rtp_packet.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/rtp_packet.cpp.o.d"
  "/root/repo/src/rtp/rtp_session.cpp" "src/rtp/CMakeFiles/ads_rtp.dir/rtp_session.cpp.o" "gcc" "src/rtp/CMakeFiles/ads_rtp.dir/rtp_session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
