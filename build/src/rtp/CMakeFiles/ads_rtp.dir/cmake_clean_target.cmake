file(REMOVE_RECURSE
  "libads_rtp.a"
)
