file(REMOVE_RECURSE
  "CMakeFiles/ads_rtp.dir/framing.cpp.o"
  "CMakeFiles/ads_rtp.dir/framing.cpp.o.d"
  "CMakeFiles/ads_rtp.dir/reorder_buffer.cpp.o"
  "CMakeFiles/ads_rtp.dir/reorder_buffer.cpp.o.d"
  "CMakeFiles/ads_rtp.dir/retransmission_cache.cpp.o"
  "CMakeFiles/ads_rtp.dir/retransmission_cache.cpp.o.d"
  "CMakeFiles/ads_rtp.dir/rtcp.cpp.o"
  "CMakeFiles/ads_rtp.dir/rtcp.cpp.o.d"
  "CMakeFiles/ads_rtp.dir/rtp_packet.cpp.o"
  "CMakeFiles/ads_rtp.dir/rtp_packet.cpp.o.d"
  "CMakeFiles/ads_rtp.dir/rtp_session.cpp.o"
  "CMakeFiles/ads_rtp.dir/rtp_session.cpp.o.d"
  "libads_rtp.a"
  "libads_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
