# Empty dependencies file for ads_rtp.
# This may be replaced when dependencies are built.
