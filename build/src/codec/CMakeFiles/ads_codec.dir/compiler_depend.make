# Empty compiler generated dependencies file for ads_codec.
# This may be replaced when dependencies are built.
