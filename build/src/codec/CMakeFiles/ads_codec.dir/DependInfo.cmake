
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitstream.cpp" "src/codec/CMakeFiles/ads_codec.dir/bitstream.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/bitstream.cpp.o.d"
  "/root/repo/src/codec/dct_codec.cpp" "src/codec/CMakeFiles/ads_codec.dir/dct_codec.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/dct_codec.cpp.o.d"
  "/root/repo/src/codec/deflate.cpp" "src/codec/CMakeFiles/ads_codec.dir/deflate.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/deflate.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/ads_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/inflate.cpp" "src/codec/CMakeFiles/ads_codec.dir/inflate.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/inflate.cpp.o.d"
  "/root/repo/src/codec/png.cpp" "src/codec/CMakeFiles/ads_codec.dir/png.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/png.cpp.o.d"
  "/root/repo/src/codec/raw_codec.cpp" "src/codec/CMakeFiles/ads_codec.dir/raw_codec.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/raw_codec.cpp.o.d"
  "/root/repo/src/codec/registry.cpp" "src/codec/CMakeFiles/ads_codec.dir/registry.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/registry.cpp.o.d"
  "/root/repo/src/codec/rle_codec.cpp" "src/codec/CMakeFiles/ads_codec.dir/rle_codec.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/rle_codec.cpp.o.d"
  "/root/repo/src/codec/zlib.cpp" "src/codec/CMakeFiles/ads_codec.dir/zlib.cpp.o" "gcc" "src/codec/CMakeFiles/ads_codec.dir/zlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ads_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
