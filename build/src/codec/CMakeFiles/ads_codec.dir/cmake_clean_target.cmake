file(REMOVE_RECURSE
  "libads_codec.a"
)
