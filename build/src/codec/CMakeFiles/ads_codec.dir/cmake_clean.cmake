file(REMOVE_RECURSE
  "CMakeFiles/ads_codec.dir/bitstream.cpp.o"
  "CMakeFiles/ads_codec.dir/bitstream.cpp.o.d"
  "CMakeFiles/ads_codec.dir/dct_codec.cpp.o"
  "CMakeFiles/ads_codec.dir/dct_codec.cpp.o.d"
  "CMakeFiles/ads_codec.dir/deflate.cpp.o"
  "CMakeFiles/ads_codec.dir/deflate.cpp.o.d"
  "CMakeFiles/ads_codec.dir/huffman.cpp.o"
  "CMakeFiles/ads_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/ads_codec.dir/inflate.cpp.o"
  "CMakeFiles/ads_codec.dir/inflate.cpp.o.d"
  "CMakeFiles/ads_codec.dir/png.cpp.o"
  "CMakeFiles/ads_codec.dir/png.cpp.o.d"
  "CMakeFiles/ads_codec.dir/raw_codec.cpp.o"
  "CMakeFiles/ads_codec.dir/raw_codec.cpp.o.d"
  "CMakeFiles/ads_codec.dir/registry.cpp.o"
  "CMakeFiles/ads_codec.dir/registry.cpp.o.d"
  "CMakeFiles/ads_codec.dir/rle_codec.cpp.o"
  "CMakeFiles/ads_codec.dir/rle_codec.cpp.o.d"
  "CMakeFiles/ads_codec.dir/zlib.cpp.o"
  "CMakeFiles/ads_codec.dir/zlib.cpp.o.d"
  "libads_codec.a"
  "libads_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
