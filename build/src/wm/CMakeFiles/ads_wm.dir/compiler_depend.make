# Empty compiler generated dependencies file for ads_wm.
# This may be replaced when dependencies are built.
