file(REMOVE_RECURSE
  "libads_wm.a"
)
