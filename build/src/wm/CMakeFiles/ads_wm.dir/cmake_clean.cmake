file(REMOVE_RECURSE
  "CMakeFiles/ads_wm.dir/window_manager.cpp.o"
  "CMakeFiles/ads_wm.dir/window_manager.cpp.o.d"
  "libads_wm.a"
  "libads_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
