file(REMOVE_RECURSE
  "CMakeFiles/ads_bfcp.dir/bfcp_message.cpp.o"
  "CMakeFiles/ads_bfcp.dir/bfcp_message.cpp.o.d"
  "CMakeFiles/ads_bfcp.dir/floor_control.cpp.o"
  "CMakeFiles/ads_bfcp.dir/floor_control.cpp.o.d"
  "libads_bfcp.a"
  "libads_bfcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_bfcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
