# Empty dependencies file for ads_bfcp.
# This may be replaced when dependencies are built.
