file(REMOVE_RECURSE
  "libads_bfcp.a"
)
