file(REMOVE_RECURSE
  "CMakeFiles/ads_sdp.dir/sdp.cpp.o"
  "CMakeFiles/ads_sdp.dir/sdp.cpp.o.d"
  "CMakeFiles/ads_sdp.dir/sharing_session.cpp.o"
  "CMakeFiles/ads_sdp.dir/sharing_session.cpp.o.d"
  "libads_sdp.a"
  "libads_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
