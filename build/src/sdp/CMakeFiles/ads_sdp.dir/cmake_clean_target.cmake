file(REMOVE_RECURSE
  "libads_sdp.a"
)
