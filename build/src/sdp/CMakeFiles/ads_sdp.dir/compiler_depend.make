# Empty compiler generated dependencies file for ads_sdp.
# This may be replaced when dependencies are built.
