file(REMOVE_RECURSE
  "CMakeFiles/ads_image.dir/damage.cpp.o"
  "CMakeFiles/ads_image.dir/damage.cpp.o.d"
  "CMakeFiles/ads_image.dir/geometry.cpp.o"
  "CMakeFiles/ads_image.dir/geometry.cpp.o.d"
  "CMakeFiles/ads_image.dir/image.cpp.o"
  "CMakeFiles/ads_image.dir/image.cpp.o.d"
  "CMakeFiles/ads_image.dir/metrics.cpp.o"
  "CMakeFiles/ads_image.dir/metrics.cpp.o.d"
  "CMakeFiles/ads_image.dir/scale.cpp.o"
  "CMakeFiles/ads_image.dir/scale.cpp.o.d"
  "CMakeFiles/ads_image.dir/scroll_detect.cpp.o"
  "CMakeFiles/ads_image.dir/scroll_detect.cpp.o.d"
  "libads_image.a"
  "libads_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
