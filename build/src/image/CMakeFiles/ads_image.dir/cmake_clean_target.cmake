file(REMOVE_RECURSE
  "libads_image.a"
)
