
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/damage.cpp" "src/image/CMakeFiles/ads_image.dir/damage.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/damage.cpp.o.d"
  "/root/repo/src/image/geometry.cpp" "src/image/CMakeFiles/ads_image.dir/geometry.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/geometry.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/image/CMakeFiles/ads_image.dir/image.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/image.cpp.o.d"
  "/root/repo/src/image/metrics.cpp" "src/image/CMakeFiles/ads_image.dir/metrics.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/metrics.cpp.o.d"
  "/root/repo/src/image/scale.cpp" "src/image/CMakeFiles/ads_image.dir/scale.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/scale.cpp.o.d"
  "/root/repo/src/image/scroll_detect.cpp" "src/image/CMakeFiles/ads_image.dir/scroll_detect.cpp.o" "gcc" "src/image/CMakeFiles/ads_image.dir/scroll_detect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
