# Empty compiler generated dependencies file for ads_image.
# This may be replaced when dependencies are built.
