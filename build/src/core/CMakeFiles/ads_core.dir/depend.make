# Empty dependencies file for ads_core.
# This may be replaced when dependencies are built.
