file(REMOVE_RECURSE
  "CMakeFiles/ads_core.dir/app_host.cpp.o"
  "CMakeFiles/ads_core.dir/app_host.cpp.o.d"
  "CMakeFiles/ads_core.dir/packet_classify.cpp.o"
  "CMakeFiles/ads_core.dir/packet_classify.cpp.o.d"
  "CMakeFiles/ads_core.dir/participant.cpp.o"
  "CMakeFiles/ads_core.dir/participant.cpp.o.d"
  "CMakeFiles/ads_core.dir/participant_layout.cpp.o"
  "CMakeFiles/ads_core.dir/participant_layout.cpp.o.d"
  "CMakeFiles/ads_core.dir/session.cpp.o"
  "CMakeFiles/ads_core.dir/session.cpp.o.d"
  "libads_core.a"
  "libads_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
