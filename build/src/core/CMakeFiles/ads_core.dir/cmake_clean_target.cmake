file(REMOVE_RECURSE
  "libads_core.a"
)
