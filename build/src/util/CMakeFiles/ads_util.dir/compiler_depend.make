# Empty compiler generated dependencies file for ads_util.
# This may be replaced when dependencies are built.
