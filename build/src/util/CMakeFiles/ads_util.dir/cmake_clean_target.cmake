file(REMOVE_RECURSE
  "libads_util.a"
)
