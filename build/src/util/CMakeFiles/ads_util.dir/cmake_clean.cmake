file(REMOVE_RECURSE
  "CMakeFiles/ads_util.dir/bytes.cpp.o"
  "CMakeFiles/ads_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ads_util.dir/checksum.cpp.o"
  "CMakeFiles/ads_util.dir/checksum.cpp.o.d"
  "CMakeFiles/ads_util.dir/logging.cpp.o"
  "CMakeFiles/ads_util.dir/logging.cpp.o.d"
  "libads_util.a"
  "libads_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
