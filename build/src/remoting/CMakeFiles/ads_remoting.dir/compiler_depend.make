# Empty compiler generated dependencies file for ads_remoting.
# This may be replaced when dependencies are built.
