
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/remoting/header.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/header.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/header.cpp.o.d"
  "/root/repo/src/remoting/message.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/message.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/message.cpp.o.d"
  "/root/repo/src/remoting/mouse_pointer_info.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/mouse_pointer_info.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/mouse_pointer_info.cpp.o.d"
  "/root/repo/src/remoting/move_rectangle.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/move_rectangle.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/move_rectangle.cpp.o.d"
  "/root/repo/src/remoting/region_update.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/region_update.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/region_update.cpp.o.d"
  "/root/repo/src/remoting/window_manager_info.cpp" "src/remoting/CMakeFiles/ads_remoting.dir/window_manager_info.cpp.o" "gcc" "src/remoting/CMakeFiles/ads_remoting.dir/window_manager_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/ads_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/ads_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ads_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
