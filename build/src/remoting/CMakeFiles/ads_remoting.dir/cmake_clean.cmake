file(REMOVE_RECURSE
  "CMakeFiles/ads_remoting.dir/header.cpp.o"
  "CMakeFiles/ads_remoting.dir/header.cpp.o.d"
  "CMakeFiles/ads_remoting.dir/message.cpp.o"
  "CMakeFiles/ads_remoting.dir/message.cpp.o.d"
  "CMakeFiles/ads_remoting.dir/mouse_pointer_info.cpp.o"
  "CMakeFiles/ads_remoting.dir/mouse_pointer_info.cpp.o.d"
  "CMakeFiles/ads_remoting.dir/move_rectangle.cpp.o"
  "CMakeFiles/ads_remoting.dir/move_rectangle.cpp.o.d"
  "CMakeFiles/ads_remoting.dir/region_update.cpp.o"
  "CMakeFiles/ads_remoting.dir/region_update.cpp.o.d"
  "CMakeFiles/ads_remoting.dir/window_manager_info.cpp.o"
  "CMakeFiles/ads_remoting.dir/window_manager_info.cpp.o.d"
  "libads_remoting.a"
  "libads_remoting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_remoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
