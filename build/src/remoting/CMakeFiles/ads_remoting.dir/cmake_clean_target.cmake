file(REMOVE_RECURSE
  "libads_remoting.a"
)
