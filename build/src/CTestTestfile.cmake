# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("image")
subdirs("codec")
subdirs("rtp")
subdirs("net")
subdirs("wm")
subdirs("capture")
subdirs("remoting")
subdirs("hip")
subdirs("bfcp")
subdirs("sdp")
subdirs("core")
