# Empty dependencies file for screen_capturer_test.
# This may be replaced when dependencies are built.
