file(REMOVE_RECURSE
  "CMakeFiles/screen_capturer_test.dir/screen_capturer_test.cpp.o"
  "CMakeFiles/screen_capturer_test.dir/screen_capturer_test.cpp.o.d"
  "screen_capturer_test"
  "screen_capturer_test.pdb"
  "screen_capturer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screen_capturer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
