# CMake generated Testfile for 
# Source directory: /root/repo/tests/capture
# Build directory: /root/repo/build/tests/capture
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/capture/apps_test[1]_include.cmake")
include("/root/repo/build/tests/capture/screen_capturer_test[1]_include.cmake")
