# Empty dependencies file for tcp_channel_test.
# This may be replaced when dependencies are built.
