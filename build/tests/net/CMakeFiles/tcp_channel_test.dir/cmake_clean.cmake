file(REMOVE_RECURSE
  "CMakeFiles/tcp_channel_test.dir/tcp_channel_test.cpp.o"
  "CMakeFiles/tcp_channel_test.dir/tcp_channel_test.cpp.o.d"
  "tcp_channel_test"
  "tcp_channel_test.pdb"
  "tcp_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
