# Empty dependencies file for udp_channel_test.
# This may be replaced when dependencies are built.
