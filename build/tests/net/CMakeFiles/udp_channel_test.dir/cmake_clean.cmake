file(REMOVE_RECURSE
  "CMakeFiles/udp_channel_test.dir/udp_channel_test.cpp.o"
  "CMakeFiles/udp_channel_test.dir/udp_channel_test.cpp.o.d"
  "udp_channel_test"
  "udp_channel_test.pdb"
  "udp_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
