# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/packet_classify_test[1]_include.cmake")
include("/root/repo/build/tests/core/participant_layout_test[1]_include.cmake")
include("/root/repo/build/tests/core/session_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/core/session_udp_test[1]_include.cmake")
include("/root/repo/build/tests/core/hip_flow_test[1]_include.cmake")
include("/root/repo/build/tests/core/multicast_session_test[1]_include.cmake")
include("/root/repo/build/tests/core/rate_control_test[1]_include.cmake")
include("/root/repo/build/tests/core/pointer_flow_test[1]_include.cmake")
include("/root/repo/build/tests/core/negotiation_test[1]_include.cmake")
include("/root/repo/build/tests/core/input_injection_test[1]_include.cmake")
include("/root/repo/build/tests/core/session_edge_test[1]_include.cmake")
