file(REMOVE_RECURSE
  "CMakeFiles/packet_classify_test.dir/packet_classify_test.cpp.o"
  "CMakeFiles/packet_classify_test.dir/packet_classify_test.cpp.o.d"
  "packet_classify_test"
  "packet_classify_test.pdb"
  "packet_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
