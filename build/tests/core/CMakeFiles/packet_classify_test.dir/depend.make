# Empty dependencies file for packet_classify_test.
# This may be replaced when dependencies are built.
