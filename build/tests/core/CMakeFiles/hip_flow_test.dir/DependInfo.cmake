
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/hip_flow_test.cpp" "tests/core/CMakeFiles/hip_flow_test.dir/hip_flow_test.cpp.o" "gcc" "tests/core/CMakeFiles/hip_flow_test.dir/hip_flow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ads_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/ads_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ads_net.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/ads_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/hip/CMakeFiles/ads_hip.dir/DependInfo.cmake"
  "/root/repo/build/src/remoting/CMakeFiles/ads_remoting.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/ads_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/ads_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/ads_image.dir/DependInfo.cmake"
  "/root/repo/build/src/bfcp/CMakeFiles/ads_bfcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/ads_sdp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
