# Empty compiler generated dependencies file for hip_flow_test.
# This may be replaced when dependencies are built.
