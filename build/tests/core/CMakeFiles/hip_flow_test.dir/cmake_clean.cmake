file(REMOVE_RECURSE
  "CMakeFiles/hip_flow_test.dir/hip_flow_test.cpp.o"
  "CMakeFiles/hip_flow_test.dir/hip_flow_test.cpp.o.d"
  "hip_flow_test"
  "hip_flow_test.pdb"
  "hip_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
