# Empty compiler generated dependencies file for pointer_flow_test.
# This may be replaced when dependencies are built.
