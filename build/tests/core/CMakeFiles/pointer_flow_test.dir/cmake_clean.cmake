file(REMOVE_RECURSE
  "CMakeFiles/pointer_flow_test.dir/pointer_flow_test.cpp.o"
  "CMakeFiles/pointer_flow_test.dir/pointer_flow_test.cpp.o.d"
  "pointer_flow_test"
  "pointer_flow_test.pdb"
  "pointer_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
