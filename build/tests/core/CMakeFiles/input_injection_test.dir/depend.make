# Empty dependencies file for input_injection_test.
# This may be replaced when dependencies are built.
