file(REMOVE_RECURSE
  "CMakeFiles/input_injection_test.dir/input_injection_test.cpp.o"
  "CMakeFiles/input_injection_test.dir/input_injection_test.cpp.o.d"
  "input_injection_test"
  "input_injection_test.pdb"
  "input_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
