file(REMOVE_RECURSE
  "CMakeFiles/participant_layout_test.dir/participant_layout_test.cpp.o"
  "CMakeFiles/participant_layout_test.dir/participant_layout_test.cpp.o.d"
  "participant_layout_test"
  "participant_layout_test.pdb"
  "participant_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/participant_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
