# Empty dependencies file for participant_layout_test.
# This may be replaced when dependencies are built.
