# Empty compiler generated dependencies file for negotiation_test.
# This may be replaced when dependencies are built.
