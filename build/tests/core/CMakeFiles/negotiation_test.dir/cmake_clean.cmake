file(REMOVE_RECURSE
  "CMakeFiles/negotiation_test.dir/negotiation_test.cpp.o"
  "CMakeFiles/negotiation_test.dir/negotiation_test.cpp.o.d"
  "negotiation_test"
  "negotiation_test.pdb"
  "negotiation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negotiation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
