file(REMOVE_RECURSE
  "CMakeFiles/session_udp_test.dir/session_udp_test.cpp.o"
  "CMakeFiles/session_udp_test.dir/session_udp_test.cpp.o.d"
  "session_udp_test"
  "session_udp_test.pdb"
  "session_udp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_udp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
