# Empty dependencies file for session_udp_test.
# This may be replaced when dependencies are built.
