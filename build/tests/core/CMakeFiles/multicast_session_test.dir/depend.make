# Empty dependencies file for multicast_session_test.
# This may be replaced when dependencies are built.
