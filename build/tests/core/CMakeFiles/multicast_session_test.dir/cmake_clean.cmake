file(REMOVE_RECURSE
  "CMakeFiles/multicast_session_test.dir/multicast_session_test.cpp.o"
  "CMakeFiles/multicast_session_test.dir/multicast_session_test.cpp.o.d"
  "multicast_session_test"
  "multicast_session_test.pdb"
  "multicast_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
