file(REMOVE_RECURSE
  "CMakeFiles/session_edge_test.dir/session_edge_test.cpp.o"
  "CMakeFiles/session_edge_test.dir/session_edge_test.cpp.o.d"
  "session_edge_test"
  "session_edge_test.pdb"
  "session_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
