file(REMOVE_RECURSE
  "CMakeFiles/session_tcp_test.dir/session_tcp_test.cpp.o"
  "CMakeFiles/session_tcp_test.dir/session_tcp_test.cpp.o.d"
  "session_tcp_test"
  "session_tcp_test.pdb"
  "session_tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
