file(REMOVE_RECURSE
  "CMakeFiles/sharing_offer_test.dir/sharing_offer_test.cpp.o"
  "CMakeFiles/sharing_offer_test.dir/sharing_offer_test.cpp.o.d"
  "sharing_offer_test"
  "sharing_offer_test.pdb"
  "sharing_offer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_offer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
