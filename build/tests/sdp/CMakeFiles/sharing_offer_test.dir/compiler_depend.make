# Empty compiler generated dependencies file for sharing_offer_test.
# This may be replaced when dependencies are built.
