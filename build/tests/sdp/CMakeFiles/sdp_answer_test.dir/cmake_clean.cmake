file(REMOVE_RECURSE
  "CMakeFiles/sdp_answer_test.dir/sdp_answer_test.cpp.o"
  "CMakeFiles/sdp_answer_test.dir/sdp_answer_test.cpp.o.d"
  "sdp_answer_test"
  "sdp_answer_test.pdb"
  "sdp_answer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdp_answer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
