# Empty dependencies file for sdp_answer_test.
# This may be replaced when dependencies are built.
