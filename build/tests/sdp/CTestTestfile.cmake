# CMake generated Testfile for 
# Source directory: /root/repo/tests/sdp
# Build directory: /root/repo/build/tests/sdp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sdp/sdp_test[1]_include.cmake")
include("/root/repo/build/tests/sdp/sharing_offer_test[1]_include.cmake")
include("/root/repo/build/tests/sdp/sdp_answer_test[1]_include.cmake")
