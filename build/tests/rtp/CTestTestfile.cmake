# CMake generated Testfile for 
# Source directory: /root/repo/tests/rtp
# Build directory: /root/repo/build/tests/rtp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rtp/rtp_packet_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/rtcp_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/framing_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/rtp_session_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/reorder_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/retransmission_cache_test[1]_include.cmake")
include("/root/repo/build/tests/rtp/rtcp_reports_test[1]_include.cmake")
