# Empty dependencies file for retransmission_cache_test.
# This may be replaced when dependencies are built.
