file(REMOVE_RECURSE
  "CMakeFiles/retransmission_cache_test.dir/retransmission_cache_test.cpp.o"
  "CMakeFiles/retransmission_cache_test.dir/retransmission_cache_test.cpp.o.d"
  "retransmission_cache_test"
  "retransmission_cache_test.pdb"
  "retransmission_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retransmission_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
