file(REMOVE_RECURSE
  "CMakeFiles/rtcp_reports_test.dir/rtcp_reports_test.cpp.o"
  "CMakeFiles/rtcp_reports_test.dir/rtcp_reports_test.cpp.o.d"
  "rtcp_reports_test"
  "rtcp_reports_test.pdb"
  "rtcp_reports_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtcp_reports_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
