# Empty compiler generated dependencies file for rtcp_reports_test.
# This may be replaced when dependencies are built.
