# Empty compiler generated dependencies file for rtcp_test.
# This may be replaced when dependencies are built.
