file(REMOVE_RECURSE
  "CMakeFiles/rtcp_test.dir/rtcp_test.cpp.o"
  "CMakeFiles/rtcp_test.dir/rtcp_test.cpp.o.d"
  "rtcp_test"
  "rtcp_test.pdb"
  "rtcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
