file(REMOVE_RECURSE
  "CMakeFiles/rtp_session_test.dir/rtp_session_test.cpp.o"
  "CMakeFiles/rtp_session_test.dir/rtp_session_test.cpp.o.d"
  "rtp_session_test"
  "rtp_session_test.pdb"
  "rtp_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
