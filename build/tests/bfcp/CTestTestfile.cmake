# CMake generated Testfile for 
# Source directory: /root/repo/tests/bfcp
# Build directory: /root/repo/build/tests/bfcp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bfcp/bfcp_message_test[1]_include.cmake")
include("/root/repo/build/tests/bfcp/floor_control_test[1]_include.cmake")
