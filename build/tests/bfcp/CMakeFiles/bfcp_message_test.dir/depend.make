# Empty dependencies file for bfcp_message_test.
# This may be replaced when dependencies are built.
