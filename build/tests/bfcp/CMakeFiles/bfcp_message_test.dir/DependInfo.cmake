
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bfcp/bfcp_message_test.cpp" "tests/bfcp/CMakeFiles/bfcp_message_test.dir/bfcp_message_test.cpp.o" "gcc" "tests/bfcp/CMakeFiles/bfcp_message_test.dir/bfcp_message_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bfcp/CMakeFiles/ads_bfcp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
