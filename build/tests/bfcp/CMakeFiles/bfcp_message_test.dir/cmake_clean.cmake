file(REMOVE_RECURSE
  "CMakeFiles/bfcp_message_test.dir/bfcp_message_test.cpp.o"
  "CMakeFiles/bfcp_message_test.dir/bfcp_message_test.cpp.o.d"
  "bfcp_message_test"
  "bfcp_message_test.pdb"
  "bfcp_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfcp_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
