file(REMOVE_RECURSE
  "CMakeFiles/floor_control_test.dir/floor_control_test.cpp.o"
  "CMakeFiles/floor_control_test.dir/floor_control_test.cpp.o.d"
  "floor_control_test"
  "floor_control_test.pdb"
  "floor_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floor_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
