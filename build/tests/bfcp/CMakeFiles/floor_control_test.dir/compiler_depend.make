# Empty compiler generated dependencies file for floor_control_test.
# This may be replaced when dependencies are built.
