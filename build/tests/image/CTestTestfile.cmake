# CMake generated Testfile for 
# Source directory: /root/repo/tests/image
# Build directory: /root/repo/build/tests/image
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/image/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/image/image_test[1]_include.cmake")
include("/root/repo/build/tests/image/damage_test[1]_include.cmake")
include("/root/repo/build/tests/image/scroll_detect_test[1]_include.cmake")
include("/root/repo/build/tests/image/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/image/scale_test[1]_include.cmake")
include("/root/repo/build/tests/image/region_property_test[1]_include.cmake")
