# Empty compiler generated dependencies file for scroll_detect_test.
# This may be replaced when dependencies are built.
