file(REMOVE_RECURSE
  "CMakeFiles/scroll_detect_test.dir/scroll_detect_test.cpp.o"
  "CMakeFiles/scroll_detect_test.dir/scroll_detect_test.cpp.o.d"
  "scroll_detect_test"
  "scroll_detect_test.pdb"
  "scroll_detect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scroll_detect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
