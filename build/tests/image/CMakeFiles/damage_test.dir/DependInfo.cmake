
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/image/damage_test.cpp" "tests/image/CMakeFiles/damage_test.dir/damage_test.cpp.o" "gcc" "tests/image/CMakeFiles/damage_test.dir/damage_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/ads_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ads_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
