file(REMOVE_RECURSE
  "CMakeFiles/dct_codec_test.dir/dct_codec_test.cpp.o"
  "CMakeFiles/dct_codec_test.dir/dct_codec_test.cpp.o.d"
  "dct_codec_test"
  "dct_codec_test.pdb"
  "dct_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dct_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
