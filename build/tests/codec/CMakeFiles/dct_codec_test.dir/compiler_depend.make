# Empty compiler generated dependencies file for dct_codec_test.
# This may be replaced when dependencies are built.
