file(REMOVE_RECURSE
  "CMakeFiles/deflate_tables_test.dir/deflate_tables_test.cpp.o"
  "CMakeFiles/deflate_tables_test.dir/deflate_tables_test.cpp.o.d"
  "deflate_tables_test"
  "deflate_tables_test.pdb"
  "deflate_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deflate_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
