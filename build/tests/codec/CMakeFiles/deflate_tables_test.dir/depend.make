# Empty dependencies file for deflate_tables_test.
# This may be replaced when dependencies are built.
