# Empty compiler generated dependencies file for zlib_test.
# This may be replaced when dependencies are built.
