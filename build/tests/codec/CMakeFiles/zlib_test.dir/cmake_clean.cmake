file(REMOVE_RECURSE
  "CMakeFiles/zlib_test.dir/zlib_test.cpp.o"
  "CMakeFiles/zlib_test.dir/zlib_test.cpp.o.d"
  "zlib_test"
  "zlib_test.pdb"
  "zlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
