file(REMOVE_RECURSE
  "CMakeFiles/png_test.dir/png_test.cpp.o"
  "CMakeFiles/png_test.dir/png_test.cpp.o.d"
  "png_test"
  "png_test.pdb"
  "png_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/png_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
