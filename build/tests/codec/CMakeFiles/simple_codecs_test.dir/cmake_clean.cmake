file(REMOVE_RECURSE
  "CMakeFiles/simple_codecs_test.dir/simple_codecs_test.cpp.o"
  "CMakeFiles/simple_codecs_test.dir/simple_codecs_test.cpp.o.d"
  "simple_codecs_test"
  "simple_codecs_test.pdb"
  "simple_codecs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_codecs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
