# Empty dependencies file for simple_codecs_test.
# This may be replaced when dependencies are built.
