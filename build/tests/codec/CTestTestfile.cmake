# CMake generated Testfile for 
# Source directory: /root/repo/tests/codec
# Build directory: /root/repo/build/tests/codec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codec/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/codec/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/codec/deflate_test[1]_include.cmake")
include("/root/repo/build/tests/codec/zlib_test[1]_include.cmake")
include("/root/repo/build/tests/codec/png_test[1]_include.cmake")
include("/root/repo/build/tests/codec/simple_codecs_test[1]_include.cmake")
include("/root/repo/build/tests/codec/dct_codec_test[1]_include.cmake")
include("/root/repo/build/tests/codec/registry_test[1]_include.cmake")
include("/root/repo/build/tests/codec/interop_test[1]_include.cmake")
include("/root/repo/build/tests/codec/deflate_tables_test[1]_include.cmake")
