# CMake generated Testfile for 
# Source directory: /root/repo/tests/hip
# Build directory: /root/repo/build/tests/hip
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hip/hip_messages_test[1]_include.cmake")
include("/root/repo/build/tests/hip/keycodes_test[1]_include.cmake")
include("/root/repo/build/tests/hip/utf8_test[1]_include.cmake")
