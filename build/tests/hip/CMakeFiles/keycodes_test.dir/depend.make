# Empty dependencies file for keycodes_test.
# This may be replaced when dependencies are built.
