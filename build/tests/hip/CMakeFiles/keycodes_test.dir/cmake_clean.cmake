file(REMOVE_RECURSE
  "CMakeFiles/keycodes_test.dir/keycodes_test.cpp.o"
  "CMakeFiles/keycodes_test.dir/keycodes_test.cpp.o.d"
  "keycodes_test"
  "keycodes_test.pdb"
  "keycodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keycodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
