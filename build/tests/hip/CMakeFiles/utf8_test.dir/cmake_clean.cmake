file(REMOVE_RECURSE
  "CMakeFiles/utf8_test.dir/utf8_test.cpp.o"
  "CMakeFiles/utf8_test.dir/utf8_test.cpp.o.d"
  "utf8_test"
  "utf8_test.pdb"
  "utf8_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utf8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
