# Empty dependencies file for utf8_test.
# This may be replaced when dependencies are built.
