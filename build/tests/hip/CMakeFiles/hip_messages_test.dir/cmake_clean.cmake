file(REMOVE_RECURSE
  "CMakeFiles/hip_messages_test.dir/hip_messages_test.cpp.o"
  "CMakeFiles/hip_messages_test.dir/hip_messages_test.cpp.o.d"
  "hip_messages_test"
  "hip_messages_test.pdb"
  "hip_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hip_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
