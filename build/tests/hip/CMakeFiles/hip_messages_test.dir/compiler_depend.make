# Empty compiler generated dependencies file for hip_messages_test.
# This may be replaced when dependencies are built.
