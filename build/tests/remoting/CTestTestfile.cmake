# CMake generated Testfile for 
# Source directory: /root/repo/tests/remoting
# Build directory: /root/repo/build/tests/remoting
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/remoting/header_test[1]_include.cmake")
include("/root/repo/build/tests/remoting/wmi_test[1]_include.cmake")
include("/root/repo/build/tests/remoting/region_update_test[1]_include.cmake")
include("/root/repo/build/tests/remoting/move_rectangle_test[1]_include.cmake")
include("/root/repo/build/tests/remoting/mouse_pointer_test[1]_include.cmake")
include("/root/repo/build/tests/remoting/demux_test[1]_include.cmake")
