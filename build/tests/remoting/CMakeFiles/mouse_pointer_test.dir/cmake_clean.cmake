file(REMOVE_RECURSE
  "CMakeFiles/mouse_pointer_test.dir/mouse_pointer_test.cpp.o"
  "CMakeFiles/mouse_pointer_test.dir/mouse_pointer_test.cpp.o.d"
  "mouse_pointer_test"
  "mouse_pointer_test.pdb"
  "mouse_pointer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mouse_pointer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
