# Empty dependencies file for mouse_pointer_test.
# This may be replaced when dependencies are built.
