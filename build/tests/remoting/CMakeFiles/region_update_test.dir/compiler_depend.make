# Empty compiler generated dependencies file for region_update_test.
# This may be replaced when dependencies are built.
