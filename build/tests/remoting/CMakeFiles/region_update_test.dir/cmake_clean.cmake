file(REMOVE_RECURSE
  "CMakeFiles/region_update_test.dir/region_update_test.cpp.o"
  "CMakeFiles/region_update_test.dir/region_update_test.cpp.o.d"
  "region_update_test"
  "region_update_test.pdb"
  "region_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
