file(REMOVE_RECURSE
  "CMakeFiles/wmi_test.dir/wmi_test.cpp.o"
  "CMakeFiles/wmi_test.dir/wmi_test.cpp.o.d"
  "wmi_test"
  "wmi_test.pdb"
  "wmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
