# Empty compiler generated dependencies file for wmi_test.
# This may be replaced when dependencies are built.
