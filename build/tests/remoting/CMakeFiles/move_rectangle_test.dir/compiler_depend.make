# Empty compiler generated dependencies file for move_rectangle_test.
# This may be replaced when dependencies are built.
