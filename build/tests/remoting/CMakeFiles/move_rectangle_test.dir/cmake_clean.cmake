file(REMOVE_RECURSE
  "CMakeFiles/move_rectangle_test.dir/move_rectangle_test.cpp.o"
  "CMakeFiles/move_rectangle_test.dir/move_rectangle_test.cpp.o.d"
  "move_rectangle_test"
  "move_rectangle_test.pdb"
  "move_rectangle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_rectangle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
