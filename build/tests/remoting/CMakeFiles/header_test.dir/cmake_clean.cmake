file(REMOVE_RECURSE
  "CMakeFiles/header_test.dir/header_test.cpp.o"
  "CMakeFiles/header_test.dir/header_test.cpp.o.d"
  "header_test"
  "header_test.pdb"
  "header_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
