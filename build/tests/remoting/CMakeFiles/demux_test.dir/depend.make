# Empty dependencies file for demux_test.
# This may be replaced when dependencies are built.
