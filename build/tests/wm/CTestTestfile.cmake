# CMake generated Testfile for 
# Source directory: /root/repo/tests/wm
# Build directory: /root/repo/build/tests/wm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/wm/window_manager_test[1]_include.cmake")
