file(REMOVE_RECURSE
  "CMakeFiles/window_manager_test.dir/window_manager_test.cpp.o"
  "CMakeFiles/window_manager_test.dir/window_manager_test.cpp.o.d"
  "window_manager_test"
  "window_manager_test.pdb"
  "window_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
