# Empty dependencies file for window_manager_test.
# This may be replaced when dependencies are built.
