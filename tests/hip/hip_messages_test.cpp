#include "hip/messages.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(HipTypes, Table3Registry) {
  EXPECT_EQ(static_cast<int>(HipType::kMousePressed), 121);
  EXPECT_EQ(static_cast<int>(HipType::kMouseReleased), 122);
  EXPECT_EQ(static_cast<int>(HipType::kMouseMoved), 123);
  EXPECT_EQ(static_cast<int>(HipType::kMouseWheelMoved), 124);
  EXPECT_EQ(static_cast<int>(HipType::kKeyPressed), 125);
  EXPECT_EQ(static_cast<int>(HipType::kKeyReleased), 126);
  EXPECT_EQ(static_cast<int>(HipType::kKeyTyped), 127);
  for (int v = 121; v <= 127; ++v) EXPECT_TRUE(is_known_hip_type(static_cast<std::uint8_t>(v)));
  EXPECT_FALSE(is_known_hip_type(120));
  EXPECT_FALSE(is_known_hip_type(128));
  EXPECT_FALSE(is_known_hip_type(1));
}

TEST(HipMessages, MousePressedWireLayout) {
  // Figure 13: common header (button in Parameter) + Left + Top.
  const Bytes wire = serialize_hip(MousePressed{7, MouseButton::kRight, 300, 400});
  ASSERT_EQ(wire.size(), 12u);
  EXPECT_EQ(wire[0], 121);
  EXPECT_EQ(wire[1], 2);  // right button
  EXPECT_EQ(wire[2], 0);
  EXPECT_EQ(wire[3], 7);
  EXPECT_EQ(wire[7], 300 - 256);
  EXPECT_EQ(wire[6], 1);
  EXPECT_EQ(wire[11], 400 - 256);
}

TEST(HipMessages, AllSevenRoundTrip) {
  const std::vector<HipMessage> msgs = {
      MousePressed{1, MouseButton::kLeft, 10, 20},
      MouseReleased{1, MouseButton::kMiddle, 10, 20},
      MouseMoved{2, 500, 600},
      MouseWheelMoved{2, 30, 40, -240},
      KeyPressed{3, vk::kF1},
      KeyReleased{3, vk::kF1},
      KeyTyped{4, "hello"},
  };
  for (const HipMessage& msg : msgs) {
    auto parsed = parse_hip(serialize_hip(msg));
    ASSERT_TRUE(parsed.ok()) << static_cast<int>(hip_type(msg));
    EXPECT_EQ(*parsed, msg);
  }
}

TEST(HipMessages, WheelNegativeDistanceTwosComplement) {
  // §6.5: "negative values are transmitted using 2's complement method".
  const Bytes wire = serialize_hip(MouseWheelMoved{1, 0, 0, -120});
  ASSERT_EQ(wire.size(), 16u);
  EXPECT_EQ(wire[12], 0xFF);
  EXPECT_EQ(wire[13], 0xFF);
  EXPECT_EQ(wire[14], 0xFF);
  EXPECT_EQ(wire[15], 0x88);
  auto parsed = parse_hip(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<MouseWheelMoved>(*parsed).distance, -120);
}

TEST(HipMessages, WheelNotchConvention) {
  // "120 * (number of notches)"; smooth wheels may send any value.
  for (int notches : {-3, -1, 1, 2, 10}) {
    const HipMessage msg = MouseWheelMoved{1, 5, 5, notches * 120};
    auto parsed = parse_hip(serialize_hip(msg));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(std::get<MouseWheelMoved>(*parsed).distance, notches * 120);
  }
}

TEST(HipMessages, KeyPressedCarriesJavaKeycode) {
  // §6.6: "F1 key is defined as 'int VK_F1 = 0x70;'".
  const Bytes wire = serialize_hip(KeyPressed{1, vk::kF1});
  ASSERT_EQ(wire.size(), 8u);
  EXPECT_EQ(wire[0], 125);
  EXPECT_EQ(wire[7], 0x70);
}

TEST(HipMessages, KeyTypedCarriesRawUtf8NoPadding) {
  // §6.8: "There is no padding for the UTF-8 string."
  const Bytes wire = serialize_hip(KeyTyped{1, "abc"});
  EXPECT_EQ(wire.size(), 4u + 3u);
  EXPECT_EQ(wire[4], 'a');
  EXPECT_EQ(wire[6], 'c');
}

TEST(HipMessages, KeyTypedMultibyteUtf8) {
  const std::string text = "caf\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80";  // café € 😀
  auto parsed = parse_hip(serialize_hip(KeyTyped{1, text}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<KeyTyped>(*parsed).utf8, text);
}

TEST(HipMessages, KeyTypedInvalidUtf8Rejected) {
  Bytes wire = serialize_hip(KeyTyped{1, "ok"});
  wire.push_back(0xFF);  // invalid lead byte
  auto parsed = parse_hip(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kBadValue);
}

TEST(HipMessages, KeyTypedOverlongEncodingRejected) {
  Bytes wire = serialize_hip(KeyTyped{1, ""});
  wire.push_back(0xC0);  // overlong "\0"
  wire.push_back(0x80);
  EXPECT_FALSE(parse_hip(wire).ok());
}

TEST(HipMessages, EmptyKeyTypedAllowed) {
  auto parsed = parse_hip(serialize_hip(KeyTyped{9, ""}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<KeyTyped>(*parsed).utf8, "");
}

TEST(HipMessages, UnknownTypeUnsupported) {
  Bytes wire = serialize_hip(MouseMoved{1, 2, 3});
  wire[0] = 99;
  auto parsed = parse_hip(wire);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error(), ParseError::kUnsupported);
}

TEST(HipMessages, TrailingBytesRejected) {
  Bytes wire = serialize_hip(MouseMoved{1, 2, 3});
  wire.push_back(0);
  EXPECT_FALSE(parse_hip(wire).ok());
}

TEST(HipMessages, TruncationRejectedEverywhere) {
  const Bytes wire = serialize_hip(MouseWheelMoved{1, 2, 3, 4});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(parse_hip(BytesView(wire).subspan(0, len)).ok()) << len;
  }
}

TEST(HipMessages, Helpers) {
  const HipMessage mouse = MousePressed{5, MouseButton::kLeft, 9, 8};
  const HipMessage key = KeyPressed{6, vk::kA};
  EXPECT_EQ(hip_window_id(mouse), 5);
  EXPECT_EQ(hip_window_id(key), 6);
  std::uint32_t l = 0;
  std::uint32_t t = 0;
  EXPECT_TRUE(hip_coordinates(mouse, l, t));
  EXPECT_EQ(l, 9u);
  EXPECT_EQ(t, 8u);
  EXPECT_FALSE(hip_coordinates(key, l, t));
  EXPECT_EQ(hip_type(mouse), HipType::kMousePressed);
  EXPECT_STREQ(to_string(HipType::kKeyTyped), "KeyTyped");
}

TEST(HipMessages, KeyReleasedWithoutPriorPressIsAcceptable) {
  // §6.7 explicitly allows this; it is just an ordinary parseable message.
  auto parsed = parse_hip(serialize_hip(KeyReleased{1, vk::kZ}));
  EXPECT_TRUE(parsed.ok());
}

}  // namespace
}  // namespace ads
