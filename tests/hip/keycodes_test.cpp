#include "hip/keycodes.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Keycodes, DraftCitedValue) {
  // §6.6: "F1 key is defined as 'int VK_F1 = 0x70;' in KeyEvent.java."
  EXPECT_EQ(vk::kF1, 0x70u);
  EXPECT_EQ(vk::kF12, 0x7Bu);
}

TEST(Keycodes, JavaIdentityMappings) {
  // VK_0..9 and VK_A..Z equal their ASCII characters in KeyEvent.java.
  EXPECT_EQ(vk::k0, static_cast<vk::KeyCode>('0'));
  EXPECT_EQ(vk::k9, static_cast<vk::KeyCode>('9'));
  EXPECT_EQ(vk::kA, static_cast<vk::KeyCode>('A'));
  EXPECT_EQ(vk::kZ, static_cast<vk::KeyCode>('Z'));
}

TEST(Keycodes, WellKnownControlValues) {
  EXPECT_EQ(vk::kEnter, 0x0Au);
  EXPECT_EQ(vk::kEscape, 0x1Bu);
  EXPECT_EQ(vk::kSpace, 0x20u);
  EXPECT_EQ(vk::kShift, 0x10u);
  EXPECT_EQ(vk::kControl, 0x11u);
  EXPECT_EQ(vk::kAlt, 0x12u);
  EXPECT_EQ(vk::kDelete, 0x7Fu);
  EXPECT_EQ(vk::kLeft, 0x25u);
  EXPECT_EQ(vk::kDown, 0x28u);
}

TEST(Keycodes, FromAsciiLetters) {
  EXPECT_EQ(vk::from_ascii('a'), vk::kA);
  EXPECT_EQ(vk::from_ascii('A'), vk::kA);
  EXPECT_EQ(vk::from_ascii('z'), vk::kZ);
  EXPECT_EQ(vk::from_ascii('5'), static_cast<vk::KeyCode>('5'));
}

TEST(Keycodes, FromAsciiPunctuation) {
  EXPECT_EQ(vk::from_ascii(' '), vk::kSpace);
  EXPECT_EQ(vk::from_ascii('\n'), vk::kEnter);
  EXPECT_EQ(vk::from_ascii('\t'), vk::kTab);
  EXPECT_EQ(vk::from_ascii(','), vk::kComma);
  EXPECT_EQ(vk::from_ascii('['), vk::kOpenBracket);
}

TEST(Keycodes, FromAsciiUnmappedIsUndefined) {
  EXPECT_EQ(vk::from_ascii('!'), vk::kUndefined);
  EXPECT_EQ(vk::from_ascii('\x01'), vk::kUndefined);
}

TEST(Keycodes, Names) {
  EXPECT_EQ(vk::name_of(vk::kF1), "F1");
  EXPECT_EQ(vk::name_of(vk::kEnter), "Enter");
  EXPECT_EQ(vk::name_of(vk::kA), "A");
  EXPECT_EQ(vk::name_of(vk::k9), "9");
  EXPECT_TRUE(vk::name_of(0xBEEF).empty());
}

TEST(Keycodes, IsKnown) {
  EXPECT_TRUE(vk::is_known(vk::kF5));
  EXPECT_TRUE(vk::is_known(vk::kZ));
  EXPECT_FALSE(vk::is_known(0xBEEF));
}

}  // namespace
}  // namespace ads
