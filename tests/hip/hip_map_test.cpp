// Output→host HIP coordinate mapping (ROADMAP item 4): scaled and
// viewport-follow viewers report mouse events in the coordinate system of
// the stream they render; map_to_host must land them on the centre of the
// source block before the §4.1 legitimacy check sees them.
#include "hip/hip_map.hpp"

#include <gtest/gtest.h>

#include <variant>

namespace ads {
namespace {

const Rect kFrame{0, 0, 320, 240};

TEST(HipMap, IdentityAndKeysPassThrough) {
  HipMessage move = MouseMoved{0, 60, 60};
  EXPECT_FALSE(hip::map_to_host(move, {}, kFrame));
  EXPECT_EQ(std::get<MouseMoved>(move).left, 60u);

  HipMessage key = KeyPressed{0, 0x41};
  EXPECT_FALSE(hip::map_to_host(key, {2, {}, false}, kFrame));
  HipMessage typed = KeyTyped{0, "hi"};
  EXPECT_FALSE(hip::map_to_host(typed, {2, {}, false}, kFrame));
}

TEST(HipMap, QuarterScaleClickLandsOnBlockCentre) {
  const transcode::OutputGeometry quarter{2, {}, false};
  // Output pixel (10, 5) averaged host block [40,44)x[20,24) — centre (42, 22).
  HipMessage press = MousePressed{0, MouseButton::kLeft, 10, 5};
  EXPECT_TRUE(hip::map_to_host(press, quarter, kFrame));
  EXPECT_EQ(std::get<MousePressed>(press).left, 42u);
  EXPECT_EQ(std::get<MousePressed>(press).top, 22u);
}

TEST(HipMap, ViewportOffsetIsRestored) {
  const transcode::OutputGeometry vp{1, {100, 60, 64, 48}, false};
  HipMessage move = MouseMoved{0, 0, 0};
  EXPECT_TRUE(hip::map_to_host(move, vp, kFrame));
  EXPECT_EQ(std::get<MouseMoved>(move).left, 101u);
  EXPECT_EQ(std::get<MouseMoved>(move).top, 61u);

  HipMessage wheel = MouseWheelMoved{0, 31, 23, -120};
  EXPECT_TRUE(hip::map_to_host(wheel, vp, kFrame));
  EXPECT_EQ(std::get<MouseWheelMoved>(wheel).left, 100u + 62u + 1u);
  EXPECT_EQ(std::get<MouseWheelMoved>(wheel).top, 60u + 46u + 1u);
  EXPECT_EQ(std::get<MouseWheelMoved>(wheel).distance, -120);
}

TEST(HipMap, OutOfRangeOutputPointsClampIntoSourceRect) {
  const transcode::OutputGeometry quarter{2, {}, false};
  HipMessage move = MouseMoved{0, 5000, 5000};
  EXPECT_TRUE(hip::map_to_host(move, quarter, kFrame));
  const auto& m = std::get<MouseMoved>(move);
  EXPECT_LT(m.left, static_cast<std::uint32_t>(kFrame.width));
  EXPECT_LT(m.top, static_cast<std::uint32_t>(kFrame.height));
}

TEST(HipMap, EmptyFrameIsANoOp) {
  HipMessage move = MouseMoved{0, 10, 10};
  EXPECT_FALSE(hip::map_to_host(move, {2, {}, false}, Rect{}));
  EXPECT_EQ(std::get<MouseMoved>(move).left, 10u);
}

}  // namespace
}  // namespace ads
