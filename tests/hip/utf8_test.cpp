#include "hip/utf8.hpp"

#include <gtest/gtest.h>

namespace ads {
namespace {

TEST(Utf8, ValidAscii) {
  EXPECT_TRUE(is_valid_utf8(""));
  EXPECT_TRUE(is_valid_utf8("hello world 123"));
}

TEST(Utf8, ValidMultibyte) {
  EXPECT_TRUE(is_valid_utf8("caf\xC3\xA9"));                 // U+00E9
  EXPECT_TRUE(is_valid_utf8("\xE2\x82\xAC"));                // U+20AC
  EXPECT_TRUE(is_valid_utf8("\xF0\x9F\x98\x80"));            // U+1F600
}

TEST(Utf8, InvalidSequences) {
  EXPECT_FALSE(is_valid_utf8("\x80"));          // stray continuation
  EXPECT_FALSE(is_valid_utf8("\xC3"));          // truncated 2-byte
  EXPECT_FALSE(is_valid_utf8("\xE2\x82"));      // truncated 3-byte
  EXPECT_FALSE(is_valid_utf8("\xF8\x88\x80\x80\x80"));  // 5-byte form
  EXPECT_FALSE(is_valid_utf8("\xC3\x28"));      // bad continuation
}

TEST(Utf8, OverlongRejected) {
  EXPECT_FALSE(is_valid_utf8("\xC0\x80"));          // overlong NUL
  EXPECT_FALSE(is_valid_utf8("\xE0\x80\xAF"));      // overlong '/'
  EXPECT_FALSE(is_valid_utf8("\xF0\x80\x80\x80"));  // overlong
}

TEST(Utf8, SurrogatesRejected) {
  EXPECT_FALSE(is_valid_utf8("\xED\xA0\x80"));  // U+D800
  EXPECT_FALSE(is_valid_utf8("\xED\xBF\xBF"));  // U+DFFF
}

TEST(Utf8, AboveMaxRejected) {
  EXPECT_FALSE(is_valid_utf8("\xF4\x90\x80\x80"));  // U+110000
}

TEST(Utf8, DecodeYieldsCodePoints) {
  std::vector<char32_t> cps;
  ASSERT_TRUE(decode_utf8("a\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80", cps));
  ASSERT_EQ(cps.size(), 4u);
  EXPECT_EQ(cps[0], U'a');
  EXPECT_EQ(cps[1], char32_t{0xE9});
  EXPECT_EQ(cps[2], char32_t{0x20AC});
  EXPECT_EQ(cps[3], char32_t{0x1F600});
}

TEST(Utf8, EncodeRoundTrip) {
  for (char32_t cp : {char32_t{'x'}, char32_t{0xE9}, char32_t{0x20AC},
                      char32_t{0x1F600}, char32_t{0x10FFFF}}) {
    const std::string s = encode_utf8(cp);
    std::vector<char32_t> cps;
    ASSERT_TRUE(decode_utf8(s, cps));
    ASSERT_EQ(cps.size(), 1u);
    EXPECT_EQ(cps[0], cp);
  }
}

TEST(Utf8, SplitRespectsLimitAndBoundaries) {
  // §6.8: long strings go in multiple KeyTyped messages; the split must not
  // cut a multi-byte sequence.
  std::string s;
  for (int i = 0; i < 100; ++i) s += "\xE2\x82\xAC";  // 300 bytes of €
  const auto chunks = split_utf8(s, 7);  // 7 is not a multiple of 3
  std::string rejoined;
  for (const auto& c : chunks) {
    EXPECT_LE(c.size(), 7u);
    EXPECT_TRUE(is_valid_utf8(c));
    rejoined += c;
  }
  EXPECT_EQ(rejoined, s);
}

TEST(Utf8, SplitAsciiExact) {
  const auto chunks = split_utf8("abcdefgh", 4);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], "abcd");
  EXPECT_EQ(chunks[1], "efgh");
}

TEST(Utf8, SplitShortStringSingleChunk) {
  const auto chunks = split_utf8("hi", 100);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], "hi");
}

TEST(Utf8, SplitEmpty) { EXPECT_TRUE(split_utf8("", 8).empty()); }

}  // namespace
}  // namespace ads
